"""Table II, lower half: the buck-boost converter campaign (§VI-B).

Regenerates the four iteration rows (10 -> 15 -> 20 -> 24 testcases)
and benchmarks one full campaign run.  Shape assertions pin the paper's
qualitative results: **all-PFirm and all-PWeak satisfied from iteration
0**, monotone Strong growth, and the use-without-def finding.
"""

import pytest

from repro.core import AssocClass, Criterion, format_iteration_table
from repro.systems.campaigns import buck_boost_campaign

from conftest import write_result


def test_table2_buck_boost(benchmark, results_dir):
    records = benchmark.pedantic(
        lambda: buck_boost_campaign().run(), rounds=1, iterations=1
    )

    text = format_iteration_table(records)
    final = records[-1].coverage
    text += "\n\nuse-without-def findings: " + ", ".join(
        final.dynamic.use_without_def()
    )
    write_result(results_dir, "table2_buck_boost.txt", text + "\n")
    print()
    print(text)

    # Table-II shape: tests 10/15/20/24, monotone dynamic growth.
    assert [r.tests for r in records] == [10, 15, 20, 24]
    dynamics = [r.exercised_total for r in records]
    assert dynamics == sorted(dynamics)
    assert dynamics[-1] > dynamics[0]

    # PFirm/PWeak exist and are fully covered from iteration 0
    # (paper: "100 100" in every buck-boost row).
    assert records[0].class_percent[AssocClass.PFIRM] == 100.0
    assert records[0].class_percent[AssocClass.PWEAK] == 100.0
    for record in records:
        assert record.criteria[Criterion.ALL_PFIRM]
        assert record.criteria[Criterion.ALL_PWEAK]

    # Strong grows across iterations; all-defs stays unsatisfied
    # because of the undriven trim port (paper §VI-B).
    assert records[-1].class_percent[AssocClass.STRONG] > records[0].class_percent[AssocClass.STRONG]
    assert not records[-1].criteria[Criterion.ALL_DEFS]
    assert final.dynamic.use_without_def() == ["limiter.ip_trim"]
