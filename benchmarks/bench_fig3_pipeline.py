"""Fig. 3: the three-stage methodology runs fully automatically.

The paper's Fig. 3 is the static -> dynamic -> coverage pipeline; this
bench regenerates a per-system stage-timing breakdown showing that the
whole flow is push-button, and benchmarks the (reusable) static stage
on every bundled system.
"""

import pytest

from repro.analysis import analyze_cluster
from repro.core import run_dft
from repro.systems.buck_boost import BuckBoostTop
from repro.systems.campaigns import buck_boost_base_suite, window_lifter_base_suite
from repro.systems.sensor import SenseTop, paper_testcases
from repro.systems.window_lifter import WindowLifterTop
from repro.testing import TestSuite

from conftest import write_result

SYSTEMS = {
    "sensor": (lambda: SenseTop(), lambda: paper_testcases()),
    "window_lifter": (lambda: WindowLifterTop(), lambda: window_lifter_base_suite()[:3]),
    "buck_boost": (lambda: BuckBoostTop(), lambda: buck_boost_base_suite()[:3]),
}


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_fig3_static_stage(benchmark, system):
    """The static analysis is the stage that runs 'only once at the
    beginning of the analysis' (paper §IV-A): it must be fast."""
    factory, _ = SYSTEMS[system]
    result = benchmark(lambda: analyze_cluster(factory()))
    assert result.associations


def test_fig3_stage_breakdown(benchmark, results_dir):
    """Full pipeline per system with wall-clock per stage."""

    def run_all():
        rows = []
        for name, (factory, suite_fn) in sorted(SYSTEMS.items()):
            suite = TestSuite(name, suite_fn())
            outcome = run_dft(factory, suite)
            rows.append((name, len(suite), outcome))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{'system':15s} {'tests':>5s} {'static[s]':>10s} {'dynamic[s]':>10s} "
        f"{'coverage[s]':>11s} {'assocs':>7s} {'exercised':>9s}"
    ]
    for name, n_tests, outcome in rows:
        t = outcome.timings
        lines.append(
            f"{name:15s} {n_tests:>5d} {t['static']:>10.3f} {t['dynamic']:>10.3f} "
            f"{t['coverage']:>11.3f} {outcome.coverage.static_total:>7d} "
            f"{outcome.coverage.exercised_total:>9d}"
        )
    text = "\n".join(lines)
    write_result(results_dir, "fig3_stage_breakdown.txt", text + "\n")
    print()
    print(text)

    for name, _, outcome in rows:
        # Fully automatic: every stage completes and produces output.
        assert outcome.coverage.static_total > 0
        assert outcome.coverage.exercised_total > 0
        # The static stage runs once and is not the bottleneck.
        assert outcome.timings["static"] < outcome.timings["dynamic"]
