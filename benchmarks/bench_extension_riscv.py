"""Extension bench: DFT on the RISC-V mixed-signal platform (§VII).

Not a paper table — the paper lists this platform as future work; the
bench demonstrates the methodology transfers unchanged: the pipeline
runs end to end, the CPU wrapper is analysed like any TDF model, the
command-history PWeak pair is found and covered, and firmware
executes at a measurable rate inside the TDF simulation.
"""

import pytest

from repro.core import AssocClass, format_summary, run_dft
from repro.systems.riscv_platform import RiscvPlatformTop, paper_style_testcases
from repro.tdf import Simulator, ms
from repro.testing import TestSuite

from conftest import write_result


def test_extension_riscv_pipeline(benchmark, results_dir):
    suite = TestSuite("rv", paper_style_testcases())
    result = benchmark.pedantic(
        lambda: run_dft(lambda: RiscvPlatformTop(), suite), rounds=3, iterations=1
    )
    text = format_summary(result.coverage, max_missed=8)
    write_result(results_dir, "extension_riscv_platform.txt", text + "\n")
    print()
    print(text)

    # The methodology transfers: classified universe, PWeak found+covered.
    pweak = result.static.by_class(AssocClass.PWEAK)
    assert len(pweak) == 1
    assert result.coverage.is_covered(pweak[0])
    assert result.coverage.exercised_total > 20
    # The halting branches stay missed with well-behaved firmware
    # (guided addition shown in examples/riscv_platform.py).
    assert any(a.var == "m_fault" for a in result.coverage.missed())


def test_extension_riscv_firmware_throughput(benchmark):
    """Instructions retired per simulated second of the platform."""

    def run():
        top = RiscvPlatformTop()
        Simulator(top).run(ms(100))
        return top.cpu.instructions_retired

    retired = benchmark.pedantic(run, rounds=3, iterations=1)
    assert retired > 5_000  # the firmware loop really spins
