"""Ablation: scalability of the static analysis (paper §VII).

The paper claims "a scalable static analysis which operates directly on
the SystemC-AMS TDF models".  Two sweeps substantiate the claim for
this implementation:

* **models sweep** — clusters with a growing number of chained models:
  analysis time and association count must grow (near-)linearly;
* **branches sweep** — a single model with a growing number of
  sequential branches: the number of *static paths* doubles with every
  branch (2^B), but the du-path classification works on the memoized
  reachability closure, so runtime stays polynomial.
"""

import importlib.util
import sys

import pytest

from repro.analysis import analyze_cluster, analyze_model
from repro.tdf import Cluster, ms
from repro.tdf.library import CollectorSink, StimulusSource

from conftest import write_result


# -- synthetic source generation ---------------------------------------------

_STAGE_TEMPLATE = '''
from repro.tdf import TdfIn, TdfModule, TdfOut


class Stage(TdfModule):
    """A pipeline stage with a branch and a member accumulator."""

    def __init__(self, name):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_acc = 0.0

    def processing(self):
        raw = self.ip.read()
        scaled = raw * 1.5
        if scaled > 1.0:
            scaled = 1.0
        self.m_acc = self.m_acc + scaled
        self.op.write(scaled)
'''


def _branchy_source(branches: int) -> str:
    lines = [
        "from repro.tdf import TdfIn, TdfModule, TdfOut",
        "",
        "",
        "class Branchy(TdfModule):",
        '    """A model with many sequential (non-nested) branches."""',
        "",
        "    def __init__(self, name='branchy'):",
        "        super().__init__(name)",
        "        self.ip = TdfIn()",
        "        self.op = TdfOut()",
        "",
        "    def processing(self):",
        "        v = self.ip.read()",
        "        out = 0.0",
    ]
    for i in range(branches):
        lines.append(f"        if v > {i}.0:")
        lines.append(f"            out = out + {i + 1}.0")
    lines.append("        self.op.write(out)")
    return "\n".join(lines) + "\n"


def _load_module(tmp_path, name: str, source: str):
    path = tmp_path / f"{name}.py"
    path.write_text(source)
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def _chain_cluster(stage_cls, length: int) -> Cluster:
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
            previous = self.src.op
            for i in range(length):
                stage = self.add(stage_cls(f"stage_{i}"))
                self.connect(previous, stage.ip)
                previous = stage.op
            self.sink = self.add(CollectorSink("sink"))
            self.connect(previous, self.sink.ip)

    return Top("chain")


# -- sweeps ---------------------------------------------------------------------

@pytest.mark.parametrize("length", [4, 16, 64])
def test_scaling_in_models(benchmark, tmp_path, length):
    module = _load_module(tmp_path, f"stage_mod_{length}", _STAGE_TEMPLATE)
    cluster = _chain_cluster(module.Stage, length)
    result = benchmark(lambda: analyze_cluster(cluster))
    # The association universe grows linearly with the chain length.
    per_stage = len(result.associations) / length
    assert 5 <= per_stage <= 20


@pytest.mark.parametrize("branches", [4, 16, 64])
def test_scaling_in_branches(benchmark, tmp_path, branches):
    module = _load_module(tmp_path, f"branchy_mod_{branches}", _branchy_source(branches))
    instance = module.Branchy()
    analysis = benchmark(lambda: analyze_model(instance))
    # 2^branches static paths, but the pair count stays linear-ish:
    # each branch contributes one def and one use of `out`.
    out_pairs = [a for a in analysis.associations if a.var == "out"]
    assert len(out_pairs) <= (branches + 1) ** 2
    assert len(out_pairs) >= branches


def test_scaling_report(benchmark, results_dir, tmp_path):
    """Persist a compact table of sizes (timings live in the benchmark
    output table)."""
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = ["kind        size   associations   time[ms]"]
    for length in (4, 16, 64):
        module = _load_module(tmp_path, f"rep_stage_{length}", _STAGE_TEMPLATE)
        cluster = _chain_cluster(module.Stage, length)
        t0 = time.perf_counter()
        result = analyze_cluster(cluster)
        dt = (time.perf_counter() - t0) * 1000
        rows.append(f"models    {length:>6d} {len(result.associations):>14d} {dt:>10.1f}")
    for branches in (4, 16, 64):
        module = _load_module(tmp_path, f"rep_branchy_{branches}", _branchy_source(branches))
        instance = module.Branchy()
        t0 = time.perf_counter()
        analysis = analyze_model(instance)
        dt = (time.perf_counter() - t0) * 1000
        rows.append(
            f"branches  {branches:>6d} {len(analysis.associations):>14d} {dt:>10.1f}"
            f"   (static paths: 2^{branches})"
        )
    text = "\n".join(rows)
    write_result(results_dir, "ablation_scaling.txt", text + "\n")
    print()
    print(text)
