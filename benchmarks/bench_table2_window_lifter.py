"""Table II, upper half: the car window lifter campaign (§VI-A).

Regenerates the four iteration rows (17 -> 20 -> 23 -> 26 testcases)
and benchmarks one full campaign run.  Shape assertions pin the paper's
qualitative results: monotone coverage growth, **no PFirm pairs**,
partial-then-full PWeak coverage, the use-without-def finding, and the
dynamic-TDF-blocked final iteration.
"""

import pytest

from repro.core import AssocClass, Criterion, format_iteration_table
from repro.systems.campaigns import window_lifter_campaign

from conftest import write_result


def test_table2_window_lifter(benchmark, results_dir):
    records = benchmark.pedantic(
        lambda: window_lifter_campaign().run(), rounds=1, iterations=1
    )

    text = format_iteration_table(records)
    final = records[-1].coverage
    text += "\n\nuse-without-def findings: " + ", ".join(
        final.dynamic.use_without_def()
    )
    write_result(results_dir, "table2_window_lifter.txt", text + "\n")
    print()
    print(text)

    # Table-II shape: tests 17/20/23/26, constant static universe,
    # monotone dynamic growth.
    assert [r.tests for r in records] == [17, 20, 23, 26]
    assert len({r.static_total for r in records}) == 1
    dynamics = [r.exercised_total for r in records]
    assert dynamics == sorted(dynamics)
    assert dynamics[1] > dynamics[0]        # the obstacle batch helps a lot

    # No PFirm associations at all (the "-"/0 column of the paper).
    assert all(r.class_percent[AssocClass.PFIRM] is None for r in records)
    # PWeak: partially covered initially, complete at the end.
    assert records[0].class_percent[AssocClass.PWEAK] < 100.0
    assert records[-1].criteria[Criterion.ALL_PWEAK]
    # Strong/Firm improve over the campaign.
    assert records[-1].class_percent[AssocClass.STRONG] > records[0].class_percent[AssocClass.STRONG]
    assert records[-1].class_percent[AssocClass.FIRM] >= records[0].class_percent[AssocClass.FIRM]
    # all-defs / all-dataflow stay unsatisfied (paper §VI-A).
    assert not records[-1].criteria[Criterion.ALL_DATAFLOW]

    # Bug findings: the undriven diagnostics port...
    assert final.dynamic.use_without_def() == ["mcu.ip_diag"]
    # ...and the dynamic-TDF failure: the last (fine-timestep) batch
    # adds almost nothing because the detector threshold breaks there.
    assert dynamics[3] - dynamics[2] <= 2
