"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Results are printed (visible with
``pytest benchmarks/ --benchmark-only -s``) *and* written to
``benchmarks/results/`` so the reproduction artefacts survive the run.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.obs import format_tree, telemetry_session, write_jsonl

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


@pytest.fixture(scope="session")
def results_dir():
    """Directory collecting the regenerated tables."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(autouse=True)
def bench_telemetry(request):
    """Record telemetry around every benchmark and persist the breakdown.

    Each test leaves ``results/telemetry/<test>.jsonl`` (the structured
    event log) and ``.txt`` (the span-tree summary) behind, giving perf
    PRs a per-stage before/after baseline for free.
    """
    with telemetry_session() as tel:
        yield tel
    if not tel.spans and not tel.metrics.records():
        return
    out_dir = os.path.join(RESULTS_DIR, "telemetry")
    os.makedirs(out_dir, exist_ok=True)
    stem = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    write_jsonl(tel, os.path.join(out_dir, stem + ".jsonl"))
    with open(os.path.join(out_dir, stem + ".txt"), "w") as fh:
        fh.write(format_tree(tel) + "\n")


def write_result(results_dir: str, name: str, text: str) -> str:
    """Persist one regenerated table; returns the path."""
    path = os.path.join(results_dir, name)
    with open(path, "w") as fh:
        fh.write(text)
    return path
