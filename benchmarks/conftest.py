"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Results are printed (visible with
``pytest benchmarks/ --benchmark-only -s``) *and* written to
``benchmarks/results/`` so the reproduction artefacts survive the run.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


@pytest.fixture(scope="session")
def results_dir():
    """Directory collecting the regenerated tables."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: str, name: str, text: str) -> str:
    """Persist one regenerated table; returns the path."""
    path = os.path.join(results_dir, name)
    with open(path, "w") as fh:
        fh.write(text)
    return path
