"""Ablation: value of the class-aware ranking (DESIGN.md, ablation 1).

The paper's classification "allows the testing engineer to focus his
efforts on promising testcases to efficiently improve the coverage
result".  This bench quantifies that: starting from TC1, testcases are
added one at a time from a candidate pool until 95 % of the
pool-achievable coverage is reached, using

* **ranked selection** — greedily pick the candidate that covers the
  most currently-missed associations, weighted by the paper's class
  ranking (Strong > Firm > PFirm > PWeak: the classes expected to be
  feasible first), versus
* **naive selection** — take candidates in their listed order.

The ranked strategy must need no more testcases than the naive one.
"""

import pytest

from repro.analysis import analyze_cluster
from repro.core import AssocClass
from repro.instrument import DynamicAnalyzer
from repro.systems.sensor import SenseTop, paper_testcases
from repro.tdf import ms
from repro.testing import Constant, TestCase

from conftest import write_result

_WEIGHT = {
    AssocClass.STRONG: 8,
    AssocClass.FIRM: 4,
    AssocClass.PFIRM: 2,
    AssocClass.PWEAK: 1,
}


def _candidate_pool():
    """The paper's testcases plus plausible-but-often-redundant extras."""
    def ts(value):
        return lambda c: c.apply_ts_waveform(Constant(value))

    def hs(value):
        return lambda c: c.apply_hs_waveform(Constant(value))

    def both(tv, hv):
        def setup(c):
            c.apply_ts_waveform(Constant(tv))
            c.apply_hs_waveform(Constant(hv))
        return setup

    extras = [
        TestCase("ts_0v2", ms(20), ts(0.2)),
        TestCase("ts_0v25", ms(20), ts(0.25)),
        TestCase("ts_0v65", ms(30), ts(0.65)),
        TestCase("hs_0v4", ms(20), hs(0.40)),
        TestCase("hs_3v2", ms(20), hs(3.2)),
        TestCase("both_hot_humid", ms(30), both(0.65, 3.2)),
        TestCase("ts_out_of_range", ms(20), ts(1.6)),
        TestCase("ts_0v15", ms(20), ts(0.15)),
    ]
    return paper_testcases() + extras


def _precompute(factory, static, pool):
    analyzer = DynamicAnalyzer(factory, static)
    return {tc.name: analyzer.run_testcase(tc).pairs for tc in pool}


def _tests_to_target(static, per_test, order_fn, target):
    covered = set()
    static_keys = {a.key: a for a in static.associations}
    count = 0
    remaining = dict(per_test)
    while len(covered) < target and remaining:
        name = order_fn(covered, remaining, static_keys)
        pairs = remaining.pop(name)
        covered |= pairs & set(static_keys)
        count += 1
    return count, len(covered)


def _naive_order(covered, remaining, static_keys):
    return next(iter(remaining))


def _ranked_order(covered, remaining, static_keys):
    def gain(item):
        name, pairs = item
        score = 0
        for key in pairs:
            if key in static_keys and key not in covered:
                score += _WEIGHT[static_keys[key].klass]
        return score

    return max(remaining.items(), key=gain)[0]


def test_classification_guidance(benchmark, results_dir):
    factory = lambda: SenseTop(adc_bits=10)  # repaired design: more feasible
    static = analyze_cluster(factory())
    pool = _candidate_pool()
    per_test = _precompute(factory, static, pool)

    static_keys = {a.key for a in static.associations}
    achievable = set()
    for pairs in per_test.values():
        achievable |= pairs & static_keys
    target = int(len(achievable) * 0.95)

    def run_both():
        ranked = _tests_to_target(static, per_test, _ranked_order, target)
        naive = _tests_to_target(static, per_test, _naive_order, target)
        return ranked, naive

    (ranked_n, ranked_cov), (naive_n, naive_cov) = benchmark.pedantic(
        run_both, rounds=3, iterations=1
    )

    text = (
        f"pool size                : {len(pool)} testcases\n"
        f"achievable associations  : {len(achievable)} "
        f"(target 95% = {target})\n"
        f"ranked (class-weighted)  : {ranked_n} tests -> {ranked_cov} covered\n"
        f"naive (listed order)     : {naive_n} tests -> {naive_cov} covered\n"
    )
    write_result(results_dir, "ablation_classification.txt", text)
    print()
    print(text)

    assert ranked_n <= naive_n
    assert ranked_cov >= target
