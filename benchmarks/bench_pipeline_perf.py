"""Performance baseline: caches, parallel executor, schedule cache.

Unlike the table/figure benches (which regenerate paper artefacts),
this file pins the *performance* behaviour introduced by the perf PR:

* campaign acceleration from per-testcase dynamic-result memoization
  (cumulative iteration suites re-run shared testcases),
* serial vs process-parallel dynamic stage, which must stay
  byte-identical regardless of worker count,
* memoized static analysis (fingerprint hit on the second run),
* the kernel schedule cache for dynamic-TDF re-elaboration.

Each section delegates to :mod:`repro.bench` (the same code behind
``python -m repro bench``) and persists its JSON next to the other
regenerated tables so perf regressions show up as artefact diffs.
"""

import json

import pytest

from repro import bench

from conftest import write_result


def _persist(results_dir, name, payload):
    write_result(
        results_dir, name, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))


def test_perf_campaign_result_cache(results_dir):
    """Cold campaign vs result-cached campaign on the buck-boost VP.

    The four cumulative iterations execute 69 testcases cold but only
    24 distinct ones — the cache must skip every repeat while leaving
    the iteration records untouched.
    """
    payload = bench.bench_campaign("buck_boost", workers=1)
    _persist(results_dir, "perf_campaign_result_cache.json", payload)
    assert payload["records_identical"]
    assert payload["testcase_executions_cached"] < payload[
        "testcase_executions_cold"
    ]
    assert payload["speedup"] >= 1.5


def test_perf_parallel_equivalence(results_dir):
    """Serial and 2-worker parallel dynamic stages produce the same report."""
    payload = bench.bench_parallel("sensor", workers=2)
    _persist(results_dir, "perf_parallel_sensor.json", payload)
    assert payload["identical"]


def test_perf_static_cache(results_dir):
    """Second static analysis of the window lifter is a fingerprint hit."""
    payload = bench.bench_static_cache("window_lifter")
    _persist(results_dir, "perf_static_cache.json", payload)
    assert payload["identical"]
    assert payload["hits"] == 1
    assert payload["speedup"] > 1.0


def test_perf_schedule_cache(results_dir):
    """Dynamic-TDF run on the window lifter reuses cached schedules."""
    payload = bench.bench_schedule_cache()
    _persist(results_dir, "perf_schedule_cache.json", payload)
    assert payload["schedule_changes"] > 0
    assert payload["cache_hits"] > 0


@pytest.mark.parametrize("workers", [1, 2])
def test_perf_bench_cli_sections(tmp_path, workers):
    """`python -m repro bench` writes a well-formed JSON payload."""
    payload = bench.run_benchmarks(
        workers=workers,
        parallel_system="sensor",
        sections=["parallel", "schedule_cache"],
    )
    out = tmp_path / "bench.json"
    bench.write_benchmarks(str(out), payload)
    loaded = json.loads(out.read_text())
    assert loaded["benchmark"] == "repro-dft pipeline performance"
    assert loaded["parallel"]["identical"]
    assert loaded["schedule_cache"]["cache_hits"] > 0
