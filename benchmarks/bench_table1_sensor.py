"""Table I: sensor-system data-flow associations under TC1/TC2/TC3.

Regenerates the paper's Table I — the per-class association list with
an ``x``/``-`` exercise mark per testcase — and benchmarks the full
pipeline run that produces it.  Assertions pin the qualitative facts
the paper reports (see EXPERIMENTS.md for the side-by-side record).
"""

import pytest

from repro.core import AssocClass, format_matrix, format_summary, run_dft
from repro.systems.sensor import SenseTop, paper_testcases
from repro.testing import TestSuite

from conftest import write_result


@pytest.fixture(scope="module")
def suite():
    return TestSuite("paper", paper_testcases())


def test_table1_sensor(benchmark, suite, results_dir):
    result = benchmark.pedantic(
        lambda: run_dft(lambda: SenseTop(), suite), rounds=3, iterations=1
    )
    coverage = result.coverage

    text = format_matrix(coverage) + "\n\n" + format_summary(coverage)
    write_result(results_dir, "table1_sensor.txt", text)
    print()
    print(text)

    # Shape assertions against the paper's Table I.
    counts = result.static.counts()
    assert counts[AssocClass.PFIRM] == 2      # direct + delayed branch into AM
    assert counts[AssocClass.PWEAK] == 1      # mux output through the gain
    assert counts[AssocClass.FIRM] >= 4       # the paper's four Firm pairs
    # PWeak exercised by every testcase (Table I's final row: x x x).
    pweak = result.static.by_class(AssocClass.PWEAK)[0]
    assert coverage.testcases_covering(pweak) == ["TC1", "TC2", "TC3"]
    # The ADC interface bug blocks the delayed PFirm branch.
    delayed = next(
        a for a in result.static.by_class(AssocClass.PFIRM)
        if a.def_model == "sense_top"
    )
    assert not coverage.is_covered(delayed)
    # Room for improvement remains (paper: "There is still room for
    # coverage improvement").
    assert 0 < coverage.exercised_total < coverage.static_total


def test_table1_fixed_adc_delta(benchmark, suite, results_dir):
    """Companion row: repairing the ADC makes the blocked pairs coverable."""
    buggy = run_dft(lambda: SenseTop(), suite)
    fixed = benchmark.pedantic(
        lambda: run_dft(lambda: SenseTop(adc_bits=10), suite), rounds=3, iterations=1
    )
    delta = fixed.coverage.exercised_total - buggy.coverage.exercised_total
    text = (
        f"buggy 9-bit ADC : {buggy.coverage.exercised_total} exercised\n"
        f"fixed 10-bit ADC: {fixed.coverage.exercised_total} exercised\n"
        f"delta           : +{delta} associations unlocked by the fix\n"
    )
    write_result(results_dir, "table1_adc_fix_delta.txt", text)
    print()
    print(text)
    assert delta > 0
