#!/usr/bin/env python3
"""Case study 1: iterative DFT campaign on the car window lifter (§VI-A).

Reproduces the upper half of the paper's Table II: an initial
17-testcase testbench, then three refinement iterations (to 20, 23 and
26 testcases).  Along the way the two seeded bugs surface exactly as in
the paper:

* a **use-without-def** warning for the MCU's undriven diagnostics
  port, and
* the **dynamic-TDF failure**: the final iteration inserts obstacles in
  the fine-timestep zone and coverage barely moves — the anti-pinch
  def-use pairs cannot be exercised there because the current
  detector's per-sample jump threshold breaks at the refined timestep.

Run with (takes a couple of minutes)::

    python examples/window_lifter_campaign.py
"""

from repro.core import format_iteration_table, format_summary
from repro.systems.campaigns import window_lifter_campaign
from repro.systems.window_lifter import WindowLifterTop, BTN_NONE, BTN_UP
from repro.tdf import Simulator, sec


def main() -> None:
    print("Running the window-lifter refinement campaign (4 iterations)...")
    campaign = window_lifter_campaign()
    records = campaign.run()

    print()
    print("Table II (window lifter rows), reproduced:")
    print(format_iteration_table(records))

    final = records[-1].coverage
    print()
    print("Findings of the final iteration:")
    for finding in final.dynamic.use_without_def():
        print(f"  use-without-def: {finding} (undefined behaviour!)")

    stalled = records[-1].exercised_total - records[-2].exercised_total
    print(
        f"  iteration 3 added only {stalled} exercised pair(s) although it\n"
        f"  targeted the anti-pinch associations: the dynamic-TDF detector\n"
        f"  bug blocks them in the fine-timestep zone."
    )

    print()
    print("Demonstrating the bug directly:")
    top = WindowLifterTop()
    top.apply_buttons(lambda t: BTN_UP if t < 1.9 else BTN_NONE)
    top.apply_obstacle(lambda t: 90.0)
    sim = Simulator(top)
    sim.run(sec(2))
    print(
        f"  obstacle at 90% travel: detector trips = {top.detector.m_trips}, "
        f"pinch LED = {top.pinch_led.ever_on()}, "
        f"window position = {top.mech.m_position:.1f}%"
    )
    print("  -> the window crushed the obstacle without the anti-pinch firing.")

    print()
    print("Full summary of the final iteration:")
    print(format_summary(final, max_missed=12))


if __name__ == "__main__":
    main()
