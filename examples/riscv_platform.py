#!/usr/bin/env python3
"""The paper's future work, built: DFT on a RISC-V mixed-signal platform.

Paper §VII: "we plan to investigate our proposed methodology on
system-level verification of mixed-signal platforms using the RISC-V
VP".  This example runs the data-flow-testing pipeline on exactly such
a platform: an AMS front-end (sensor -> amplifier -> ADC) feeding a
RISC-V microcontroller whose firmware (real RV32I assembly, assembled
at elaboration) implements a hysteresis alarm and an actuator command,
closed by a DAC back-end.

Shown here:

1. the firmware actually executing (instruction counts, alarm
   behaviour with hysteresis);
2. the DFT pipeline treating the CPU wrapper like any other TDF model
   — including a PWeak association through the command-history delay;
3. the model-level/firmware-level analysis boundary: data flowing
   through the memory-mapped I/O closures is invisible to model-level
   DFT (and the report shows it);
4. a halting-firmware testcase guided by the missed-pair report.

Run with::

    python examples/riscv_platform.py
"""

from repro.core import AssocClass, format_summary, run_dft
from repro.systems.riscv_platform import (
    RiscvPlatformTop,
    paper_style_testcases,
)
from repro.tdf import Simulator, ms
from repro.testing import TestCase, TestSuite


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("Firmware sanity: hysteresis alarm on real RV32I")
    top = RiscvPlatformTop()

    def wave(t):
        if t < 0.01:
            return 0.1      # quiet
        if t < 0.02:
            return 0.8      # overheat -> alarm latches
        if t < 0.03:
            return 0.6      # inside the hysteresis band -> stays latched
        return 0.2          # below LO -> clears

    top.apply_sensor(wave)
    Simulator(top).run(ms(40))
    print(f"  instructions retired : {top.cpu.instructions_retired}")
    print(f"  alarm transitions    : {top.alarm_led.m_transitions}")
    print(f"  watchdog glitches    : {top.cpu.m_glitches}")

    banner("DFT pipeline on the platform")
    suite = TestSuite("rv", paper_style_testcases())
    result = run_dft(lambda: RiscvPlatformTop(), suite)
    print(format_summary(result.coverage, max_missed=8))
    pweak = result.static.by_class(AssocClass.PWEAK)[0]
    print()
    print(f"  PWeak via the command-history delay: {pweak} "
          f"({'covered' if result.coverage.is_covered(pweak) else 'missed'})")

    banner("Guided addition: a halting-firmware testcase")
    print(
        "The missed report lists the m_fault branches: only firmware\n"
        "that halts (or faults) can exercise them.  Adding a testcase\n"
        "with an ebreak'ing image:"
    )
    halting = "li a0, 256\nsw a0, 0x404(zero)\nebreak"

    def tc_halt(cluster):
        cluster.apply_sensor(lambda t: 0.1)

    halt_result = run_dft(
        lambda: RiscvPlatformTop(firmware=halting),
        TestSuite("halt", [
            TestCase("rv_halting_fw", ms(20), tc_halt, "firmware executes ebreak"),
        ]),
    )
    fault_pairs = [
        a for a in halt_result.static.associations
        if a.var == "m_fault" and halt_result.coverage.is_covered(a)
    ]
    print(f"  m_fault pairs exercised with the halting image: {len(fault_pairs)}")
    for assoc in fault_pairs:
        print(f"    {assoc}")


if __name__ == "__main__":
    main()
