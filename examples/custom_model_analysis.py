#!/usr/bin/env python3
"""Using the analysis layers directly on your own TDF model.

Shows the lower-level APIs a power user (or a tool builder) would call
instead of the one-shot pipeline:

* :func:`repro.analysis.analyze_model` — intra-model associations of a
  single model, with the Strong/Firm classification;
* :func:`repro.analysis.analyze_cluster` — the full static stage,
  including netlist resolution and the PFirm/PWeak port classes;
* :class:`repro.instrument.DynamicAnalyzer` — instrumented execution of
  a single testcase with direct access to the probe event streams;
* :func:`repro.instrument.tap_signal` — the paper's ``parallel_print``
  observer for library components.

Run with::

    python examples/custom_model_analysis.py
"""

from repro.analysis import analyze_cluster, analyze_model
from repro.instrument import DynamicAnalyzer, tap_signal
from repro.tdf import Cluster, Simulator, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.library import CollectorSink, DelayTdf, StimulusSource
from repro.testing import TestCase


class PeakHold(TdfModule):
    """Tracks the peak of its input and decays it slowly."""

    def __init__(self, name: str = "peak", decay: float = 0.99) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op_peak = TdfOut()
        self.m_decay = decay
        self.m_peak = 0.0

    def processing(self) -> None:
        sample = self.ip.read()
        decayed = self.m_peak * self.m_decay
        if sample > decayed:
            self.m_peak = sample
        else:
            self.m_peak = decayed
        self.op_peak.write(self.m_peak)


class DemoTop(Cluster):
    def architecture(self) -> None:
        self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
        self.peak = self.add(PeakHold())
        self.hist = self.add(DelayTdf("hist", delay=1))
        self.monitor = self.add(PeakHold("monitor"))
        self.sink = self.add(CollectorSink("sink"))
        self.connect(self.src.op, self.peak.ip)
        self.connect(self.peak.op_peak, self.hist.ip)
        self.connect(self.hist.op, self.monitor.ip)
        self.connect(self.monitor.op_peak, self.sink.ip)


def main() -> None:
    print("-- intra-model analysis of PeakHold ------------------------")
    model_result = analyze_model(PeakHold())
    for assoc in model_result.associations:
        print(f"  [{assoc.klass.value:6s}] {assoc}  ({assoc.scope.value})")
    print(f"  output-port defs escaping the model: "
          f"{[(d.port, d.line) for d in model_result.out_port_defs]}")

    print()
    print("-- cluster-level analysis ----------------------------------")
    top = DemoTop("demo")
    cluster_result = analyze_cluster(top)
    for assoc in cluster_result.associations:
        if assoc.var == "op_peak":
            print(f"  [{assoc.klass.value:6s}] {assoc}")
    print("  (the monitor only sees op_peak through the delay -> PWeak)")

    print()
    print("-- dynamic analysis of one testcase ------------------------")
    testcase = TestCase(
        "burst", ms(8),
        lambda c: c.module("src").set_waveform(lambda t: 5.0 if t < 0.003 else 0.0),
    )
    analyzer = DynamicAnalyzer(lambda: DemoTop("demo"), cluster_result)
    match = analyzer.run_testcase(testcase)
    print(f"  exercised pairs: {len(match.pairs)}")
    both_branches = {
        key for key in match.pairs if key[0] == "m_peak"
    }
    for key in sorted(both_branches):
        print(f"    m_peak in {key[1]}: def line {key[2]} -> use line {key[4]}")

    print()
    print("-- parallel_print tap (paper §V) ---------------------------")
    tapped = DemoTop("demo")
    tap = tap_signal(tapped, tapped.signals[1])
    Simulator(tapped).run(ms(4))
    print(f"  tap observed tokens: {tap.m_samples}")


if __name__ == "__main__":
    main()
