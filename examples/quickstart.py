#!/usr/bin/env python3
"""Quickstart: data-flow testing of a tiny TDF design in ~60 lines.

Builds a two-model TDF cluster (a level detector behind a sensor
scaling gain), runs the full DFT pipeline with two testcases, and
prints the classified coverage report — the complete workflow of the
paper on the smallest possible example.

Run with::

    python examples/quickstart.py

Pass ``--telemetry run.jsonl`` and/or ``--trace-events run.trace.json``
to record the run's telemetry (see README § Observability).
"""

import argparse

from repro import TestCase, TestSuite, run_dft
from repro.core import format_matrix, format_summary
from repro.obs import telemetry_session, write_chrome_trace, write_jsonl
from repro.tdf import Cluster, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.library import CollectorSink, GainTdf, StimulusSource


class LevelDetector(TdfModule):
    """Flags samples above a threshold; remembers the all-time peak."""

    def __init__(self, name: str = "detector", threshold: float = 2.0) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op_flag = TdfOut()
        self.m_threshold = threshold
        self.m_peak = 0.0

    def processing(self) -> None:
        sample = self.ip.read()
        flag = False
        if sample > self.m_threshold:
            flag = True
        if sample > self.m_peak:
            self.m_peak = sample
        self.op_flag.write(flag)


class QuickTop(Cluster):
    """testbench source -> x2 sensor gain -> detector -> observer."""

    def architecture(self) -> None:
        self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
        self.gain = self.add(GainTdf("sensor_gain", gain=2.0))
        self.detector = self.add(LevelDetector())
        self.sink = self.add(CollectorSink("sink"))
        self.connect(self.src.op, self.gain.ip)
        self.connect(self.gain.op, self.detector.ip)
        self.connect(self.detector.op_flag, self.sink.ip)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--telemetry", metavar="PATH",
                        help="save a telemetry JSON-lines event log to PATH")
    parser.add_argument("--trace-events", metavar="PATH",
                        help="save a Chrome/Perfetto trace-event file to PATH")
    args = parser.parse_args()

    suite = TestSuite(
        "quickstart",
        [
            TestCase("quiet", ms(5),
                     lambda top: top.module("src").set_waveform(lambda t: 0.5)),
            TestCase("loud", ms(5),
                     lambda top: top.module("src").set_waveform(lambda t: 3.0)),
        ],
    )

    if args.telemetry or args.trace_events:
        with telemetry_session() as tel:
            result = run_dft(lambda: QuickTop("quick_top"), suite)
        if args.telemetry:
            write_jsonl(tel, args.telemetry)
        if args.trace_events:
            write_chrome_trace(tel, args.trace_events)
    else:
        result = run_dft(lambda: QuickTop("quick_top"), suite)

    print("=" * 72)
    print("Table-I style exercise matrix")
    print("=" * 72)
    print(format_matrix(result.coverage))
    print()
    print("=" * 72)
    print("Coverage summary")
    print("=" * 72)
    print(format_summary(result.coverage))

    # The stimulus flows through a redefining gain element before it
    # reaches the detector; with testbench-driven inputs that keeps the
    # detector's placeholder pair at its model start.  Run
    # `python examples/sensor_system.py` to see redefinition between
    # *design* models produce the paper's PFirm/PWeak classes.


if __name__ == "__main__":
    main()
