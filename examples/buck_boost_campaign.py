#!/usr/bin/env python3
"""Case study 2: iterative DFT campaign on the buck-boost converter (§VI-B).

Reproduces the lower half of the paper's Table II: a 10-testcase
initial testbench, then iterations of +5, +5 and +4 testcases.  Shows
the paper's qualitative results:

* **all-PFirm and all-PWeak are satisfied from iteration 0** — the
  voltage-feedback and current-sense associations are exercised on
  every regulation sample;
* Strong/Firm coverage grows with every iteration as protection and
  light-load behaviours get dedicated tests;
* the **use-without-def** bug (the limiter's undriven calibration trim)
  is reported — "this cannot be detected by line coverage, as it will
  still be satisfied" (§VI-B).

Run with::

    python examples/buck_boost_campaign.py
"""

from repro.core import Criterion, format_iteration_table
from repro.systems.buck_boost import BuckBoostTop
from repro.systems.campaigns import buck_boost_campaign
from repro.tdf import Simulator, Tracer, ms


def main() -> None:
    print("Regulation sanity check first: buck to 1.8 V, boost to 5.0 V")
    for target, label in [(1.8, "buck"), (5.0, "boost")]:
        top = BuckBoostTop()
        top.apply_target(lambda t, v=target: v)
        Simulator(top).run(ms(30))
        print(
            f"  {label:5s} target {target} V -> vout {top.power.m_vout:.3f} V "
            f"(mode={top.mode_ctrl.m_mode}, duty={top.sw_ctrl.m_duty:.2f})"
        )

    print()
    print("Running the buck-boost refinement campaign (4 iterations)...")
    records = buck_boost_campaign().run()

    print()
    print("Table II (buck-boost rows), reproduced:")
    print(format_iteration_table(records))

    first = records[0]
    print()
    print(
        "all-PFirm satisfied at iteration 0: "
        f"{first.criteria[Criterion.ALL_PFIRM]}; "
        "all-PWeak satisfied at iteration 0: "
        f"{first.criteria[Criterion.ALL_PWEAK]}"
    )

    final = records[-1].coverage
    print()
    print("Findings:")
    for finding in final.dynamic.use_without_def():
        print(
            f"  use-without-def: {finding} — the port is read every sample,\n"
            f"  so line coverage would be 100% here; only data-flow analysis\n"
            f"  reveals that no definition ever reaches it (paper §VI-B)."
        )


if __name__ == "__main__":
    main()
