#!/usr/bin/env python3
"""The paper's running example end-to-end (Fig. 1/2, Table I, §IV-B3).

Reproduces the illustration of the paper's Section IV:

1. static analysis of the sensor system — prints the association
   universe with the Strong/Firm/PFirm/PWeak classification;
2. dynamic analysis with the paper's TC1/TC2/TC3 — prints the Table-I
   exercise matrix;
3. shows the ADC interface bug: the T_LED associations stay unexercised
   with the 9-bit ADC and become coverable once the ADC is widened;
4. demonstrates the guided refinement: a TC4 chosen from the ranked
   missed-association report lifts coverage further.

Run with::

    python examples/sensor_system.py
"""

from repro import TestCase, TestSuite, run_dft
from repro.core import AssocClass, format_matrix, format_summary
from repro.systems.sensor import SenseTop, paper_testcases
from repro.tdf import ms


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("Stage 1+2+3: full DFT pipeline with the paper's TC1/TC2/TC3")
    suite = TestSuite("paper", paper_testcases())
    result = run_dft(lambda: SenseTop(), suite)
    print(format_matrix(result.coverage))
    print()
    print(format_summary(result.coverage, max_missed=10))

    banner("The ADC interface bug (paper §IV-B3)")
    print(
        "With the 9-bit ADC every code above 512 saturates, so the\n"
        "controller never sees more than 51.2 degC and the hold/T_LED\n"
        "branch is unreachable.  Re-running with a 10-bit ADC:"
    )
    fixed = run_dft(lambda: SenseTop(adc_bits=10), suite)
    print(
        f"  buggy ADC : {result.coverage.exercised_total} / "
        f"{result.coverage.static_total} associations exercised"
    )
    print(
        f"  fixed ADC : {fixed.coverage.exercised_total} / "
        f"{fixed.coverage.static_total} associations exercised"
    )
    delayed = next(
        a for a in fixed.static.by_class(AssocClass.PFIRM)
        if a.def_model == "sense_top"
    )
    print(
        f"  the delayed PFirm branch {delayed} is "
        f"{'now exercised' if fixed.coverage.is_covered(delayed) else 'still missed'}"
    )

    banner("Guided refinement: adding TC4 from the missed report")
    # On the repaired design the ranked report still lists the
    # controller's fall-through branch (both sensors interrupting with
    # a high temperature while the mux watches the humidity channel).
    # TC4 drives both sensors at once to reach it.
    def tc4(cluster):
        cluster.apply_ts_waveform(lambda t: 0.65)
        cluster.apply_hs_waveform(lambda t: 3.2)

    extended = TestSuite("paper+tc4", paper_testcases() + [
        TestCase("TC4", ms(30), tc4, "simultaneous TS+HS interrupts")
    ])
    refined = run_dft(lambda: SenseTop(adc_bits=10), extended)
    print(
        f"  fixed ADC, TC1-TC3 : {fixed.coverage.exercised_total} associations, "
        f"TC1-TC4 : {refined.coverage.exercised_total} associations"
    )
    newly = [
        a for a in refined.static.associations
        if refined.coverage.is_covered(a)
        and a.key not in fixed.dynamic.exercised_keys()
    ]
    print("  newly exercised by TC4:")
    for assoc in newly:
        print(f"    [{assoc.klass.value}] {assoc}")


if __name__ == "__main__":
    main()
