"""Tests for the paper's running example (sensor system, Fig. 1/2)."""

import pytest

from repro.analysis import analyze_cluster
from repro.core import AssocClass, run_dft
from repro.systems.sensor import HS, SenseTop, TS, paper_testcases
from repro.tdf import Simulator, Tracer, ms
from repro.testing import TestSuite


class TestBehaviour:
    def test_temperature_reading_scale(self):
        """200 mV translates to 20 degC (paper §III-A)."""
        top = SenseTop()
        top.apply_ts_waveform(lambda t: 0.2)
        Simulator(top).run(ms(5))
        tracer_value = top._signals["op_adc_out"]
        # The ADC output holds 200 (mV) -> ctrl divides by 10 internally.
        assert tracer_value.driver is not None

    def test_ts_interrupt_thresholds(self):
        """TS reports only between 30 mV and 1500 mV."""
        for volts, expect in [(0.01, False), (0.1, True), (1.6, False)]:
            top = SenseTop()
            top.apply_ts_waveform(lambda t, v=volts: v)
            tracer = Tracer()
            tracer.trace(top._signals["intr0"], "intr")
            Simulator(top).run(ms(5))
            assert any(tracer.values("intr")) == expect

    def test_hs_interrupt_above_30rh(self):
        top = SenseTop()
        top.apply_hs_waveform(lambda t: 0.40)
        tracer = Tracer()
        tracer.trace(top._signals["intr1"], "intr")
        Simulator(top).run(ms(5))
        assert any(tracer.values("intr"))

    def test_h_led_switches_on(self):
        top = SenseTop()
        top.apply_hs_waveform(lambda t: 0.40)
        Simulator(top).run(ms(20))
        assert top.h_led.ever_on()
        assert not top.t_led.ever_on()

    def test_adc_interface_bug_blocks_t_led(self):
        """The paper's 9-bit saturation bug: T_LED never switches on."""
        top = SenseTop()  # default: buggy 9-bit ADC
        top.apply_ts_waveform(lambda t: 0.65)
        Simulator(top).run(ms(30))
        assert not top.t_led.ever_on()

    def test_fixed_adc_allows_t_led(self):
        top = SenseTop(adc_bits=10)
        top.apply_ts_waveform(lambda t: 0.65)
        Simulator(top).run(ms(30))
        assert top.t_led.ever_on()

    def test_hold_freezes_sensor_output(self):
        """Above 60 degC (fixed ADC) the controller holds the sensor and
        re-reads the delayed value (paper §III-A)."""
        top = SenseTop(adc_bits=10)
        top.apply_ts_waveform(lambda t: 0.65)
        tracer = Tracer()
        tracer.trace(top._signals["hold"], "hold")
        Simulator(top).run(ms(30))
        assert any(v == 1 for v in tracer.values("hold"))


class TestStaticShape:
    """The Table-I class structure (see EXPERIMENTS.md for the mapping)."""

    @pytest.fixture(scope="class")
    def result(self):
        return analyze_cluster(SenseTop())

    def test_exactly_two_pfirm(self, result):
        pfirm = result.by_class(AssocClass.PFIRM)
        assert len(pfirm) == 2
        variables = {a.var for a in pfirm}
        assert variables == {"op_signal_out"}
        # One branch anchored in TS, the redefined one in the netlist.
        assert {a.def_model for a in pfirm} == {"TS", "sense_top"}

    def test_exactly_one_pweak(self, result):
        pweak = result.by_class(AssocClass.PWEAK)
        assert len(pweak) == 1
        assert pweak[0].var == "op_mux_out"
        assert pweak[0].def_model == "sense_top"
        assert pweak[0].use_model == "sense_top"

    def test_paper_firm_pairs_present(self, result):
        firm_vars = {(a.var, a.def_model) for a in result.by_class(AssocClass.FIRM)}
        # The four Firm pairs of Table I.
        assert ("intr_", "TS") in firm_vars
        assert ("out_tmpr", "TS") in firm_vars
        assert ("intr_", "HS") in firm_vars
        assert ("tmp_out", "AM") in firm_vars

    def test_mux_state_pairs(self, result):
        """ctrl's m_mux_s: 6 defs x 4 uses = 24 Strong pairs (Table I)."""
        pairs = [a for a in result.associations if a.var == "m_mux_s"]
        assert len(pairs) == 24
        assert all(a.klass is AssocClass.STRONG for a in pairs)

    def test_interrupt_pairs_cross_models(self, result):
        cross = [
            a for a in result.associations
            if a.var == "op_intr" and a.def_model == "TS" and a.use_model == "ctrl"
        ]
        assert len(cross) == 2  # read at the top and in the clear branch

    def test_testbench_ports_keep_placeholders(self, result):
        ph = [a for a in result.associations if a.var == "ip_signal_in"]
        assert {a.def_model for a in ph} == {"TS", "HS"}

    def test_led_outputs_produce_no_associations(self, result):
        assert not any(a.var in ("op_T_LED", "op_H_LED") for a in result.associations)


class TestPaperTestsuite:
    def test_three_testcases(self):
        tcs = paper_testcases()
        assert [t.name for t in tcs] == ["TC1", "TC2", "TC3"]

    def test_pipeline_covers_pweak_with_any_testcase(self):
        suite = TestSuite("one", paper_testcases()[:1])
        result = run_dft(lambda: SenseTop(), suite)
        pweak = result.static.by_class(AssocClass.PWEAK)[0]
        assert result.coverage.is_covered(pweak)

    def test_tc3_required_for_hs_coverage(self):
        without = run_dft(lambda: SenseTop(), TestSuite("p", paper_testcases()[:2]))
        with_tc3 = run_dft(lambda: SenseTop(), TestSuite("p", paper_testcases()))
        hs_pairs = [a for a in with_tc3.static.associations if a.def_model == "HS"]
        newly = [
            a for a in hs_pairs
            if with_tc3.coverage.is_covered(a) and not without.coverage.is_covered(a)
        ]
        assert newly  # TC3 exercises HS-specific associations (paper §IV-B3)

    def test_t_led_branch_pairs_blocked_by_adc_bug(self):
        result = run_dft(lambda: SenseTop(), TestSuite("p", paper_testcases()))
        t_led_defs = [
            a for a in result.static.associations
            if a.def_model == "ctrl" and a.var == "op_hold"
        ]
        hold_one = [a for a in t_led_defs if not result.coverage.is_covered(a)]
        # The branch writing op_hold=1 (line 53-55 region) is unreachable
        # with the saturating ADC: at least one op_hold pair stays missed.
        assert hold_one
