"""Tests for the RISC-V mixed-signal platform (paper §VII future work)."""

import pytest

from repro.analysis import analyze_cluster
from repro.core import AssocClass, run_dft
from repro.systems.riscv_platform import (
    DEFAULT_FIRMWARE,
    RiscvCpuTdf,
    RiscvPlatformTop,
    paper_style_testcases,
)
from repro.tdf import Simulator, Tracer, ms
from repro.testing import TestSuite


def _run(waveform=None, duration=ms(30), firmware=DEFAULT_FIRMWARE):
    top = RiscvPlatformTop(firmware=firmware)
    if waveform is not None:
        top.apply_sensor(waveform)
    Simulator(top).run(duration)
    return top


class TestFirmwareBehaviour:
    def test_quiet_sensor_no_alarm(self):
        top = _run(lambda t: 0.1)
        assert not top.alarm_led.ever_on()
        assert top.cpu.m_dac_latch == 512
        assert not top.cpu.m_fault

    def test_overheat_raises_alarm_and_shuts_actuator(self):
        top = _run(lambda t: 0.8)
        assert top.alarm_led.is_on
        assert top.cpu.m_dac_latch == 0

    def test_hysteresis_band_keeps_alarm(self):
        # 0.6 V = 600 counts: above LO (500) but below HI (700).
        def wave(t):
            if t < 0.01:
                return 0.8     # trip the alarm
            return 0.6         # inside the hysteresis band

        top = _run(wave, duration=ms(40))
        assert top.alarm_led.is_on  # stays latched inside the band

    def test_alarm_clears_below_low_threshold(self):
        def wave(t):
            if t < 0.01:
                return 0.8
            return 0.2

        top = _run(wave, duration=ms(40))
        assert not top.alarm_led.is_on
        assert [state for _, state in top.alarm_led.m_transitions] == [True, False]

    def test_firmware_actually_executes(self):
        top = _run(lambda t: 0.1)
        assert top.cpu.instructions_retired > 100
        assert top.cpu.m_ticks == top.cpu.activation_count

    def test_watchdog_counts_shutdown_glitches(self):
        def wave(t):
            return 0.8 if 0.01 <= t < 0.02 else 0.1

        top = _run(wave, duration=ms(40))
        # Shutdown (512 -> 0) and recovery (0 -> 512) are large steps.
        assert top.cpu.m_glitches >= 2

    def test_halted_firmware_freezes_outputs(self):
        halt_firmware = "li a0, 123\nsw a0, 0x404(zero)\nebreak"
        top = _run(lambda t: 0.1, firmware=halt_firmware)
        assert top.cpu.m_fault
        assert top.cpu.m_dac_latch == 123  # frozen at the pre-halt value


class TestAdcPath:
    def test_sample_scaling(self):
        top = _run(lambda t: 0.25)
        # 0.25 V * 1000 gain -> 250 counts at the MMIO register.
        assert top.cpu.m_sample == 250

    def test_adc_saturation(self):
        top = _run(lambda t: 2.0)
        assert top.cpu.m_sample == 1024  # 10-bit full scale


class TestDataFlowTesting:
    @pytest.fixture(scope="class")
    def static(self):
        return analyze_cluster(RiscvPlatformTop())

    def test_cpu_model_is_analyzable(self, static):
        cpu_pairs = [a for a in static.associations if a.def_model == "cpu"]
        assert len(cpu_pairs) > 10
        variables = {a.var for a in cpu_pairs}
        assert {"m_fault", "budget", "op_dac", "m_glitches", "sample"} <= variables

    def test_mmio_closure_is_an_analysis_boundary(self, static):
        """m_sample is *used* only inside the MMIO load closure, which
        the model-level analysis cannot see: the def exists but pairs
        with nothing — the documented scope boundary between model-level
        DFT (the paper's) and firmware-level verification."""
        assert not any(
            a.var == "m_sample" for a in static.associations
        )
        assert any(d.var == "m_sample" for d in static.definitions)

    def test_command_history_is_pweak(self, static):
        pweak = static.by_class(AssocClass.PWEAK)
        assert len(pweak) == 1
        assert pweak[0].var == "op_dac"
        assert pweak[0].use_model == "cpu"

    def test_pipeline_runs_end_to_end(self):
        result = run_dft(
            lambda: RiscvPlatformTop(),
            TestSuite("rv", paper_style_testcases()),
        )
        assert result.coverage.exercised_total > 0
        # The watchdog's glitch branch only fires on command steps, so
        # the recovery testcase exercises pairs the quiet one cannot.
        per_tc = result.dynamic.per_testcase
        recovery_only = per_tc["rv_recovery"].pairs - per_tc["rv_quiet"].pairs
        assert any(key[0] == "m_glitches" for key in recovery_only)

    def test_halt_branch_needs_dedicated_test(self):
        """The m_fault=True branches are only exercised by firmware that
        halts — a testcase addition the ranked report would guide."""
        result = run_dft(
            lambda: RiscvPlatformTop(),
            TestSuite("rv", paper_style_testcases()),
        )
        fault_defs = [
            a for a in result.static.associations
            if a.var == "m_fault" and a.def_model == "cpu"
            and not result.coverage.is_covered(a)
        ]
        assert fault_defs  # unexercised with well-behaved firmware
