"""Tests for the buck-boost converter VP (paper §VI-B)."""

import pytest

from repro.analysis import analyze_cluster
from repro.core import AssocClass
from repro.systems.buck_boost import BuckBoostTop
from repro.tdf import Simulator, ms


def _run(target=None, vin=None, load=None, duration=ms(40)):
    top = BuckBoostTop()
    if target is not None:
        top.apply_target(target)
    if vin is not None:
        top.apply_vin(vin)
    if load is not None:
        top.apply_load(load)
    Simulator(top).run(duration)
    return top


class TestRegulation:
    def test_buck_reaches_target(self):
        top = _run(lambda t: 1.8)
        assert top.power.m_vout == pytest.approx(1.8, abs=0.05)
        assert top.mode_ctrl.m_mode == 0

    def test_boost_reaches_target(self):
        top = _run(lambda t: 5.0)
        assert top.power.m_vout == pytest.approx(5.0, abs=0.1)
        assert top.mode_ctrl.m_mode == 1

    def test_settles_fast_and_stable(self):
        """The paper's test goal: how fast the target is reached and how
        stable it stays."""
        top = BuckBoostTop()
        top.apply_target(lambda t: 2.5)
        sim = Simulator(top)
        sim.run(ms(10))
        settled = top.power.m_vout
        assert settled == pytest.approx(2.5, abs=0.1)
        sim.run(ms(10))
        assert abs(top.power.m_vout - settled) < 0.05

    def test_mode_hysteresis_prevents_chatter(self):
        top = _run(lambda t: 3.6)  # target == vin
        assert top.mode_ctrl.m_mode in (0, 1)

    def test_negative_target_clamped(self):
        top = _run(lambda t: -2.0)
        assert top.power.m_vout >= 0.0


class TestProtection:
    def test_current_limit_engages(self):
        top = _run(lambda t: 12.0)
        assert top.limiter.m_trips > 0

    def test_ovp_latches_on_overshoot(self):
        top = _run(lambda t: 6.0 if t < 0.002 else 1.2, duration=ms(20))
        assert top.ovp.m_latched or top.ovp.m_count >= 0
        # After the hard downward retarget the output must come down.
        assert top.power.m_vout < 3.0

    def test_pfm_on_light_load(self):
        top = _run(lambda t: 1.8, load=lambda t: 5000.0, duration=ms(60))
        assert top.sw_ctrl.m_pfm_cycles > 0

    def test_soft_start_limits_slope(self):
        top = BuckBoostTop()
        top.apply_target(lambda t: 5.0)
        Simulator(top).run(ms(1))
        # After 20 samples the soft-started reference is still below the
        # programmed 5 V (slew 0.05/sample).
        assert top.soft_start.m_current < 5.0


class TestStaticShape:
    @pytest.fixture(scope="class")
    def result(self):
        return analyze_cluster(BuckBoostTop())

    def test_pfirm_pairs_exist(self, result):
        """Table II: the buck-boost converter has PFirm pairs (vout
        direct + delayed into the switching controller)."""
        pfirm = result.by_class(AssocClass.PFIRM)
        assert len(pfirm) == 2
        assert {a.var for a in pfirm} == {"op_vout"}

    def test_pweak_pairs_exist(self, result):
        pweak = result.by_class(AssocClass.PWEAK)
        assert {a.var for a in pweak} == {"op_il"}
        assert len(pweak) == 2  # limiter + thermal monitor

    def test_use_without_def_candidate(self, result):
        assert result.undriven_input_ports == ["limiter.ip_trim"]

    def test_association_universe_size(self, result):
        assert len(result.associations) > 100
