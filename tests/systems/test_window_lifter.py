"""Tests for the car window lifter VP (paper §VI-A)."""

import pytest

from repro.analysis import analyze_cluster
from repro.core import AssocClass
from repro.systems.window_lifter import (
    BTN_BOTH,
    BTN_DOWN,
    BTN_NONE,
    BTN_UP,
    WindowLifterTop,
)
from repro.tdf import Simulator, sec


def _run(buttons, obstacle=None, duration=sec(3)):
    top = WindowLifterTop()
    top.apply_buttons(buttons)
    if obstacle is not None:
        top.apply_obstacle(obstacle)
    sim = Simulator(top)
    sim.run(duration)
    return top, sim


class TestMovement:
    def test_closes_fully_without_obstacle(self):
        top, _ = _run(lambda t: BTN_UP if t < 2.5 else BTN_NONE)
        # The MCU stops when the quantised position ADC reads fully
        # closed, so the mechanical position lands just below 100.
        assert top.mech.m_position > 99.5
        assert not top.pinch_led.ever_on()

    def test_opens_after_closing(self):
        top, _ = _run(
            lambda t: BTN_UP if t < 1.3 else (BTN_DOWN if t < 2.8 else BTN_NONE)
        )
        assert top.mech.m_position < 5.0

    def test_both_buttons_no_movement(self):
        top, _ = _run(lambda t: BTN_BOTH, duration=sec(1))
        assert top.mech.m_position == 0.0

    def test_down_at_bottom_no_movement(self):
        top, _ = _run(lambda t: BTN_DOWN, duration=sec(1))
        assert top.mech.m_position == 0.0


class TestAntiPinch:
    def test_obstacle_in_coarse_zone_triggers_reverse(self):
        top, _ = _run(lambda t: BTN_UP, lambda t: 50.0, duration=sec(2))
        assert top.pinch_led.ever_on()
        assert top.mech.m_position < 55.0
        assert top.detector.m_trips > 0

    def test_no_false_trip_at_end_stop(self):
        top, _ = _run(lambda t: BTN_UP if t < 2.5 else BTN_NONE)
        assert not top.pinch_led.ever_on()

    def test_obstacle_while_opening_does_not_trip(self):
        top, _ = _run(
            lambda t: BTN_UP if t < 1.0 else (BTN_DOWN if t < 2.0 else BTN_NONE),
            lambda t: 30.0 if t >= 1.0 else 0.0,
        )
        # Opening away from the obstacle: no pinch.
        assert not top.pinch_led.ever_on()


class TestDynamicTdfBug:
    def test_fine_zone_obstacle_not_detected(self):
        """The seeded dynamic-TDF bug: in the fine-timestep zone the
        per-sample current jump stays below the threshold, the detector
        never fires, and the window crushes the obstacle."""
        top, sim = _run(lambda t: BTN_UP, lambda t: 90.0, duration=sec(3))
        assert sim.reelaborations >= 1          # timestep actually changed
        assert top.detector.m_trips == 0        # comparison never fired
        assert not top.pinch_led.ever_on()      # anti-pinch missed
        assert top.mech.m_position > 95.0       # window crushed through

    def test_timestep_refined_near_top(self):
        top, sim = _run(lambda t: BTN_UP if t < 2.5 else BTN_NONE)
        assert sim.reelaborations >= 2  # fine on entry, coarse on exit


class TestBattery:
    def test_wearout_trips_low_battery(self):
        top, _ = _run(
            lambda t: BTN_UP if (t % 1.6) < 0.8 else BTN_DOWN, duration=sec(10)
        )
        assert top.batt_mon.m_drawn > top.batt_mon.m_budget * top.batt_mon.m_warn
        assert top.mcu.m_stop_position >= 0.0


class TestStaticShape:
    @pytest.fixture(scope="class")
    def result(self):
        return analyze_cluster(WindowLifterTop())

    def test_no_pfirm_associations(self, result):
        """Table II: the window lifter has no PFirm pairs."""
        assert result.counts()[AssocClass.PFIRM] == 0

    def test_pweak_paths(self, result):
        pweak = result.by_class(AssocClass.PWEAK)
        by_var = {}
        for a in pweak:
            by_var.setdefault(a.var, []).append(a)
        # current -> {filter, battery monitor}; drive -> motor;
        # position -> {pos ADC, MCU history}.
        assert set(by_var) == {"op_current", "op_drive", "op_position"}
        assert len(by_var["op_current"]) == 2
        assert len(by_var["op_position"]) == 2

    def test_use_without_def_candidate_reported(self, result):
        assert result.undriven_input_ports == ["mcu.ip_diag"]

    def test_association_universe_size(self, result):
        # Regression guard for the Table-II "Static #" column.
        assert len(result.associations) > 120
