"""Unit tests for the telemetry core: spans, metrics, no-op mode."""

import pytest

from repro.obs import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)


class TestSpans:
    def test_nesting_records_parent_ids(self):
        tel = Telemetry()
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                with tel.span("leaf") as leaf:
                    pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id

    def test_siblings_share_parent(self):
        tel = Telemetry()
        with tel.span("root") as root:
            with tel.span("a") as a:
                pass
            with tel.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_timing_monotonicity(self):
        tel = Telemetry()
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                sum(range(1000))
        assert inner.closed and outer.closed
        assert 0 <= inner.wall <= outer.wall
        assert inner.start_wall >= outer.start_wall
        assert inner.end_wall <= outer.end_wall
        assert outer.cpu >= 0

    def test_current_span_tracks_stack(self):
        tel = Telemetry()
        assert tel.current_span() is None
        with tel.span("outer") as outer:
            assert tel.current_span() is outer
            with tel.span("inner") as inner:
                assert tel.current_span() is inner
            assert tel.current_span() is outer
        assert tel.current_span() is None

    def test_attributes_and_error_marking(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.span("work", kind="unit") as span:
                span.set_attribute("extra", 1)
                raise RuntimeError("boom")
        assert span.attributes == {"kind": "unit", "extra": 1, "error": "RuntimeError"}
        assert span.closed

    def test_end_is_idempotent(self):
        tel = Telemetry()
        span = tel.span("once")
        span.end()
        first_end = span.end_wall
        span.end()
        assert span.end_wall == first_end

    def test_find_spans_and_names(self):
        tel = Telemetry()
        with tel.span("stage"):
            with tel.span("step"):
                pass
            with tel.span("step"):
                pass
        assert len(tel.find_spans("step")) == 2
        assert tel.span_names() == ["stage", "step"]


class TestMetrics:
    def test_counter_math(self):
        tel = Telemetry()
        counter = tel.metrics.counter("events")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        assert tel.metrics.counter("events") is counter

    def test_counter_rejects_decrease(self):
        counter = Telemetry().metrics.counter("events")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_labels_separate_series(self):
        tel = Telemetry()
        tel.metrics.counter("hits", module="a").inc(1)
        tel.metrics.counter("hits", module="b").inc(2)
        assert tel.metrics.counter("hits", module="a").value == 1
        assert tel.metrics.counter("hits", module="b").value == 2
        assert len(tel.metrics.counters()) == 2

    def test_gauge_keeps_last_value(self):
        gauge = Telemetry().metrics.gauge("depth")
        gauge.set(3)
        gauge.set(7)
        assert gauge.value == 7

    def test_histogram_summary(self):
        hist = Telemetry().metrics.histogram("latency")
        for v in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(v)
        s = hist.summary()
        assert s["count"] == 4
        assert s["sum"] == pytest.approx(10.0)
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == pytest.approx(2.5)
        assert s["min"] <= s["p50"] <= s["p90"] <= s["p99"] <= s["max"]

    def test_empty_histogram_summary(self):
        hist = Telemetry().metrics.histogram("latency")
        assert hist.summary() == {"count": 0, "sum": 0.0}
        with pytest.raises(ValueError, match="no observations"):
            hist.percentile(50)

    def test_records_cover_all_kinds(self):
        tel = Telemetry()
        tel.metrics.counter("c", k="v").inc(5)
        tel.metrics.gauge("g").set(1.5)
        tel.metrics.histogram("h").observe(0.25)
        kinds = {r["kind"] for r in tel.metrics.records()}
        assert kinds == {"counter", "gauge", "histogram"}


class TestNullMode:
    def test_disabled_by_default(self):
        assert get_telemetry() is NULL_TELEMETRY
        assert not get_telemetry().enabled

    def test_noop_objects_are_shared_singletons(self):
        null = NullTelemetry()
        assert null.span("a") is null.span("b")
        assert null.metrics.counter("x") is null.metrics.counter("y", k="v")
        assert null.metrics.histogram("x") is null.metrics.histogram("y")
        assert null.metrics.gauge("x") is null.metrics.gauge("y")

    def test_noop_operations_record_nothing(self):
        null = NULL_TELEMETRY
        with null.span("work", attr=1) as span:
            span.set_attribute("k", "v")
        null.metrics.counter("c").inc(10)
        null.metrics.histogram("h").observe(1.0)
        null.metrics.gauge("g").set(2.0)
        assert null.spans == []
        assert null.metrics.records() == []
        assert null.to_run()["spans"] == []

    def test_session_activates_and_restores(self):
        before = get_telemetry()
        with telemetry_session() as tel:
            assert get_telemetry() is tel
            assert tel.enabled
            with telemetry_session() as nested:
                assert get_telemetry() is nested
            assert get_telemetry() is tel
        assert get_telemetry() is before

    def test_session_restores_on_error(self):
        before = get_telemetry()
        with pytest.raises(RuntimeError):
            with telemetry_session():
                raise RuntimeError("boom")
        assert get_telemetry() is before

    def test_set_telemetry_none_means_null(self):
        previous = set_telemetry(None)
        try:
            assert get_telemetry() is NULL_TELEMETRY
        finally:
            set_telemetry(previous)

    def test_sessions_are_thread_isolated(self):
        # Two threads racing set/restore on a shared slot could leave a
        # stale session installed process-wide (seen with two in-process
        # service workers); the active telemetry is per-thread instead.
        import threading

        errors = []
        barrier = threading.Barrier(2)

        def worker():
            try:
                for _ in range(50):
                    barrier.wait()
                    with telemetry_session() as tel:
                        assert get_telemetry() is tel
                    assert get_telemetry() is NULL_TELEMETRY
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        with telemetry_session() as main_tel:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # The main thread's session never leaks into the workers,
            # and the workers' churn never displaces it here.
            assert get_telemetry() is main_tel
        assert not errors
        assert get_telemetry() is NULL_TELEMETRY
