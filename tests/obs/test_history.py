"""Run-history ledger: records, queries, diffs, trends, warm-start keys."""

import json
import os

import pytest

from repro.core import DftConfig, run_dft
from repro.obs.store import (
    HISTORY_FORMAT,
    RunHistory,
    build_record,
    default_history_dir,
    diff_records,
    format_diff,
    format_history_table,
    format_trend,
    suite_sha,
    trend_rows,
)
from repro.obs.export import write_trend_csv, write_trend_jsonl
from repro.testing import TestSuite
from repro.testing.generate import build_random_cluster, random_suite


def _tiny_record(percent=50.0, exercised=("a|1|m|2|m",), **over):
    record = {
        "kind": "run",
        "system": "sys",
        "fingerprint": "f" * 16,
        "config_hash": "c" * 12,
        "suite_sha": suite_sha(["t1", "t2"]),
        "tests": 2,
        "coverage": {
            "universe": "u" * 16,
            "totals": {"static": 4, "exercised": 2, "percent": percent},
            "classes": {
                "Strong": {"total": 3, "covered": 1, "percent": 33.33},
                "Firm": {"total": 1, "covered": 1, "percent": 100.0},
            },
            "criteria": {"all-Strong": False},
            "exercised": list(exercised),
        },
    }
    record.update(over)
    return record


def test_append_stamps_and_reads_back(tmp_path):
    history = RunHistory(str(tmp_path))
    run_id = history.append(_tiny_record())
    assert len(run_id) == 12
    records = history.records()
    assert len(records) == 1
    assert records[0]["run_id"] == run_id
    assert records[0]["format"] == HISTORY_FORMAT
    assert isinstance(records[0]["recorded_at"], float)


def test_records_filters_and_limit(tmp_path):
    history = RunHistory(str(tmp_path))
    history.append(_tiny_record(system="a"))
    history.append(_tiny_record(system="b"))
    history.append(_tiny_record(system="a", kind="mutation"))
    assert len(history.records()) == 3
    assert len(history.records(system="a")) == 2
    assert len(history.records(kind="mutation")) == 1
    assert len(history.records(limit=2)) == 2
    assert history.records(limit=2)[-1]["kind"] == "mutation"


def test_records_skips_malformed_lines(tmp_path):
    history = RunHistory(str(tmp_path))
    history.append(_tiny_record())
    with open(history.path, "a") as handle:
        handle.write("not json\n")
        handle.write('{"format": "something-else/9"}\n')
        handle.write("[1, 2, 3]\n")
    assert len(history.records()) == 1


def test_get_by_prefix(tmp_path):
    history = RunHistory(str(tmp_path))
    run_id = history.append(_tiny_record())
    assert history.get(run_id)["run_id"] == run_id
    assert history.get(run_id[:6])["run_id"] == run_id
    assert history.get("nope") is None


def test_latest_matches_all_keys(tmp_path):
    history = RunHistory(str(tmp_path))
    history.append(_tiny_record(config_hash="old0ld0ld0ld"))
    run_id = history.append(_tiny_record())
    assert history.latest(kind="run", system="sys")["run_id"] == run_id
    assert history.latest(config_hash="old0ld0ld0ld")["run_id"] != run_id
    assert history.latest(fingerprint="missing") is None
    assert history.latest(suite=suite_sha(["t1", "t2"]))["run_id"] == run_id


def test_diff_identical_and_changed():
    a, b = _tiny_record(), _tiny_record()
    diff = diff_records(a, b)
    assert diff["identical"] and not diff["changes"]
    assert format_diff(diff) == "history diff: identical"

    c = _tiny_record(percent=75.0, exercised=("a|1|m|2|m", "b|3|m|4|m"))
    diff = diff_records(a, c)
    assert not diff["identical"]
    text = format_diff(diff)
    assert "coverage.percent" in text
    assert "exercised.added: 1" in text


def test_diff_ignores_identity_metadata(tmp_path):
    history = RunHistory(str(tmp_path))
    history.append(_tiny_record())
    history.append(_tiny_record())
    first, second = history.records()
    assert first["run_id"] != second["run_id"]
    assert diff_records(first, second)["identical"]


def test_trend_rows_and_exports(tmp_path):
    history = RunHistory(str(tmp_path))
    history.append(_tiny_record())
    rows = trend_rows(history.records())
    # one overall row + one row per paper class
    assert [row["class"] for row in rows] == [
        "overall", "Strong", "Firm", "PFirm", "PWeak"
    ]
    assert rows[0]["percent"] == 50.0
    assert rows[1]["covered"] == 1
    table = format_trend(rows)
    assert "overall" in table and "Strong" in table

    jsonl = tmp_path / "trend.jsonl"
    write_trend_jsonl(rows, str(jsonl))
    lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
    assert len(lines) == 5 and lines[0]["class"] == "overall"

    csv_path = tmp_path / "trend.csv"
    write_trend_csv(rows, str(csv_path))
    text = csv_path.read_text().splitlines()
    assert text[0].startswith("run_id,recorded_at,kind,system")
    assert len(text) == 6


def test_format_history_table_empty_and_filled(tmp_path):
    history = RunHistory(str(tmp_path))
    assert format_history_table(history.records()) == "history: no records"
    history.append(_tiny_record())
    table = format_history_table(history.records())
    assert "sys" in table and "50.0%" in table


def test_default_history_dir_under_cache():
    assert default_history_dir("/tmp/some-cache").endswith(
        os.path.join("some-cache", "history")
    )


def test_run_dft_appends_one_canonical_record(tmp_path):
    factory = lambda: build_random_cluster(3)
    suite = TestSuite("rand3", random_suite(3)[:2])
    cfg = DftConfig(history_dir=str(tmp_path))
    result = run_dft(factory, suite, cfg)
    result2 = run_dft(factory, suite, cfg)

    history = RunHistory(str(tmp_path))
    records = history.records(kind="run")
    assert len(records) == 2
    record = records[-1]
    assert record["system"] == "rand3"
    assert record["fingerprint"] == result.static.fingerprint
    assert record["config_hash"] == cfg.config_hash()
    assert record["suite_sha"] == suite_sha([tc.name for tc in suite])
    assert record["coverage"]["totals"]["exercised"] == (
        result.coverage.exercised_total
    )
    assert "pipeline" in record["timings"]
    # Re-running the identical configuration diffs as identical.
    assert diff_records(records[0], records[1])["identical"]


def test_history_write_failure_is_best_effort(tmp_path):
    """An unwritable ledger must never fail the analysis run."""
    blocker = tmp_path / "blocked"
    blocker.write_text("a file where the history dir should go")
    factory = lambda: build_random_cluster(3)
    suite = TestSuite("rand3", random_suite(3)[:1])
    result = run_dft(factory, suite, DftConfig(history_dir=str(blocker)))
    assert result.coverage.static_total > 0


def test_campaign_records_one_entry_with_trajectory(tmp_path):
    from repro.core.workflow import IterativeCampaign
    from repro.testing.generate import random_suite as rsuite

    testcases = rsuite(5)
    campaign = IterativeCampaign(
        lambda: build_random_cluster(5),
        testcases[:1],
        name="rand5",
        config=DftConfig(history_dir=str(tmp_path)),
    )
    campaign.add_iteration(testcases[1:3])
    records = campaign.run()
    assert len(records) == 2

    history = RunHistory(str(tmp_path))
    entries = history.records()
    # Exactly one ledger entry for the whole campaign — the inner
    # pipeline runs must not each add a "run" record.
    assert [e["kind"] for e in entries] == ["campaign"]
    trajectory = entries[0]["campaign"]["trajectory"]
    assert len(trajectory) == 2
    assert trajectory[0]["tests"] == 1
    assert trajectory[1]["tests"] == 3


def test_config_hash_tracks_outcome_knobs_only():
    base = DftConfig()
    assert base.config_hash() == DftConfig(workers=8).config_hash()
    assert base.config_hash() == DftConfig(history_dir="/x").config_hash()
    assert base.config_hash() != DftConfig(engine="interp").config_hash()
    assert base.config_hash() != DftConfig(seed=9).config_hash()
