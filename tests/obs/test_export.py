"""Tests for the telemetry exporters: JSONL, tree summary, Chrome trace."""

import io
import json

import pytest

from repro.obs import (
    Telemetry,
    chrome_trace_events,
    format_tree,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)


def _session() -> Telemetry:
    tel = Telemetry()
    with tel.span("pipeline", system="demo"):
        with tel.span("static"):
            pass
        with tel.span("dynamic"):
            with tel.span("dynamic.testcase[tc1]", testcase="tc1"):
                pass
    tel.metrics.counter("tdf.activations", module="gain").inc(40)
    tel.metrics.gauge("tdf.schedule_length", cluster="top").set(4)
    tel.metrics.histogram("tdf.period_seconds", cluster="top").observe(0.001)
    return tel


class TestJsonl:
    def test_round_trip_through_stream(self):
        tel = _session()
        buf = io.StringIO()
        write_jsonl(tel, buf)
        run = read_jsonl(io.StringIO(buf.getvalue()))
        assert run == tel.to_run()

    def test_round_trip_through_file(self, tmp_path):
        tel = _session()
        path = str(tmp_path / "run.jsonl")
        write_jsonl(tel, path)
        run = read_jsonl(path)
        assert run["meta"]["format"] == "repro-telemetry"
        assert [s["name"] for s in run["spans"]] == [
            "pipeline", "static", "dynamic", "dynamic.testcase[tc1]",
        ]
        assert len(run["metrics"]) == 3

    def test_every_line_is_json(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_jsonl(_session(), path)
        with open(path) as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == 1 + 4 + 3  # meta + spans + metrics
        for line in lines:
            json.loads(line)

    def test_unknown_record_type_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry record"):
            read_jsonl(io.StringIO('{"type": "mystery"}\n'))

    def test_parent_links_survive_round_trip(self):
        buf = io.StringIO()
        write_jsonl(_session(), buf)
        run = read_jsonl(io.StringIO(buf.getvalue()))
        by_name = {s["name"]: s for s in run["spans"]}
        assert by_name["static"]["parent"] == by_name["pipeline"]["id"]
        assert (
            by_name["dynamic.testcase[tc1]"]["parent"] == by_name["dynamic"]["id"]
        )


class TestFormatTree:
    def test_tree_shows_nesting_and_metrics(self):
        text = format_tree(_session())
        lines = text.splitlines()
        assert lines[0] == "spans:"
        assert any(line.lstrip().startswith("pipeline") for line in lines)
        # Children are indented deeper than the root.
        pipeline_indent = next(len(l) - len(l.lstrip()) for l in lines if "pipeline" in l)
        static_indent = next(len(l) - len(l.lstrip()) for l in lines if "static" in l)
        assert static_indent > pipeline_indent
        assert "metrics:" in text
        assert "tdf.activations{module=gain}" in text
        assert "40" in text

    def test_tree_identical_for_live_and_loaded_session(self):
        tel = _session()
        buf = io.StringIO()
        write_jsonl(tel, buf)
        run = read_jsonl(io.StringIO(buf.getvalue()))
        assert format_tree(run) == format_tree(tel)

    def test_empty_session(self):
        assert "(none recorded)" in format_tree(Telemetry())

    def test_hit_rate_derived_from_counter_pairs(self):
        tel = Telemetry()
        tel.metrics.counter("tdf.schedule_cache_hits", cluster="top").inc(7)
        tel.metrics.counter("tdf.schedule_cache_misses", cluster="top").inc(3)
        text = format_tree(tel)
        assert "derived:" in text
        assert "tdf.schedule_cache_hit_rate{cluster=top}" in text
        assert "0.7000" in text

    def test_no_derived_section_without_pairs(self):
        text = format_tree(_session())
        assert "derived:" not in text
        assert "hit_rate" not in text

    def test_match_vector_share_derived_from_scanned_counters(self):
        tel = Telemetry()
        tel.metrics.counter(
            "instrument.match_events_scanned", path="vector"
        ).inc(900)
        tel.metrics.counter(
            "instrument.match_events_scanned", path="scan"
        ).inc(100)
        text = format_tree(tel)
        assert "derived:" in text
        assert "instrument.match_vector_share" in text
        assert "0.9000" in text

    def test_match_events_per_second_pairs_counter_with_histogram(self):
        tel = Telemetry()
        tel.metrics.counter(
            "instrument.match_events_scanned", path="vector"
        ).inc(1000)
        tel.metrics.histogram(
            "instrument.match_seconds", path="vector"
        ).observe(0.5)
        text = format_tree(tel)
        assert "instrument.match_events_per_second{path=vector}" in text
        assert "2000.0" in text


class TestChromeTrace:
    def test_file_is_valid_trace_event_json(self, tmp_path):
        path = str(tmp_path / "run.trace.json")
        write_chrome_trace(_session(), path)
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert isinstance(events, list) and events

    def test_span_events_are_complete_events(self):
        events = chrome_trace_events(_session())
        spans = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in spans] == [
            "pipeline", "static", "dynamic", "dynamic.testcase[tc1]",
        ]
        for event in spans:
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        # Nested spans sit inside their parent's interval.
        by_name = {e["name"]: e for e in spans}
        parent, child = by_name["pipeline"], by_name["static"]
        assert child["ts"] >= parent["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-6

    def test_counters_become_counter_events(self):
        events = chrome_trace_events(_session())
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "tdf.activations{module=gain}"
        assert counters[0]["args"] == {"value": 40}
