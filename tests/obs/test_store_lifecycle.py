"""Columnar store lifecycle: close semantics, spill cleanup, columns.

The store owns a spill file on disk; the hard requirements are that
``close()`` is idempotent and always unlinks the file (even when a
consumer raises mid-iteration and unwinds through a ``finally``), that
a closed store refuses to serve a truncated stream, and that a failed
flush never leaves a partial pickle frame behind.
"""

import os
import pickle

import pytest

from repro.instrument.probes import WriterKind
from repro.obs.store import ColumnarProbeStore
from repro.obs.store.columns import HAVE_NUMPY

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

EVENTS = [
    (1, "x", "m", 10),
    (0, "x", "m", 11),
    (2, "s", 0, "op", "w", 30, WriterKind.MODEL),
    (3, "s", 0, "ip", "r", "r", 40, 0),
]


def _filled(chunk_size=2, rounds=3, **kwargs):
    store = ColumnarProbeStore(chunk_size=chunk_size, **kwargs)
    for _ in range(rounds):
        for event in EVENTS:
            store.append(event)
    return store


class TestClose:
    def test_close_is_idempotent(self):
        store = _filled()
        path = store._path
        assert path is not None and os.path.exists(path)
        store.close()
        store.close()  # consumer's finally + owner's cleanup
        assert not os.path.exists(path)

    def test_iterate_after_close_raises(self):
        store = _filled()
        store.close()
        with pytest.raises(ValueError, match="closed probe store"):
            list(store)

    def test_iter_member_after_close_raises(self):
        store = ColumnarProbeStore(chunk_size=2, member_column=True)
        for i, event in enumerate(EVENTS):
            store.append_member(i % 2, event)
        store.close()
        with pytest.raises(ValueError, match="closed probe store"):
            list(store.iter_member(0))

    def test_record_past_chunk_boundary_after_close_raises(self):
        store = _filled(chunk_size=2)
        store.close()
        with pytest.raises(ValueError, match="closed probe store"):
            for event in EVENTS:
                store.append(event)

    @needs_numpy
    def test_to_columns_after_close_raises(self):
        store = _filled()
        store.close()
        with pytest.raises(ValueError, match="closed probe store"):
            store.to_columns()

    def test_mid_iteration_raise_still_unlinks_spill_file(self):
        # Issue satellite: a consumer that dies halfway through the
        # stream unwinds through the runner's ``finally: store.close()``
        # — the spill chunks must not survive it.
        store = _filled(chunk_size=2, rounds=8)
        path = store._path
        assert path is not None and os.path.exists(path)
        try:
            with pytest.raises(RuntimeError, match="consumer died"):
                for i, _event in enumerate(store):
                    if i == 5:
                        raise RuntimeError("consumer died")
        finally:
            store.close()
        assert not os.path.exists(path)


class TestFlushIntegrity:
    def test_failed_flush_leaves_no_partial_frame(self, monkeypatch):
        from repro.obs.store import probe_store as mod

        store = ColumnarProbeStore(chunk_size=2)
        store.append(EVENTS[0])
        store.append(EVENTS[1])  # first chunk spills cleanly
        real_dump = pickle.dump

        def broken_dump(payload, handle, **kwargs):
            handle.write(b"\x80garbage")  # partial frame, then die
            raise OSError("disk full")

        with monkeypatch.context() as mp:
            mp.setattr(mod.pickle, "dump", broken_dump)
            with pytest.raises(OSError, match="disk full"):
                store.append(EVENTS[2])
                store.append(EVENTS[3])
        # The partial frame was truncated away and the tail kept, so the
        # next (healthy) flush re-spills it and the stream stays whole.
        store.append((1, "y", "m", 12))
        assert list(store)[: len(EVENTS)] == EVENTS
        assert len(store) == len(EVENTS) + 1
        store.close()


@needs_numpy
class TestToColumns:
    def test_columns_match_decoded_tuples(self):
        store = _filled(chunk_size=3, rounds=4)
        tags, cols, strings, members = store.to_columns()
        assert members is None
        decoded = list(store)
        assert tags.tolist() == [event[0] for event in decoded]
        assert len(tags) == len(store)
        # Spot-check the string dictionary round-trips var names.
        var_rows = [i for i, event in enumerate(decoded) if event[0] <= 1]
        for i in var_rows:
            assert strings[cols[0][i]] == decoded[i][1]
        store.close()

    def test_member_column_demuxes(self):
        store = ColumnarProbeStore(chunk_size=2, member_column=True)
        for i, event in enumerate(EVENTS * 3):
            store.append_member(i % 2, event)
        tags, _cols, _strings, members = store.to_columns()
        assert members is not None and len(members) == len(tags)
        assert (members == 0).sum() == len(store) // 2
        store.close()

    def test_cache_invalidated_by_append(self):
        store = _filled(chunk_size=4, rounds=1)
        first = store.to_columns()
        assert store.to_columns() is first  # cached while unchanged
        store.append((1, "y", "m", 12))
        second = store.to_columns()
        assert second is not first
        assert len(second[0]) == len(first[0]) + 1
        store.close()

    def test_cache_invalidated_by_clear(self):
        store = _filled(chunk_size=4, rounds=1)
        store.to_columns()
        store.clear()
        tags, _cols, _strings, _members = store.to_columns()
        assert len(tags) == 0
        store.close()
