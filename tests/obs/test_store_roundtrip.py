"""Round-trip property: columnar recording must be invisible.

The columnar probe store replaces the in-memory probe-event list behind
the instrumenter; encode -> spill -> decode must hand the matcher the
exact event tuples the list would have held — same values, same order,
same ``WriterKind`` singletons — and therefore the exact matched pair
sets, for random multirate clusters, both engines and spill chunk
sizes 1 / 7 / default.
"""

import pytest
from hypothesis import given, settings

from repro.analysis import analyze_cluster
from repro.instrument import DynamicAnalyzer, ProbeRuntime
from repro.instrument.matching import match_events
from repro.instrument.probes import WriterKind
from repro.obs.store import DEFAULT_CHUNK_SIZE, ColumnarProbeStore
from repro.tdf import Simulator
from repro.testing import TestCase
from repro.testing.generate import (
    build_cluster,
    cluster_duration,
    rate_strategy,
    values_strategy,
)

CHUNK_SIZES = (1, 7, DEFAULT_CHUNK_SIZE)


def _record(values, up_rate, down_rate, engine, store):
    """One instrumented simulation; returns (events, match) without
    closing ``store`` so the raw tuples stay inspectable."""
    factory = lambda: build_cluster(values, up_rate, down_rate)
    static = analyze_cluster(factory())
    analyzer = DynamicAnalyzer(factory, static, engine=engine)
    cluster = factory()
    probe = ProbeRuntime(cluster.name, batched=True, store=store)
    analyzer._instrument(cluster, probe)
    analyzer._install_hooks(cluster, probe)
    testcase = TestCase("t", cluster_duration(values), lambda c: None)
    testcase.apply(cluster)
    simulator = Simulator(cluster, engine=analyzer.engine)
    simulator.run(testcase.duration)
    simulator.finish()
    initial_tokens = {
        sig.name: (sig.driver.delay if sig.driver is not None else 0)
        for sig in cluster.signals
    }
    match = match_events(
        probe, testcase.name, static.model_start_lines, initial_tokens
    )
    return list(probe._buf), match


@settings(max_examples=8, deadline=None)
@given(values=values_strategy(max_size=4), up=rate_strategy(), down=rate_strategy())
def test_columnar_roundtrip_identical(values, up, down):
    for engine in ("interp", "block"):
        baseline_events, baseline_match = _record(values, up, down, engine, None)
        assert baseline_events, "the workload must actually record events"
        for chunk_size in CHUNK_SIZES:
            store = ColumnarProbeStore(chunk_size=chunk_size)
            try:
                events, match = _record(values, up, down, engine, store)
                assert events == baseline_events
                # Decoded WriterKind fields must be the enum singletons
                # (matching relies on identity checks).
                for event in events:
                    if len(event) == 7:
                        assert event[6] in WriterKind
                        assert WriterKind(event[6].value) is event[6]
                assert match.pairs == baseline_match.pairs
                assert match.use_without_def == baseline_match.use_without_def
            finally:
                store.close()


@settings(max_examples=4, deadline=None)
@given(values=values_strategy(max_size=4), up=rate_strategy(), down=rate_strategy())
def test_store_reiterable_and_counts(values, up, down):
    """The store re-iterates identically and tracks per-tag counts."""
    store = ColumnarProbeStore(chunk_size=5)
    try:
        events, _ = _record(values, up, down, "block", store)
        assert list(store) == events
        assert list(store) == events  # second pass, post-spill
        assert len(store) == len(events)
        nv, nw, nr = store.event_counts()
        assert nv == sum(1 for e in events if e[0] in (0, 1))
        assert nw == sum(1 for e in events if len(e) == 7)
        assert nr == sum(1 for e in events if len(e) == 8)
    finally:
        store.close()
