"""End-to-end telemetry through the DFT pipeline (Fig. 3 stages)."""

import pytest

from repro.core import DftConfig, run_dft
from repro.obs import get_telemetry, telemetry_session
from repro.tdf import Cluster, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.library import CollectorSink, StimulusSource
from repro.testing import TestCase, TestSuite


class Doubler(TdfModule):
    def __init__(self, name="doubler"):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def processing(self):
        self.op.write(self.ip.read() * 2.0)


def _factory():
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource("src", lambda t: 1.0, ms(1)))
            self.dut = self.add(Doubler())
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.dut.ip)
            self.connect(self.dut.op, self.sink.ip)

    return Top("top")


def _suite():
    return TestSuite(
        "s",
        [
            TestCase("tc1", ms(3), lambda c: None),
            TestCase("tc2", ms(2), lambda c: None),
        ],
    )


class TestPipelineTelemetry:
    def test_fig3_stages_produce_expected_spans(self):
        with telemetry_session() as tel:
            run_dft(_factory, _suite())
        names = tel.span_names()
        # >= 4 distinct names covering all three Fig. 3 stages.
        assert "pipeline" in names
        assert "static" in names
        assert "dynamic" in names
        assert "coverage" in names
        assert "dynamic.testcase[tc1]" in names
        assert "dynamic.testcase[tc2]" in names
        assert "tdf.simulate" in names
        assert len(names) >= 4
        # All spans closed, stage spans nested under the pipeline root.
        assert all(span.closed for span in tel.spans)
        root = tel.find_spans("pipeline")[0]
        for stage in ("static", "dynamic", "coverage"):
            assert tel.find_spans(stage)[0].parent_id == root.span_id

    def test_kernel_counters_recorded(self):
        with telemetry_session() as tel:
            run_dft(_factory, _suite())
        counters = {
            (c.name, tuple(sorted(c.labels.items()))): c.value
            for c in tel.metrics.counters()
        }
        # Per-module activations: 3 periods (tc1) + 2 periods (tc2).
        for module in ("src", "doubler", "sink"):
            key = ("tdf.activations", (("cluster", "top"), ("module", module)))
            assert counters[key] == 5
        # Signal traffic: every written token is consumed downstream.
        writes = [v for (n, _), v in counters.items() if n == "tdf.signal_writes"]
        reads = [v for (n, _), v in counters.items() if n == "tdf.signal_reads"]
        assert sum(writes) == sum(reads) == 10  # 2 signals x 5 periods
        # One cluster build for static + one per testcase.
        assert counters[("pipeline.cluster_builds", ())] == 3
        assert tel.metrics.histogram("pipeline.cluster_build_seconds").count == 3
        # Elaborations and per-period timing from the kernel.
        elaborations = [v for (n, _), v in counters.items() if n == "tdf.elaborations"]
        assert sum(elaborations) == 2  # one per testcase simulation
        assert tel.metrics.histogram("tdf.period_seconds", cluster="top").count == 5
        # Static-analysis accounting.
        assert counters[("analysis.models_analyzed", (("cluster", "top"),))] == 1
        # Probe events flowed into instrument.* counters.
        assert counters[("instrument.testcases", (("cluster", "top"),))] == 2
        assert counters[("instrument.port_writes", (("cluster", "top"),))] > 0

    def test_timings_view_matches_spans(self):
        with telemetry_session():
            result = run_dft(_factory, _suite())
        assert set(result.timings) == {"static", "dynamic", "coverage"}
        for name, seconds in result.timings.items():
            assert seconds == result.spans[name].wall
            assert seconds >= 0

    def test_disabled_mode_still_provides_timings(self):
        assert not get_telemetry().enabled
        result = run_dft(_factory, _suite())
        assert set(result.timings) == {"static", "dynamic", "coverage"}
        assert all(t >= 0 for t in result.timings.values())
        # The run recorded into a private session, not the global null.
        assert result.telemetry is not None
        assert result.telemetry is not get_telemetry()
        assert get_telemetry().spans == []

    def test_results_identical_with_and_without_telemetry(self):
        plain = run_dft(_factory, _suite())
        with telemetry_session():
            traced = run_dft(_factory, _suite())
        assert {a.key for a in plain.static.associations} == {
            a.key for a in traced.static.associations
        }
        assert plain.dynamic.exercised_keys() == traced.dynamic.exercised_keys()
        assert plain.coverage.class_coverage() == traced.coverage.class_coverage()

    def test_explicit_telemetry_argument_wins(self):
        from repro.obs import Telemetry

        explicit = Telemetry()
        result = run_dft(_factory, _suite(), DftConfig(telemetry=explicit))
        assert result.telemetry is explicit
        assert explicit.find_spans("pipeline")
