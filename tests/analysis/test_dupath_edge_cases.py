"""Regression tests for du-path / reaching-definition edge cases.

Three families the PR-9 hardening pass pins down:

* self-loop du-paths — a single node that both defines and uses the
  variable, reached through a loop back-edge;
* defs killed on every path — a definition that no use can observe
  must produce no pair at all;
* cross-window associations — a def whose matching use fires more than
  one block-engine window (:data:`~repro.tdf.engine.WINDOW_PERIODS`
  activations) later must still be exercised, identically on both
  engines.
"""

import ast

from repro.analysis.cfg import build_cfg
from repro.analysis.dupaths import (
    has_non_du_path,
    is_strong_local,
    transitive_closure,
)
from repro.analysis.reaching import reaching_definitions
from repro.core import DftConfig, run_dft
from repro.tdf import Cluster, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.engine import WINDOW_PERIODS
from repro.tdf.library import CollectorSink, StimulusSource
from repro.testing import TestCase, TestSuite


def _setup(body):
    code = "def processing(self):\n" + "\n".join(
        "    " + line for line in body.strip().splitlines()
    )
    func = ast.parse(code).body[0]
    cfg = build_cfg(func, set(), set())
    result = reaching_definitions(cfg)
    return cfg, result, transitive_closure(cfg)


def _pairs_for(result, var="x"):
    return {
        (p.def_line, p.use_line)
        for p in result.pairs
        if p.var.name == var
    }


class TestSelfLoopDuPaths:
    def test_self_assign_in_loop_pairs_with_itself(self):
        # ``x = x + 1`` inside a while: the node's use reads the def the
        # same node produced on the *previous* iteration (a du-path that
        # is exactly the self-loop through the loop header).
        _, result, closure = _setup("x = 0\nwhile c:\n    x = x + 1\ny = x")
        pairs = _pairs_for(result)
        assert (4, 4) in pairs          # the self-loop pair exists
        assert (2, 4) in pairs          # first-iteration feed
        assert (4, 5) in pairs          # loop exit observes the last def
        for p in result.pairs:
            if p.var.name != "x" or (p.def_line, p.use_line) != (4, 4):
                continue
            # Reaching itself requires passing its own redefinition, so
            # the self-loop pair can never be Strong.
            assert not is_strong_local(p, result.def_nodes, closure)

    def test_self_loop_is_reachable_in_closure(self):
        cfg, result, closure = _setup("x = 0\nwhile c:\n    x = x + 1")
        loop_nodes = [
            p.def_node for p in result.pairs
            if p.var.name == "x" and p.def_line == p.use_line == 4
        ]
        assert loop_nodes
        for nid in loop_nodes:
            assert nid in closure[nid]

    def test_single_statement_loop_body_does_not_crash_firm(self):
        _, result, closure = _setup("x = 0\nwhile x < 3:\n    x = x + 1")
        for p in result.pairs:
            if p.var.name == "x":
                # Total classification (no exception) is the contract.
                has_non_du_path(p, result.def_nodes.get(p.var, set()), closure)


class TestDefsKilledOnEveryPath:
    def test_straightline_kill_produces_no_pair(self):
        _, result, _ = _setup("x = 1\nx = 2\ny = x")
        pairs = _pairs_for(result)
        assert (3, 4) in pairs
        assert (2, 4) not in pairs      # killed before any use

    def test_kill_on_both_branch_arms(self):
        body = "x = 1\nif c:\n    x = 2\nelse:\n    x = 3\ny = x"
        _, result, _ = _setup(body)
        pairs = _pairs_for(result)
        assert pairs == {(4, 7), (6, 7)}  # the outer def never survives

    def test_kill_before_loop_and_inside_loop(self):
        body = "x = 1\nx = 2\nwhile c:\n    y = x\n    x = x + 1"
        _, result, _ = _setup(body)
        pairs = _pairs_for(result)
        assert all(d != 2 for d, _ in pairs)
        assert (3, 5) in pairs and (6, 5) in pairs and (6, 6) in pairs


class _LatchThenRead(TdfModule):
    """Defines ``m_latch`` once, reads it only far later.

    The definition fires in the very first activation; the only use
    fires once the activation count passes 40 — beyond one block-engine
    window, so the def and the use land in different windows.
    """

    def __init__(self, name: str = "latch") -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_latch = 0.0
        self.m_count = 0

    def initialize(self) -> None:
        self.m_latch = 0.0
        self.m_count = 0

    def processing(self) -> None:
        sample = self.ip.read()
        if self.m_count == 0:
            self.m_latch = sample + 1.0
        self.m_count = self.m_count + 1
        if self.m_count > 40:
            self.op.write(self.m_latch)
        else:
            self.op.write(0.0)


#: Activations between the def (first activation) and the use; must
#: exceed one compiled window so the pair matches across windows.
THRESHOLD = 40


class TestCrossWindowAssociations:
    def test_threshold_exceeds_one_window(self):
        assert THRESHOLD > WINDOW_PERIODS

    def _cluster(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(
                    StimulusSource("src", lambda t: 1.0, ms(1))
                )
                self.latch = self.add(_LatchThenRead())
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.latch.ip)
                self.connect(self.latch.op, self.sink.ip)

        return Top("top")

    def _suite(self):
        duration = ms(THRESHOLD + 16)
        return TestSuite(
            "xwin",
            [TestCase("long", duration, lambda cluster: None)],
        )

    def test_def_and_use_in_different_windows_is_exercised(self):
        result = run_dft(self._cluster, self._suite(),
                         DftConfig(engine="block"))
        latch_pairs = {
            key for key in result.dynamic.exercised_keys()
            if key[0] == "m_latch"
        }
        # The first-activation def reaches the late use across windows.
        assert any(dm == um == "latch" for _, dm, _, um, _ in latch_pairs)
        covered = [
            a for a in result.coverage.associations
            if a.var == "m_latch" and result.coverage.is_covered(a)
        ]
        assert covered, "the cross-window association must be covered"

    def test_engines_agree_on_cross_window_pairs(self):
        interp = run_dft(self._cluster, self._suite(),
                         DftConfig(engine="interp"))
        block = run_dft(self._cluster, self._suite(),
                        DftConfig(engine="block"))
        assert interp.dynamic.exercised_keys() == block.dynamic.exercised_keys()
