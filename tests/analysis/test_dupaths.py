"""Unit tests for du-path classification (Strong vs Firm)."""

import ast

from repro.analysis.astutils import RefKind, VarRef
from repro.analysis.cfg import build_cfg
from repro.analysis.dupaths import (
    has_non_du_path,
    is_strong_local,
    transitive_closure,
)
from repro.analysis.reaching import reaching_definitions


def _setup(body):
    code = "def processing(self):\n" + "\n".join(
        "    " + line for line in body.strip().splitlines()
    )
    func = ast.parse(code).body[0]
    cfg = build_cfg(func, set(), set())
    result = reaching_definitions(cfg)
    closure = transitive_closure(cfg)
    return cfg, result, closure


def _classify(body, var="x"):
    cfg, result, closure = _setup(body)
    out = {}
    for pair in result.pairs:
        if pair.var.name != var:
            continue
        out[(pair.def_line, pair.use_line)] = is_strong_local(
            pair, result.def_nodes, closure
        )
    return out


class TestStrong:
    def test_single_path_single_def(self):
        assert _classify("x = 1\ny = x") == {(2, 3): True}

    def test_branch_defs_each_strong(self):
        # Each def dominates its own du-path; neither path passes the
        # other def (if/else arms are exclusive).
        result = _classify("if c:\n    x = 1\nelse:\n    x = 2\ny = x")
        assert result == {(3, 6): True, (5, 6): True}


class TestFirm:
    def test_redefinition_on_alternative_path(self):
        # From the def at line 2, one path to the use goes through the
        # redefinition at line 4 -> Firm; the branch def itself is
        # Strong (no other def between it and the use).
        result = _classify("x = 1\nif c:\n    x = 2\ny = x")
        assert result == {(2, 5): False, (4, 5): True}

    def test_loop_redefinition_makes_firm(self):
        # The def at line 2 can reach the use at line 5 directly (first
        # iteration) or after the loop body redefined x -> Firm.
        result = _classify("x = 0\nwhile c:\n    y = x\n    x = x + 1")
        # pair (2 -> 3): path through the loop body hits the def at 5.
        assert result[(2, 4)] is False
        # The loop-body def pairs with the use of the next iteration and
        # can itself be bypassed... it reaches the use only through the
        # loop test; another iteration redefines it again -> Firm.
        assert result[(5, 4)] is False

    def test_paper_example_shape(self):
        # Fig. 2 TS: out_tmpr = 0 (Firm: the branch may redefine it)
        # and out_tmpr = tmpr (Strong).
        body = (
            "out_tmpr = 0\n"
            "if c1:\n"
            "    out_tmpr = tmpr\n"
            "self.op = out_tmpr"
        )
        result = _classify(body, var="out_tmpr")
        assert result == {(2, 5): False, (4, 5): True}


class TestCorners:
    def test_def_with_no_use_produces_no_pairs(self):
        # A def whose value is never read pairs with nothing; it must
        # not leak a phantom association.
        assert _classify("x = 1\ny = 2") == {}

    def test_killed_def_has_no_reaching_use(self):
        # The def at line 2 is killed by line 3 before the only use:
        # only the reaching def forms a pair, and it is Strong.
        assert _classify("x = 1\nx = 2\ny = x") == {(3, 4): True}

    def test_partially_killed_def_still_pairs(self):
        # Killed on one arm only: the def still reaches the use on the
        # fall-through path, but that path may pass the redefinition,
        # so the pair is Firm, not Strong.
        result = _classify("x = 1\nif c:\n    x = 2\nelse:\n    pass\ny = x")
        assert result[(2, 7)] is False
        assert result[(4, 7)] is True


class TestClosure:
    def test_transitive_closure_excludes_self_without_cycle(self):
        cfg, _, closure = _setup("x = 1\ny = 2")
        node = cfg.real_nodes()[0]
        assert node.nid not in closure[node.nid]

    def test_transitive_closure_includes_self_on_cycle(self):
        cfg, _, closure = _setup("while c:\n    x = 1")
        body = next(n for n in cfg.real_nodes() if n.label == "assign")
        assert body.nid in closure[body.nid]

    def test_has_non_du_path_requires_middle_def(self):
        cfg, result, closure = _setup("x = 1\ny = x")
        pair = next(p for p in result.pairs if p.var.name == "x")
        assert not has_non_du_path(pair, set(), closure)
