"""Unit tests for the cluster-level static analysis (§V step 2)."""

import pytest

from repro.analysis import analyze_cluster
from repro.core.associations import AssocClass, VarScope
from repro.tdf import Cluster, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.library import (
    AdcTdf,
    CollectorSink,
    DelayTdf,
    GainTdf,
    StimulusSource,
)

from helpers import Passthrough


def _by_class(result, klass):
    return [a for a in result.associations if a.klass is klass]


class TwoIn(TdfModule):
    def __init__(self, name="twoin"):
        super().__init__(name)
        self.ip_a = TdfIn()
        self.ip_b = TdfIn()
        self.op = TdfOut()

    def processing(self):
        total = self.ip_a.read() + self.ip_b.read()
        self.op.write(total)


class TestStrongResolution:
    def test_direct_connection_strong(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
                self.a = self.add(Passthrough("a"))
                self.b = self.add(Passthrough("b"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.a.ip)
                self.connect(self.a.op, self.b.ip)
                self.connect(self.b.op, self.sink.ip)

        result = analyze_cluster(Top("top"))
        cross = [
            a for a in result.associations
            if a.var == "op" and a.def_model == "a" and a.use_model == "b"
        ]
        assert len(cross) == 1
        assert cross[0].klass is AssocClass.STRONG

    def test_placeholder_resolved_when_driven_internally(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
                self.a = self.add(Passthrough("a"))
                self.b = self.add(Passthrough("b"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.a.ip)
                self.connect(self.a.op, self.b.ip)
                self.connect(self.b.op, self.sink.ip)

        result = analyze_cluster(Top("top"))
        # a.ip is testbench-driven: placeholder kept.
        assert any(a.var == "ip" and a.def_model == "a" for a in result.associations)
        # b.ip is driven by a: placeholder replaced by the cross pair.
        placeholders_b = [
            a for a in result.associations
            if a.var == "ip" and a.def_model == "b" and a.use_model == "b"
        ]
        assert placeholders_b == []


class TestPFirm:
    def _top(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
                self.a = self.add(Passthrough("a"))
                self.d = self.add(DelayTdf("d", 1))
                self.m = self.add(TwoIn("m"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.a.ip)
                sig = self.connect(self.a.op, self.m.ip_a)
                self.d.ip.bind(sig)
                self.connect(self.d.op, self.m.ip_b)
                self.connect(self.m.op, self.sink.ip)

        return Top("top")

    def test_both_branches_pfirm(self):
        result = analyze_cluster(self._top())
        pfirm = _by_class(result, AssocClass.PFIRM)
        assert len(pfirm) == 2
        # Original branch: def in model a.
        assert any(a.def_model == "a" for a in pfirm)
        # Redefined branch: def anchored at the netlist (cluster name).
        assert any(a.def_model == "top" for a in pfirm)

    def test_redef_definition_registered_for_all_defs(self):
        result = analyze_cluster(self._top())
        redef_defs = [
            d for d in result.definitions if d.location.model == "top"
        ]
        assert len(redef_defs) == 1


class TestPWeak:
    def test_only_redefined_branch(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
                self.a = self.add(Passthrough("a"))
                self.g = self.add(GainTdf("g", 2.0))
                self.b = self.add(Passthrough("b"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.a.ip)
                self.connect(self.a.op, self.g.ip)
                self.connect(self.g.op, self.b.ip)
                self.connect(self.b.op, self.sink.ip)

        result = analyze_cluster(Top("top"))
        pweak = _by_class(result, AssocClass.PWEAK)
        assert len(pweak) == 1
        assert pweak[0].var == "op"
        assert pweak[0].def_model == "top"
        assert pweak[0].use_model == "b"

    def test_opaque_consumer_anchors_at_bind_site(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
                self.a = self.add(Passthrough("a"))
                self.g = self.add(GainTdf("g", 2.0))
                self.adc = self.add(AdcTdf("adc"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.a.ip)
                self.connect(self.a.op, self.g.ip)
                self.connect(self.g.op, self.adc.adc_i)
                self.connect(self.adc.adc_o, self.sink.ip)

        result = analyze_cluster(Top("top"))
        pweak = _by_class(result, AssocClass.PWEAK)
        assert len(pweak) == 1
        # ADC is a library component: its use anchors in the netlist.
        assert pweak[0].use_model == "top"

    def test_branches_to_different_models_classified_individually(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
                self.a = self.add(Passthrough("a"))
                self.g = self.add(GainTdf("g", 2.0))
                self.direct = self.add(Passthrough("direct"))
                self.via_gain = self.add(Passthrough("via_gain"))
                self.s1 = self.add(CollectorSink("s1"))
                self.s2 = self.add(CollectorSink("s2"))
                self.connect(self.src.op, self.a.ip)
                sig = self.connect(self.a.op, self.direct.ip)
                self.g.ip.bind(sig)
                self.connect(self.g.op, self.via_gain.ip)
                self.connect(self.direct.op, self.s1.ip)
                self.connect(self.via_gain.op, self.s2.ip)

        result = analyze_cluster(Top("top"))
        strong_cross = [
            a for a in _by_class(result, AssocClass.STRONG)
            if a.def_model == "a" and a.use_model == "direct"
        ]
        pweak = _by_class(result, AssocClass.PWEAK)
        assert len(strong_cross) == 1
        assert len(pweak) == 1
        assert pweak[0].use_model == "via_gain"
        assert _by_class(result, AssocClass.PFIRM) == []


class TestCornerCases:
    def test_use_without_def_on_delayed_port(self):
        # A floating input port *with a delay* still has no writer: the
        # delay only inserts initial samples, it defines nothing, so
        # the port must stay a use-without-def candidate and keep its
        # placeholder association.
        class Top(Cluster):
            def architecture(self):
                self.a = self.add(Passthrough("a"))
                self.a.set_timestep(ms(1))
                self.a.ip.bind(self.signal("floating"))
                self.a.ip.set_delay(1)
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.a.op, self.sink.ip)

        result = analyze_cluster(Top("top"))
        assert result.undriven_input_ports == ["a.ip"]
        assert any(
            a.var == "ip" and a.def_model == "a" for a in result.associations
        )

    def test_pweak_through_two_chained_siso_redefinitions(self):
        # Two gains in series between the defining and the using model:
        # the redefinition chain collapses to a single netlist-anchored
        # PWeak pair into the final consumer; the original def's direct
        # association with that consumer is fully superseded.
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
                self.a = self.add(Passthrough("a"))
                self.g1 = self.add(GainTdf("g1", 2.0))
                self.g2 = self.add(GainTdf("g2", 3.0))
                self.b = self.add(Passthrough("b"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.a.ip)
                self.connect(self.a.op, self.g1.ip)
                self.connect(self.g1.op, self.g2.ip)
                self.connect(self.g2.op, self.b.ip)
                self.connect(self.b.op, self.sink.ip)

        result = analyze_cluster(Top("top"))
        pweak = _by_class(result, AssocClass.PWEAK)
        assert len(pweak) == 1
        assert pweak[0].var == "op"
        assert pweak[0].def_model == "top"
        assert pweak[0].use_model == "b"
        assert _by_class(result, AssocClass.PFIRM) == []
        assert not any(
            a.def_model == "a" and a.use_model == "b"
            for a in result.associations
        )


class TestDiagnostics:
    def test_undriven_inputs_reported(self):
        class Top(Cluster):
            def architecture(self):
                self.a = self.add(Passthrough("a"))
                self.a.set_timestep(ms(1))
                self.a.ip.bind(self.signal("floating"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.a.op, self.sink.ip)

        result = analyze_cluster(Top("top"))
        assert result.undriven_input_ports == ["a.ip"]
        # The placeholder association survives (can never be resolved).
        assert any(a.var == "ip" and a.def_model == "a" for a in result.associations)

    def test_counts_by_class(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
                self.a = self.add(Passthrough("a"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.a.ip)
                self.connect(self.a.op, self.sink.ip)

        result = analyze_cluster(Top("top"))
        counts = result.counts()
        assert counts[AssocClass.STRONG] == len(result.associations)

    def test_model_start_lines_exposed(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
                self.a = self.add(Passthrough("a"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.a.ip)
                self.connect(self.a.op, self.sink.ip)

        result = analyze_cluster(Top("top"))
        assert "a" in result.model_start_lines
        assert result.model_start_lines["a"] > 0
