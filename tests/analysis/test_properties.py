"""Property-based tests on static-analysis invariants.

Random (but syntactically valid) processing bodies are generated from a
small statement grammar; for each, the CFG/reaching/du-path machinery
must uphold the structural invariants the rest of the system relies on.
"""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import ENTRY, EXIT, build_cfg
from repro.analysis.dupaths import has_non_du_path, transitive_closure
from repro.analysis.reaching import reaching_definitions

VARS = ["a", "b", "c"]


@st.composite
def _stmt(draw, depth=0):
    kind = draw(st.sampled_from(
        ["assign", "assign", "aug", "if", "while"] if depth < 2 else ["assign", "aug"]
    ))
    target = draw(st.sampled_from(VARS))
    source = draw(st.sampled_from(VARS))
    if kind == "assign":
        return f"{target} = {source} + 1"
    if kind == "aug":
        return f"{target} += {source}"
    body = draw(st.lists(_stmt(depth=depth + 1), min_size=1, max_size=3))
    indented = "\n".join("    " + line for stmt in body for line in stmt.splitlines())
    if kind == "if":
        has_else = draw(st.booleans())
        text = f"if {source} > 0:\n{indented}"
        if has_else:
            else_body = draw(st.lists(_stmt(depth=depth + 1), min_size=1, max_size=2))
            else_ind = "\n".join(
                "    " + line for stmt in else_body for line in stmt.splitlines()
            )
            text += f"\nelse:\n{else_ind}"
        return text
    return f"while {source} > {target}:\n{indented}"


@st.composite
def _body(draw):
    prelude = [f"{name} = 0" for name in VARS]
    stmts = draw(st.lists(_stmt(), min_size=1, max_size=5))
    return "\n".join(prelude + stmts)


def _analyze(body_text):
    code = "def processing(self):\n" + "\n".join(
        "    " + line for line in body_text.splitlines()
    )
    func = ast.parse(code).body[0]
    cfg = build_cfg(func, set(), set())
    return cfg, reaching_definitions(cfg)


@settings(max_examples=60, deadline=None)
@given(_body())
def test_cfg_structural_invariants(body_text):
    cfg, _ = _analyze(body_text)
    # Edges are symmetric between succ and pred.
    for nid, succs in cfg.succ.items():
        for s in succs:
            assert nid in cfg.pred[s]
    # ENTRY has no predecessors, EXIT no successors.
    assert cfg.pred[ENTRY] == set()
    assert cfg.succ[EXIT] == set()
    # EXIT is reachable from ENTRY.
    closure = transitive_closure(cfg)
    assert EXIT in closure[ENTRY]


@settings(max_examples=60, deadline=None)
@given(_body())
def test_reaching_invariants(body_text):
    cfg, result = _analyze(body_text)
    closure = transitive_closure(cfg)
    node_defs = {
        (ref, node.nid)
        for node in cfg.nodes
        for ref, _ in node.defuse.defs
    }
    for pair in result.pairs:
        # Every pair's def site really defines the variable...
        assert (pair.var, pair.def_node) in node_defs
        # ...and the use node is reachable from the def node.
        assert pair.use_node in closure[pair.def_node] or pair.use_node == pair.def_node
    # Exit defs are a subset of all defs.
    all_def_keys = {(d.var, d.node) for d in result.all_defs}
    for d in result.exit_defs:
        assert (d.var, d.node) in all_def_keys


@settings(max_examples=60, deadline=None)
@given(_body())
def test_dupath_classification_is_total(body_text):
    """Strong/Firm classification never errors and is deterministic."""
    cfg, result = _analyze(body_text)
    closure = transitive_closure(cfg)
    verdicts = {}
    for pair in result.pairs:
        firm = has_non_du_path(pair, result.def_nodes.get(pair.var, set()), closure)
        verdicts[pair] = firm
    # Re-running yields the same verdicts (pure function of the CFG).
    for pair in result.pairs:
        assert verdicts[pair] == has_non_du_path(
            pair, result.def_nodes.get(pair.var, set()), closure
        )


@settings(max_examples=40, deadline=None)
@given(_body())
def test_single_def_straightline_vars_are_strong(body_text):
    """A variable defined exactly once can never be Firm."""
    cfg, result = _analyze(body_text)
    closure = transitive_closure(cfg)
    for pair in result.pairs:
        def_nodes = result.def_nodes.get(pair.var, set())
        if len(def_nodes) == 1 and pair.def_node not in closure[pair.def_node]:
            assert not has_non_du_path(pair, def_nodes, closure)
