"""Unit tests for the AST helper layer."""

import ast

import pytest

from repro.analysis.astutils import (
    KERNEL_ATTRS,
    assigned_local_names,
    get_source_info,
    port_read_target,
    port_write_target,
    self_attribute,
)
from repro.tdf import TdfIn, TdfModule, TdfOut


class Sample(TdfModule):
    def __init__(self, name="sample"):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def processing(self):
        x = self.ip.read()
        self.op.write(x)


class TestGetSourceInfo:
    def test_def_line_and_offsets(self):
        import inspect

        info = get_source_info(Sample("s").processing)
        _, start = inspect.getsourcelines(Sample.processing)
        assert info.def_line == start
        # AST line 1 is the def statement itself.
        assert info.absolute_line(1) == start

    def test_registered_callable_resolved(self):
        m = Sample("s")
        m.register_processing(m.processing)
        info = get_source_info(m.resolved_processing())
        assert info.func.name == "processing"

    def test_filename_points_at_test_module(self):
        info = get_source_info(Sample("s").processing)
        assert info.filename.endswith("test_astutils.py")


def _expr(code):
    return ast.parse(code, mode="eval").body


class TestPatternHelpers:
    def test_self_attribute(self):
        assert self_attribute(_expr("self.m_x")) == "m_x"
        assert self_attribute(_expr("other.m_x")) is None
        assert self_attribute(_expr("self.a.b")) is None

    def test_port_read_patterns(self):
        assert port_read_target(_expr("self.ip.read()")) == "ip"
        assert port_read_target(_expr("self.ip.read(2)")) == "ip"
        assert port_read_target(_expr("self.ip()")) == "ip"
        assert port_read_target(_expr("self.helper()")) == "helper"  # caller filters
        assert port_read_target(_expr("foo()")) is None

    def test_port_write_pattern(self):
        assert port_write_target(_expr("self.op.write(1)")) == "op"
        assert port_write_target(_expr("self.op.read()")) is None
        assert port_write_target(_expr("queue.write(1)")) is None


class TestAssignedLocalNames:
    def _names(self, body):
        code = "def f(self, param):\n" + "\n".join(
            "    " + line for line in body.splitlines()
        )
        return assigned_local_names(ast.parse(code).body[0])

    def test_parameters_included_self_excluded(self):
        names = self._names("pass")
        assert "param" in names
        assert "self" not in names

    def test_assignment_forms(self):
        names = self._names(
            "a = 1\nb, c = 1, 2\nd += 1\nfor i in a:\n    pass\n"
            "with open(a) as fh:\n    pass"
        )
        assert {"a", "b", "c", "d", "i", "fh"} <= names

    def test_free_names_excluded(self):
        names = self._names("a = GLOBAL_CONST + 1")
        assert "GLOBAL_CONST" not in names


class TestKernelAttrs:
    def test_kernel_plumbing_names_listed(self):
        assert {"timestep", "name", "cluster"} <= KERNEL_ATTRS
