"""Unit tests for def/use extraction from AST fragments."""

import ast

from repro.analysis.astutils import RefKind, VarRef
from repro.analysis.defuse import extract


def _extract(code, in_ports=(), out_ports=(), local_names=None):
    tree = ast.parse(code)
    if local_names is None:
        # By default treat every plain name as a local.
        local_names = {
            n.id for n in ast.walk(tree) if isinstance(n, ast.Name) and n.id != "self"
        }
    return extract(tree, set(in_ports), set(out_ports), set(local_names))


def _names(occurrences):
    return [(ref.kind, ref.name) for ref, _ in occurrences]


class TestLocals:
    def test_assignment_defines_target_uses_value(self):
        du = _extract("x = y + 1")
        assert (RefKind.LOCAL, "x") in _names(du.defs)
        assert (RefKind.LOCAL, "y") in _names(du.uses)

    def test_augassign_both(self):
        du = _extract("x += 2")
        assert _names(du.defs) == [(RefKind.LOCAL, "x")]
        assert _names(du.uses) == [(RefKind.LOCAL, "x")]

    def test_tuple_unpacking_defines_all(self):
        du = _extract("a, b = f(c)", local_names={"a", "b", "c"})
        assert set(_names(du.defs)) == {(RefKind.LOCAL, "a"), (RefKind.LOCAL, "b")}
        assert _names(du.uses) == [(RefKind.LOCAL, "c")]

    def test_globals_ignored(self):
        du = _extract("x = B1 * 42", local_names={"x"})
        assert _names(du.uses) == []

    def test_chained_assignment(self):
        du = _extract("a = b = 1", local_names={"a", "b"})
        assert set(_names(du.defs)) == {(RefKind.LOCAL, "a"), (RefKind.LOCAL, "b")}

    def test_subscript_store_is_use_not_def(self):
        du = _extract("a[i] = v", local_names={"a", "i", "v"})
        assert (RefKind.LOCAL, "a") in _names(du.uses)
        assert (RefKind.LOCAL, "a") not in _names(du.defs)

    def test_lines_recorded(self):
        du = _extract("x = 1\ny = x")
        lines = {ref.name: line for ref, line in du.defs}
        assert lines == {"x": 1, "y": 2}


class TestMembers:
    def test_member_store_and_load(self):
        du = _extract("self.m_a = self.m_b")
        assert _names(du.defs) == [(RefKind.MEMBER, "m_a")]
        assert _names(du.uses) == [(RefKind.MEMBER, "m_b")]

    def test_member_augassign(self):
        du = _extract("self.m_x += 1")
        assert _names(du.defs) == [(RefKind.MEMBER, "m_x")]
        assert _names(du.uses) == [(RefKind.MEMBER, "m_x")]

    def test_method_call_not_a_member_use(self):
        du = _extract("self.helper(x)", local_names={"x"})
        assert _names(du.uses) == [(RefKind.LOCAL, "x")]

    def test_method_call_on_member_is_member_use(self):
        du = _extract("self.m_history.append(x)", local_names={"x"})
        assert (RefKind.MEMBER, "m_history") in _names(du.uses)

    def test_kernel_attrs_excluded(self):
        du = _extract("x = self.timestep", local_names={"x"})
        assert _names(du.uses) == []


class TestPorts:
    def test_port_read_is_use(self):
        du = _extract("x = self.ip_a.read()", in_ports={"ip_a"}, local_names={"x"})
        assert _names(du.uses) == [(RefKind.IN_PORT, "ip_a")]

    def test_port_call_shorthand_is_use(self):
        du = _extract("x = self.ip_a()", in_ports={"ip_a"}, local_names={"x"})
        assert _names(du.uses) == [(RefKind.IN_PORT, "ip_a")]

    def test_port_write_is_def_args_are_uses(self):
        du = _extract(
            "self.op_y.write(x + self.m_z)",
            out_ports={"op_y"},
            local_names={"x"},
        )
        assert _names(du.defs) == [(RefKind.OUT_PORT, "op_y")]
        assert set(_names(du.uses)) == {(RefKind.LOCAL, "x"), (RefKind.MEMBER, "m_z")}

    def test_read_with_offset_argument(self):
        du = _extract("x = self.ip_a.read(i)", in_ports={"ip_a"}, local_names={"x", "i"})
        assert (RefKind.IN_PORT, "ip_a") in _names(du.uses)
        assert (RefKind.LOCAL, "i") in _names(du.uses)

    def test_unknown_port_name_not_port(self):
        # 'read' on something that is not a declared port: member use.
        du = _extract("x = self.m_q.read()", local_names={"x"})
        assert (RefKind.MEMBER, "m_q") in _names(du.uses)

    def test_bare_port_attribute_ignored(self):
        du = _extract("f(self.ip_a)", in_ports={"ip_a"}, local_names=set())
        assert du.uses == []
        assert du.defs == []

    def test_nested_read_inside_write(self):
        du = _extract(
            "self.op_y.write(self.ip_a.read() * 2)",
            in_ports={"ip_a"},
            out_ports={"op_y"},
        )
        assert _names(du.defs) == [(RefKind.OUT_PORT, "op_y")]
        assert _names(du.uses) == [(RefKind.IN_PORT, "ip_a")]


class TestEvaluationOrder:
    def test_value_uses_before_target_defs(self):
        du = _extract("x = x + 1")
        # Use recorded before def (matters for most-recent-def matching).
        assert _names(du.uses)[0] == (RefKind.LOCAL, "x")
        assert _names(du.defs)[0] == (RefKind.LOCAL, "x")

    def test_nested_functions_opaque(self):
        du = _extract("def inner():\n    q = 1\n", local_names={"q"})
        assert du.defs == []
