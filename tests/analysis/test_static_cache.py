"""Memoized static analysis: fingerprints, hits, invalidation, disk."""

import importlib.util
import sys
import textwrap

import pytest

from repro.analysis import (
    StaticAnalysisCache,
    analyze_cluster,
    fingerprint_cluster,
    get_default_cache,
)
from repro.obs import telemetry_session
from repro.systems.sensor import SenseTop

MODEL_V1 = """
from repro.tdf import Cluster, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.library import CollectorSink, ConstantSource


class Scaler(TdfModule):
    def __init__(self, name="scaler"):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def processing(self):
        value = self.ip.read()
        self.op.write(value * {gain})


class Top(Cluster):
    def architecture(self):
        self.src = self.add(ConstantSource("src", 1.0, timestep=ms(1)))
        self.dut = self.add(Scaler())
        self.sink = self.add(CollectorSink("sink"))
        self.connect(self.src.op, self.dut.ip)
        self.connect(self.dut.op, self.sink.ip)
"""


def _load_cluster_module(path, gain):
    """(Re)write a model module with the given gain and import it fresh."""
    path.write_text(textwrap.dedent(MODEL_V1).format(gain=gain))
    name = "cache_probe_model"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        return module.Top("top")
    finally:
        sys.modules.pop(name, None)


class TestFingerprint:
    def test_stable_across_instances(self):
        assert fingerprint_cluster(SenseTop()) == fingerprint_cluster(SenseTop())

    def test_differs_between_clusters(self):
        from repro.systems.buck_boost import BuckBoostTop

        assert fingerprint_cluster(SenseTop()) != fingerprint_cluster(
            BuckBoostTop()
        )

    def test_processing_source_change_invalidates(self, tmp_path):
        path = tmp_path / "model.py"
        fp_gain2 = fingerprint_cluster(_load_cluster_module(path, gain=2))
        fp_gain3 = fingerprint_cluster(_load_cluster_module(path, gain=3))
        fp_gain2_again = fingerprint_cluster(_load_cluster_module(path, gain=2))
        assert fp_gain2 != fp_gain3
        assert fp_gain2 == fp_gain2_again


class TestStaticAnalysisCache:
    def test_second_analysis_is_a_hit(self):
        cache = StaticAnalysisCache()
        first = analyze_cluster(SenseTop(), cache=cache)
        second = analyze_cluster(SenseTop(), cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert first.fingerprint == second.fingerprint
        assert {a.key for a in first.associations} == {
            a.key for a in second.associations
        }

    def test_hit_hands_out_independent_containers(self):
        cache = StaticAnalysisCache()
        analyze_cluster(SenseTop(), cache=cache)
        tampered = analyze_cluster(SenseTop(), cache=cache)
        expected = len(tampered.associations)
        tampered.associations.clear()
        clean = analyze_cluster(SenseTop(), cache=cache)
        assert len(clean.associations) == expected

    def test_cache_none_disables_memoization(self):
        default = get_default_cache()
        analyze_cluster(SenseTop(), cache=None)
        assert len(default) == 0

    def test_disabled_cache_never_hits(self):
        cache = StaticAnalysisCache()
        cache.enabled = False
        analyze_cluster(SenseTop(), cache=cache)
        analyze_cluster(SenseTop(), cache=cache)
        assert cache.hits == 0 and len(cache) == 0

    def test_telemetry_counters(self):
        cache = StaticAnalysisCache()
        with telemetry_session() as tel:
            analyze_cluster(SenseTop(), cache=cache)
            analyze_cluster(SenseTop(), cache=cache)
        counters = {c.name for c in tel.metrics.counters()}
        assert "analysis.cache_misses" in counters
        assert "analysis.cache_hits" in counters


class TestDiskCache:
    def test_round_trip_across_cache_instances(self, tmp_path):
        disk = str(tmp_path / "cache")
        writer = StaticAnalysisCache(disk_dir=disk)
        original = analyze_cluster(SenseTop(), cache=writer)
        reader = StaticAnalysisCache(disk_dir=disk)
        restored = analyze_cluster(SenseTop(), cache=reader)
        assert reader.disk_hits == 1
        assert {a.key for a in restored.associations} == {
            a.key for a in original.associations
        }

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        disk = tmp_path / "cache"
        writer = StaticAnalysisCache(disk_dir=str(disk))
        analyze_cluster(SenseTop(), cache=writer)
        for entry in disk.iterdir():
            entry.write_bytes(b"not a pickle")
        reader = StaticAnalysisCache(disk_dir=str(disk))
        result = analyze_cluster(SenseTop(), cache=reader)
        assert reader.disk_hits == 0 and reader.misses == 1
        assert result.associations

    def test_invalidated_model_misses_on_disk(self, tmp_path):
        disk = str(tmp_path / "cache")
        path = tmp_path / "model.py"
        cache = StaticAnalysisCache(disk_dir=disk)
        analyze_cluster(_load_cluster_module(path, gain=2), cache=cache)
        analyze_cluster(_load_cluster_module(path, gain=3), cache=cache)
        assert cache.misses == 2 and cache.hits == 0
