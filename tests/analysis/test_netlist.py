"""Unit tests for netlist traversal (binding-information extraction)."""

from repro.analysis.netlist import origin_of, trace_branches
from repro.tdf import Cluster, ms
from repro.tdf.library import (
    BufferTdf,
    CollectorSink,
    DelayTdf,
    GainTdf,
    StimulusSource,
)

from helpers import Passthrough


def _build(wiring):
    class Top(Cluster):
        def architecture(self):
            wiring(self)

    return Top("top")


class TestDirectBranches:
    def test_single_direct_consumer(self):
        def wiring(top):
            top.a = top.add(Passthrough("a"))
            top.b = top.add(Passthrough("b"))
            top.connect(top.a.op, top.b.ip)

        top = _build(wiring)
        branches = trace_branches(top.a.op)
        assert len(branches) == 1
        assert branches[0].reader is top.b.ip
        assert not branches[0].redefined

    def test_fanout_multiple_consumers(self):
        def wiring(top):
            top.a = top.add(Passthrough("a"))
            top.b = top.add(Passthrough("b"))
            top.c = top.add(Passthrough("c"))
            sig = top.connect(top.a.op, top.b.ip)
            top.c.ip.bind(sig)

        top = _build(wiring)
        branches = trace_branches(top.a.op)
        assert {b.module.name for b in branches} == {"b", "c"}

    def test_testbench_consumers_skipped(self):
        def wiring(top):
            top.a = top.add(Passthrough("a"))
            top.sink = top.add(CollectorSink("sink"))
            top.connect(top.a.op, top.sink.ip)

        top = _build(wiring)
        assert trace_branches(top.a.op) == []

    def test_unbound_port_no_branches(self):
        def wiring(top):
            top.a = top.add(Passthrough("a"))

        top = _build(wiring)
        assert trace_branches(top.a.op) == []


class TestRedefinedBranches:
    def test_gain_redefines(self):
        def wiring(top):
            top.a = top.add(Passthrough("a"))
            top.g = top.add(GainTdf("g", 2.0))
            top.b = top.add(Passthrough("b"))
            top.connect(top.a.op, top.g.ip)
            top.connect(top.g.op, top.b.ip)

        top = _build(wiring)
        branches = trace_branches(top.a.op)
        assert len(branches) == 1
        assert branches[0].redefined
        assert branches[0].anchor.element == "g"

    def test_chain_anchors_at_last_element(self):
        def wiring(top):
            top.a = top.add(Passthrough("a"))
            top.g = top.add(GainTdf("g", 2.0))
            top.d = top.add(DelayTdf("d", 1))
            top.b = top.add(Passthrough("b"))
            top.connect(top.a.op, top.g.ip)
            top.connect(top.g.op, top.d.ip)
            top.connect(top.d.op, top.b.ip)

        top = _build(wiring)
        branches = trace_branches(top.a.op)
        assert branches[0].anchor.element == "d"

    def test_mixed_branches(self):
        def wiring(top):
            top.a = top.add(Passthrough("a"))
            top.d = top.add(DelayTdf("d", 1))
            top.b = top.add(Passthrough("b2in"))
            top.b.ip2 = __import__("repro.tdf.ports", fromlist=["TdfIn"]).TdfIn("ip2")
            sig = top.connect(top.a.op, top.b.ip)
            top.d.ip.bind(sig)
            top.connect(top.d.op, top.b.ip2)

        top = _build(wiring)
        branches = trace_branches(top.a.op)
        tags = {(b.reader.name, b.redefined) for b in branches}
        assert tags == {("ip", False), ("ip2", True)}

    def test_feedback_cycle_terminates(self):
        def wiring(top):
            top.a = top.add(Passthrough("a"))
            top.d = top.add(DelayTdf("d", 1))
            top.connect(top.a.op, top.d.ip)
            top.connect(top.d.op, top.a.ip)

        top = _build(wiring)
        branches = trace_branches(top.a.op)
        assert len(branches) == 1
        assert branches[0].module.name == "a"
        assert branches[0].redefined


class TestOriginOf:
    def test_direct_origin(self):
        def wiring(top):
            top.a = top.add(Passthrough("a"))
            top.b = top.add(Passthrough("b"))
            top.connect(top.a.op, top.b.ip)

        top = _build(wiring)
        origin = origin_of(top.b.ip)
        assert origin is not None
        driver, redefined, anchor = origin
        assert driver is top.a.op
        assert not redefined

    def test_origin_through_redef_chain(self):
        def wiring(top):
            top.a = top.add(Passthrough("a"))
            top.g = top.add(GainTdf("g", 2.0))
            top.b = top.add(Passthrough("b"))
            top.connect(top.a.op, top.g.ip)
            top.connect(top.g.op, top.b.ip)

        top = _build(wiring)
        driver, redefined, anchor = origin_of(top.b.ip)
        assert driver is top.a.op
        assert redefined
        assert anchor.element == "g"

    def test_undriven_origin_none(self):
        def wiring(top):
            top.b = top.add(Passthrough("b"))
            top.b.ip.bind(top.signal("floating"))

        top = _build(wiring)
        assert origin_of(top.b.ip) is None

    def test_testbench_origin_returned(self):
        def wiring(top):
            top.src = top.add(StimulusSource("src", lambda t: 0.0, ms(1)))
            top.b = top.add(Passthrough("b"))
            top.connect(top.src.op, top.b.ip)

        top = _build(wiring)
        driver, redefined, _ = origin_of(top.b.ip)
        assert driver.module.TESTBENCH
