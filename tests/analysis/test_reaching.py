"""Unit tests for reaching definitions and node-level pairing."""

import ast

from repro.analysis.astutils import RefKind, VarRef
from repro.analysis.cfg import ENTRY, EXIT, build_cfg
from repro.analysis.reaching import reaching_definitions


def _analyze(body, in_ports=(), out_ports=(), entry_defs=None):
    code = "def processing(self):\n" + "\n".join(
        "    " + line for line in body.strip().splitlines()
    )
    func = ast.parse(code).body[0]
    cfg = build_cfg(func, set(in_ports), set(out_ports))
    return cfg, reaching_definitions(cfg, entry_defs or {})


def _pair_lines(result, var):
    return {
        (p.def_line, p.use_line)
        for p in result.pairs
        if p.var.name == var
    }


class TestStraightLine:
    def test_simple_pair(self):
        _, r = _analyze("x = 1\ny = x")
        assert _pair_lines(r, "x") == {(2, 3)}

    def test_kill_between(self):
        _, r = _analyze("x = 1\nx = 2\ny = x")
        assert _pair_lines(r, "x") == {(3, 4)}

    def test_self_reference_pairs_with_previous_def(self):
        _, r = _analyze("x = 1\nx = x + 1")
        assert _pair_lines(r, "x") == {(2, 3)}


class TestBranching:
    def test_both_branch_defs_reach_join(self):
        _, r = _analyze("if c:\n    x = 1\nelse:\n    x = 2\ny = x")
        assert _pair_lines(r, "x") == {(3, 6), (5, 6)}

    def test_def_before_if_survives_one_arm(self):
        _, r = _analyze("x = 1\nif c:\n    x = 2\ny = x")
        assert _pair_lines(r, "x") == {(2, 5), (4, 5)}

    def test_loop_def_reaches_condition(self):
        _, r = _analyze("x = 0\nwhile x:\n    x = x - 1")
        # Both the initial def and the loop-body def reach the test and
        # the body use.
        assert (2, 3) in _pair_lines(r, "x")
        assert (4, 3) in _pair_lines(r, "x")
        assert (4, 4) in _pair_lines(r, "x")


class TestExitDefs:
    def test_defs_reaching_exit(self):
        _, r = _analyze("x = 1\nif c:\n    x = 2")
        exit_lines = {d.line for d in r.exit_defs if d.var.name == "x"}
        assert exit_lines == {2, 4}

    def test_killed_def_does_not_reach_exit(self):
        _, r = _analyze("x = 1\nx = 2")
        exit_lines = {d.line for d in r.exit_defs if d.var.name == "x"}
        assert exit_lines == {3}

    def test_port_def_reaching_exit(self):
        _, r = _analyze("self.op.write(1)", out_ports={"op"})
        assert any(
            d.var.kind is RefKind.OUT_PORT and d.var.name == "op"
            for d in r.exit_defs
        )


class TestEntryDefs:
    def test_entry_def_pairs_with_first_use(self):
        ref = VarRef(RefKind.IN_PORT, "ip")
        _, r = _analyze("x = self.ip.read()", in_ports={"ip"}, entry_defs={ref: 1})
        pairs = [p for p in r.pairs if p.var == ref]
        assert len(pairs) == 1
        assert pairs[0].def_node == ENTRY
        assert pairs[0].def_line == 1

    def test_entry_def_for_member_marker(self):
        ref = VarRef(RefKind.MEMBER, "m_s")
        _, r = _analyze(
            "y = self.m_s\nself.m_s = 1", entry_defs={ref: -1}
        )
        # The use at line 2 sees the entry def; after the redefinition
        # there is no further use.
        marker_pairs = [p for p in r.pairs if p.var == ref and p.def_node == ENTRY]
        assert [(p.def_line, p.use_line) for p in marker_pairs] == [(-1, 2)]


class TestDefNodes:
    def test_def_nodes_collects_all_sites(self):
        cfg, r = _analyze("x = 1\nif c:\n    x = 2")
        ref = VarRef(RefKind.LOCAL, "x")
        assert len(r.def_nodes[ref]) == 2

    def test_all_defs_excludes_duplicates(self):
        _, r = _analyze("x = 1\ny = 2")
        names = [d.var.name for d in r.all_defs]
        assert sorted(names) == ["x", "y"]
