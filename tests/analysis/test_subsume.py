"""Property and unit tests for the subsumption analysis pass.

Two property families, both over the random multirate clusters from
:mod:`repro.testing.generate`:

* *order* — the strict relation returned by
  :func:`repro.analysis.subsume.analyze_subsumption` is a partial
  order (irreflexive, antisymmetric, transitive) and every subsumed
  association sits below some frontier element;
* *frontier covering* — dynamically, covering a subsumer really does
  cover everything it subsumes, per testcase and therefore for any
  testcase set that covers the frontier.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_cluster, analyze_subsumption, frontier_reduced
from repro.core import run_dft
from repro.testing import TestSuite
from repro.testing.generate import (
    build_cluster,
    build_random_cluster,
    random_cluster_params,
    random_suite,
    rate_strategy,
    values_strategy,
)


def _subsumption_for(values, up_rate, down_rate):
    static = analyze_cluster(build_cluster(values, up_rate, down_rate))
    return static, analyze_subsumption(static)


class TestPartialOrder:
    @settings(max_examples=25, deadline=None)
    @given(values_strategy(max_size=4), rate_strategy(), rate_strategy())
    def test_irreflexive_and_antisymmetric(self, values, up, down):
        _, sub = _subsumption_for(values, up, down)
        keys = [a.key for a in sub.associations]
        for a in keys:
            assert not sub.subsumes(a, a)
        for a, downs in sub.subsumed_of.items():
            for b in downs:
                assert not sub.subsumes(b, a), (a, b)

    @settings(max_examples=25, deadline=None)
    @given(values_strategy(max_size=4), rate_strategy(), rate_strategy())
    def test_transitive(self, values, up, down):
        _, sub = _subsumption_for(values, up, down)
        for a, downs in sub.subsumed_of.items():
            for b in downs:
                for c in sub.subsumed_of.get(b, frozenset()):
                    if c != a:
                        assert sub.subsumes(a, c), (a, b, c)

    @settings(max_examples=25, deadline=None)
    @given(values_strategy(max_size=4), rate_strategy(), rate_strategy())
    def test_every_subsumed_key_has_frontier_representative(
        self, values, up, down
    ):
        _, sub = _subsumption_for(values, up, down)
        for b in sub.subsumed_keys():
            rep = sub.representative.get(b)
            assert rep is not None
            assert rep in sub.frontier_keys
            assert sub.subsumes(rep, b)

    @settings(max_examples=25, deadline=None)
    @given(values_strategy(max_size=4), rate_strategy(), rate_strategy())
    def test_frontier_partitions_by_class(self, values, up, down):
        _, sub = _subsumption_for(values, up, down)
        whole = sub.frontier()
        by_class = {a.key for a in whole}
        counts = sub.counts()
        for klass, (front, total) in counts.items():
            members = sub.frontier(klass)
            assert len(members) == front
            assert front <= total
            assert all(a.key in by_class for a in members)
        assert sum(f for f, _ in counts.values()) == len(whole)

    @settings(max_examples=25, deadline=None)
    @given(values_strategy(max_size=4), rate_strategy(), rate_strategy())
    def test_frontier_reduced_is_a_partition(self, values, up, down):
        static, sub = _subsumption_for(values, up, down)
        front, subsumed = frontier_reduced(static.associations, sub)
        assert len(front) + len(subsumed) == len(static.associations)
        assert {a.key for a in front} <= sub.frontier_keys
        assert {a.key for a in subsumed}.isdisjoint(sub.frontier_keys)


class TestFrontierCovering:
    """Dynamic soundness: covered(subsumer) implies covered(subsumed)."""

    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_per_testcase_implication(self, seed):
        factory = lambda: build_random_cluster(seed)
        suite = TestSuite(f"rand-{seed}", random_suite(seed))
        result = run_dft(factory, suite)
        sub = analyze_subsumption(result.static)
        per_tc = {
            name: set(match.pairs)
            for name, match in result.dynamic.per_testcase.items()
        }
        for a_key, downs in sub.subsumed_of.items():
            for name, covered in per_tc.items():
                if a_key in covered:
                    for b_key in downs:
                        assert b_key in covered, (name, a_key, b_key)

    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_covering_the_frontier_covers_everything(self, seed):
        """Any testcase set covering the frontier covers the full set.

        Checked constructively: greedily select testcases until the
        selection covers every frontier key the full suite can cover;
        the selection's union must then contain every *subsumed* key
        whose representative it covers — and, when the whole frontier
        is covered, every subsumed key outright.
        """
        factory = lambda: build_random_cluster(seed)
        suite = TestSuite(f"rand-{seed}", random_suite(seed))
        result = run_dft(factory, suite)
        sub = analyze_subsumption(result.static)
        per_tc = {
            name: set(match.pairs)
            for name, match in result.dynamic.per_testcase.items()
        }
        full_union = set().union(*per_tc.values()) if per_tc else set()
        reachable_frontier = sub.frontier_keys & full_union

        selection: set = set()
        covered: set = set()
        while reachable_frontier - covered:
            name = max(
                sorted(per_tc),
                key=lambda n: len((reachable_frontier - covered) & per_tc[n]),
            )
            assert name not in selection  # progress every round
            selection.add(name)
            covered |= per_tc[name]

        for b_key in sub.subsumed_keys():
            rep = sub.representative[b_key]
            if rep in covered:
                assert b_key in covered, (rep, b_key)
        if reachable_frontier == sub.frontier_keys & full_union and \
                sub.frontier_keys <= covered:
            assert {a.key for a in sub.associations} <= covered


class TestSeededCluster:
    def test_analysis_is_deterministic(self):
        values, up, down = random_cluster_params(7)
        _, first = _subsumption_for(values, up, down)
        _, second = _subsumption_for(values, up, down)
        assert first.frontier_keys == second.frontier_keys
        assert first.subsumed_of == second.subsumed_of
        assert first.representative == second.representative

    def test_port_associations_stay_frontier(self):
        values, up, down = random_cluster_params(3)
        static, sub = _subsumption_for(values, up, down)
        from repro.core.associations import VarScope

        for assoc in static.associations:
            if assoc.scope is VarScope.PORT:
                assert assoc.key in sub.frontier_keys
