"""Unit tests for CFG construction."""

import ast

import pytest

from repro.analysis.cfg import ENTRY, EXIT, Cfg, build_cfg


def _cfg(body, in_ports=(), out_ports=()):
    code = "def processing(self):\n" + "\n".join(
        "    " + line for line in body.strip().splitlines()
    )
    func = ast.parse(code).body[0]
    return build_cfg(func, set(in_ports), set(out_ports))


def _labels(cfg):
    return [n.label for n in cfg.real_nodes()]


def _successors_by_label(cfg, label):
    node = next(n for n in cfg.real_nodes() if n.label == label)
    return {cfg.node(s).label or cfg.node(s).kind for s in cfg.succ[node.nid]}


class TestStraightLine:
    def test_sequential_chain(self):
        cfg = _cfg("a = 1\nb = a\nc = b")
        assert _labels(cfg) == ["assign", "assign", "assign"]
        nodes = cfg.real_nodes()
        assert cfg.succ[ENTRY] == {nodes[0].nid}
        assert cfg.succ[nodes[0].nid] == {nodes[1].nid}
        assert cfg.succ[nodes[2].nid] == {EXIT}

    def test_empty_body_pass(self):
        cfg = _cfg("pass")
        assert len(cfg.real_nodes()) == 1
        assert EXIT in cfg.succ[cfg.real_nodes()[0].nid]


class TestBranches:
    # Note: the body is wrapped in a ``def`` header, so source line N of
    # the snippet is AST line N + 1.

    def test_if_without_else_falls_through(self):
        cfg = _cfg("if c:\n    x = 1\ny = 2")
        branch = next(n for n in cfg.real_nodes() if n.label == "if")
        then_node = next(n for n in cfg.real_nodes() if n.line == 3)
        join = next(n for n in cfg.real_nodes() if n.line == 4)
        assert cfg.succ[branch.nid] == {then_node.nid, join.nid}
        assert cfg.succ[then_node.nid] == {join.nid}

    def test_if_else_two_arms(self):
        cfg = _cfg("if c:\n    x = 1\nelse:\n    x = 2\ny = x")
        branch = next(n for n in cfg.real_nodes() if n.label == "if")
        assert len(cfg.succ[branch.nid]) == 2
        join = next(n for n in cfg.real_nodes() if n.line == 6)
        preds = cfg.pred[join.nid]
        assert len(preds) == 2

    def test_elif_chain(self):
        cfg = _cfg(
            "if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\ny = x"
        )
        branches = [n for n in cfg.real_nodes() if n.label == "if"]
        assert len(branches) == 2
        join = next(n for n in cfg.real_nodes() if n.line == 8)
        assert len(cfg.pred[join.nid]) == 3

    def test_return_goes_to_exit(self):
        cfg = _cfg("if c:\n    return\nx = 1")
        ret = next(n for n in cfg.real_nodes() if n.label == "return")
        assert cfg.succ[ret.nid] == {EXIT}

    def test_code_after_return_unreachable_but_present(self):
        cfg = _cfg("return\nx = 1")
        dead = next(n for n in cfg.real_nodes() if n.label == "assign")
        assert cfg.pred[dead.nid] == set()


class TestLoops:
    def test_while_back_edge(self):
        cfg = _cfg("while c:\n    x = 1\ny = 2")
        test = next(n for n in cfg.real_nodes() if n.label == "while")
        body = next(n for n in cfg.real_nodes() if n.line == 3)
        assert test.nid in cfg.succ[body.nid]
        assert body.nid in cfg.succ[test.nid]

    def test_while_break(self):
        cfg = _cfg("while c:\n    if d:\n        break\n    x = 1\ny = 2")
        brk = next(n for n in cfg.real_nodes() if n.label == "break")
        after = next(n for n in cfg.real_nodes() if n.line == 6)
        assert cfg.succ[brk.nid] == {after.nid}

    def test_while_continue(self):
        cfg = _cfg("while c:\n    if d:\n        continue\n    x = 1")
        cont = next(n for n in cfg.real_nodes() if n.label == "continue")
        test = next(n for n in cfg.real_nodes() if n.label == "while")
        assert cfg.succ[cont.nid] == {test.nid}

    def test_for_defs_target_uses_iter(self):
        # ``items`` must be a local (assigned in the function) to count
        # as a use; free names are treated as globals and ignored.
        cfg = _cfg("items = f()\nfor i in items:\n    x = i")
        loop = next(n for n in cfg.real_nodes() if n.label == "for")
        def_names = {ref.name for ref, _ in loop.defuse.defs}
        use_names = {ref.name for ref, _ in loop.defuse.uses}
        assert def_names == {"i"}
        assert use_names == {"items"}

    def test_for_else(self):
        cfg = _cfg("for i in items:\n    x = i\nelse:\n    y = 1\nz = 2")
        else_node = next(n for n in cfg.real_nodes() if n.line == 5)
        loop = next(n for n in cfg.real_nodes() if n.label == "for")
        assert else_node.nid in cfg.succ[loop.nid]


class TestMisc:
    def test_with_statement(self):
        cfg = _cfg("with open(f) as fh:\n    x = fh")
        w = next(n for n in cfg.real_nodes() if n.label == "with")
        assert {ref.name for ref, _ in w.defuse.defs} == {"fh"}

    def test_try_except(self):
        cfg = _cfg("try:\n    x = 1\nexcept ValueError:\n    x = 2\ny = x")
        handler = next(n for n in cfg.real_nodes() if n.label == "except")
        join = next(n for n in cfg.real_nodes() if n.line == 5)
        assert join.nid in {
            s for h in [handler] for s in _all_reachable(cfg, h.nid)
        }

    def test_exit_always_reachable(self):
        cfg = _cfg("while True:\n    x = 1")
        assert cfg.pred[EXIT]  # ENTRY->EXIT fallback edge

    def test_wraparound_copy(self):
        cfg = _cfg("x = 1")
        wrapped = cfg.with_wraparound()
        assert ENTRY in wrapped.succ[EXIT]
        assert ENTRY not in cfg.succ[EXIT]
        # Nodes are shared, edge sets are not.
        assert wrapped.nodes is cfg.nodes


def _all_reachable(cfg, start):
    seen, stack = set(), [start]
    while stack:
        n = stack.pop()
        for s in cfg.succ[n]:
            if s not in seen:
                seen.add(s)
                stack.append(s)
    return seen
