"""Unit tests for the intra-model static analysis."""

import pytest

from repro.analysis.model_analysis import analyze_model
from repro.core.associations import AssocClass, VarScope
from repro.tdf import TdfIn, TdfModule, TdfOut


class Mixed(TdfModule):
    """A model exercising locals, members, ports and branches."""

    def __init__(self, name="mixed"):
        super().__init__(name)
        self.ip_a = TdfIn()
        self.op_b = TdfOut()
        self.m_state = 0

    def processing(self):
        raw = self.ip_a.read()
        value = 0.0
        if raw > 1:
            value = raw * 2
        self.m_state = self.m_state + 1
        self.op_b.write(value)


def _assocs(analysis, var):
    return {
        (a.definition.line - analysis.source.def_line,
         a.use.line - analysis.source.def_line): a.klass
        for a in analysis.associations
        if a.var == var
    }


class TestLocals:
    def test_local_pairs_classified(self):
        analysis = analyze_model(Mixed())
        # value = 0.0 (line +2) -> write (line +6): Firm (branch redefines).
        # value = raw*2 (line +4) -> write: Strong.
        pairs = _assocs(analysis, "value")
        assert pairs[(2, 6)] is AssocClass.FIRM
        assert pairs[(4, 6)] is AssocClass.STRONG

    def test_local_scope_marked(self):
        analysis = analyze_model(Mixed())
        assoc = next(a for a in analysis.associations if a.var == "raw")
        assert assoc.scope is VarScope.LOCAL


class TestMembers:
    def test_cross_activation_pair(self):
        analysis = analyze_model(Mixed())
        pairs = _assocs(analysis, "m_state")
        # self.m_state = self.m_state + 1: the def at +5 reaches EXIT and
        # the use at +5 of the *next* activation.
        assert pairs == {(5, 5): AssocClass.STRONG}

    def test_member_use_before_def_uses_boundary(self):
        class Counter(TdfModule):
            def __init__(self):
                super().__init__("counter")
                self.op = TdfOut()

            def processing(self):
                self.op.write(self.m_n)
                self.m_n = self.m_n + 1

        analysis = analyze_model(Counter())
        pairs = _assocs(analysis, "m_n")
        # def at +2 -> uses at +1 (next activation) and +2.
        assert set(pairs) == {(2, 1), (2, 2)}
        assert all(k is AssocClass.STRONG for k in pairs.values())

    def test_paper_mux_state_machine_shape(self):
        class Ctrl(TdfModule):
            def __init__(self):
                super().__init__("ctrl")
                self.ip = TdfIn()
                self.op = TdfOut()
                self.m_s = 0

            def processing(self):
                if self.ip.read():
                    if self.m_s == 1:
                        self.m_s = 0
                    else:
                        self.m_s = 1
                self.op.write(self.m_s)

        analysis = analyze_model(Ctrl())
        pairs = _assocs(analysis, "m_s")
        # Each branch def reaches the write (+6) intra-activation and
        # the condition (+2) across the boundary.
        assert (3, 6) in pairs and (5, 6) in pairs
        assert (3, 2) in pairs and (5, 2) in pairs
        # Intra pairs are Strong (classified on intra paths only, like
        # the paper's m_mux_s pairs in Table I).
        assert pairs[(3, 6)] is AssocClass.STRONG
        assert pairs[(5, 6)] is AssocClass.STRONG


class TestPorts:
    def test_in_port_placeholder(self):
        analysis = analyze_model(Mixed())
        ph = analysis.placeholder_associations
        assert len(ph) == 1
        assert ph[0].var == "ip_a"
        # Def anchored at the ``def processing`` line.
        assert ph[0].definition.line == analysis.source.def_line
        assert ph[0].klass is AssocClass.STRONG

    def test_out_port_def_site(self):
        analysis = analyze_model(Mixed())
        assert len(analysis.out_port_defs) == 1
        site = analysis.out_port_defs[0]
        assert site.port == "op_b"
        assert site.model == "mixed"

    def test_in_port_use_sites(self):
        analysis = analyze_model(Mixed())
        assert [u.port for u in analysis.in_port_uses] == ["ip_a"]

    def test_dead_port_write_detected(self):
        class Dead(TdfModule):
            def __init__(self):
                super().__init__("dead")
                self.op = TdfOut()

            def processing(self):
                self.op.write(1)
                self.op.write(2)

        analysis = analyze_model(Dead())
        # Both writes reach exit as far as tokens are concerned, but the
        # reaching analysis kills the first: it becomes a dead write.
        assert len(analysis.dead_port_writes) == 1
        assert len(analysis.out_port_defs) == 1


class TestRegisteredProcessing:
    def test_register_processing_analyzed(self):
        class Custom(TdfModule):
            def __init__(self):
                super().__init__("custom")
                self.op = TdfOut()
                self.register_processing(self.my_proc)

            def my_proc(self):
                tmp = 1
                self.op.write(tmp)

        analysis = analyze_model(Custom())
        assert any(a.var == "tmp" for a in analysis.associations)
        assert [d.port for d in analysis.out_port_defs] == ["op"]


class TestDefinitions:
    def test_every_def_site_recorded(self):
        analysis = analyze_model(Mixed())
        names = sorted({d.var for d in analysis.definitions})
        assert names == ["m_state", "op_b", "raw", "value"]
