"""Unit tests for cluster construction and netlist queries."""

import pytest

from repro.tdf import (
    BindingError,
    Cluster,
    ElaborationError,
    Simulator,
    TdfIn,
    TdfModule,
    TdfOut,
    ms,
)
from repro.tdf.library import CollectorSink, ConstantSource

from helpers import Passthrough


class TestModuleRegistry:
    def test_duplicate_names_rejected(self):
        top = Cluster("top")
        top.add(Passthrough("a"))
        with pytest.raises(ElaborationError, match="already contains"):
            top.add(Passthrough("a"))

    def test_add_returns_module(self):
        top = Cluster("top")
        m = Passthrough("a")
        assert top.add(m) is m
        assert m.cluster is top

    def test_module_lookup(self):
        top = Cluster("top")
        m = top.add(Passthrough("a"))
        assert top.module("a") is m
        with pytest.raises(ElaborationError, match="no module"):
            top.module("zzz")

    def test_modules_in_registration_order(self):
        top = Cluster("top")
        for name in ["c", "a", "b"]:
            top.add(Passthrough(name))
        assert [m.name for m in top.modules] == ["c", "a", "b"]


class TestSignals:
    def test_signal_created_once(self):
        top = Cluster("top")
        assert top.signal("s") is top.signal("s")

    def test_anonymous_signal_names_unique(self):
        top = Cluster("top")
        assert top.signal().name != top.signal().name

    def test_connect_builds_topology(self):
        top = Cluster("top")
        a, b = top.add(Passthrough("a")), top.add(Passthrough("b"))
        sig = top.connect(a.op, b.ip)
        assert sig.driver is a.op
        assert sig.readers == [b.ip]
        assert top.driver_of(b.ip) is a.op
        assert top.readers_of(a.op) == [b.ip]

    def test_connect_reuses_existing_signal(self):
        top = Cluster("top")
        a = top.add(Passthrough("a"))
        b, c = top.add(Passthrough("b")), top.add(Passthrough("c"))
        sig1 = top.connect(a.op, b.ip)
        sig2 = top.connect(a.op, c.ip)
        assert sig1 is sig2
        assert sig1.readers == [b.ip, c.ip]

    def test_connect_type_checks(self):
        top = Cluster("top")
        a, b = top.add(Passthrough("a")), top.add(Passthrough("b"))
        with pytest.raises(BindingError, match="source must be an output"):
            top.connect(a.ip, b.ip)
        with pytest.raises(BindingError, match="sinks must be input"):
            top.connect(a.op, b.op)


class TestBindingChecks:
    def test_unbound_port_detected(self):
        class Top(Cluster):
            def architecture(self):
                self.a = self.add(Passthrough("a"))

        with pytest.raises(BindingError, match="not bound"):
            Top("top").check_bindings()

    def test_undriven_inputs_reported_not_fatal(self):
        class Top(Cluster):
            def architecture(self):
                self.a = self.add(Passthrough("a"))
                self.a.ip.bind(self.signal("floating"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.a.op, self.sink.ip)

        top = Top("top")
        top.check_bindings()  # must not raise
        assert [p.full_name() for p in top.undriven_inputs()] == ["a.ip"]

    def test_architecture_hook_runs_in_constructor(self):
        built = []

        class Top(Cluster):
            def architecture(self):
                built.append(True)

        Top("top")
        assert built == [True]

    def test_bindings_iterator(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(ConstantSource("src", 0.0, timestep=ms(1)))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.sink.ip, name="wire")

        top = Top("top")
        rows = list(top.bindings())
        assert len(rows) == 1
        sig, driver, readers = rows[0]
        assert sig.name == "wire"
        assert driver is top.src.op
        assert readers == [top.sink.ip]


class TestReset:
    def test_reset_signals_restarts_streams(self, passthrough_cluster):
        top = passthrough_cluster
        sim = Simulator(top)
        sim.run(ms(3))
        assert len(top.sink.values()) == 3
        top.sink.clear()
        sim2 = Simulator(top)
        sim2.run(ms(2))
        assert len(top.sink.values()) == 2
