"""Unit tests for TDF ports (rates, delays, hooks, access rules)."""

import pytest

from repro.tdf import (
    BindingError,
    Cluster,
    PortAccessError,
    Signal,
    Simulator,
    TdfIn,
    TdfModule,
    TdfOut,
    ms,
)
from repro.tdf.library import CollectorSink, ConstantSource


class TestAttributeSetters:
    def test_rate_must_be_positive_int(self):
        port = TdfIn("p")
        with pytest.raises(PortAccessError):
            port.set_rate(0)
        with pytest.raises(PortAccessError):
            port.set_rate(1.5)
        port.set_rate(3)
        assert port.rate == 3

    def test_delay_must_be_non_negative(self):
        port = TdfOut("p")
        with pytest.raises(PortAccessError):
            port.set_delay(-1)
        port.set_delay(0)
        port.set_delay(2)
        assert port.delay == 2

    def test_timestep_must_be_positive(self):
        port = TdfIn("p")
        with pytest.raises(PortAccessError):
            port.set_timestep(ms(0))
        port.set_timestep(ms(2))
        assert port.requested_timestep == ms(2)

    def test_set_initial_value_fills_delay(self):
        port = TdfIn("p")
        port.set_delay(3)
        port.set_initial_value(9.0)
        assert port.initial_values == [9.0, 9.0, 9.0]


class TestBinding:
    def test_double_bind_rejected(self):
        port = TdfIn("p")
        port.bind(Signal("a"))
        with pytest.raises(BindingError, match="already bound"):
            port.bind(Signal("b"))

    def test_rebind_same_signal_ok(self):
        port = TdfIn("p")
        sig = Signal("a")
        port.bind(sig)
        port.bind(sig)
        assert port.signal is sig

    def test_bind_site_points_at_caller(self):
        port = TdfOut("p")
        port.bind(Signal("s"))
        assert port.bind_site is not None
        assert port.bind_site.filename.endswith("test_ports.py")

    def test_port_naming_via_module_attribute(self):
        class M(TdfModule):
            def __init__(self):
                super().__init__("m")
                self.ip_foo = TdfIn()

            def processing(self):
                pass

        m = M()
        assert m.ip_foo.name == "ip_foo"
        assert m.ip_foo.module is m
        assert m.ip_foo.full_name() == "m.ip_foo"


class _MultiRateSum(TdfModule):
    """Consumes 3 samples per activation, emits their sum."""

    def __init__(self, name):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def set_attributes(self):
        self.ip.set_rate(3)

    def processing(self):
        total = self.ip.read(0) + self.ip.read(1) + self.ip.read(2)
        self.op.write(total)


class TestRates:
    def test_multirate_downsampling(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(ConstantSource("src", 2.0, timestep=ms(1)))
                self.dut = self.add(_MultiRateSum("dut"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.dut.ip)
                self.connect(self.dut.op, self.sink.ip)

        top = Top("top")
        Simulator(top).run(ms(6))
        assert top.sink.values() == [6.0, 6.0]

    def test_out_of_range_offset_rejected(self):
        class Bad(TdfModule):
            def __init__(self, name):
                super().__init__(name)
                self.ip = TdfIn()

            def processing(self):
                self.ip.read(1)  # rate is 1

        class Top(Cluster):
            def architecture(self):
                self.src = self.add(ConstantSource("src", 0.0, timestep=ms(1)))
                self.bad = self.add(Bad("bad"))
                self.connect(self.src.op, self.bad.ip)

        with pytest.raises(PortAccessError, match="out of range"):
            Simulator(Top("top")).run(ms(1))


class TestAccessRules:
    def test_read_outside_activation_rejected(self, passthrough_cluster):
        top = passthrough_cluster
        Simulator(top).run(ms(1))
        with pytest.raises(PortAccessError, match="outside of processing"):
            top.dut.ip.read()

    def test_write_outside_activation_rejected(self, passthrough_cluster):
        top = passthrough_cluster
        Simulator(top).run(ms(1))
        with pytest.raises(PortAccessError, match="outside of processing"):
            top.dut.op.write(1.0)

    def test_unbound_read_rejected(self):
        port = TdfIn("p")
        with pytest.raises(PortAccessError, match="unbound"):
            port.read()

    def test_unbound_write_rejected(self):
        port = TdfOut("p")
        with pytest.raises(PortAccessError, match="unbound"):
            port.write(1.0)


class TestSampleAndHold:
    def test_unwritten_samples_repeat_last_value(self):
        class Sometimes(TdfModule):
            def __init__(self, name):
                super().__init__(name)
                self.op = TdfOut()
                self.m_count = 0

            def set_attributes(self):
                self.set_timestep(ms(1))

            def processing(self):
                if self.m_count == 0:
                    self.op.write(42.0)
                self.m_count += 1

        class Top(Cluster):
            def architecture(self):
                self.src = self.add(Sometimes("src"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.sink.ip)

        top = Top("top")
        Simulator(top).run(ms(4))
        assert top.sink.values() == [42.0, 42.0, 42.0, 42.0]

    def test_before_first_write_uses_initial_value(self):
        class Late(TdfModule):
            def __init__(self, name):
                super().__init__(name)
                self.op = TdfOut()
                self.m_count = 0

            def set_attributes(self):
                self.set_timestep(ms(1))

            def processing(self):
                if self.m_count >= 2:
                    self.op.write(1.0)
                self.m_count += 1

        class Top(Cluster):
            def architecture(self):
                self.src = self.add(Late("src"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.sink.ip, initial_value=-5.0)

        top = Top("top")
        Simulator(top).run(ms(4))
        assert top.sink.values() == [-5.0, -5.0, 1.0, 1.0]


class TestUndrivenRead:
    def test_undriven_signal_yields_initial_value(self):
        class Reader(TdfModule):
            def __init__(self, name):
                super().__init__(name)
                self.ip = TdfIn()
                self.m_seen = []

            def set_attributes(self):
                self.set_timestep(ms(1))

            def processing(self):
                self.m_seen.append(self.ip.read())

        class Top(Cluster):
            def architecture(self):
                self.r = self.add(Reader("r"))
                self.r.ip.bind(self.signal("floating", initial_value=3.3))

        top = Top("top")
        Simulator(top).run(ms(2))
        assert top.r.m_seen == [3.3, 3.3]


class TestHooks:
    def test_write_hook_receives_token_indices(self, passthrough_cluster):
        top = passthrough_cluster
        seen = []
        top.dut.op.add_write_hook(lambda p, i, v, o: seen.append((i, v)))
        Simulator(top).run(ms(3))
        assert seen == [(0, 1.5), (1, 1.5), (2, 1.5)]

    def test_read_hook_fires_per_read_call(self):
        class DoubleReader(TdfModule):
            def __init__(self, name):
                super().__init__(name)
                self.ip = TdfIn()

            def processing(self):
                self.ip.read()
                self.ip.read()

        class Top(Cluster):
            def architecture(self):
                self.src = self.add(ConstantSource("src", 1.0, timestep=ms(1)))
                self.r = self.add(DoubleReader("r"))
                self.connect(self.src.op, self.r.ip)

        top = Top("top")
        seen = []
        top.r.ip.add_read_hook(lambda p, i, v, o: seen.append(i))
        Simulator(top).run(ms(2))
        # Two reads of the same sample per activation.
        assert seen == [0, 0, 1, 1]

    def test_clear_hooks(self, passthrough_cluster):
        top = passthrough_cluster
        seen = []
        top.dut.op.add_write_hook(lambda *a: seen.append(1))
        top.dut.op.clear_hooks()
        Simulator(top).run(ms(1))
        assert seen == []
