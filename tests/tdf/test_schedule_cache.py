"""Kernel schedule cache for dynamic-TDF re-elaboration."""

from repro.obs import telemetry_session
from repro.tdf import Cluster, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.library import CollectorSink, ConstantSource
from repro.tdf.simulator import Simulator


class TimestepFlipper(TdfModule):
    """Alternates between a coarse and a fine timestep every period."""

    def __init__(self, name="flipper", coarse=ms(2), fine=ms(1)):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_coarse = coarse
        self.m_fine = fine

    def set_attributes(self):
        self.set_timestep(self.m_coarse)

    def processing(self):
        self.op.write(self.ip.read())

    def change_attributes(self):
        target = self.m_fine if self.timestep == self.m_coarse else self.m_coarse
        self.request_timestep(target)


def _flipper_top():
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(ConstantSource("src", 1.0))
            self.dut = self.add(TimestepFlipper())
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.dut.ip)
            self.connect(self.dut.op, self.sink.ip)

    return Top("top")


class TestScheduleCache:
    def test_oscillation_hits_after_first_visit(self):
        sim = Simulator(_flipper_top())
        sim.run_periods(6)
        # Every period flips the timestep.  The initial (coarse)
        # schedule is seeded at elaboration, the fine one is built on
        # the first flip; every later flip is a cache hit.
        assert sim.reelaborations == 6
        assert sim.schedule_cache_misses == 1
        assert sim.schedule_cache_hits == 5

    def test_cached_schedule_restores_timesteps(self):
        sim = Simulator(_flipper_top())
        sim.run_periods(1)  # now on the fine schedule (fresh build)
        assert sim.schedule.module_timesteps["flipper"] == ms(1)
        sim.run_periods(1)  # back to coarse, served from the cache
        top = sim.cluster
        assert top.dut.timestep == ms(2)
        assert top.dut.ip.timestep == ms(2)
        assert top.dut.op.timestep == ms(2)
        sim.run_periods(1)  # fine again, also from the cache
        assert top.dut.timestep == ms(1)
        assert sim.schedule_cache_hits == 2

    def test_simulated_behaviour_unchanged_by_caching(self):
        # Compare against a simulator whose cache is defeated by
        # clearing it after every period: token streams must match.
        plain = Simulator(_flipper_top())
        plain.add_period_hook(lambda sim: sim._schedule_cache.clear())
        cached = Simulator(_flipper_top())
        plain.run_periods(8)
        cached.run_periods(8)
        assert plain.schedule_cache_hits == 0
        assert cached.schedule_cache_hits > 0
        assert plain.now == cached.now
        # Sample timestamps come from module/port timesteps, so this
        # also proves apply_timesteps() restored them correctly.
        assert plain.cluster.sink.m_samples == cached.cluster.sink.m_samples

    def test_telemetry_counters(self):
        with telemetry_session() as tel:
            sim = Simulator(_flipper_top())
            sim.run_periods(4)
        counters = {
            c.name: c.value
            for c in tel.metrics.counters()
            if c.name.startswith("tdf.schedule_cache")
        }
        assert counters["tdf.schedule_cache_misses"] == 1
        assert counters["tdf.schedule_cache_hits"] == 3

    def test_new_configuration_still_reelaborates(self):
        class ThreeWay(TimestepFlipper):
            def __init__(self):
                super().__init__()
                self.m_calls = 0

            def change_attributes(self):
                # ms(2) (initial) -> ms(1) -> ms(4) -> ms(2) -> ...
                cycle = [ms(1), ms(4), ms(2)]
                self.request_timestep(cycle[self.m_calls % 3])
                self.m_calls += 1

        class Top(Cluster):
            def architecture(self):
                self.src = self.add(ConstantSource("src", 1.0))
                self.dut = self.add(ThreeWay())
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.dut.ip)
                self.connect(self.dut.op, self.sink.ip)

        sim = Simulator(Top("top"))
        sim.run_periods(7)
        # Two configurations never seen before (ms(1), ms(4)) -> two
        # misses; every revisit is a hit.
        assert sim.reelaborations == 7
        assert sim.schedule_cache_misses == 2
        assert sim.schedule_cache_hits == 5
