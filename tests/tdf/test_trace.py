"""Unit tests for the signal tracer."""

import pytest

from repro.tdf import Simulator, Tracer, ms
from repro.tdf.errors import TdfError


class TestTracer:
    def test_records_time_value_rows(self, passthrough_cluster):
        top = passthrough_cluster
        tracer = Tracer()
        tracer.trace(top.signals[1], "out")
        Simulator(top).run(ms(2))
        rows = tracer.samples("out")
        assert [v for _, v in rows] == [1.5, 1.5]
        assert rows[0][0] == ms(0)
        assert rows[1][0] == ms(1)

    def test_values_and_last(self, passthrough_cluster):
        top = passthrough_cluster
        tracer = Tracer()
        tracer.trace(top.signals[0], "in")
        Simulator(top).run(ms(3))
        assert tracer.values("in") == [1.5, 1.5, 1.5]
        assert tracer.last("in") == 1.5

    def test_last_without_samples_raises(self, passthrough_cluster):
        tracer = Tracer()
        tracer.trace(passthrough_cluster.signals[0], "in")
        with pytest.raises(ValueError, match="no samples"):
            tracer.last("in")

    def test_duplicate_name_rejected(self, passthrough_cluster):
        tracer = Tracer()
        tracer.trace(passthrough_cluster.signals[0], "x")
        with pytest.raises(ValueError, match="already tracing"):
            tracer.trace(passthrough_cluster.signals[1], "x")

    def test_clear_keeps_subscription(self, passthrough_cluster):
        top = passthrough_cluster
        tracer = Tracer()
        tracer.trace(top.signals[0], "in")
        sim = Simulator(top)
        sim.run(ms(1))
        tracer.clear()
        sim.run(ms(1))
        assert len(tracer.values("in")) == 1

    def test_tabular_dump(self, passthrough_cluster):
        top = passthrough_cluster
        tracer = Tracer()
        tracer.trace(top.signals[0], "a")
        tracer.trace(top.signals[1], "b")
        Simulator(top).run(ms(2))
        text = tracer.to_tabular("ms")
        lines = text.strip().splitlines()
        assert lines[0] == "time_ms\ta\tb"
        assert len(lines) == 3  # header + 2 sample times
        assert lines[1].startswith("0\t")

    def test_names_in_order(self, passthrough_cluster):
        tracer = Tracer()
        tracer.trace(passthrough_cluster.signals[1], "z")
        tracer.trace(passthrough_cluster.signals[0], "a")
        assert tracer.names() == ["z", "a"]

    def test_trace_after_simulation_start_raises(self, passthrough_cluster):
        top = passthrough_cluster
        Simulator(top).run(ms(1))
        tracer = Tracer()
        with pytest.raises(TdfError, match="before the simulation starts"):
            tracer.trace(top.signals[0], "late")

    def test_csv_dump(self, passthrough_cluster):
        top = passthrough_cluster
        tracer = Tracer()
        tracer.trace(top.signals[0], "a")
        tracer.trace(top.signals[1], "b")
        Simulator(top).run(ms(2))
        text = tracer.to_csv("ms")
        lines = text.strip().splitlines()
        assert lines[0] == "time_ms,a,b"
        assert len(lines) == 3  # header + 2 sample times
        assert lines[1].startswith("0,")

    def test_csv_matches_tabular_table(self, passthrough_cluster):
        top = passthrough_cluster
        tracer = Tracer()
        tracer.trace(top.signals[0], "a")
        Simulator(top).run(ms(3))
        tabular = [l.split("\t") for l in tracer.to_tabular("us").strip().splitlines()]
        csv_rows = [l.split(",") for l in tracer.to_csv("us").strip().splitlines()]
        assert tabular == csv_rows
