"""Lockstep batch executor: members, early exit, traces, telemetry.

The batched block engine must produce byte-identical observable results
to running each member alone — these tests pin that invariant at the
engine level (sink streams, trace rows, member isolation); the consumer
level (probe streams, kill matrices, suite bytes) is covered in the
instrument/mutation/generation suites.
"""

import pytest

from repro.obs import Telemetry, telemetry_session
from repro.tdf import Simulator
from repro.tdf.engine.batch import (
    AUTO_BATCH_MAX,
    BatchMember,
    DeferredTraces,
    resolve_batch_size,
    run_batch,
)
from repro.tdf.trace import Tracer
from repro.testing.generate import (
    build_random_cluster,
    cluster_duration,
    random_cluster_params,
    random_suite,
)

SEEDS = (3, 7, 11, 19)


def _member(seed, testcase=None, traces=None):
    cluster = build_random_cluster(seed)
    if testcase is not None:
        testcase.apply(cluster)
    sim = Simulator(cluster, engine="block")
    sim.initialize()
    values, _, _ = random_cluster_params(seed)
    trace = DeferredTraces(cluster, traces) if traces else None
    return BatchMember(
        seed, sim, sim.now + cluster_duration(values), traces=trace
    )


def _serial_sink(seed, testcase=None):
    cluster = build_random_cluster(seed)
    if testcase is not None:
        testcase.apply(cluster)
    values, _, _ = random_cluster_params(seed)
    sim = Simulator(cluster, engine="block")
    sim.run(cluster_duration(values))
    sim.finish()
    return cluster.sink.values()


class TestResolveBatchSize:
    def test_none_disables(self):
        assert resolve_batch_size(None) is None
        assert resolve_batch_size(None, 100) is None

    def test_auto_tracks_population(self):
        assert resolve_batch_size("auto", 5) == 5
        assert resolve_batch_size("auto", 0) == 1
        assert resolve_batch_size("auto", 10_000) == AUTO_BATCH_MAX
        assert resolve_batch_size("auto") == AUTO_BATCH_MAX

    def test_explicit_int_used_as_is(self):
        assert resolve_batch_size(3, 100) == 3
        assert resolve_batch_size("8") == 8

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            resolve_batch_size(0)
        with pytest.raises(ValueError):
            resolve_batch_size(-2, 5)


class TestLockstepEquivalence:
    def test_heterogeneous_members_match_serial(self):
        # Different seeds -> different rates/durations: the batch mixes
        # alignment groups and members retire at different windows.
        members = [_member(seed) for seed in SEEDS]
        run_batch(members, label="test")
        for seed, member in zip(SEEDS, members):
            assert member.status == "done"
            member.sim.finish()
            assert member.sim.cluster.sink.values() == _serial_sink(seed)

    def test_same_seed_testcases_match_serial(self):
        # Same topology, different stimuli: the lockstep fast path.
        testcases = random_suite(7)
        members = [_member(7, tc) for tc in testcases]
        run_batch(members, label="test")
        for tc, member in zip(testcases, members):
            member.sim.finish()
            assert member.sim.cluster.sink.values() == _serial_sink(7, tc)

    def test_deferred_traces_match_tracer(self):
        cluster = build_random_cluster(7)
        sim = Simulator(cluster, engine="block")
        sim.initialize()
        values, _, _ = random_cluster_params(7)
        signal = cluster.sink.ip.signal.name
        member = BatchMember(
            "t", sim, sim.now + cluster_duration(values),
            traces=DeferredTraces(cluster, [signal]),
        )
        run_batch([member], label="test")

        reference = build_random_cluster(7)
        ref_sim = Simulator(reference, engine="block")
        tracer = Tracer()
        tracer.trace(reference._signals[signal])
        ref_sim.run(cluster_duration(values))
        assert member.traces.samples(signal) == tracer.samples(signal)


class TestMemberIsolation:
    def test_raising_member_retires_alone(self):
        members = [_member(seed) for seed in SEEDS]
        bad = members[1]
        original = bad.sim.cluster.dut.processing

        def explode():
            if bad.sim.cluster.dut.activation_count >= 3:
                raise RuntimeError("injected fault")
            original()

        bad.sim.cluster.dut.processing = explode
        run_batch(members, raise_errors=False, label="test")
        assert bad.status == "error"
        assert isinstance(bad.error, RuntimeError)
        for seed, member in zip(SEEDS, members):
            if member is bad:
                continue
            assert member.status == "done"
            member.sim.finish()
            assert member.sim.cluster.sink.values() == _serial_sink(seed)

    def test_raise_errors_propagates(self):
        member = _member(3)
        member.sim.cluster.dut.processing = lambda: 1 / 0
        with pytest.raises(ZeroDivisionError):
            run_batch([member], label="test")

    def test_on_window_early_exit(self):
        members = [_member(seed) for seed in SEEDS]
        victim = members[0]

        def stop_victim(member):
            return member is not victim

        run_batch(members, on_window=stop_victim, label="test")
        assert victim.status == "retired"
        assert victim.sim.now.femtoseconds < victim.stop_fs
        for member in members[1:]:
            assert member.status == "done"


class TestBatchTelemetry:
    def test_counters_recorded(self):
        with telemetry_session(Telemetry()) as tel:
            members = [_member(seed) for seed in SEEDS]
            run_batch(members, label="unit")
        counters = {
            (r["name"], tuple(sorted(r["labels"].items()))): r["value"]
            for r in tel.to_run()["metrics"]
            if r["kind"] == "counter"
        }
        label = (("label", "unit"),)
        assert counters[("tdf.engine_batch_runs", label)] == 1
        assert counters[("tdf.engine_batch_members", label)] == len(SEEDS)
        assert counters[("tdf.engine_batch_windows", label)] >= 1
        assert counters.get(("tdf.engine_batch_member_fires", label), 0) > 0

    def test_report_derives_batch_rates(self):
        from repro.obs.export import format_tree

        with telemetry_session(Telemetry()) as tel:
            run_batch([_member(seed) for seed in SEEDS], label="unit")
        text = format_tree(tel)
        assert "tdf.engine_batch_mean_width{label=unit}" in text
        assert "tdf.engine_batch_vector_share{label=unit}" in text
