"""Unit tests for the TDF module base class."""

import pytest

from repro.tdf import (
    Cluster,
    DynamicTdfError,
    Simulator,
    TdfError,
    TdfIn,
    TdfModule,
    TdfOut,
    ms,
    us,
)
from repro.tdf.library import CollectorSink, ConstantSource


class TestConstruction:
    def test_name_required(self):
        with pytest.raises(TdfError):
            TdfModule("")
        with pytest.raises(TdfError):
            TdfModule(None)

    def test_ports_registered_in_declaration_order(self):
        class M(TdfModule):
            def __init__(self):
                super().__init__("m")
                self.a = TdfIn()
                self.b = TdfOut()
                self.c = TdfIn()

            def processing(self):
                pass

        m = M()
        assert [p.name for p in m.ports()] == ["a", "b", "c"]
        assert [p.name for p in m.in_ports()] == ["a", "c"]
        assert [p.name for p in m.out_ports()] == ["b"]

    def test_port_lookup(self):
        class M(TdfModule):
            def __init__(self):
                super().__init__("m")
                self.ip = TdfIn()

            def processing(self):
                pass

        m = M()
        assert m.port("ip") is m.ip
        with pytest.raises(TdfError, match="no port"):
            m.port("nope")

    def test_non_port_attributes_unaffected(self):
        class M(TdfModule):
            def __init__(self):
                super().__init__("m")
                self.m_x = 5

            def processing(self):
                pass

        assert M().m_x == 5


class TestProcessingRegistration:
    def test_default_processing_raises_if_missing(self):
        m = TdfModule("m")
        with pytest.raises(NotImplementedError):
            m.processing()

    def test_register_processing_overrides(self):
        calls = []

        class M(TdfModule):
            def processing(self):
                calls.append("method")

        m = M("m")
        m.register_processing(lambda: calls.append("registered"))
        m.resolved_processing()()
        assert calls == ["registered"]

    def test_register_processing_rejects_non_callable(self):
        with pytest.raises(TdfError):
            TdfModule("m").register_processing(42)


class TestTimestepRequests:
    def test_set_timestep_validation(self):
        m = TdfModule("m")
        with pytest.raises(TdfError):
            m.set_timestep(ms(0))
        m.set_timestep(ms(2))
        assert m.requested_timestep == ms(2)

    def test_request_timestep_pends_until_consumed(self):
        m = TdfModule("m")
        m.request_timestep(us(100))
        assert m.has_pending_attribute_requests
        assert m.consume_attribute_requests()
        assert m.requested_timestep == us(100)
        assert not m.has_pending_attribute_requests

    def test_request_rate(self):
        class M(TdfModule):
            def __init__(self):
                super().__init__("m")
                self.ip = TdfIn()

            def processing(self):
                pass

        m = M()
        m.request_rate("ip", 4)
        m.consume_attribute_requests()
        assert m.ip.rate == 4

    def test_request_rate_unknown_port(self):
        m = TdfModule("m")
        with pytest.raises(DynamicTdfError, match="no port"):
            m.request_rate("ghost", 2)

    def test_attribute_changes_can_be_refused(self):
        class Frozen(TdfModule):
            ACCEPT_ATTRIBUTE_CHANGES = False

        with pytest.raises(DynamicTdfError, match="does not accept"):
            Frozen("m").request_timestep(ms(1))


class TestLifecycle:
    def test_activation_counts_and_times(self):
        class Probe(TdfModule):
            def __init__(self, name):
                super().__init__(name)
                self.ip = TdfIn()
                self.m_times = []

            def processing(self):
                self.ip.read()
                self.m_times.append(self.time)

        class Top(Cluster):
            def architecture(self):
                self.src = self.add(ConstantSource("src", 0.0, timestep=ms(2)))
                self.probe = self.add(Probe("probe"))
                self.connect(self.src.op, self.probe.ip)

        top = Top("top")
        Simulator(top).run(ms(6))
        assert top.probe.activation_count == 3
        assert top.probe.m_times == [ms(0), ms(2), ms(4)]

    def test_local_time_offsets_by_sample(self):
        m = TdfModule("m")
        m.timestep = ms(2)
        m._time = ms(10)
        assert m.local_time(0) == ms(10)
        assert m.local_time(3) == ms(16)

    def test_initialize_and_end_of_simulation_called(self):
        events = []

        class M(TdfModule):
            def __init__(self, name):
                super().__init__(name)
                self.op = TdfOut()

            def set_attributes(self):
                self.set_timestep(ms(1))

            def initialize(self):
                events.append("init")

            def processing(self):
                self.op.write(0.0)

            def end_of_simulation(self):
                events.append("end")

        class Top(Cluster):
            def architecture(self):
                self.m = self.add(M("m"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.m.op, self.sink.ip)

        sim = Simulator(Top("top"))
        sim.run(ms(2))
        sim.finish()
        assert events == ["init", "end"]
