"""Unit tests for the simulation kernel, including dynamic TDF."""

import pytest

from repro.tdf import (
    Cluster,
    SimulationError,
    Simulator,
    TdfIn,
    TdfModule,
    TdfOut,
    ms,
    us,
)
from repro.tdf.library import CollectorSink, ConstantSource, StimulusSource

from helpers import Accumulator, Passthrough


class TestBasicExecution:
    def test_run_executes_whole_periods(self, passthrough_cluster):
        sim = Simulator(passthrough_cluster)
        sim.run(ms(3))
        assert sim.now == ms(3)
        assert sim.periods_run == 3

    def test_run_rounds_up_to_period_boundary(self, passthrough_cluster):
        sim = Simulator(passthrough_cluster)
        sim.run(us(2500))
        assert sim.now == ms(3)

    def test_run_zero_duration(self, passthrough_cluster):
        sim = Simulator(passthrough_cluster)
        sim.run(ms(0))
        assert sim.periods_run == 0

    def test_negative_duration_rejected(self, passthrough_cluster):
        with pytest.raises(SimulationError):
            Simulator(passthrough_cluster).run(ms(-1))

    def test_run_periods(self, passthrough_cluster):
        sim = Simulator(passthrough_cluster)
        sim.run_periods(5)
        assert passthrough_cluster.sink.values() == [1.5] * 5

    def test_incremental_runs_accumulate(self, passthrough_cluster):
        sim = Simulator(passthrough_cluster)
        sim.run(ms(2))
        sim.run(ms(2))
        assert len(passthrough_cluster.sink.values()) == 4

    def test_period_hook_called(self, passthrough_cluster):
        sim = Simulator(passthrough_cluster)
        seen = []
        sim.add_period_hook(lambda s: seen.append(s.now))
        sim.run(ms(2))
        assert seen == [ms(1), ms(2)]


class TestDataflowCorrectness:
    def test_accumulator_state_across_periods(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(ConstantSource("src", 2.0, timestep=ms(1)))
                self.acc = self.add(Accumulator("acc"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.acc.ip)
                self.connect(self.acc.op, self.sink.ip)

        top = Top("top")
        Simulator(top).run(ms(4))
        assert top.sink.values() == [2.0, 4.0, 6.0, 8.0]

    def test_stimulus_source_samples_time(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(StimulusSource("src", lambda t: t * 1000.0, ms(1)))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.sink.ip)

        top = Top("top")
        Simulator(top).run(ms(4))
        assert top.sink.values() == [0.0, 1.0, 2.0, 3.0]


class _TimestepSwitcher(TdfModule):
    """Requests a new timestep after a given number of activations."""

    def __init__(self, name, switch_after, new_ts):
        super().__init__(name)
        self.op = TdfOut()
        self.m_switch_after = switch_after
        self.m_new_ts = new_ts
        self.m_times = []

    def set_attributes(self):
        self.set_timestep(ms(1))

    def processing(self):
        self.m_times.append(self.time)
        self.op.write(0.0)

    def change_attributes(self):
        if self.activation_count == self.m_switch_after and self.timestep != self.m_new_ts:
            self.request_timestep(self.m_new_ts)


class TestDynamicTdf:
    def _top(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(_TimestepSwitcher("src", 2, us(250)))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.sink.ip)

        return Top("top")

    def test_timestep_change_applies_at_period_boundary(self):
        top = self._top()
        sim = Simulator(top)
        sim.run(ms(3))
        assert sim.reelaborations == 1
        # Two activations at 1 ms, then 0.25 ms steps.
        assert top.src.m_times[:3] == [ms(0), ms(1), ms(2)]
        assert top.src.m_times[3] == ms(2) + us(250)

    def test_time_continues_monotonically(self):
        top = self._top()
        sim = Simulator(top)
        sim.run(ms(4))
        times = [t.femtoseconds for t in top.src.m_times]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_signal_data_survives_reelaboration(self):
        top = self._top()
        sim = Simulator(top)
        sim.run(ms(3))
        # All produced samples arrive at the sink, none lost or reset.
        assert len(top.sink.values()) == top.src.activation_count


class TestErrorPaths:
    def test_finish_calls_end_of_simulation(self):
        done = []

        class M(TdfModule):
            def __init__(self, name):
                super().__init__(name)
                self.op = TdfOut()

            def set_attributes(self):
                self.set_timestep(ms(1))

            def processing(self):
                self.op.write(0.0)

            def end_of_simulation(self):
                done.append(self.name)

        class Top(Cluster):
            def architecture(self):
                self.m = self.add(M("m"))
                self.s = self.add(CollectorSink("s"))
                self.connect(self.m.op, self.s.ip)

        sim = Simulator(Top("top"))
        sim.run(ms(1))
        sim.finish()
        assert done == ["m"]

    def test_exception_in_processing_propagates(self):
        class Boom(TdfModule):
            def __init__(self, name):
                super().__init__(name)
                self.op = TdfOut()

            def set_attributes(self):
                self.set_timestep(ms(1))

            def processing(self):
                raise RuntimeError("boom")

        class Top(Cluster):
            def architecture(self):
                self.m = self.add(Boom("m"))
                self.s = self.add(CollectorSink("s"))
                self.connect(self.m.op, self.s.ip)

        with pytest.raises(RuntimeError, match="boom"):
            Simulator(Top("top")).run(ms(1))
