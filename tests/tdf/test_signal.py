"""Unit tests for the token-stream signal."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tdf import BindingError, Signal, SimulationError, TdfIn, TdfModule, TdfOut
from repro.tdf.time import ms


def _reader(name="m"):
    class M(TdfModule):
        def __init__(self, n):
            super().__init__(n)
            self.ip = TdfIn()

        def processing(self):
            pass

    return M(name).ip


def _writer(name="w"):
    class W(TdfModule):
        def __init__(self, n):
            super().__init__(n)
            self.op = TdfOut()

        def processing(self):
            pass

    return W(name).op


class TestTopology:
    def test_single_driver_enforced(self):
        sig = Signal("s")
        sig.attach_driver(_writer("a"))
        with pytest.raises(BindingError, match="already driven"):
            sig.attach_driver(_writer("b"))

    def test_same_driver_twice_ok(self):
        sig = Signal("s")
        port = _writer()
        sig.attach_driver(port)
        sig.attach_driver(port)
        assert sig.driver is port

    def test_multiple_readers(self):
        sig = Signal("s")
        r1, r2 = _reader("a"), _reader("b")
        sig.attach_reader(r1)
        sig.attach_reader(r2)
        assert sig.readers == [r1, r2]

    def test_reader_attach_idempotent(self):
        sig = Signal("s")
        r = _reader()
        sig.attach_reader(r)
        sig.attach_reader(r)
        assert sig.readers == [r]


class TestTokenFlow:
    def test_fifo_order(self):
        sig = Signal("s")
        r = _reader()
        sig.attach_reader(r)
        sig.reset()
        for i in range(5):
            sig.write(i * 10)
        assert sig.consume(r, 5) == [0, 10, 20, 30, 40]

    def test_write_returns_monotonic_indices(self):
        sig = Signal("s")
        assert [sig.write(v) for v in "abc"] == [0, 1, 2]

    def test_read_past_end_raises(self):
        sig = Signal("s")
        r = _reader()
        sig.attach_reader(r)
        sig.reset()
        sig.write(1.0)
        with pytest.raises(SimulationError, match="read past end"):
            sig.consume(r, 2)

    def test_peek_does_not_consume(self):
        sig = Signal("s")
        r = _reader()
        sig.attach_reader(r)
        sig.reset()
        sig.write(7.0)
        assert sig.peek(r) == 7.0
        assert sig.peek(r) == 7.0
        assert sig.consume(r, 1) == [7.0]

    def test_garbage_collection_bounds_memory(self):
        sig = Signal("s")
        r = _reader()
        sig.attach_reader(r)
        sig.reset()
        for i in range(10_000):
            sig.write(i)
            sig.consume(r, 1)
        # GC is amortised: the retained backlog stays below the small
        # collection threshold instead of growing with the stream.
        assert len(sig._tokens) <= 64

    def test_slowest_reader_retains_tokens(self):
        sig = Signal("s")
        fast, slow = _reader("fast"), _reader("slow")
        sig.attach_reader(fast)
        sig.attach_reader(slow)
        sig.reset()
        for i in range(10):
            sig.write(i)
        sig.consume(fast, 10)
        # slow has consumed nothing: everything must still be there.
        assert sig.consume(slow, 10) == list(range(10))


class TestDelaysAndInitialValues:
    def test_reader_delay_yields_initial_values(self):
        sig = Signal("s", initial_value=-1.0)
        r = _reader()
        r.set_delay(2)
        sig.attach_reader(r)
        sig.reset()
        sig.write(5.0)
        assert sig.consume(r, 3) == [-1.0, -1.0, 5.0]

    def test_reader_initial_values_list(self):
        sig = Signal("s")
        r = _reader()
        r.set_delay(2)
        r.set_initial_values([10.0, 20.0])
        sig.attach_reader(r)
        sig.reset()
        sig.write(30.0)
        assert sig.consume(r, 3) == [10.0, 20.0, 30.0]

    def test_output_delay_priming(self):
        sig = Signal("s", initial_value=0.5)
        r = _reader()
        sig.attach_reader(r)
        sig.reset()
        sig.prime_output_delay(2)
        sig.write(9.0)
        assert sig.consume(r, 3) == [0.5, 0.5, 9.0]

    def test_output_delay_priming_with_values(self):
        sig = Signal("s")
        r = _reader()
        sig.attach_reader(r)
        sig.reset()
        sig.prime_output_delay(2, [1.0, 2.0])
        assert sig.consume(r, 2) == [1.0, 2.0]


class TestObservers:
    def test_write_observer_sees_index_value_time(self):
        sig = Signal("s")
        seen = []
        sig.add_write_observer(lambda s, i, v, t: seen.append((i, v, t)))
        sig.write(4.2, ms(1))
        assert seen == [(0, 4.2, ms(1))]

    def test_read_observer_sees_negative_delay_indices(self):
        sig = Signal("s")
        r = _reader()
        r.set_delay(1)
        sig.attach_reader(r)
        sig.reset()
        seen = []
        sig.add_read_observer(lambda s, p, i, v: seen.append(i))
        sig.write(1.0)
        sig.consume(r, 2)
        assert seen == [-1, 0]

    def test_clear_observers(self):
        sig = Signal("s")
        seen = []
        sig.add_write_observer(lambda *a: seen.append(1))
        sig.clear_observers()
        sig.write(0.0)
        assert seen == []


class TestReset:
    def test_reset_clears_tokens_and_cursors(self):
        sig = Signal("s")
        r = _reader()
        r.set_delay(1)
        sig.attach_reader(r)
        sig.reset()
        sig.write(1.0)
        sig.consume(r, 1)
        sig.reset()
        assert sig.write_count == 0
        assert sig._cursors[id(r)] == -1


class TestProperties:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=50))
    def test_consume_returns_written_order(self, values):
        sig = Signal("s")
        r = _reader()
        sig.attach_reader(r)
        sig.reset()
        for v in values:
            sig.write(v)
        assert sig.consume(r, len(values)) == values

    @given(st.integers(0, 20), st.integers(0, 20))
    def test_available_accounting(self, written, delay):
        sig = Signal("s")
        r = _reader()
        r.set_delay(delay)
        sig.attach_reader(r)
        sig.reset()
        for i in range(written):
            sig.write(i)
        assert sig.available(r) == written + delay
