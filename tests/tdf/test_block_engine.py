"""Block engine ≡ interpreter: equivalence properties and unit tests.

The compiled block engine (:mod:`repro.tdf.engine`) must be an exact
drop-in for the per-firing interpreter: identical sample streams,
identical traced signals, identical probe event streams (content *and*
global order), identical exercised def-use pairs — for every cluster,
including multirate ones where the compiler partitions the schedule into
hoisted block runs, specialised SISO ops and interpreted fallbacks.
"""

import pytest
from hypothesis import given, settings

from repro.instrument import ProbeRuntime, instrument_processing
from repro.instrument.probes import PortReadEvent, PortWriteEvent, VarEvent
from repro.tdf import Cluster, Simulator, TdfModule, TdfOut, Tracer, ms
from repro.tdf.engine import BlockEngine, compile_program, resolve_engine
from repro.tdf.library import CollectorSink

# The random multirate cluster shapes live in repro.testing.generate so
# the mutation fuzzer can reuse them; these tests draw their Hypothesis
# parameters from the promoted strategies.
from repro.testing.generate import (
    BASE_MS,
    Expander,
    build_cluster as _build,
    rate_strategy,
    values_strategy,
)


def _execute(engine, values, up_rate, down_rate):
    """One instrumented simulation; returns (sink trace, probe)."""
    top = _build(values, up_rate, down_rate)
    probe = ProbeRuntime("top", batched=engine == "block")
    instrument_processing(top.dut, probe)
    sim = Simulator(top, engine=engine)
    sim.run(ms(BASE_MS * len(values)))
    sim.finish()
    return top.sink.values(), probe


class TestEquivalenceProperties:
    @settings(max_examples=25, deadline=None)
    @given(values_strategy(), rate_strategy(), rate_strategy())
    def test_traces_and_probe_streams_identical(self, values, up_rate, down_rate):
        """Sample stream and full probe event streams match event-for-event."""
        trace_i, probe_i = _execute("interp", values, up_rate, down_rate)
        trace_b, probe_b = _execute("block", values, up_rate, down_rate)
        assert trace_b == trace_i
        # Dataclass views of the batched buffer must equal the per-event
        # records including the global sequence numbers (= event order).
        assert probe_b.var_events == probe_i.var_events
        assert probe_b.port_writes == probe_i.port_writes
        assert probe_b.port_reads == probe_i.port_reads

    @settings(max_examples=10, deadline=None)
    @given(values_strategy(max_size=8), rate_strategy(), rate_strategy())
    def test_exercised_pairs_identical(self, values, up_rate, down_rate):
        """The full dynamic analysis yields identical coverage per engine."""
        from repro.analysis import analyze_cluster
        from repro.instrument import DynamicAnalyzer
        from repro.testing import TestCase

        def factory():
            return _build(values, up_rate, down_rate)

        static = analyze_cluster(factory())
        tc = TestCase("t", ms(BASE_MS * len(values)), lambda c: None)
        matches = {}
        for engine in ("interp", "block"):
            analyzer = DynamicAnalyzer(factory, static, engine=engine)
            matches[engine] = analyzer.run_testcase(tc)
        assert matches["block"].pairs == matches["interp"].pairs
        assert matches["block"].use_without_def == matches["interp"].use_without_def

    def test_traced_signals_identical(self):
        """A tracer subscription forces the fallback path yet stays exact."""
        rows = {}
        for engine in ("interp", "block"):
            top = _build([0.3, 1.2, -0.7, 2.0], 2, 2)
            tracer = Tracer()
            tracer.trace(top.dut.op.signal, "dut_out")
            Simulator(top, engine=engine).run(ms(BASE_MS * 4))
            rows[engine] = tracer.samples("dut_out")
        assert rows["block"] == rows["interp"]


class TestDynamicTdfUnderBlock:
    def _top(self):
        class Switcher(Expander):
            def change_attributes(self):
                if self.activation_count == 2 and self.op.rate == 3:
                    self.request_rate("op", 2)

        class Counting(TdfModule):
            def __init__(self, name="src"):
                super().__init__(name)
                self.op = TdfOut()
                self.m_n = 0

            def set_attributes(self):
                self.set_timestep(ms(3))

            def processing(self):
                self.op.write(float(self.m_n))
                self.m_n += 1

        class Top(Cluster):
            def architecture(self):
                self.src = self.add(Counting())
                self.up = self.add(Switcher(3, "up"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.up.ip)
                self.connect(self.up.op, self.sink.ip)

        return Top("top")

    def test_rate_change_matches_interp(self):
        """A mid-run schedule swap (window truncation + rollback on the
        block path) leaves exactly the interpreter's data behind."""
        results = {}
        for engine in ("interp", "block"):
            top = self._top()
            sim = Simulator(top, engine=engine)
            sim.run(ms(12))
            results[engine] = (sim.reelaborations, top.sink.values())
        assert results["block"] == results["interp"]
        assert results["block"][0] == 1


class TestCompilerClassification:
    def test_fallback_reasons_and_partition(self):
        top = _build([1.0, 2.0], 3, 2)
        probe = ProbeRuntime("top", batched=True)
        instrument_processing(top.dut, probe)
        sim = Simulator(top, engine="block")
        sim.initialize()
        program = compile_program(sim, sim.schedule)
        stats = program.stats
        fallbacks = stats["fallbacks"]
        assert "multirate" in fallbacks["up"]
        assert "multirate" in fallbacks["down"]
        assert "instrumented" in fallbacks["dut"]
        # The source hoists, the sink defers, the gain specialises: the
        # schedule is genuinely partitioned, not all-or-nothing.
        assert "src" in stats["pre_modules"]
        assert "sink" in stats["post_modules"]
        assert 0.0 < stats["block_ratio"] < 1.0
        assert (
            stats["block_firings"] + stats["interpreted_firings"]
            == stats["total_firings"]
        )

    def test_program_cached_on_schedule(self):
        top = _build([1.0, 2.0], 1, 1)
        sim = Simulator(top, engine="block")
        sim.initialize()
        engine = BlockEngine(sim)
        first = engine.program_for(sim.schedule)
        assert engine.program_for(sim.schedule) is first
        # A new hook invalidates the signature and forces a recompile.
        top.dut.op.add_write_hook(lambda p, i, v, o: None)
        assert engine.program_for(sim.schedule) is not first


class TestResolveEngine:
    def test_auto_and_none_resolve_to_block(self):
        assert resolve_engine("auto") == "block"
        assert resolve_engine(None) == "block"

    def test_explicit_names_pass_through(self):
        assert resolve_engine("interp") == "interp"
        assert resolve_engine("block") == "block"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("jit")


class TestProbeEventSlots:
    """PR satellite: the hot event dataclasses must stay __dict__-free."""

    @pytest.mark.parametrize("cls,args", [
        (VarEvent, (True, "v", "m", 1, 1)),
        (PortWriteEvent, ("s", 0, "v", "m", 1, None, 1)),
        (PortReadEvent, ("s", 0, "p", "m", "m", 1, False, 1)),
    ])
    def test_no_instance_dict(self, cls, args):
        event = cls(*args)
        assert not hasattr(event, "__dict__")
        with pytest.raises(AttributeError):
            event.arbitrary_attribute = 1
