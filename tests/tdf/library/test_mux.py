"""Unit tests for the analog mux/demux library models."""

from repro.tdf import Cluster, Simulator, ms
from repro.tdf.library import (
    AnalogDemuxTdf,
    AnalogMuxTdf,
    CollectorSink,
    ConstantSource,
    StimulusSource,
)


def _mux_top(select_wave):
    class Top(Cluster):
        def architecture(self):
            self.sel = self.add(StimulusSource("sel", select_wave, ms(1)))
            self.s0 = self.add(ConstantSource("s0", 10.0))
            self.s1 = self.add(ConstantSource("s1", 11.0))
            self.s2 = self.add(ConstantSource("s2", 12.0))
            self.s3 = self.add(ConstantSource("s3", 13.0))
            self.mux = self.add(AnalogMuxTdf("mux"))
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.sel.op, self.mux.ip_select)
            self.connect(self.s0.op, self.mux.ip_port_0)
            self.connect(self.s1.op, self.mux.ip_port_1)
            self.connect(self.s2.op, self.mux.ip_port_2)
            self.connect(self.s3.op, self.mux.ip_port_3)
            self.connect(self.mux.op_mux_out, self.sink.ip)

    return Top("top")


class TestMux:
    def test_selects_each_input(self):
        values = iter([0, 1, 2, 3])
        top = _mux_top(lambda t: next(values))
        Simulator(top).run(ms(4))
        assert top.sink.values() == [10.0, 11.0, 12.0, 13.0]

    def test_invalid_select_outputs_zero(self):
        top = _mux_top(lambda t: 7)
        Simulator(top).run(ms(2))
        assert top.sink.values() == [0.0, 0.0]


class TestDemux:
    def test_routes_to_selected_output(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(ConstantSource("src", 9.0, timestep=ms(1)))
                self.sel = self.add(StimulusSource("sel", lambda t: 1))
                self.demux = self.add(AnalogDemuxTdf("demux"))
                self.sinks = [self.add(CollectorSink(f"s{i}")) for i in range(4)]
                self.connect(self.src.op, self.demux.ip)
                self.connect(self.sel.op, self.demux.ip_select)
                self.connect(self.demux.op_port_0, self.sinks[0].ip)
                self.connect(self.demux.op_port_1, self.sinks[1].ip)
                self.connect(self.demux.op_port_2, self.sinks[2].ip)
                self.connect(self.demux.op_port_3, self.sinks[3].ip)

        top = Top("top")
        Simulator(top).run(ms(2))
        assert top.sinks[1].values() == [9.0, 9.0]
        for i in (0, 2, 3):
            assert top.sinks[i].values() == [0.0, 0.0]
