"""Cross-cutting checks of the library components' analysis flags.

The classification semantics hinge on these flags (DESIGN.md): only the
SISO gain/delay/buffer redefine; every library component anchors its
input uses at the netlist; testbench modules stay out of the analysis.
A regression here would silently change every system's class mix.
"""

import pytest

from repro.tdf import library


REDEFINING = {"GainTdf", "DelayTdf", "BufferTdf"}
TESTBENCH = {
    "StimulusSource", "ConstantSource", "SineSource", "StepSource",
    "RampSource", "CollectorSink", "LedSink", "NullSink",
}


def _component_classes():
    from repro.tdf.module import TdfModule

    for name in library.__all__:
        obj = getattr(library, name)
        if isinstance(obj, type) and issubclass(obj, TdfModule):
            yield name, obj


class TestFlags:
    def test_only_siso_elements_redefine(self):
        for name, cls in _component_classes():
            assert cls.REDEFINING == (name in REDEFINING), name

    def test_every_component_is_opaque_for_uses(self):
        for name, cls in _component_classes():
            assert cls.OPAQUE_USES, name

    def test_testbench_components_flagged(self):
        for name, cls in _component_classes():
            assert cls.TESTBENCH == (name in TESTBENCH), name

    def test_redefining_elements_are_siso(self):
        for name, cls in _component_classes():
            if name in REDEFINING:
                instance = cls(name.lower()) if name != "GainTdf" else cls("g", 1.0)
                assert len(instance.in_ports()) == 1, name
                assert len(instance.out_ports()) == 1, name
