"""Unit tests for arithmetic/threshold library models."""

import pytest

from repro.tdf import Cluster, Simulator, ms
from repro.tdf.library import (
    AdderTdf,
    CollectorSink,
    ComparatorTdf,
    MultiplierTdf,
    OffsetTdf,
    SaturatorTdf,
    SchmittTriggerTdf,
    StimulusSource,
    SubtractorTdf,
)


def _run_two_input(element, wave_a, wave_b, periods=4):
    class Top(Cluster):
        def architecture(self):
            self.a = self.add(StimulusSource("a", wave_a, ms(1)))
            self.b = self.add(StimulusSource("b", wave_b))
            self.e = self.add(element)
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.a.op, self.e.ip_a)
            self.connect(self.b.op, self.e.ip_b)
            self.connect(self.e.op, self.sink.ip)

    top = Top("top")
    Simulator(top).run(ms(periods))
    return top.sink.values()


def _run_siso(element, wave, periods=4):
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource("src", wave, ms(1)))
            self.e = self.add(element)
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.e.ip)
            self.connect(self.e.op, self.sink.ip)

    top = Top("top")
    Simulator(top).run(ms(periods))
    return top.sink.values()


class TestTwoInput:
    def test_adder(self):
        assert _run_two_input(AdderTdf("e"), lambda t: 2.0, lambda t: 3.0) == [5.0] * 4

    def test_subtractor(self):
        assert _run_two_input(SubtractorTdf("e"), lambda t: 2.0, lambda t: 3.0) == [-1.0] * 4

    def test_multiplier(self):
        assert _run_two_input(MultiplierTdf("e"), lambda t: 2.0, lambda t: 3.0) == [6.0] * 4


class TestSiso:
    def test_offset(self):
        assert _run_siso(OffsetTdf("e", 10.0), lambda t: 1.0) == [11.0] * 4

    def test_saturator_clamps_both_sides(self):
        values = iter([-5.0, 0.5, 5.0, 1.0])
        wave = lambda t: next(values)
        assert _run_siso(SaturatorTdf("e", -1.0, 1.0), wave) == [-1.0, 0.5, 1.0, 1.0]

    def test_saturator_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            SaturatorTdf("e", 2.0, 1.0)

    def test_comparator(self):
        values = iter([0.5, 1.5, 1.0, 2.0])
        wave = lambda t: next(values)
        assert _run_siso(ComparatorTdf("e", 1.0), wave) == [False, True, False, True]

    def test_schmitt_hysteresis(self):
        values = iter([0.0, 2.5, 1.5, 0.5, 1.5, 2.5])
        wave = lambda t: next(values)
        out = _run_siso(SchmittTriggerTdf("e", 1.0, 2.0), wave, periods=6)
        assert out == [False, True, True, False, False, True]

    def test_schmitt_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            SchmittTriggerTdf("e", 2.0, 1.0)

    def test_none_are_redefining(self):
        for element in [
            AdderTdf("a"), OffsetTdf("o", 1.0), SaturatorTdf("s", 0, 1),
            ComparatorTdf("c", 1.0), SchmittTriggerTdf("st", 0, 1),
        ]:
            assert not element.REDEFINING
