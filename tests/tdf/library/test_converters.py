"""Unit tests for the ADC/DAC, including the paper's saturation bug."""

import pytest

from repro.tdf import Cluster, Simulator, ms
from repro.tdf.library import AdcTdf, CollectorSink, DacTdf, StimulusSource


def _run_adc(values, bits=9, lsb=1.0):
    samples = list(values)

    class Top(Cluster):
        def architecture(self):
            self.src = self.add(
                StimulusSource("src", lambda t: samples[min(int(t * 1000), len(samples) - 1)], ms(1))
            )
            self.adc = self.add(AdcTdf("adc", bits=bits, lsb=lsb))
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.adc.adc_i)
            self.connect(self.adc.adc_o, self.sink.ip)

    top = Top("top")
    Simulator(top).run(ms(len(samples)))
    return top.sink.values()


class TestAdc:
    def test_passes_in_range_values(self):
        assert _run_adc([100.0, 250.0, 511.0]) == [100.0, 250.0, 511.0]

    def test_9bit_saturates_at_512(self):
        # The paper's interface bug: anything above 512 mV is clamped.
        assert _run_adc([600.0, 1000.0, 512.0]) == [512.0, 512.0, 512.0]

    def test_wider_adc_fixes_the_bug(self):
        assert _run_adc([650.0], bits=10) == [650.0]

    def test_negative_clamped_to_zero(self):
        assert _run_adc([-5.0]) == [0.0]

    def test_quantisation_to_lsb(self):
        assert _run_adc([100.4, 100.6], lsb=1.0) == [100.0, 101.0]
        assert _run_adc([103.0], lsb=4.0) == [104.0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdcTdf("a", bits=0)
        with pytest.raises(ValueError):
            AdcTdf("a", lsb=0.0)


class TestDac:
    def test_code_to_voltage(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(StimulusSource("src", lambda t: 100, ms(1)))
                self.dac = self.add(DacTdf("dac", bits=9, lsb=0.01))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.dac.dac_i)
                self.connect(self.dac.dac_o, self.sink.ip)

        top = Top("top")
        Simulator(top).run(ms(1))
        assert top.sink.values() == [1.0]

    def test_code_clamped_to_range(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(StimulusSource("src", lambda t: 9999, ms(1)))
                self.dac = self.add(DacTdf("dac", bits=4, lsb=1.0))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.dac.dac_i)
                self.connect(self.dac.dac_o, self.sink.ip)

        top = Top("top")
        Simulator(top).run(ms(1))
        assert top.sink.values() == [15.0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DacTdf("d", bits=0)
        with pytest.raises(ValueError):
            DacTdf("d", lsb=-1.0)
