"""Unit tests for the redefining SISO elements (gain / delay / buffer)."""

from repro.tdf import Cluster, Simulator, ms
from repro.tdf.library import (
    BufferTdf,
    CollectorSink,
    ConstantSource,
    DelayTdf,
    GainTdf,
    StimulusSource,
)


def _chain(element, waveform=lambda t: t * 1000.0):
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource("src", waveform, ms(1)))
            self.e = self.add(element)
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.e.ip)
            self.connect(self.e.op, self.sink.ip)

    return Top("top")


class TestGain:
    def test_amplifies(self):
        top = _chain(GainTdf("g", 2.5), lambda t: 4.0)
        Simulator(top).run(ms(3))
        assert top.sink.values() == [10.0, 10.0, 10.0]

    def test_is_redefining_and_opaque(self):
        g = GainTdf("g", 1.0)
        assert g.REDEFINING
        assert g.OPAQUE_USES


class TestDelay:
    def test_unit_delay_shifts_stream(self):
        top = _chain(DelayTdf("d", 1))
        Simulator(top).run(ms(4))
        assert top.sink.values() == [0.0, 0.0, 1.0, 2.0]

    def test_multi_sample_delay_with_initial_value(self):
        top = _chain(DelayTdf("d", 3, initial_value=-1.0))
        Simulator(top).run(ms(5))
        assert top.sink.values() == [-1.0, -1.0, -1.0, 0.0, 1.0]

    def test_delay_breaks_feedback_loop(self):
        from helpers import Passthrough

        class Loop(Cluster):
            def architecture(self):
                self.p = self.add(Passthrough("p"))
                self.d = self.add(DelayTdf("d", 1))
                self.d.register_processing(self.d.processing)  # no-op sanity
                self.sink = self.add(CollectorSink("sink"))
                sig_fw = self.connect(self.p.op, self.d.ip)
                self.sink.ip.bind(sig_fw)
                self.connect(self.d.op, self.p.ip)
                self.p.set_timestep(ms(1))

        top = Loop("loop")
        Simulator(top).run(ms(3))  # schedules without deadlock
        assert top.sink.values() == [0.0, 0.0, 0.0]

    def test_is_redefining(self):
        assert DelayTdf("d").REDEFINING


class TestBuffer:
    def test_regenerates_unchanged(self):
        top = _chain(BufferTdf("b"))
        Simulator(top).run(ms(3))
        assert top.sink.values() == [0.0, 1.0, 2.0]

    def test_is_redefining(self):
        assert BufferTdf("b").REDEFINING
