"""Unit tests for filter/calculus library models."""

import math

import pytest

from repro.tdf import Cluster, Simulator, ms
from repro.tdf.library import (
    CollectorSink,
    DifferentiatorTdf,
    FirFilterTdf,
    IirLowPassTdf,
    IntegratorTdf,
    MovingAverageTdf,
    StimulusSource,
)


def _run(element, wave, periods=5):
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource("src", wave, ms(1)))
            self.e = self.add(element)
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.e.ip)
            self.connect(self.e.op, self.sink.ip)

    top = Top("top")
    Simulator(top).run(ms(periods))
    return top.sink.values()


class TestFir:
    def test_impulse_response_equals_coefficients(self):
        values = iter([1.0, 0.0, 0.0, 0.0])
        out = _run(FirFilterTdf("f", [0.5, 0.3, 0.2]), lambda t: next(values), 4)
        assert out == pytest.approx([0.5, 0.3, 0.2, 0.0])

    def test_requires_coefficients(self):
        with pytest.raises(ValueError):
            FirFilterTdf("f", [])


class TestMovingAverage:
    def test_warms_up_then_averages(self):
        values = iter([4.0, 8.0, 12.0, 12.0])
        out = _run(MovingAverageTdf("f", 2), lambda t: next(values), 4)
        assert out == [4.0, 6.0, 10.0, 12.0]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            MovingAverageTdf("f", 0)


class TestIir:
    def test_step_response_converges(self):
        out = _run(IirLowPassTdf("f", 0.5), lambda t: 1.0, 8)
        assert out[0] == 0.5
        assert out[-1] > 0.99
        assert out == sorted(out)

    def test_alpha_range_checked(self):
        with pytest.raises(ValueError):
            IirLowPassTdf("f", 1.0)
        with pytest.raises(ValueError):
            IirLowPassTdf("f", -0.1)


class TestIntegrator:
    def test_constant_input_ramps(self):
        out = _run(IntegratorTdf("i"), lambda t: 1000.0, 4)
        # dt = 1 ms -> each sample adds 1.0.
        assert out == pytest.approx([1.0, 2.0, 3.0, 4.0])

    def test_initial_value(self):
        out = _run(IntegratorTdf("i", initial=10.0), lambda t: 0.0, 2)
        assert out == [10.0, 10.0]


class TestDifferentiator:
    def test_slope_of_ramp(self):
        out = _run(DifferentiatorTdf("d"), lambda t: t, 4)
        # d/dt of t is 1; the first sample differentiates from 0.
        assert out[1:] == pytest.approx([1.0, 1.0, 1.0])

    def test_constant_input_zero_slope(self):
        out = _run(DifferentiatorTdf("d"), lambda t: 5.0, 3)
        assert out[1:] == pytest.approx([0.0, 0.0])
