"""Unit tests for source and sink library models."""

import math

import pytest

from repro.tdf import Cluster, Simulator, ms
from repro.tdf.library import (
    CollectorSink,
    ConstantSource,
    LedSink,
    NullSink,
    RampSource,
    SineSource,
    StepSource,
    StimulusSource,
)


def _run(source, periods=4, sink_cls=CollectorSink):
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(source)
            self.sink = self.add(sink_cls("sink"))
            self.connect(self.src.op, self.sink.ip)

    top = Top("top")
    Simulator(top).run(ms(periods))
    return top


class TestSources:
    def test_constant(self):
        top = _run(ConstantSource("s", 3.3, timestep=ms(1)))
        assert top.sink.values() == [3.3] * 4

    def test_stimulus_waveform_sampled_at_port_times(self):
        top = _run(StimulusSource("s", lambda t: t * 1000.0, ms(1)))
        assert top.sink.values() == [0.0, 1.0, 2.0, 3.0]

    def test_set_waveform_swaps(self):
        src = StimulusSource("s", lambda t: 0.0, ms(1))
        top = _run(src, periods=0)
        src.set_waveform(lambda t: 9.0)
        Simulator(top).run(ms(2))
        assert top.sink.values() == [9.0, 9.0]

    def test_step(self):
        top = _run(StepSource("s", 0.0, 1.0, step_time=0.002, timestep=ms(1)))
        assert top.sink.values() == [0.0, 0.0, 1.0, 1.0]

    def test_ramp_and_hold(self):
        top = _run(RampSource("s", 0.0, 3.0, duration=0.003, timestep=ms(1)))
        assert top.sink.values() == pytest.approx([0.0, 1.0, 2.0, 3.0])

    def test_ramp_duration_validated(self):
        with pytest.raises(ValueError):
            RampSource("s", 0.0, 1.0, duration=0.0)

    def test_sine(self):
        top = _run(SineSource("s", amplitude=2.0, frequency_hz=250.0, timestep=ms(1)))
        assert top.sink.values() == pytest.approx([0.0, 2.0, 0.0, -2.0], abs=1e-9)

    def test_sources_are_testbench(self):
        assert ConstantSource("s", 0.0).TESTBENCH


class TestSinks:
    def test_collector_records_times(self):
        top = _run(ConstantSource("s", 1.0, timestep=ms(2)), periods=4)
        assert top.sink.times() == pytest.approx([0.0, 0.002])

    def test_collector_max_samples(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(ConstantSource("s", 1.0, timestep=ms(1)))
                self.sink = self.add(CollectorSink("sink", max_samples=2))
                self.connect(self.src.op, self.sink.ip)

        top = Top("top")
        Simulator(top).run(ms(5))
        assert len(top.sink.values()) == 2

    def test_led_latches_and_records_transitions(self):
        values = iter([0, 1, 1, 0])
        top = _run(StimulusSource("s", lambda t: next(values), ms(1)), sink_cls=LedSink)
        assert not top.sink.is_on
        assert top.sink.ever_on()
        assert [(round(t, 3), s) for t, s in top.sink.m_transitions] == [
            (0.001, True),
            (0.003, False),
        ]

    def test_led_clear(self):
        values = iter([1, 1])
        top = _run(StimulusSource("s", lambda t: next(values), ms(1)), periods=2, sink_cls=LedSink)
        top.sink.clear()
        assert not top.sink.ever_on()

    def test_null_sink_consumes(self):
        top = _run(ConstantSource("s", 1.0, timestep=ms(1)), sink_cls=NullSink)
        assert top.sink.activation_count == 4
