"""Unit tests for SDF elaboration: balance, timesteps, PASS, deadlock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tdf import (
    Cluster,
    RateConsistencyError,
    SchedulingDeadlockError,
    Simulator,
    TdfIn,
    TdfModule,
    TdfOut,
    TimestepError,
    elaborate,
    ms,
    us,
)
from repro.tdf.library import CollectorSink, ConstantSource

from helpers import Passthrough


class _Producer(TdfModule):
    def __init__(self, name, rate=1, timestep=None):
        super().__init__(name)
        self.op = TdfOut()
        self._rate = rate
        self._ts = timestep

    def set_attributes(self):
        self.op.set_rate(self._rate)
        if self._ts is not None:
            self.set_timestep(self._ts)

    def processing(self):
        for i in range(self.op.rate):
            self.op.write(float(i), i)


class _Consumer(TdfModule):
    def __init__(self, name, rate=1):
        super().__init__(name)
        self.ip = TdfIn()
        self._rate = rate

    def set_attributes(self):
        self.ip.set_rate(self._rate)

    def processing(self):
        for i in range(self.ip.rate):
            self.ip.read(i)


def _link(producer, consumer):
    class Top(Cluster):
        def architecture(self):
            self.p = self.add(producer)
            self.c = self.add(consumer)
            self.connect(self.p.op, self.c.ip)

    return Top("top")


class TestRepetitionVector:
    def test_single_rate(self):
        top = _link(_Producer("p", 1, ms(1)), _Consumer("c", 1))
        schedule = elaborate(top)
        assert schedule.repetitions == {"p": 1, "c": 1}

    def test_multirate_2_to_3(self):
        top = _link(_Producer("p", 2, ms(1)), _Consumer("c", 3))
        schedule = elaborate(top)
        # 2*q_p == 3*q_c  ->  q_p=3, q_c=2.
        assert schedule.repetitions == {"p": 3, "c": 2}
        assert len(schedule.firings) == 5

    def test_inconsistent_rates_rejected(self):
        class Fork(Cluster):
            def architecture(self):
                self.p = self.add(_Producer("p", 2, ms(1)))
                self.a = self.add(_Consumer("a", 2))
                self.b = self.add(_Consumer("b", 3))
                sig = self.connect(self.p.op, self.a.ip)
                self.b.ip.bind(sig)
                # Close an inconsistent loop: a and b re-join.
                self.q = self.add(_Producer("q", 1))
                self.r = self.add(_Consumer("r", 1))
                self.connect(self.q.op, self.r.ip)
                # a:2 and b:3 reading the same signal forces q_a*2 == q_b*3
                # against q_a == q_b via a shared producer below.
                self.x = self.add(_TwoOut("x"))
                self.ya = self.add(_Consumer("ya", 1))
                self.yb = self.add(_Consumer("yb", 1))

        # Simpler direct construction of inconsistency:
        class Bad(Cluster):
            def architecture(self):
                self.p = self.add(_Producer("p", 2, ms(1)))
                self.c = self.add(_Consumer("c", 3))
                self.back = self.add(_Producer("back", 1))
                sig = self.connect(self.p.op, self.c.ip)

        # p(2) -> c(3) alone is consistent (3:2); add a second edge with
        # different ratio to break it.
        class Inconsistent(Cluster):
            def architecture(self):
                self.a = self.add(_ProducerConsumer("a", out_rate=2, in_rate=1))
                self.b = self.add(_ProducerConsumer("b", out_rate=1, in_rate=1))
                self.connect(self.a.op, self.b.ip)   # q_b = 2 q_a
                self.connect(self.b.op, self.a.ip)   # q_a = q_b  -> contradiction

        with pytest.raises(RateConsistencyError):
            elaborate(Inconsistent("bad"))


class _ProducerConsumer(TdfModule):
    def __init__(self, name, out_rate=1, in_rate=1):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self._out_rate = out_rate
        self._in_rate = in_rate

    def set_attributes(self):
        self.op.set_rate(self._out_rate)
        self.ip.set_rate(self._in_rate)
        self.set_timestep(ms(1))

    def processing(self):
        pass


class _TwoOut(TdfModule):
    def __init__(self, name):
        super().__init__(name)
        self.op_a = TdfOut()
        self.op_b = TdfOut()

    def processing(self):
        pass


class TestTimestepPropagation:
    def test_derived_through_signal(self):
        top = _link(_Producer("p", 1, ms(2)), _Consumer("c", 1))
        elaborate(top)
        assert top.c.timestep == ms(2)
        assert top.c.ip.timestep == ms(2)

    def test_multirate_port_timesteps(self):
        top = _link(_Producer("p", 2, ms(2)), _Consumer("c", 1))
        schedule = elaborate(top)
        # p fires every 2 ms emitting 2 samples -> sample period 1 ms;
        # c consumes 1 per firing -> c fires every 1 ms.
        assert top.p.op.timestep == ms(1)
        assert top.c.timestep == ms(1)
        assert schedule.repetitions == {"p": 1, "c": 2}

    def test_missing_timestep_rejected(self):
        top = _link(_Producer("p", 1, None), _Consumer("c", 1))
        with pytest.raises(TimestepError, match="no timestep"):
            elaborate(top)

    def test_conflicting_timesteps_rejected(self):
        class Both(Cluster):
            def architecture(self):
                self.p = self.add(_Producer("p", 1, ms(1)))
                self.c = self.add(_AnchoredConsumer("c", ms(2)))
                self.connect(self.p.op, self.c.ip)

        with pytest.raises(TimestepError):
            elaborate(Both("top"))

    def test_contradictory_requests_within_module(self):
        class Split(TdfModule):
            def __init__(self, name):
                super().__init__(name)
                self.ip = TdfIn()

            def set_attributes(self):
                self.set_timestep(ms(1))
                self.ip.set_timestep(ms(2))  # implies module ts 2 ms

            def processing(self):
                pass

        class Top(Cluster):
            def architecture(self):
                self.p = self.add(_Producer("p", 1))
                self.s = self.add(Split("s"))
                self.connect(self.p.op, self.s.ip)

        with pytest.raises(TimestepError, match="contradictory"):
            elaborate(Top("top"))

    def test_cluster_period_is_lcm(self):
        top = _link(_Producer("p", 3, ms(3)), _Consumer("c", 2))
        schedule = elaborate(top)
        # p: 3 samples / 3 ms -> sample period 1 ms; c consumes 2 -> 2 ms.
        # Balance: q_p=2, q_c=3, period 6 ms.
        assert schedule.period == ms(6)


class TestPass:
    def test_pipeline_order_respects_data(self, passthrough_cluster):
        schedule = elaborate(passthrough_cluster)
        order = [m.name for m, _ in schedule.firings]
        assert order.index("src") < order.index("dut") < order.index("sink")

    def test_feedback_without_delay_deadlocks(self):
        class Loop(Cluster):
            def architecture(self):
                self.a = self.add(_ProducerConsumer("a"))
                self.b = self.add(_ProducerConsumer("b", in_rate=1))
                self.connect(self.a.op, self.b.ip)
                self.connect(self.b.op, self.a.ip)

        with pytest.raises(SchedulingDeadlockError, match="deadlock"):
            elaborate(Loop("loop"))

    def test_feedback_with_delay_schedules(self):
        class Loop(Cluster):
            def architecture(self):
                self.a = self.add(_DelayedLoopModule("a"))
                self.b = self.add(_ProducerConsumer("b"))
                self.connect(self.a.op, self.b.ip)
                self.connect(self.b.op, self.a.ip)

        schedule = elaborate(Loop("loop"))
        assert len(schedule.firings) == 2

    def test_each_module_fires_repetition_times(self):
        top = _link(_Producer("p", 2, ms(1)), _Consumer("c", 3))
        schedule = elaborate(top)
        fired = {}
        for module, k in schedule.firings:
            fired[module.name] = fired.get(module.name, 0) + 1
        assert fired == schedule.repetitions


class _AnchoredConsumer(TdfModule):
    def __init__(self, name, ts):
        super().__init__(name)
        self.ip = TdfIn()
        self._ts = ts

    def set_attributes(self):
        self.set_timestep(self._ts)

    def processing(self):
        pass


class _DelayedLoopModule(TdfModule):
    def __init__(self, name):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def set_attributes(self):
        self.set_timestep(ms(1))
        self.ip.set_delay(1)

    def processing(self):
        pass


class TestPropertyBalance:
    @given(st.integers(1, 6), st.integers(1, 6))
    def test_balance_equation_holds(self, rp, rc):
        # 720 us divides evenly by every rate in [1, 6] (in femtoseconds),
        # so no fractional-timestep rejection interferes with the property.
        top = _link(_Producer("p", rp, us(720)), _Consumer("c", rc))
        schedule = elaborate(top)
        q = schedule.repetitions
        assert q["p"] * rp == q["c"] * rc
        from math import gcd

        assert gcd(q["p"], q["c"]) == 1
