"""Integration tests for multirate clusters (decimators/interpolators)."""

import pytest

from repro.tdf import Cluster, Simulator, TdfIn, TdfModule, TdfOut, ms, us


class Interpolator(TdfModule):
    """1 in -> 3 out per activation (zero-order hold upsampling)."""

    def __init__(self, name="interp"):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def set_attributes(self):
        self.op.set_rate(3)

    def processing(self):
        value = self.ip.read()
        self.op.write(value, 0)
        self.op.write(value, 1)
        self.op.write(value, 2)


class Decimator(TdfModule):
    """3 in -> 1 out per activation (average downsampling)."""

    def __init__(self, name="decim"):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def set_attributes(self):
        self.ip.set_rate(3)

    def processing(self):
        avg = (self.ip.read(0) + self.ip.read(1) + self.ip.read(2)) / 3.0
        self.op.write(avg)


class CountingSource(TdfModule):
    def __init__(self, name="src"):
        super().__init__(name)
        self.op = TdfOut()
        self.m_n = 0

    def set_attributes(self):
        self.set_timestep(ms(3))

    def initialize(self):
        self.m_n = 0

    def processing(self):
        self.op.write(float(self.m_n))
        self.m_n += 1


class Collector(TdfModule):
    def __init__(self, name="coll"):
        super().__init__(name)
        self.ip = TdfIn()
        self.m_seen = []

    def initialize(self):
        self.m_seen = []

    def processing(self):
        self.m_seen.append((self.local_time(), self.ip.read()))


class TestUpDownChain:
    def _top(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(CountingSource())
                self.up = self.add(Interpolator())
                self.down = self.add(Decimator())
                self.coll = self.add(Collector())
                self.connect(self.src.op, self.up.ip)
                self.connect(self.up.op, self.down.ip)
                self.connect(self.down.op, self.coll.ip)

        return Top("top")

    def test_roundtrip_preserves_samples(self):
        top = self._top()
        Simulator(top).run(ms(9))
        assert [v for _, v in top.coll.m_seen] == [0.0, 1.0, 2.0]

    def test_schedule_balances(self):
        top = self._top()
        sim = Simulator(top)
        sim.initialize()
        q = sim.schedule.repetitions
        assert q["src"] == q["interp"] == q["decim"] == q["coll"]

    def test_interpolated_port_timestep(self):
        top = self._top()
        Simulator(top).initialize()
        # src at 3 ms -> interpolator output emits 3 samples per 3 ms.
        assert top.up.op.timestep == ms(1)
        assert top.up.timestep == ms(3)

    def test_collector_times_follow_module_period(self):
        top = self._top()
        Simulator(top).run(ms(9))
        assert [t for t, _ in top.coll.m_seen] == [ms(0), ms(3), ms(6)]


class TestFanRates:
    def test_interpolated_stream_content(self):
        class Top(Cluster):
            def architecture(self):
                self.src = self.add(CountingSource())
                self.up = self.add(Interpolator())
                self.coll = self.add(Collector())
                self.connect(self.src.op, self.up.ip)
                self.connect(self.up.op, self.coll.ip)

        top = Top("top")
        Simulator(top).run(ms(6))
        values = [v for _, v in top.coll.m_seen]
        assert values == [0.0, 0.0, 0.0, 1.0, 1.0, 1.0]
        times = [t for t, _ in top.coll.m_seen]
        assert times == [ms(0), ms(1), ms(2), ms(3), ms(4), ms(5)]

    def test_rate_change_via_dynamic_tdf(self):
        class Switcher(Interpolator):
            def processing(self):
                value = self.ip.read()
                for i in range(self.op.rate):
                    self.op.write(value, i)

            def change_attributes(self):
                # After two activations, interpolate by 2 instead of 3.
                if self.activation_count == 2 and self.op.rate == 3:
                    self.request_rate("op", 2)

        class Top(Cluster):
            def architecture(self):
                self.src = self.add(CountingSource())
                self.up = self.add(Switcher("up"))
                self.coll = self.add(Collector())
                self.connect(self.src.op, self.up.ip)
                self.connect(self.up.op, self.coll.ip)

        top = Top("top")
        sim = Simulator(top)
        sim.run(ms(12))
        assert sim.reelaborations == 1
        values = [v for _, v in top.coll.m_seen]
        # Two activations at rate 3, then rate 2.
        assert values[:6] == [0.0, 0.0, 0.0, 1.0, 1.0, 1.0]
        assert values[6:8] == [2.0, 2.0]
