"""Unit tests for the exact time representation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tdf.time import ScaTime, fs, gcd_time, lcm_time, ms, ns, ps, sec, us


class TestConstruction:
    def test_unit_constructors(self):
        assert fs(1).femtoseconds == 1
        assert ps(1).femtoseconds == 10**3
        assert ns(1).femtoseconds == 10**6
        assert us(1).femtoseconds == 10**9
        assert ms(1).femtoseconds == 10**12
        assert sec(1).femtoseconds == 10**15

    def test_float_values_round_to_femtoseconds(self):
        assert ms(1.5).femtoseconds == 1_500_000_000_000
        assert us(0.5).femtoseconds == 500_000_000

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError, match="unknown time unit"):
            ScaTime(1, "minutes")

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            ScaTime(float("inf"), "ms")
        with pytest.raises(ValueError, match="finite"):
            ScaTime(float("nan"), "s")

    def test_zero(self):
        assert ScaTime.zero().femtoseconds == 0
        assert not ScaTime.zero()
        assert ms(1)


class TestArithmetic:
    def test_add_sub(self):
        assert ms(1) + us(500) == us(1500)
        assert ms(2) - ms(1) == ms(1)

    def test_scalar_multiply(self):
        assert ms(1) * 3 == ms(3)
        assert 2 * us(10) == us(20)
        assert ms(1) * 0.5 == us(500)

    def test_divide_by_time_gives_ratio(self):
        assert ms(1) / us(1) == 1000.0

    def test_divide_by_scalar_gives_time(self):
        assert ms(1) / 4 == us(250)

    def test_floordiv_and_mod(self):
        assert ms(1) // us(300) == 3
        assert ms(1) % us(300) == us(100)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            ms(1) / ScaTime.zero()
        with pytest.raises(ZeroDivisionError):
            ms(1) / 0
        with pytest.raises(ZeroDivisionError):
            ms(1) // ScaTime.zero()

    def test_negation_abs(self):
        assert -ms(1) == ScaTime.from_femtoseconds(-(10**12))
        assert abs(-ms(1)) == ms(1)


class TestComparison:
    def test_ordering(self):
        assert us(1) < ms(1) < sec(1)
        assert ms(1) >= ms(1)

    def test_equality_across_units(self):
        assert ms(1) == us(1000) == ns(10**6)

    def test_hashable(self):
        assert len({ms(1), us(1000), us(999)}) == 2

    def test_not_equal_to_other_types(self):
        assert ms(1) != 10**12


class TestFormatting:
    def test_exact_unit_display(self):
        assert str(ms(1)) == "1 ms"
        assert str(us(1500)) == "1.5 ms"
        assert str(ScaTime.zero()) == "0 s"

    def test_repr_roundtrip_info(self):
        assert "1 ms" in repr(ms(1))

    def test_to_unit(self):
        assert ms(1).to("us") == 1000.0
        assert ms(1).to_seconds() == 1e-3
        with pytest.raises(ValueError):
            ms(1).to("lightyears")


class TestGcdLcm:
    def test_gcd(self):
        assert gcd_time(ms(1), us(300)) == us(100)

    def test_lcm(self):
        assert lcm_time(us(300), us(200)) == us(600)


class TestProperties:
    @given(st.integers(-10**18, 10**18), st.integers(-10**18, 10**18))
    def test_addition_commutes(self, a, b):
        ta, tb = ScaTime.from_femtoseconds(a), ScaTime.from_femtoseconds(b)
        assert ta + tb == tb + ta

    @given(st.integers(-10**18, 10**18), st.integers(-10**18, 10**18))
    def test_add_sub_inverse(self, a, b):
        ta, tb = ScaTime.from_femtoseconds(a), ScaTime.from_femtoseconds(b)
        assert (ta + tb) - tb == ta

    @given(st.integers(0, 10**18), st.integers(1, 10**9))
    def test_floordiv_mod_identity(self, a, b):
        ta, tb = ScaTime.from_femtoseconds(a), ScaTime.from_femtoseconds(b)
        assert tb * (ta // tb) + (ta % tb) == ta

    @given(st.integers(-10**15, 10**15))
    def test_ordering_total(self, a):
        ta = ScaTime.from_femtoseconds(a)
        assert ta <= ta
        assert not ta < ta
