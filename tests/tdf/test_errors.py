"""Sanity tests for the kernel's exception taxonomy."""

import pytest

from repro.tdf import errors


class TestHierarchy:
    def test_all_derive_from_tdf_error(self):
        for name in [
            "ElaborationError", "BindingError", "RateConsistencyError",
            "TimestepError", "SchedulingDeadlockError", "SimulationError",
            "PortAccessError", "DynamicTdfError",
        ]:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.TdfError), name

    def test_elaboration_family(self):
        for cls in [
            errors.BindingError, errors.RateConsistencyError,
            errors.TimestepError, errors.SchedulingDeadlockError,
        ]:
            assert issubclass(cls, errors.ElaborationError)

    def test_simulation_family(self):
        assert issubclass(errors.PortAccessError, errors.SimulationError)
        assert issubclass(errors.DynamicTdfError, errors.SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.TdfError):
            raise errors.SchedulingDeadlockError("loop")
