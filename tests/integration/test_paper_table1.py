"""Integration test: reproduction of the paper's Table I semantics.

Runs the full pipeline on the sensor system with the paper's TC1/TC2/
TC3 and checks the qualitative facts Table I and §IV-B3 state:

* TC1 and TC2 exercise the TS-side associations, TC3 the HS side;
* the PWeak pair (mux output through the gain into the ADC) is
  exercised by *all three* testcases;
* the direct PFirm branch is exercised while the delayed branch is
  blocked by the ADC saturation bug (the controller never selects the
  delayed mux input);
* the T_LED-branch associations are never exercised ("an interface
  problem was found between ADC and control");
* coverage increases with every added testcase.
"""

import pytest

from repro.core import AssocClass, Criterion, run_dft, satisfied
from repro.systems.sensor import SenseTop, paper_testcases
from repro.testing import TestSuite


@pytest.fixture(scope="module")
def result():
    return run_dft(lambda: SenseTop(), TestSuite("paper", paper_testcases()))


class TestTable1:
    def test_class_universe_shape(self, result):
        counts = result.static.counts()
        assert counts[AssocClass.PFIRM] == 2
        assert counts[AssocClass.PWEAK] == 1
        assert counts[AssocClass.FIRM] >= 4
        assert counts[AssocClass.STRONG] > counts[AssocClass.FIRM]

    def test_pweak_exercised_by_every_testcase(self, result):
        pweak = result.static.by_class(AssocClass.PWEAK)[0]
        assert result.coverage.testcases_covering(pweak) == ["TC1", "TC2", "TC3"]

    def test_pfirm_direct_branch_exercised(self, result):
        direct = next(
            a for a in result.static.by_class(AssocClass.PFIRM)
            if a.def_model == "TS"
        )
        covering = result.coverage.testcases_covering(direct)
        assert "TC1" in covering and "TC2" in covering

    def test_pfirm_delayed_branch_blocked_by_adc_bug(self, result):
        """With the saturating ADC the controller never reaches the hold
        branch, so the mux never selects the delayed input."""
        delayed = next(
            a for a in result.static.by_class(AssocClass.PFIRM)
            if a.def_model == "sense_top"
        )
        assert not result.coverage.is_covered(delayed)

    def test_t_led_pairs_never_exercised(self, result):
        t_led_region = [
            a for a in result.static.associations
            if a.def_model == "ctrl" and a.var == "op_hold"
        ]
        # The op_hold=1 write lives in the unreachable hold branch.
        assert any(not result.coverage.is_covered(a) for a in t_led_region)

    def test_tc_specific_coverage(self, result):
        """TC1/TC2 exercise TS pairs, TC3 exercises HS pairs."""
        per_tc = result.dynamic.per_testcase
        # out_tmpr's Strong pair lives inside the interrupt branch, so
        # only a TS stimulus above 30 mV (TC1/TC2) exercises it.
        ts_pair = next(
            a for a in result.static.associations
            if a.var == "out_tmpr" and a.klass is AssocClass.STRONG
        )
        # HS's intr_=True def lives inside the newRH > 30 branch, which
        # only TC3's humidity stimulus reaches.
        hs_pair = next(
            a for a in result.static.associations
            if a.var == "intr_" and a.def_model == "HS"
            and a.klass is AssocClass.STRONG
        )
        assert ts_pair.key in per_tc["TC1"].pairs
        assert ts_pair.key in per_tc["TC2"].pairs
        assert ts_pair.key not in per_tc["TC3"].pairs
        assert hs_pair.key in per_tc["TC3"].pairs
        assert hs_pair.key not in per_tc["TC1"].pairs

    def test_coverage_increases_per_testcase(self):
        totals = []
        for n in (1, 2, 3):
            partial = run_dft(
                lambda: SenseTop(), TestSuite("p", paper_testcases()[:n])
            )
            totals.append(partial.coverage.exercised_total)
        assert totals[0] < totals[1] < totals[2]

    def test_all_dataflow_not_satisfied(self, result):
        """Table I leaves room for improvement: the paper notes the
        suite is not sufficient."""
        assert not satisfied(Criterion.ALL_DATAFLOW, result.coverage)

    def test_fixed_adc_unlocks_delayed_branch(self):
        fixed = run_dft(
            lambda: SenseTop(adc_bits=10), TestSuite("p", paper_testcases())
        )
        delayed = next(
            a for a in fixed.static.by_class(AssocClass.PFIRM)
            if a.def_model == "sense_top"
        )
        assert fixed.coverage.is_covered(delayed)
        assert fixed.coverage.exercised_total > run_dft(
            lambda: SenseTop(), TestSuite("p", paper_testcases())
        ).coverage.exercised_total

    def test_matrix_renders_paper_style(self, result):
        from repro.core import format_matrix

        text = format_matrix(result.coverage)
        assert "TC1" in text and "TC3" in text
        assert "Strong" in text and "PWeak" in text
