"""Integration: coverage persistence/merging across real pipeline runs."""

import json

import pytest

from repro.core import CoverageDatabase, coverage_to_dict, run_dft
from repro.systems.sensor import SenseTop, paper_testcases
from repro.testing import TestSuite


@pytest.fixture(scope="module")
def runs():
    tcs = paper_testcases()
    full = run_dft(lambda: SenseTop(), TestSuite("full", tcs))
    part1 = run_dft(lambda: SenseTop(), TestSuite("p1", tcs[:1]))
    part2 = run_dft(lambda: SenseTop(), TestSuite("p2", tcs[1:]))
    return full, part1, part2


class TestMergeSemantics:
    def test_merged_partial_runs_equal_full_run(self, runs):
        full, part1, part2 = runs
        db = CoverageDatabase.from_coverage(part1.coverage)
        db.merge(CoverageDatabase.from_coverage(part2.coverage))
        merged_covered, total = db.coverage_against(full.static)
        assert (merged_covered, total) == (
            full.coverage.exercised_total,
            full.coverage.static_total,
        )

    def test_parameter_change_keeps_fingerprint(self, runs):
        """The fingerprint is structural: widening the ADC changes a
        constructor parameter, not the association universe, so merging
        stays legal (the same source lines are being covered)."""
        full, _, _ = runs
        fixed = run_dft(
            lambda: SenseTop(adc_bits=10), TestSuite("f", paper_testcases()[:1])
        )
        db = CoverageDatabase.from_coverage(full.coverage)
        db.merge(CoverageDatabase.from_coverage(fixed.coverage))

    def test_structural_change_rejected(self, runs):
        full, _, _ = runs
        from repro.systems.buck_boost import BuckBoostTop
        from repro.testing import TestCase
        from repro.tdf import ms

        other = run_dft(
            lambda: BuckBoostTop(),
            TestSuite("bb", [TestCase("t", ms(2), lambda c: None)]),
        )
        db = CoverageDatabase.from_coverage(full.coverage)
        with pytest.raises(ValueError):
            db.merge(CoverageDatabase.from_coverage(other.coverage))

    def test_save_load_roundtrip(self, runs, tmp_path):
        full, _, _ = runs
        db = CoverageDatabase.from_coverage(full.coverage)
        path = tmp_path / "sensor.covdb.json"
        db.save(str(path))
        loaded = CoverageDatabase.load(str(path))
        assert loaded.coverage_against(full.static) == db.coverage_against(full.static)
        assert loaded.testcases == ["TC1", "TC2", "TC3"]


class TestExportOnRealRun:
    def test_export_is_json_and_consistent(self, runs):
        full, _, _ = runs
        data = coverage_to_dict(full.coverage)
        json.dumps(data)
        assert data["totals"]["static"] == full.coverage.static_total
        assert data["totals"]["exercised"] == full.coverage.exercised_total
        # Every association row carries the exercising testcases.
        covered_rows = [a for a in data["associations"] if a["covered_by"]]
        assert len(covered_rows) == full.coverage.exercised_total


class TestCliIntegration:
    def test_cli_json_and_db(self, tmp_path, capsys):
        from repro.cli import main

        db_path = tmp_path / "out.covdb.json"
        assert main(["run", "sensor", "--json", "--save-db", str(db_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cluster"] == "sense_top"
        assert db_path.exists()
        db = CoverageDatabase.load(str(db_path))
        assert db.cluster == "sense_top"
