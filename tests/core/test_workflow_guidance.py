"""Tests for report-guided refinement on a real (small) system.

Ties the workflow layer to the guidance semantics: the ranked missed
report of iteration N names the associations the next batch should
target, and covering them is visible in iteration N+1's record.
"""

import pytest

from repro.core import AssocClass, IterativeCampaign
from repro.tdf import Cluster, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.library import CollectorSink, StimulusSource
from repro.testing import TestCase


class Classifier(TdfModule):
    """Maps the input level to one of four bands."""

    def __init__(self, name="classifier"):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def processing(self):
        level = self.ip.read()
        band = 0
        if level > 3.0:
            band = 3
        elif level > 2.0:
            band = 2
        elif level > 1.0:
            band = 1
        self.op.write(band)


def _factory():
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
            self.dut = self.add(Classifier())
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.dut.ip)
            self.connect(self.dut.op, self.sink.ip)

    return Top("top")


def _tc(name, value):
    return TestCase(name, ms(2), lambda c: c.module("src").set_waveform(lambda t: value))


class TestGuidedRefinement:
    def test_missed_report_names_next_targets(self):
        campaign = IterativeCampaign(_factory, [_tc("band0", 0.5)])
        campaign.add_iteration([_tc("band2", 2.5)])
        campaign.add_iteration([_tc("band3", 3.5), _tc("band1", 1.5)])
        records = campaign.run()

        # Iteration 0 misses the band=1..3 defs.
        missed_0 = {a.definition.line for a in records[0].coverage.missed()
                    if a.var == "band"}
        assert len(missed_0) == 3

        # Iteration 1 covers the band=2 def the added test targets.
        missed_1 = {a.definition.line for a in records[1].coverage.missed()
                    if a.var == "band"}
        assert len(missed_1) == 2
        assert missed_1 < missed_0

        # Final iteration covers every band def.
        assert not [a for a in records[2].coverage.missed() if a.var == "band"]

    def test_band0_def_is_firm_rest_strong(self):
        campaign = IterativeCampaign(_factory, [_tc("band0", 0.5)])
        records = campaign.run()
        bands = [a for a in records[0].coverage.associations if a.var == "band"]
        klasses = sorted(a.klass.value for a in bands)
        # band=0 initialisation may be overwritten on three paths -> Firm;
        # the three branch defs are Strong.
        assert klasses == ["Firm", "Strong", "Strong", "Strong"]
