"""Unit tests for report formatting."""

from repro.analysis.cluster_analysis import StaticAnalysisResult
from repro.core.associations import (
    AssocClass,
    Association,
    Definition,
    SourceLocation,
    VarScope,
)
from repro.core.coverage import CoverageResult
from repro.core.report import format_iteration_table, format_matrix, format_summary
from repro.core.workflow import IterationRecord
from repro.core.criteria import Criterion
from repro.instrument.matching import MatchResult
from repro.instrument.runner import DynamicResult


def _coverage():
    static = StaticAnalysisResult(cluster="top")
    a1 = Association(
        "op_intr", SourceLocation(model="TS", line=13),
        SourceLocation(model="ctrl", line=43), AssocClass.STRONG, VarScope.PORT,
    )
    a2 = Association(
        "tmp", SourceLocation(model="AM", line=34),
        SourceLocation(model="AM", line=38), AssocClass.FIRM, VarScope.LOCAL,
    )
    static.associations = [a1, a2]
    static.definitions = [Definition(a.var, a.definition, a.scope) for a in [a1, a2]]
    dynamic = DynamicResult()
    m1 = MatchResult(testcase="TC1")
    m1.pairs = {a1.key}
    m2 = MatchResult(testcase="TC2")
    m2.pairs = set()
    m2.use_without_def = ["m.ip_ghost"]
    dynamic.per_testcase["TC1"] = m1
    dynamic.per_testcase["TC2"] = m2
    return CoverageResult(static, dynamic)


class TestMatrix:
    def test_contains_tuples_and_marks(self):
        text = format_matrix(_coverage())
        assert "(op_intr, 13, TS, 43, ctrl)" in text
        assert "x" in text and "-" in text

    def test_groups_by_class(self):
        text = format_matrix(_coverage())
        assert text.index("Strong") < text.index("Firm")

    def test_max_rows_truncation(self):
        text = format_matrix(_coverage(), max_rows=1)
        assert "more rows" in text


class TestSummary:
    def test_totals_and_percentages(self):
        text = format_summary(_coverage())
        assert "Static associations : 2" in text
        assert "Exercised (dynamic) : 1" in text
        assert "50.0%" in text

    def test_criteria_section(self):
        text = format_summary(_coverage())
        assert "all-Strong" in text
        assert "all-dataflow" in text
        assert "NOT satisfied" in text

    def test_use_without_def_section(self):
        text = format_summary(_coverage())
        assert "m.ip_ghost" in text

    def test_missed_ranking_shown(self):
        text = format_summary(_coverage())
        assert "Missed associations" in text
        assert "(tmp, 34, AM, 38, AM)" in text

    def test_missed_list_truncated(self):
        text = format_summary(_coverage(), max_missed=0)
        assert "(1 more)" in text


class TestIterationTable:
    def test_rows_and_dash_for_empty_class(self):
        rows = [
            IterationRecord(
                index=0,
                tests=17,
                static_total=573,
                exercised_total=446,
                class_percent={
                    AssocClass.STRONG: 86.0,
                    AssocClass.FIRM: 81.0,
                    AssocClass.PFIRM: None,
                    AssocClass.PWEAK: 67.0,
                },
                criteria={c: False for c in Criterion},
            )
        ]
        text = format_iteration_table(rows)
        assert "573" in text and "446" in text
        assert "86" in text and "-" in text

    def test_satisfied_criteria_listed(self):
        criteria = {c: False for c in Criterion}
        criteria[Criterion.ALL_PWEAK] = True
        rows = [
            IterationRecord(
                index=1, tests=20, static_total=10, exercised_total=9,
                class_percent={k: 100.0 for k in AssocClass},
                criteria=criteria,
            )
        ]
        text = format_iteration_table(rows)
        assert "all-PWeak" in text


class TestEnvelope:
    def _payload(self):
        return {"schema": "repro-dft-mutation/1", "total_mutants": 4}

    def test_wrap_and_read_round_trip(self):
        from repro.core.report import make_envelope, read_envelope

        doc = make_envelope(
            self._payload(), config_hash="abc123", fingerprint="f" * 12
        )
        view = read_envelope(doc)
        assert view.enveloped is True
        assert view.schema == "repro-dft-mutation/1"
        assert view.config_hash == "abc123"
        assert view.fingerprint == "f" * 12
        assert view.payload == self._payload()

    def test_schema_defaults_from_payload(self):
        from repro.core.report import make_envelope

        assert make_envelope(self._payload())["schema"] == "repro-dft-mutation/1"
        history = {"format": "repro-dft-history/1", "kind": "run"}
        assert make_envelope(history)["schema"] == "repro-dft-history/1"

    def test_explicit_schema_wins(self):
        from repro.core.report import make_envelope

        doc = make_envelope(self._payload(), schema="repro-dft-history/1")
        assert doc["schema"] == "repro-dft-history/1"

    def test_is_envelope(self):
        from repro.core.report import is_envelope, make_envelope

        assert is_envelope(make_envelope(self._payload()))
        assert not is_envelope(self._payload())
        assert not is_envelope(["nope"])
        assert not is_envelope({"schema": "x"})  # no payload dict

    def test_legacy_bare_report_lifted(self):
        from repro.core.report import read_envelope

        view = read_envelope(self._payload())
        assert view.enveloped is False
        assert view.schema == "repro-dft-mutation/1"
        assert view.payload == self._payload()
        assert view.config_hash is None

    def test_legacy_history_record_lifted(self):
        from repro.core.report import read_envelope

        record = {
            "format": "repro-dft-history/1",
            "kind": "run",
            "fingerprint": "beef",
            "config_hash": "cafe",
        }
        view = read_envelope(record)
        assert view.enveloped is False
        assert view.schema == "repro-dft-history/1"
        assert view.fingerprint == "beef"
        assert view.config_hash == "cafe"

    def test_non_mapping_rejected(self):
        import pytest

        from repro.core.report import read_envelope

        with pytest.raises(ValueError, match="must be a mapping"):
            read_envelope("not a dict")
