"""Tests for the end-to-end pipeline on a small cluster."""

import pytest

from repro.core import AssocClass, Criterion, evaluate_all, run_dft
from repro.tdf import Cluster, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.library import CollectorSink, DelayTdf, StimulusSource
from repro.testing import TestCase, TestSuite


class Thresholder(TdfModule):
    """Writes 1 above the threshold, 0 below (two exclusive branches)."""

    def __init__(self, name="thresh"):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def processing(self):
        level = 0.0
        if self.ip.read() > 1.0:
            level = 1.0
        self.op.write(level)


def _factory():
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
            self.dut = self.add(Thresholder())
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.dut.ip)
            self.connect(self.dut.op, self.sink.ip)

    return Top("top")


def _tc(name, value):
    return TestCase(
        name, ms(3), lambda c: c.module("src").set_waveform(lambda t: value)
    )


class TestPipeline:
    def test_stages_and_timings(self):
        result = run_dft(_factory, TestSuite("s", [_tc("lo", 0.0)]))
        assert set(result.timings) == {"static", "dynamic", "coverage"}
        assert all(t >= 0 for t in result.timings.values())

    def test_coverage_grows_with_testcases(self):
        low_only = run_dft(_factory, TestSuite("s", [_tc("lo", 0.0)]))
        both = run_dft(_factory, TestSuite("s", [_tc("lo", 0.0), _tc("hi", 5.0)]))
        assert both.coverage.exercised_total > low_only.coverage.exercised_total

    def test_branch_coverage_semantics(self):
        """The Firm pair (level=0 -> write) needs the low branch; the
        Strong pair (level=1 -> write) needs the high branch."""
        low = run_dft(_factory, TestSuite("s", [_tc("lo", 0.0)]))
        firm = [a for a in low.static.associations if a.klass is AssocClass.FIRM]
        assert len(firm) == 1
        assert low.coverage.is_covered(firm[0])
        strong_local = [
            a for a in low.static.associations
            if a.klass is AssocClass.STRONG and a.var == "level"
        ]
        assert len(strong_local) == 1
        assert not low.coverage.is_covered(strong_local[0])

        high = run_dft(_factory, TestSuite("s", [_tc("hi", 5.0)]))
        strong_local_hi = next(
            a for a in high.static.associations
            if a.klass is AssocClass.STRONG and a.var == "level"
        )
        assert high.coverage.is_covered(strong_local_hi)

    def test_all_dataflow_with_complete_suite(self):
        result = run_dft(
            _factory, TestSuite("s", [_tc("lo", 0.0), _tc("hi", 5.0)])
        )
        verdicts = evaluate_all(result.coverage)
        assert verdicts[Criterion.ALL_DATAFLOW]

    def test_deterministic_across_runs(self):
        suite = TestSuite("s", [_tc("lo", 0.0), _tc("hi", 5.0)])
        r1 = run_dft(_factory, suite)
        r2 = run_dft(_factory, suite)
        assert {a.key for a in r1.static.associations} == {
            a.key for a in r2.static.associations
        }
        assert r1.dynamic.exercised_keys() == r2.dynamic.exercised_keys()
