"""Tests for the iterative-refinement campaign."""

import pytest

from repro.core import AssocClass, IterativeCampaign
from repro.tdf import Cluster, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.errors import TdfError
from repro.tdf.library import CollectorSink, StimulusSource
from repro.testing import TestCase


class ThreeWay(TdfModule):
    """Three exclusive branches selected by the input level."""

    def __init__(self, name="threeway"):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def processing(self):
        v = self.ip.read()
        out = 0.0
        if v > 2.0:
            out = 2.0
        elif v > 1.0:
            out = 1.0
        self.op.write(out)


def _factory():
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))
            self.dut = self.add(ThreeWay())
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.dut.ip)
            self.connect(self.dut.op, self.sink.ip)

    return Top("top")


def _tc(name, value):
    return TestCase(
        name, ms(2), lambda c: c.module("src").set_waveform(lambda t: value)
    )


class TestCampaign:
    def _campaign(self):
        campaign = IterativeCampaign(_factory, [_tc("lo", 0.0)], name="w")
        campaign.add_iteration([_tc("mid", 1.5)])
        campaign.add_iteration([_tc("hi", 3.0)])
        return campaign

    def test_iteration_count_and_suites(self):
        campaign = self._campaign()
        assert campaign.iteration_count == 3
        assert campaign.suite_for(0).names() == ["lo"]
        assert campaign.suite_for(2).names() == ["lo", "mid", "hi"]

    def test_suite_for_out_of_range(self):
        with pytest.raises(TdfError, match="iteration 5 out of range"):
            self._campaign().suite_for(5)

    def test_monotone_coverage_growth(self):
        records = self._campaign().run()
        counts = [r.exercised_total for r in records]
        assert counts == sorted(counts)
        assert counts[0] < counts[-1]

    def test_static_universe_constant(self):
        records = self._campaign().run()
        totals = {r.static_total for r in records}
        assert len(totals) == 1

    def test_record_fields(self):
        records = self._campaign().run()
        assert [r.index for r in records] == [0, 1, 2]
        assert [r.tests for r in records] == [1, 2, 3]
        for record in records:
            assert set(record.class_percent) == set(AssocClass)
            assert 0.0 <= record.overall_percent <= 100.0

    def test_empty_iteration_rejected(self):
        campaign = IterativeCampaign(_factory, [_tc("lo", 0.0)])
        with pytest.raises(ValueError):
            campaign.add_iteration([])
