"""Unit tests for coverage persistence and merging."""

import json

import pytest

from repro.analysis.cluster_analysis import StaticAnalysisResult
from repro.core import (
    AssocClass,
    CoverageDatabase,
    CoverageResult,
    Criterion,
    coverage_to_dict,
    universe_fingerprint,
)
from repro.core.associations import Association, Definition, SourceLocation, VarScope
from repro.instrument.matching import MatchResult
from repro.instrument.runner import DynamicResult


def _assoc(var, dl, klass=AssocClass.STRONG):
    return Association(
        var=var,
        definition=SourceLocation(model="m", line=dl),
        use=SourceLocation(model="m", line=dl + 1),
        klass=klass,
        scope=VarScope.LOCAL,
    )


def _static(assocs):
    static = StaticAnalysisResult(cluster="top")
    static.associations = assocs
    static.definitions = [Definition(a.var, a.definition, a.scope) for a in assocs]
    return static


def _coverage(static, covered):
    dynamic = DynamicResult()
    match = MatchResult(testcase="t1")
    match.pairs = set(covered)
    dynamic.per_testcase["t1"] = match
    return CoverageResult(static, dynamic)


@pytest.fixture
def static():
    return _static([_assoc("a", 1), _assoc("b", 3)])


class TestFingerprint:
    def test_stable_across_order(self):
        s1 = _static([_assoc("a", 1), _assoc("b", 3)])
        s2 = _static([_assoc("b", 3), _assoc("a", 1)])
        assert universe_fingerprint(s1) == universe_fingerprint(s2)

    def test_changes_with_universe(self, static):
        other = _static([_assoc("a", 1)])
        assert universe_fingerprint(static) != universe_fingerprint(other)

    def test_changes_with_classification(self):
        s1 = _static([_assoc("a", 1, AssocClass.STRONG)])
        s2 = _static([_assoc("a", 1, AssocClass.FIRM)])
        assert universe_fingerprint(s1) != universe_fingerprint(s2)


class TestDatabase:
    def test_from_coverage_and_queries(self, static):
        cov = _coverage(static, {("a", "m", 1, "m", 2)})
        db = CoverageDatabase.from_coverage(cov)
        assert db.testcases == ["t1"]
        assert db.pairs_of("t1") == {("a", "m", 1, "m", 2)}
        assert db.coverage_against(static) == (1, 2)

    def test_merge_unions_pairs(self, static):
        db1 = CoverageDatabase.from_coverage(_coverage(static, {("a", "m", 1, "m", 2)}))
        db2 = CoverageDatabase.from_coverage(_coverage(static, {("b", "m", 3, "m", 4)}))
        db1.merge(db2)
        assert db1.coverage_against(static) == (2, 2)

    def test_merge_refuses_different_universe(self, static):
        other = _static([_assoc("z", 9)])
        db1 = CoverageDatabase.from_coverage(_coverage(static, set()))
        db2 = CoverageDatabase.from_coverage(_coverage(other, set()))
        with pytest.raises(ValueError, match="cannot merge"):
            db1.merge(db2)

    def test_coverage_against_wrong_universe(self, static):
        db = CoverageDatabase.from_coverage(_coverage(static, set()))
        with pytest.raises(ValueError, match="re-run the static analysis"):
            db.coverage_against(_static([_assoc("z", 9)]))

    def test_roundtrip_json(self, static, tmp_path):
        cov = _coverage(static, {("a", "m", 1, "m", 2)})
        db = CoverageDatabase.from_coverage(cov)
        path = tmp_path / "cov.json"
        db.save(str(path))
        loaded = CoverageDatabase.load(str(path))
        assert loaded.fingerprint == db.fingerprint
        assert loaded.pairs_of("t1") == db.pairs_of("t1")

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unsupported"):
            CoverageDatabase.from_dict({"format": "bogus"})

    def test_record_accumulates(self, static):
        db = CoverageDatabase("top", universe_fingerprint(static))
        db.record("t", [("a", "m", 1, "m", 2)])
        db.record("t", [("b", "m", 3, "m", 4)])
        assert len(db.pairs_of("t")) == 2


class TestExport:
    def test_coverage_to_dict_shape(self, static):
        cov = _coverage(static, {("a", "m", 1, "m", 2)})
        data = coverage_to_dict(cov)
        assert data["totals"] == {"static": 2, "exercised": 1, "percent": 50.0}
        assert data["classes"]["Strong"]["covered"] == 1
        assert data["criteria"]["all-Strong"]["satisfied"] is False
        assert data["criteria"]["all-uses"]["total"] == 2
        by_var = {a["var"]: a for a in data["associations"]}
        assert by_var["a"]["covered_by"] == ["t1"]
        assert by_var["b"]["covered_by"] == []
        json.dumps(data)  # JSON-serialisable end to end


class TestAllUses:
    def test_all_uses_counts_use_sites(self):
        # Two associations sharing one use site.
        a1 = Association(
            "x", SourceLocation(model="m", line=1),
            SourceLocation(model="m", line=9), AssocClass.STRONG, VarScope.LOCAL,
        )
        a2 = Association(
            "x", SourceLocation(model="m", line=3),
            SourceLocation(model="m", line=9), AssocClass.FIRM, VarScope.LOCAL,
        )
        static = _static([a1, a2])
        cov = _coverage(static, {a1.key})
        assert cov.use_sites() == [("x", "m", 9)]
        assert cov.covered_use_sites() == [("x", "m", 9)]
        from repro.core import satisfied

        assert satisfied(Criterion.ALL_USES, cov)
        # all-defs needs both defs covered, all-uses only the shared use.
        assert not satisfied(Criterion.ALL_DEFS, cov)
