"""Tests for the unified run configuration (repro.core.config)."""

import argparse
import dataclasses

import pytest

from repro import DftConfig
from repro.exec import ProcessExecutor, SerialExecutor


class TestDefaults:
    def test_frozen(self):
        cfg = DftConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.engine = "block"

    def test_replace_returns_new_instance(self):
        cfg = DftConfig()
        other = cfg.replace(engine="block", seed=7)
        assert (other.engine, other.seed) == ("block", 7)
        assert (cfg.engine, cfg.seed) == ("auto", 0)

    def test_defaults(self):
        cfg = DftConfig()
        assert cfg.engine == "auto"
        assert cfg.workers == 1
        assert cfg.static_cache is True
        assert cfg.reuse_dynamic_results is True
        assert cfg.budget_seconds is None
        assert cfg.budget_simulations is None


class TestFromArgs:
    def test_reads_present_attributes_only(self):
        args = argparse.Namespace(engine="block", seed=5)
        cfg = DftConfig.from_args(args)
        assert cfg.engine == "block"
        assert cfg.seed == 5
        assert cfg.workers == 1  # absent on args: dataclass default

    def test_cache_negation_flags(self):
        args = argparse.Namespace(no_static_cache=True, no_result_cache=True)
        cfg = DftConfig.from_args(args)
        assert cfg.static_cache is False
        assert cfg.reuse_dynamic_results is False

    def test_overrides_win(self):
        args = argparse.Namespace(engine="block")
        cfg = DftConfig.from_args(args, engine="interp", workers=3)
        assert cfg.engine == "interp"
        assert cfg.workers == 3

    def test_matcher_flag_folds_in(self):
        assert DftConfig().matcher == "auto"
        cfg = DftConfig.from_args(argparse.Namespace(matcher="vector"))
        assert cfg.matcher == "vector"

    def test_matcher_never_enters_config_hash(self):
        # All matchers are result-identical, so cached dynamic results
        # and history fingerprints must not fragment on the knob.
        hashes = {
            DftConfig(matcher=matcher).config_hash()
            for matcher in ("auto", "scan", "vector")
        }
        assert len(hashes) == 1


class TestResolvedWorkers:
    def test_explicit_workers_win(self):
        assert DftConfig(workers=4).resolved_workers(suite_len=2) == 4

    def test_auto_single_cpu_is_serial(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert DftConfig(workers=None).resolved_workers(suite_len=10) == 1

    def test_auto_small_suite_is_serial(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert DftConfig(workers=None).resolved_workers(suite_len=1) == 1

    def test_auto_caps_at_suite_size(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert DftConfig(workers=None).resolved_workers(suite_len=3) == 3


class TestMakeExecutor:
    REFS = ("repro.systems.sensor:SenseTop",
            "repro.systems.sensor:paper_testcases")

    def test_explicit_executor_wins(self):
        executor = SerialExecutor()
        cfg = DftConfig(executor=executor, workers=8)
        assert cfg.make_executor(*self.REFS, suite_len=10) is executor

    def test_serial_returns_none(self):
        assert DftConfig(workers=1).make_executor(*self.REFS, suite_len=10) is None

    def test_missing_refs_force_serial(self):
        cfg = DftConfig(workers=4)
        assert cfg.make_executor(None, None, suite_len=10) is None

    def test_parallel_builds_process_executor(self):
        cfg = DftConfig(workers=2)
        executor = cfg.make_executor(*self.REFS, suite_len=10)
        assert isinstance(executor, ProcessExecutor)


class TestFromArgsBase:
    def test_base_layers_under_flags(self):
        base = DftConfig(engine="interp", seed=9, workers=4)
        args = argparse.Namespace(engine="block")
        cfg = DftConfig.from_args(args, base=base)
        assert cfg.engine == "block"  # flag wins
        assert cfg.seed == 9  # file value survives
        assert cfg.workers == 4

    def test_base_with_no_flags_is_identity(self):
        base = DftConfig(engine="interp", seed=9)
        assert DftConfig.from_args(argparse.Namespace(), base=base) == base


class TestSerialization:
    def test_round_trip(self):
        cfg = DftConfig(
            engine="block", seed=7, tolerance=0.5, warn=False,
            matcher="columnar", budget_seconds=1.5, cache_dir="/tmp/x",
        )
        assert DftConfig.from_json(cfg.to_json()) == cfg

    def test_runtime_fields_excluded(self):
        doc = DftConfig().to_json()
        assert "executor" not in doc
        assert "result_cache" not in doc
        assert "telemetry" not in doc

    def test_unknown_field_rejected_with_known_list(self):
        with pytest.raises(ValueError, match=r"unknown config field\(s\): tpyo"):
            DftConfig.from_json({"tpyo": 1})

    def test_runtime_field_in_json_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            DftConfig.from_json({"executor": "remote"})

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            DftConfig.from_json([1, 2])

    def test_runtime_fields_survive_as_defaults(self):
        rebuilt = DftConfig.from_json(DftConfig().to_json())
        assert rebuilt.executor is None
        assert rebuilt.telemetry is None


class TestConfigFile:
    def test_toml_file(self, tmp_path):
        path = tmp_path / "dft.toml"
        path.write_text('engine = "interp"\nseed = 11\nwarn = false\n')
        cfg = DftConfig.from_file(str(path))
        assert cfg.engine == "interp"
        assert cfg.seed == 11
        assert cfg.warn is False
        assert cfg.batch_size == DftConfig().batch_size  # absent -> default

    def test_json_file(self, tmp_path):
        path = tmp_path / "dft.json"
        path.write_text('{"engine": "block", "tolerance": 0.25}')
        cfg = DftConfig.from_file(str(path))
        assert cfg.engine == "block"
        assert cfg.tolerance == 0.25

    def test_file_overrides_returns_only_set_fields(self, tmp_path):
        path = tmp_path / "dft.toml"
        path.write_text("seed = 3\n")
        assert DftConfig.file_overrides(str(path)) == {"seed": 3}

    def test_missing_file_is_one_line_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read config file") as err:
            DftConfig.from_file(str(tmp_path / "nope.toml"))
        assert "\n" not in str(err.value)

    def test_unparsable_file_names_path(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("this is = not [ toml")
        with pytest.raises(ValueError, match="cannot parse config file"):
            DftConfig.from_file(str(path))

    def test_unknown_field_names_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"bogus": true}')
        with pytest.raises(ValueError, match="bad.json.*bogus"):
            DftConfig.from_file(str(path))
