"""Tests for the unified run configuration (repro.core.config)."""

import argparse
import dataclasses

import pytest

from repro import DftConfig
from repro.core.config import _UNSET, fold_legacy_kwargs
from repro.exec import ProcessExecutor, SerialExecutor


class TestDefaults:
    def test_frozen(self):
        cfg = DftConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.engine = "block"

    def test_replace_returns_new_instance(self):
        cfg = DftConfig()
        other = cfg.replace(engine="block", seed=7)
        assert (other.engine, other.seed) == ("block", 7)
        assert (cfg.engine, cfg.seed) == ("auto", 0)

    def test_defaults(self):
        cfg = DftConfig()
        assert cfg.engine == "auto"
        assert cfg.workers == 1
        assert cfg.static_cache is True
        assert cfg.reuse_dynamic_results is True
        assert cfg.budget_seconds is None
        assert cfg.budget_simulations is None


class TestFromArgs:
    def test_reads_present_attributes_only(self):
        args = argparse.Namespace(engine="block", seed=5)
        cfg = DftConfig.from_args(args)
        assert cfg.engine == "block"
        assert cfg.seed == 5
        assert cfg.workers == 1  # absent on args: dataclass default

    def test_cache_negation_flags(self):
        args = argparse.Namespace(no_static_cache=True, no_result_cache=True)
        cfg = DftConfig.from_args(args)
        assert cfg.static_cache is False
        assert cfg.reuse_dynamic_results is False

    def test_overrides_win(self):
        args = argparse.Namespace(engine="block")
        cfg = DftConfig.from_args(args, engine="interp", workers=3)
        assert cfg.engine == "interp"
        assert cfg.workers == 3

    def test_matcher_flag_folds_in(self):
        assert DftConfig().matcher == "auto"
        cfg = DftConfig.from_args(argparse.Namespace(matcher="vector"))
        assert cfg.matcher == "vector"

    def test_matcher_never_enters_config_hash(self):
        # All matchers are result-identical, so cached dynamic results
        # and history fingerprints must not fragment on the knob.
        hashes = {
            DftConfig(matcher=matcher).config_hash()
            for matcher in ("auto", "scan", "vector")
        }
        assert len(hashes) == 1


class TestResolvedWorkers:
    def test_explicit_workers_win(self):
        assert DftConfig(workers=4).resolved_workers(suite_len=2) == 4

    def test_auto_single_cpu_is_serial(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert DftConfig(workers=None).resolved_workers(suite_len=10) == 1

    def test_auto_small_suite_is_serial(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert DftConfig(workers=None).resolved_workers(suite_len=1) == 1

    def test_auto_caps_at_suite_size(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert DftConfig(workers=None).resolved_workers(suite_len=3) == 3


class TestMakeExecutor:
    REFS = ("repro.systems.sensor:SenseTop",
            "repro.systems.sensor:paper_testcases")

    def test_explicit_executor_wins(self):
        executor = SerialExecutor()
        cfg = DftConfig(executor=executor, workers=8)
        assert cfg.make_executor(*self.REFS, suite_len=10) is executor

    def test_serial_returns_none(self):
        assert DftConfig(workers=1).make_executor(*self.REFS, suite_len=10) is None

    def test_missing_refs_force_serial(self):
        cfg = DftConfig(workers=4)
        assert cfg.make_executor(None, None, suite_len=10) is None

    def test_parallel_builds_process_executor(self):
        cfg = DftConfig(workers=2)
        executor = cfg.make_executor(*self.REFS, suite_len=10)
        assert isinstance(executor, ProcessExecutor)


class TestFoldLegacyKwargs:
    def test_nothing_passed_returns_config_unwarned(self, recwarn):
        cfg = DftConfig(engine="block")
        out = fold_legacy_kwargs(cfg, "api", {"engine": _UNSET})
        assert out is cfg
        assert not recwarn.list

    def test_nothing_passed_without_config_gives_defaults(self):
        assert fold_legacy_kwargs(None, "api", {"engine": _UNSET}) == DftConfig()

    def test_passed_kwargs_warn_and_fold(self):
        with pytest.warns(DeprecationWarning, match="api: the engine, seed"):
            out = fold_legacy_kwargs(
                None, "api", {"engine": "block", "seed": 9}
            )
        assert out.engine == "block"
        assert out.seed == 9

    def test_legacy_values_override_config_fields(self):
        cfg = DftConfig(engine="interp", seed=1)
        with pytest.warns(DeprecationWarning):
            out = fold_legacy_kwargs(cfg, "api", {"engine": "block"})
        assert out.engine == "block"
        assert out.seed == 1  # untouched fields come from the config
