"""Unit tests for coverage computation (synthetic static+dynamic data)."""

import pytest

from repro.analysis.cluster_analysis import StaticAnalysisResult
from repro.core.associations import (
    AssocClass,
    Association,
    Definition,
    SourceLocation,
    VarScope,
)
from repro.core.coverage import CoverageResult
from repro.instrument.matching import MatchResult
from repro.instrument.runner import DynamicResult


def _assoc(var, dm, dl, um, ul, klass):
    return Association(
        var=var,
        definition=SourceLocation(model=dm, line=dl),
        use=SourceLocation(model=um, line=ul),
        klass=klass,
        scope=VarScope.PORT,
    )


def _definition(var, model, line):
    return Definition(var, SourceLocation(model=model, line=line), VarScope.PORT)


@pytest.fixture
def universe():
    """4 associations (one per class) + their definitions."""
    assocs = [
        _assoc("a", "m", 1, "m", 2, AssocClass.STRONG),
        _assoc("b", "m", 3, "m", 4, AssocClass.FIRM),
        _assoc("c", "m", 5, "n", 6, AssocClass.PFIRM),
        _assoc("d", "top", 7, "n", 8, AssocClass.PWEAK),
    ]
    static = StaticAnalysisResult(cluster="top")
    static.associations = assocs
    static.definitions = [
        _definition("a", "m", 1),
        _definition("b", "m", 3),
        _definition("c", "m", 5),
        _definition("d", "top", 7),
        _definition("unused", "m", 99),  # no associations at all
    ]
    return static


def _dynamic(*testcases):
    """testcases: (name, set of keys)."""
    result = DynamicResult()
    for name, keys in testcases:
        match = MatchResult(testcase=name)
        match.pairs = set(keys)
        result.per_testcase[name] = match
    return result


class TestBasicCoverage:
    def test_empty_dynamic_zero_coverage(self, universe):
        cov = CoverageResult(universe, _dynamic(("t1", set())))
        assert cov.exercised_total == 0
        assert cov.overall_percent == 0.0

    def test_partial_coverage(self, universe):
        cov = CoverageResult(
            universe,
            _dynamic(("t1", {("a", "m", 1, "m", 2), ("b", "m", 3, "m", 4)})),
        )
        assert cov.exercised_total == 2
        assert cov.overall_percent == 50.0

    def test_spurious_dynamic_pairs_ignored(self, universe):
        cov = CoverageResult(universe, _dynamic(("t1", {("zz", "q", 1, "q", 2)})))
        assert cov.exercised_total == 0

    def test_class_coverage(self, universe):
        cov = CoverageResult(
            universe, _dynamic(("t1", {("a", "m", 1, "m", 2)}))
        )
        classes = cov.class_coverage()
        assert classes[AssocClass.STRONG].covered == 1
        assert classes[AssocClass.STRONG].percent == 100.0
        assert classes[AssocClass.FIRM].percent == 0.0

    def test_empty_class_percent_none(self, universe):
        universe.associations = [a for a in universe.associations if a.klass is not AssocClass.PFIRM]
        cov = CoverageResult(universe, _dynamic(("t1", set())))
        assert cov.class_coverage()[AssocClass.PFIRM].percent is None
        assert cov.class_coverage()[AssocClass.PFIRM].complete


class TestTestcaseAttribution:
    def test_testcases_covering(self, universe):
        key = ("a", "m", 1, "m", 2)
        cov = CoverageResult(universe, _dynamic(("t1", {key}), ("t2", {key}), ("t3", set())))
        assoc = universe.associations[0]
        assert cov.testcases_covering(assoc) == ["t1", "t2"]

    def test_matrix_rows_ordered_by_class(self, universe):
        cov = CoverageResult(universe, _dynamic(("t1", set())))
        classes = [assoc.klass for assoc, _ in cov.matrix()]
        assert classes == [
            AssocClass.STRONG,
            AssocClass.FIRM,
            AssocClass.PFIRM,
            AssocClass.PWEAK,
        ]

    def test_matrix_marks(self, universe):
        key = ("b", "m", 3, "m", 4)
        cov = CoverageResult(universe, _dynamic(("t1", set()), ("t2", {key})))
        row = next(r for r in cov.matrix() if r[0].var == "b")
        assert row[1] == [False, True]


class TestAllDefsSupport:
    def test_definitions_without_associations_excluded(self, universe):
        cov = CoverageResult(universe, _dynamic(("t1", set())))
        names = {d.var for d in cov.definitions_with_associations()}
        assert "unused" not in names
        assert names == {"a", "b", "c", "d"}

    def test_covered_definitions(self, universe):
        cov = CoverageResult(universe, _dynamic(("t1", {("a", "m", 1, "m", 2)})))
        assert {d.var for d in cov.covered_definitions()} == {"a"}


class TestGuidance:
    def test_missed_ranked_by_class(self, universe):
        cov = CoverageResult(
            universe, _dynamic(("t1", {("b", "m", 3, "m", 4)}))
        )
        missed = cov.missed()
        assert [a.klass for a in missed] == [
            AssocClass.STRONG,
            AssocClass.PFIRM,
            AssocClass.PWEAK,
        ]
