"""Unit tests for the six adequacy criteria."""

import pytest

from repro.analysis.cluster_analysis import StaticAnalysisResult
from repro.core.associations import (
    AssocClass,
    Association,
    Definition,
    SourceLocation,
    VarScope,
)
from repro.core.coverage import CoverageResult
from repro.core.criteria import (
    Criterion,
    detailed_status,
    evaluate_all,
    satisfied,
)
from repro.instrument.matching import MatchResult
from repro.instrument.runner import DynamicResult


def _assoc(var, dl, klass):
    return Association(
        var=var,
        definition=SourceLocation(model="m", line=dl),
        use=SourceLocation(model="m", line=dl + 1),
        klass=klass,
        scope=VarScope.LOCAL,
    )


def _coverage(assocs, covered_keys):
    static = StaticAnalysisResult(cluster="top")
    static.associations = assocs
    static.definitions = [
        Definition(a.var, a.definition, a.scope) for a in assocs
    ]
    dynamic = DynamicResult()
    match = MatchResult(testcase="t")
    match.pairs = set(covered_keys)
    dynamic.per_testcase["t"] = match
    return CoverageResult(static, dynamic)


class TestClassCriteria:
    def test_all_strong_requires_every_strong(self):
        a1 = _assoc("a", 1, AssocClass.STRONG)
        a2 = _assoc("b", 3, AssocClass.STRONG)
        cov = _coverage([a1, a2], {a1.key})
        assert not satisfied(Criterion.ALL_STRONG, cov)
        cov2 = _coverage([a1, a2], {a1.key, a2.key})
        assert satisfied(Criterion.ALL_STRONG, cov2)

    def test_empty_class_trivially_satisfied(self):
        a1 = _assoc("a", 1, AssocClass.STRONG)
        cov = _coverage([a1], {a1.key})
        assert satisfied(Criterion.ALL_PFIRM, cov)
        assert satisfied(Criterion.ALL_PWEAK, cov)

    def test_criteria_are_independent(self):
        strong = _assoc("a", 1, AssocClass.STRONG)
        pweak = _assoc("d", 7, AssocClass.PWEAK)
        cov = _coverage([strong, pweak], {pweak.key})
        assert satisfied(Criterion.ALL_PWEAK, cov)
        assert not satisfied(Criterion.ALL_STRONG, cov)


class TestAllDefs:
    def test_one_association_per_def_suffices(self):
        # Two associations share the def at line 1.
        a1 = Association(
            "x", SourceLocation(model="m", line=1),
            SourceLocation(model="m", line=5), AssocClass.STRONG, VarScope.LOCAL,
        )
        a2 = Association(
            "x", SourceLocation(model="m", line=1),
            SourceLocation(model="m", line=9), AssocClass.FIRM, VarScope.LOCAL,
        )
        cov = _coverage([a1, a2], {a1.key})
        assert satisfied(Criterion.ALL_DEFS, cov)
        assert not satisfied(Criterion.ALL_FIRM, cov)

    def test_uncovered_def_fails(self):
        a1 = _assoc("a", 1, AssocClass.STRONG)
        a2 = _assoc("b", 3, AssocClass.STRONG)
        cov = _coverage([a1, a2], {a1.key})
        assert not satisfied(Criterion.ALL_DEFS, cov)


class TestAllDataflow:
    def test_conjunction_of_everything(self):
        assocs = [
            _assoc("a", 1, AssocClass.STRONG),
            _assoc("b", 3, AssocClass.FIRM),
            _assoc("c", 5, AssocClass.PFIRM),
            _assoc("d", 7, AssocClass.PWEAK),
        ]
        cov_all = _coverage(assocs, {a.key for a in assocs})
        assert satisfied(Criterion.ALL_DATAFLOW, cov_all)
        cov_partial = _coverage(assocs, {assocs[0].key})
        assert not satisfied(Criterion.ALL_DATAFLOW, cov_partial)


class TestEvaluateAll:
    def test_returns_every_criterion(self):
        cov = _coverage([_assoc("a", 1, AssocClass.STRONG)], set())
        results = evaluate_all(cov)
        assert set(results) == set(Criterion)

    def test_detailed_status_counts(self):
        a1 = _assoc("a", 1, AssocClass.STRONG)
        a2 = _assoc("b", 3, AssocClass.STRONG)
        cov = _coverage([a1, a2], {a1.key})
        rows = {s.criterion: s for s in detailed_status(cov)}
        assert rows[Criterion.ALL_STRONG].covered == 1
        assert rows[Criterion.ALL_STRONG].total == 2
        assert rows[Criterion.ALL_DEFS].total == 2

    def test_unknown_criterion_rejected(self):
        cov = _coverage([], set())
        with pytest.raises(ValueError):
            satisfied("not-a-criterion", cov)
