"""Unit tests for the association data model."""

from repro.core.associations import (
    AssocClass,
    Association,
    Definition,
    ExercisedPair,
    SourceLocation,
    VarScope,
)


def _assoc(var="x", dm="m1", dl=10, um="m2", ul=20, klass=AssocClass.STRONG):
    return Association(
        var=var,
        definition=SourceLocation(model=dm, line=dl),
        use=SourceLocation(model=um, line=ul),
        klass=klass,
        scope=VarScope.PORT,
    )


class TestSourceLocation:
    def test_equality_ignores_file(self):
        a = SourceLocation(model="m", line=5, file="/a.py")
        b = SourceLocation(model="m", line=5, file="/b.py")
        assert a == b
        assert hash(a) == hash(b)

    def test_paper_str_format(self):
        assert str(SourceLocation(model="TS", line=13)) == "13, TS"


class TestAssociation:
    def test_key_matches_exercised_pair_key(self):
        assoc = _assoc()
        pair = ExercisedPair("x", "m1", 10, "m2", 20, "tc1")
        assert assoc.key == pair.key

    def test_paper_tuple_format(self):
        assert str(_assoc("op_intr", "TS", 13, "ctrl", 43)) == (
            "(op_intr, 13, TS, 43, ctrl)"
        )

    def test_model_accessors(self):
        assoc = _assoc()
        assert assoc.def_model == "m1"
        assert assoc.use_model == "m2"

    def test_hashable_and_distinct(self):
        assert len({_assoc(), _assoc(ul=21), _assoc()}) == 2


class TestDefinition:
    def test_key(self):
        d = Definition("x", SourceLocation(model="m", line=3), VarScope.LOCAL)
        assert d.key == ("x", "m", 3)

    def test_str(self):
        d = Definition("x", SourceLocation(model="m", line=3), VarScope.LOCAL)
        assert "x" in str(d) and "3, m" in str(d)


class TestEnums:
    def test_class_values_match_paper_names(self):
        assert [k.value for k in AssocClass] == ["Strong", "Firm", "PFirm", "PWeak"]

    def test_scope_values(self):
        assert {s.value for s in VarScope} == {"local", "member", "port"}
