"""Smoke tests for the package-level public API."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.core
        import repro.instrument
        import repro.rv32
        import repro.tdf
        import repro.tdf.library
        import repro.testing

        for module in [
            repro.analysis, repro.core, repro.instrument, repro.rv32,
            repro.tdf, repro.tdf.library, repro.testing,
        ]:
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_headline_workflow_importable_from_root(self):
        from repro import TestSuite, run_dft  # noqa: F401
