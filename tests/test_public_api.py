"""Smoke tests for the package-level public API."""

import pytest

import repro

#: The full package-level contract.  A name added to (or dropped from)
#: ``repro.__all__`` is an API change and must update this list.
EXPECTED_ALL = [
    "AssocClass",
    "Association",
    "Cluster",
    "CoverageResult",
    "Criterion",
    "DftConfig",
    "GenerationCampaign",
    "GenerationResult",
    "IterativeCampaign",
    "PipelineResult",
    "ScaTime",
    "Simulator",
    "TdfIn",
    "TdfModule",
    "TdfOut",
    "TestCase",
    "TestSuite",
    "__version__",
    "evaluate_all",
    "format_iteration_table",
    "format_matrix",
    "format_summary",
    "generate_suite",
    "ms",
    "ns",
    "run_dft",
    "satisfied",
    "sec",
    "us",
]


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_matches_the_contract(self):
        assert sorted(repro.__all__) == EXPECTED_ALL

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.core
        import repro.generation
        import repro.instrument
        import repro.rv32
        import repro.tdf
        import repro.tdf.library
        import repro.testing

        for module in [
            repro.analysis, repro.core, repro.generation, repro.instrument,
            repro.rv32, repro.tdf, repro.tdf.library, repro.testing,
        ]:
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_headline_workflow_importable_from_root(self):
        from repro import DftConfig, TestSuite, generate_suite, run_dft  # noqa: F401


class TestApiV1KwargRemoval:
    """API v1: the deprecated per-call keyword arguments promised for
    one release after 1.0 are gone — :class:`repro.DftConfig` is the
    only configuration path, and passing the old kwargs raises
    ``TypeError`` like any other unknown keyword."""

    def test_run_dft_legacy_kwargs_raise(self):
        from repro import TestSuite, run_dft
        from repro.systems.sensor import SenseTop, paper_testcases

        suite = TestSuite("paper", paper_testcases())
        for kwarg in ("engine", "warn", "telemetry", "executor", "result_cache"):
            with pytest.raises(TypeError, match=kwarg):
                run_dft(lambda: SenseTop(), suite, **{kwarg: None})

    def test_iterative_campaign_legacy_kwargs_raise(self):
        from repro import IterativeCampaign
        from repro.systems.sensor import SenseTop, paper_testcases

        for kwarg in ("engine", "executor", "reuse_dynamic_results"):
            with pytest.raises(TypeError, match=kwarg):
                IterativeCampaign(
                    lambda: SenseTop(), paper_testcases()[:1], **{kwarg: None}
                )

    def test_run_mutation_legacy_kwargs_raise(self):
        from repro.mutation import run_mutation

        for kwarg in ("seed", "tolerance", "workers", "engine",
                      "budget_seconds", "telemetry"):
            with pytest.raises(TypeError, match=kwarg):
                run_mutation(
                    "repro.systems.sensor:SenseTop",
                    "repro.systems.sensor:paper_testcases",
                    **{kwarg: None},
                )

    def test_fold_legacy_kwargs_is_gone(self):
        import repro.core.config as config

        assert not hasattr(config, "fold_legacy_kwargs")

    def test_config_path_does_not_warn(self, recwarn):
        from repro import DftConfig, TestSuite, run_dft
        from repro.systems.sensor import SenseTop, paper_testcases

        run_dft(
            lambda: SenseTop(),
            TestSuite("paper", paper_testcases()),
            DftConfig(),
        )
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
