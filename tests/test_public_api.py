"""Smoke tests for the package-level public API."""

import pytest

import repro

#: The full package-level contract.  A name added to (or dropped from)
#: ``repro.__all__`` is an API change and must update this list.
EXPECTED_ALL = [
    "AssocClass",
    "Association",
    "Cluster",
    "CoverageResult",
    "Criterion",
    "DftConfig",
    "GenerationCampaign",
    "GenerationResult",
    "IterativeCampaign",
    "PipelineResult",
    "ScaTime",
    "Simulator",
    "TdfIn",
    "TdfModule",
    "TdfOut",
    "TestCase",
    "TestSuite",
    "__version__",
    "evaluate_all",
    "format_iteration_table",
    "format_matrix",
    "format_summary",
    "generate_suite",
    "ms",
    "ns",
    "run_dft",
    "satisfied",
    "sec",
    "us",
]


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_matches_the_contract(self):
        assert sorted(repro.__all__) == EXPECTED_ALL

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.core
        import repro.generation
        import repro.instrument
        import repro.rv32
        import repro.tdf
        import repro.tdf.library
        import repro.testing

        for module in [
            repro.analysis, repro.core, repro.generation, repro.instrument,
            repro.rv32, repro.tdf, repro.tdf.library, repro.testing,
        ]:
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_headline_workflow_importable_from_root(self):
        from repro import DftConfig, TestSuite, generate_suite, run_dft  # noqa: F401


class TestDeprecatedKwargShims:
    """The legacy keyword arguments stay for one release as shims that
    warn and fold into a :class:`repro.DftConfig` — producing the exact
    result the config path produces."""

    def test_run_dft_engine_kwarg_matches_config(self):
        from repro import DftConfig, TestSuite, run_dft
        from repro.systems.sensor import SenseTop, paper_testcases

        via_config = run_dft(
            lambda: SenseTop(),
            TestSuite("paper", paper_testcases()),
            DftConfig(engine="interp"),
        )
        with pytest.warns(DeprecationWarning, match="engine.*deprecated"):
            via_kwarg = run_dft(
                lambda: SenseTop(),
                TestSuite("paper", paper_testcases()),
                engine="interp",
            )
        assert (
            via_kwarg.coverage.overall_percent
            == via_config.coverage.overall_percent
        )
        assert (
            via_kwarg.coverage.exercised_total
            == via_config.coverage.exercised_total
        )
        assert {a.key for a in via_kwarg.coverage.missed()} == {
            a.key for a in via_config.coverage.missed()
        }

    def test_config_path_does_not_warn(self, recwarn):
        from repro import DftConfig, TestSuite, run_dft
        from repro.systems.sensor import SenseTop, paper_testcases

        run_dft(
            lambda: SenseTop(),
            TestSuite("paper", paper_testcases()),
            DftConfig(),
        )
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
