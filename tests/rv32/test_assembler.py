"""Unit tests for the RV32I assembler."""

import pytest

from repro.rv32 import AssemblerError, assemble, decode, parse_register


def _decode_all(source):
    return [decode(w) for w in assemble(source)]


class TestRegisters:
    def test_numeric_and_abi_names(self):
        assert parse_register("x0") == 0
        assert parse_register("zero") == 0
        assert parse_register("ra") == 1
        assert parse_register("a0") == 10
        assert parse_register("t6") == 31
        assert parse_register("fp") == parse_register("s0") == 8

    def test_unknown_register(self):
        with pytest.raises(AssemblerError):
            parse_register("x32")
        with pytest.raises(AssemblerError):
            parse_register("q7")


class TestBasics:
    def test_simple_instructions(self):
        insts = _decode_all("addi a0, zero, 42\nadd a1, a0, a0\nebreak")
        assert [i.mnemonic for i in insts] == ["addi", "add", "ebreak"]
        assert insts[0].imm == 42
        assert insts[1].rd == 11

    def test_comments_and_blanks_ignored(self):
        insts = _decode_all(
            "# leading comment\n\naddi a0, zero, 1  # trailing\n; semicolon\n"
        )
        assert len(insts) == 1

    def test_memory_operand_syntax(self):
        insts = _decode_all("lw a0, 0x400(zero)\nsw a0, -4(sp)")
        assert insts[0].mnemonic == "lw"
        assert insts[0].imm == 0x400
        assert insts[1].mnemonic == "sw"
        assert insts[1].imm == -4

    def test_shifts(self):
        insts = _decode_all("slli a0, a0, 3\nsrai a1, a1, 31")
        assert insts[0].mnemonic == "slli" and insts[0].imm == 3
        assert insts[1].mnemonic == "srai" and insts[1].imm == 31


class TestLabels:
    def test_backward_branch(self):
        insts = _decode_all("loop:\naddi a0, a0, 1\nbne a0, a1, loop")
        assert insts[1].mnemonic == "bne"
        assert insts[1].imm == -4

    def test_forward_jump(self):
        insts = _decode_all("j done\naddi a0, a0, 1\ndone:\nebreak")
        assert insts[0].mnemonic == "jal"
        assert insts[0].imm == 8

    def test_label_on_same_line(self):
        insts = _decode_all("start: addi a0, zero, 1\nj start")
        assert insts[1].imm == -4

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\nnop\na:\nnop")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblerError, match="unknown"):
            assemble("beq a0, a1, nowhere")


class TestPseudoInstructions:
    def test_nop_mv_ret(self):
        insts = _decode_all("nop\nmv a1, a0\nret")
        assert insts[0].mnemonic == "addi" and insts[0].rd == 0
        assert insts[1].mnemonic == "addi" and insts[1].rs1 == 10
        assert insts[2].mnemonic == "jalr" and insts[2].rs1 == 1

    def test_li_small(self):
        insts = _decode_all("li a0, -7")
        assert len(insts) == 1
        assert insts[0].imm == -7

    def test_li_large_expands_to_lui_addi(self):
        insts = _decode_all("li a0, 0x12345")
        assert [i.mnemonic for i in insts] == ["lui", "addi"]
        # Execute mentally: (lui << 12) + addi == 0x12345.
        value = (insts[0].imm << 12) + insts[1].imm
        assert value == 0x12345

    def test_beqz_bnez(self):
        insts = _decode_all("l:\nbeqz a0, l\nbnez a1, l")
        assert insts[0].mnemonic == "beq" and insts[0].rs2 == 0
        assert insts[1].mnemonic == "bne" and insts[1].imm == -4

    def test_li_expansion_keeps_label_addresses(self):
        # li (2 words) before a label: branch offset must account for it.
        insts = _decode_all("li a0, 0x12345\ntarget:\nj target")
        assert insts[2].mnemonic == "jal"
        assert insts[2].imm == 0


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate a0, a1")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="imm\\(rs1\\)"):
            assemble("lw a0, a1")

    def test_error_reports_instruction(self):
        with pytest.raises(AssemblerError, match="at instruction 1"):
            assemble("nop\naddi a0, zero, 99999")
