"""Unit + property tests for RV32I encode/decode."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rv32.isa import (
    ALU_IMM_F3,
    ALU_REG_CODES,
    BRANCH_F3,
    EBREAK_WORD,
    IllegalInstruction,
    OP_ALU_IMM,
    OP_ALU_REG,
    OP_BRANCH,
    OP_JAL,
    OP_JALR,
    OP_LOAD,
    OP_LUI,
    OP_STORE,
    decode,
    encode_b,
    encode_i,
    encode_j,
    encode_r,
    encode_s,
    encode_u,
    sign_extend,
)

regs = st.integers(0, 31)


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0x7FF, 12) == 2047

    def test_negative(self):
        assert sign_extend(0xFFF, 12) == -1
        assert sign_extend(0x800, 12) == -2048

    @given(st.integers(-2048, 2047))
    def test_roundtrip_12bit(self, value):
        assert sign_extend(value & 0xFFF, 12) == value


class TestRoundTrips:
    @given(regs, regs, st.integers(-2048, 2047))
    def test_addi(self, rd, rs1, imm):
        inst = decode(encode_i(OP_ALU_IMM, ALU_IMM_F3["addi"], rd, rs1, imm))
        assert (inst.mnemonic, inst.rd, inst.rs1, inst.imm) == ("addi", rd, rs1, imm)

    @given(regs, regs, regs)
    def test_all_alu_reg_ops(self, rd, rs1, rs2):
        for name, (f3, f7) in ALU_REG_CODES.items():
            inst = decode(encode_r(OP_ALU_REG, f3, f7, rd, rs1, rs2))
            assert (inst.mnemonic, inst.rd, inst.rs1, inst.rs2) == (name, rd, rs1, rs2)

    @given(regs, regs, st.integers(-2048, 2046))
    def test_branches(self, rs1, rs2, raw):
        imm = raw * 2  # branch targets are even
        for name, f3 in BRANCH_F3.items():
            inst = decode(encode_b(OP_BRANCH, f3, rs1, rs2, imm))
            assert (inst.mnemonic, inst.rs1, inst.rs2, inst.imm) == (name, rs1, rs2, imm)

    @given(regs, st.integers(0, 0xFFFFF))
    def test_lui(self, rd, imm):
        inst = decode(encode_u(OP_LUI, rd, imm))
        assert (inst.mnemonic, inst.rd, inst.imm) == ("lui", rd, imm)

    @given(regs, st.integers(-(1 << 19), (1 << 19) - 1))
    def test_jal(self, rd, raw):
        imm = raw * 2
        inst = decode(encode_j(OP_JAL, rd, imm))
        assert (inst.mnemonic, inst.rd, inst.imm) == ("jal", rd, imm)

    @given(regs, regs, st.integers(-2048, 2047))
    def test_lw_sw(self, r1, r2, imm):
        lw = decode(encode_i(OP_LOAD, 0b010, r1, r2, imm))
        assert (lw.mnemonic, lw.rd, lw.rs1, lw.imm) == ("lw", r1, r2, imm)
        sw = decode(encode_s(OP_STORE, 0b010, r2, r1, imm))
        assert (sw.mnemonic, sw.rs1, sw.rs2, sw.imm) == ("sw", r2, r1, imm)

    @given(regs, regs, st.integers(-2048, 2047))
    def test_jalr(self, rd, rs1, imm):
        inst = decode(encode_i(OP_JALR, 0, rd, rs1, imm))
        assert (inst.mnemonic, inst.rd, inst.rs1, inst.imm) == ("jalr", rd, rs1, imm)


class TestValidation:
    def test_out_of_range_immediates_rejected(self):
        with pytest.raises(ValueError):
            encode_i(OP_ALU_IMM, 0, 1, 1, 5000)
        with pytest.raises(ValueError):
            encode_b(OP_BRANCH, 0, 1, 1, 3)  # odd target
        with pytest.raises(ValueError):
            encode_u(OP_LUI, 1, 1 << 20)

    def test_bad_register_rejected(self):
        with pytest.raises(ValueError):
            encode_i(OP_ALU_IMM, 0, 32, 0, 0)

    def test_illegal_word_raises(self):
        with pytest.raises(IllegalInstruction):
            decode(0xFFFFFFFF)
        with pytest.raises(IllegalInstruction):
            decode(0)

    def test_ebreak(self):
        assert decode(EBREAK_WORD).mnemonic == "ebreak"
