"""Unit tests for the RV32I interpreter core."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rv32 import Memory, MemoryAccessError, Rv32Core, assemble


def _run(source, max_steps=10_000):
    memory = Memory()
    memory.load_program(assemble(source))
    core = Rv32Core(memory)
    core.run(max_steps)
    return core, memory


class TestMemory:
    def test_default_zero(self):
        assert Memory().load_word(0x100) == 0

    def test_store_load_roundtrip(self):
        mem = Memory()
        mem.store_word(8, 0xDEADBEEF)
        assert mem.load_word(8) == 0xDEADBEEF

    def test_misaligned_rejected(self):
        with pytest.raises(MemoryAccessError, match="misaligned"):
            Memory().load_word(2)

    def test_out_of_range_rejected(self):
        with pytest.raises(MemoryAccessError, match="out of range"):
            Memory(size=16).store_word(16, 0)

    def test_mmio_hooks(self):
        mem = Memory()
        written = []
        mem.map_load(0x400, lambda: 77)
        mem.map_store(0x404, written.append)
        assert mem.load_word(0x400) == 77
        mem.store_word(0x404, 5)
        assert written == [5]


class TestArithmetic:
    def test_addi_and_x0(self):
        core, _ = _run("addi x0, x0, 5\naddi a0, x0, 7\nebreak")
        assert core.read_reg(0) == 0
        assert core.read_reg(10) == 7

    def test_sub_negative_wraps(self):
        core, _ = _run("li a0, 3\nli a1, 5\nsub a2, a0, a1\nebreak")
        assert core.read_reg(12) == 0xFFFFFFFE  # -2 two's complement

    def test_logic_ops(self):
        core, _ = _run(
            "li a0, 0xF0\nli a1, 0x0F\nor a2, a0, a1\nand a3, a0, a1\n"
            "xor a4, a0, a1\nebreak"
        )
        assert core.read_reg(12) == 0xFF
        assert core.read_reg(13) == 0x00
        assert core.read_reg(14) == 0xFF

    def test_shifts_signed_unsigned(self):
        core, _ = _run(
            "li a0, -8\nsrai a1, a0, 1\nsrli a2, a0, 1\nslli a3, a0, 1\nebreak"
        )
        assert core.read_reg(11) == 0xFFFFFFFC          # -4
        assert core.read_reg(12) == 0x7FFFFFFC          # logical
        assert core.read_reg(13) == 0xFFFFFFF0          # -16

    def test_slt_signed_vs_unsigned(self):
        core, _ = _run(
            "li a0, -1\nli a1, 1\nslt a2, a0, a1\nsltu a3, a0, a1\nebreak"
        )
        assert core.read_reg(12) == 1   # -1 < 1 signed
        assert core.read_reg(13) == 0   # 0xFFFFFFFF > 1 unsigned

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_add_matches_python(self, a, b):
        core, _ = _run(f"li a0, {a}\nli a1, {b}\nadd a2, a0, a1\nebreak")
        assert core.read_reg(12) == (a + b) & 0xFFFFFFFF


class TestControlFlow:
    def test_loop_countdown(self):
        core, _ = _run(
            "li a0, 0\nli a1, 5\nloop:\naddi a0, a0, 2\naddi a1, a1, -1\n"
            "bnez a1, loop\nebreak"
        )
        assert core.read_reg(10) == 10

    def test_jal_links_return_address(self):
        core, _ = _run("jal ra, target\nebreak\ntarget:\nli a0, 1\nebreak")
        assert core.read_reg(10) == 1
        assert core.read_reg(1) == 4

    def test_call_and_ret(self):
        core, _ = _run(
            "jal ra, func\nsw a0, 0x100(zero)\nebreak\n"
            "func:\nli a0, 99\nret"
        )
        _, mem = core, core.memory
        assert mem.load_word(0x100) == 99

    def test_branch_signed_comparison(self):
        core, _ = _run(
            "li a0, -5\nli a1, 3\nblt a0, a1, taken\nli a2, 0\nebreak\n"
            "taken:\nli a2, 1\nebreak"
        )
        assert core.read_reg(12) == 1

    def test_halt_on_ebreak(self):
        core, _ = _run("ebreak\naddi a0, a0, 1")
        assert core.halted
        assert core.read_reg(10) == 0

    def test_max_steps_bounds_runaway(self):
        core, _ = _run("loop:\nj loop", max_steps=50)
        assert not core.halted
        assert core.instret == 50


class TestLoadsStores:
    def test_data_flow_through_memory(self):
        core, mem = _run(
            "li a0, 1234\nsw a0, 0x200(zero)\nlw a1, 0x200(zero)\n"
            "add a2, a1, a1\nsw a2, 0x204(zero)\nebreak"
        )
        assert mem.load_word(0x204) == 2468

    def test_mmio_visible_to_firmware(self):
        memory = Memory()
        memory.load_program(assemble(
            "lw a0, 0x400(zero)\naddi a0, a0, 1\nsw a0, 0x404(zero)\nebreak"
        ))
        outbox = []
        memory.map_load(0x400, lambda: 41)
        memory.map_store(0x404, outbox.append)
        core = Rv32Core(memory)
        core.run()
        assert outbox == [42]
