"""Integration-level tests for the dynamic-analysis runner."""

import pytest

from repro.analysis import analyze_cluster
from repro.instrument import DynamicAnalyzer
from repro.tdf import Cluster, ms
from repro.tdf.library import (
    CollectorSink,
    DelayTdf,
    GainTdf,
    StimulusSource,
)
from repro.tdf.module import TdfModule
from repro.tdf.ports import TdfIn, TdfOut
from repro.testing import TestCase, TestSuite


class Producer(TdfModule):
    def __init__(self, name="prod"):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def processing(self):
        raw = self.ip.read()
        self.op.write(raw * 2)


class Consumer(TdfModule):
    def __init__(self, name="cons"):
        super().__init__(name)
        self.ip = TdfIn()
        self.m_seen = 0.0

    def processing(self):
        self.m_seen = self.ip.read()


def _factory():
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource("src", lambda t: 1.0, ms(1)))
            self.prod = self.add(Producer())
            self.cons = self.add(Consumer())
            self.connect(self.src.op, self.prod.ip)
            self.connect(self.prod.op, self.cons.ip)

    return Top("top")


def _delay_factory():
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource("src", lambda t: 1.0, ms(1)))
            self.prod = self.add(Producer())
            self.delay = self.add(DelayTdf("dly", 1))
            self.cons = self.add(Consumer())
            self.connect(self.src.op, self.prod.ip)
            self.connect(self.prod.op, self.delay.ip)
            self.connect(self.delay.op, self.cons.ip)

    return Top("top")


def _tc(name="tc", duration=ms(3)):
    return TestCase(name, duration, lambda cluster: None)


class TestRunTestcase:
    def test_intra_and_cross_pairs_exercised(self):
        static = analyze_cluster(_factory())
        analyzer = DynamicAnalyzer(_factory, static)
        match = analyzer.run_testcase(_tc())
        static_keys = {a.key for a in static.associations}
        # Everything this trivial design declares must be exercised.
        assert static_keys <= match.pairs

    def test_placeholder_pair_for_testbench_input(self):
        static = analyze_cluster(_factory())
        placeholder = next(
            a for a in static.associations if a.var == "ip" and a.def_model == "prod"
        )
        match = DynamicAnalyzer(_factory, static).run_testcase(_tc())
        assert placeholder.key in match.pairs

    def test_redefined_branch_pair_exercised(self):
        factory = _delay_factory
        static = analyze_cluster(factory())
        pweak = [a for a in static.associations if a.klass.value == "PWeak"]
        assert len(pweak) == 1
        match = DynamicAnalyzer(factory, static).run_testcase(_tc())
        assert pweak[0].key in match.pairs

    def test_member_state_isolated_between_testcases(self):
        static = analyze_cluster(_factory())
        analyzer = DynamicAnalyzer(_factory, static)
        analyzer.run_testcase(_tc("a"))
        match = analyzer.run_testcase(_tc("b"))
        # Fresh cluster per testcase: pairs identical for identical stimuli.
        match2 = analyzer.run_testcase(_tc("c"))
        assert match.pairs == match2.pairs


class TestRunSuite:
    def test_per_testcase_results_keyed_by_name(self):
        static = analyze_cluster(_factory())
        suite = TestSuite("s", [_tc("t1"), _tc("t2")])
        result = DynamicAnalyzer(_factory, static).run_suite(suite)
        assert sorted(result.per_testcase) == ["t1", "t2"]

    def test_exercised_keys_union(self):
        static = analyze_cluster(_factory())
        suite = TestSuite("s", [_tc("t1"), _tc("t2")])
        result = DynamicAnalyzer(_factory, static).run_suite(suite)
        union = set()
        for match in result.per_testcase.values():
            union |= match.pairs
        assert result.exercised_keys() == union


class TestUseWithoutDef:
    def test_undriven_port_reported(self):
        class Reader(TdfModule):
            def __init__(self, name="reader"):
                super().__init__(name)
                self.ip_float = TdfIn()
                self.op = TdfOut()

            def processing(self):
                self.op.write(self.ip_float.read())

        def factory():
            class Top(Cluster):
                def architecture(self):
                    self.r = self.add(Reader())
                    self.r.set_timestep(ms(1))
                    self.r.ip_float.bind(self.signal("floating"))
                    self.sink = self.add(CollectorSink("sink"))
                    self.connect(self.r.op, self.sink.ip)

            return Top("top")

        static = analyze_cluster(factory())
        assert static.undriven_input_ports == ["reader.ip_float"]
        result = DynamicAnalyzer(factory, static).run_suite(
            TestSuite("s", [_tc()])
        )
        assert result.use_without_def() == ["reader.ip_float"]
