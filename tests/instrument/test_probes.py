"""Unit tests for the probe runtime."""

from repro.instrument.probes import ProbeRuntime, WriterKind
from repro.tdf import Cluster, Simulator, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.library import CollectorSink, ConstantSource


class _Mod:
    """Minimal module stand-in for probe calls."""

    name = "m"
    OPAQUE_USES = False


class TestVarApi:
    def test_u_returns_value_unchanged(self):
        probe = ProbeRuntime("top")
        sentinel = object()
        assert probe.u(_Mod(), "x", 10, sentinel) is sentinel

    def test_sequence_numbers_monotonic(self):
        probe = ProbeRuntime("top")
        probe.d(_Mod(), "x", 1)
        probe.u(_Mod(), "x", 2, 0)
        probe.d(_Mod(), "y", 3)
        seqs = [e.seq for e in probe.var_events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 3

    def test_clear_resets_everything(self):
        probe = ProbeRuntime("top")
        probe.d(_Mod(), "x", 1)
        probe.clear()
        assert probe.var_events == []
        probe.d(_Mod(), "x", 1)
        assert probe.var_events[0].seq == 1


class TestPortApi:
    def _top(self):
        from helpers import Passthrough

        class Top(Cluster):
            def architecture(self):
                self.src = self.add(ConstantSource("src", 2.0, timestep=ms(1)))
                self.dut = self.add(Passthrough("dut"))
                self.sink = self.add(CollectorSink("sink"))
                self.connect(self.src.op, self.dut.ip)
                self.connect(self.dut.op, self.sink.ip)

        return Top("top")

    def test_pr_and_pw_perform_the_access(self):
        top = self._top()
        probe = ProbeRuntime("top")

        def processing():
            value = probe.pr(top.dut, top.dut.ip, 101)
            probe.pw(top.dut, top.dut.op, 102, value * 3)

        top.dut.register_processing(processing)
        Simulator(top).run(ms(2))
        assert top.sink.values() == [6.0, 6.0]
        assert [e.anchor_line for e in probe.port_reads] == [101, 101]
        assert [e.line for e in probe.port_writes] == [102, 102]
        assert all(e.kind is WriterKind.MODEL for e in probe.port_writes)

    def test_opaque_module_reads_anchor_at_bind_site(self):
        top = self._top()
        probe = ProbeRuntime("top")
        type(top.dut).OPAQUE_USES = True
        try:
            def processing():
                probe.pw(top.dut, top.dut.op, 102, probe.pr(top.dut, top.dut.ip, 101))

            top.dut.register_processing(processing)
            Simulator(top).run(ms(1))
            event = probe.port_reads[0]
            assert event.anchor_model == "top"
            assert event.anchor_line == top.dut.ip.bind_site.lineno
        finally:
            type(top.dut).OPAQUE_USES = False


class TestLogDump:
    def test_log_contains_all_event_kinds(self):
        probe = ProbeRuntime("top")
        probe.d(_Mod(), "x", 1)
        probe.u(_Mod(), "x", 2, 0)
        text = probe.log_text()
        assert "DEF" in text and "USE" in text
        assert "m:1" in text and "m:2" in text

    def test_log_ordered_by_sequence(self):
        probe = ProbeRuntime("top")
        probe.d(_Mod(), "a", 1)
        probe.d(_Mod(), "b", 2)
        lines = probe.log_text().splitlines()
        assert lines[0].split("\t")[2] == "a"
        assert lines[1].split("\t")[2] == "b"
