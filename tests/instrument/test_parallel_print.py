"""Unit tests for the parallel-print tap (paper §V)."""

from repro.analysis import analyze_cluster
from repro.instrument import ParallelPrint, tap_signal
from repro.tdf import Cluster, Simulator, ms
from repro.tdf.library import CollectorSink, GainTdf, StimulusSource

from helpers import Passthrough


def _top():
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource("src", lambda t: t * 1000.0, ms(1)))
            self.dut = self.add(Passthrough("dut"))
            self.gain = self.add(GainTdf("gain", 2.0))
            self.sink = self.add(CollectorSink("sink"))
            self.sig_mid = self.connect(self.dut.op, self.gain.ip, name="mid")
            self.connect(self.src.op, self.dut.ip)
            self.connect(self.gain.op, self.sink.ip)

    return Top("top")


class TestTap:
    def test_tap_observes_signal_values(self):
        top = _top()
        tap = tap_signal(top, top.sig_mid)
        Simulator(top).run(ms(3))
        assert tap.values() == [0.0, 1.0, 2.0]

    def test_tap_records_token_indices(self):
        top = _top()
        tap = tap_signal(top, top.sig_mid)
        Simulator(top).run(ms(3))
        assert [i for i, _ in tap.m_samples] == [0, 1, 2]

    def test_tap_does_not_disturb_consumers(self):
        plain = _top()
        Simulator(plain).run(ms(3))
        tapped = _top()
        tap_signal(tapped, tapped.sig_mid)
        Simulator(tapped).run(ms(3))
        assert tapped.sink.values() == plain.sink.values()

    def test_tap_invisible_to_static_analysis(self):
        plain = _top()
        plain_result = analyze_cluster(plain)
        tapped = _top()
        tap_signal(tapped, tapped.sig_mid)
        tapped_result = analyze_cluster(tapped)
        plain_keys = {a.key for a in plain_result.associations}
        tapped_keys = {a.key for a in tapped_result.associations}
        assert plain_keys == tapped_keys

    def test_observational_equivalence_with_port_hooks(self):
        """The tap sees exactly the tokens the runner's hooks see."""
        top = _top()
        tap = tap_signal(top, top.sig_mid)
        hook_seen = []
        top.dut.op.add_write_hook(lambda p, i, v, o: hook_seen.append((i, v)))
        Simulator(top).run(ms(4))
        assert tap.m_samples == hook_seen

    def test_clear(self):
        top = _top()
        tap = tap_signal(top, top.sig_mid)
        Simulator(top).run(ms(2))
        tap.clear()
        assert tap.values() == []
