"""Property: instrumentation must never change observable behaviour.

The dynamic analysis rewrites ``processing()`` with probe calls; for
any stimulus the instrumented cluster must produce exactly the sample
stream of the uninstrumented one.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument import ProbeRuntime, instrument_processing
from repro.tdf import Cluster, Simulator, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.library import CollectorSink, StimulusSource


class NonTrivial(TdfModule):
    """Branches, members, loops, augmented assignment, multiple reads."""

    def __init__(self, name="dut"):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_acc = 0.0
        self.m_mode = 0

    def processing(self):
        sample = self.ip.read()
        magnitude = abs(sample)
        if magnitude > 1.0:
            self.m_mode = 1
        elif magnitude < 0.1:
            self.m_mode = 0
        total = 0.0
        for weight in (0.5, 0.3, 0.2):
            total += weight * sample
        if self.m_mode == 1:
            self.m_acc = self.m_acc + total
        else:
            self.m_acc = self.m_acc * 0.5
        self.op.write(self.m_acc)


def _build(values):
    samples = list(values)

    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource(
                "src",
                lambda t: samples[min(int(round(t * 1000)), len(samples) - 1)],
                ms(1),
            ))
            self.dut = self.add(NonTrivial())
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.dut.ip)
            self.connect(self.dut.op, self.sink.ip)

    return Top("top")


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.floats(-10.0, 10.0, allow_nan=False),
    min_size=1,
    max_size=12,
))
def test_instrumented_matches_uninstrumented(values):
    plain = _build(values)
    Simulator(plain).run(ms(len(values)))

    instrumented = _build(values)
    probe = ProbeRuntime("top")
    instrument_processing(instrumented.dut, probe)
    Simulator(instrumented).run(ms(len(values)))

    assert instrumented.sink.values() == plain.sink.values()
    # And the probe actually recorded the execution.
    assert probe.var_events
    assert len(probe.port_writes) == len(values)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.floats(-5.0, 5.0, allow_nan=False), min_size=2, max_size=8))
def test_exercised_pairs_deterministic(values):
    """Identical stimuli -> identical exercised pairs."""
    from repro.analysis import analyze_cluster
    from repro.instrument import DynamicAnalyzer
    from repro.testing import TestCase

    static = analyze_cluster(_build(values))
    analyzer = DynamicAnalyzer(lambda: _build(values), static)
    tc = TestCase("t", ms(len(values)), lambda c: None)
    first = analyzer.run_testcase(tc)
    second = analyzer.run_testcase(tc)
    assert first.pairs == second.pairs
