"""Vectorized matching kernel: dispatch, semantics, scan equivalence.

The vector kernel (:mod:`repro.instrument.matchkernel`) must be
result-identical to the scan matchers on every stream — same pair set,
same ``use_without_def`` order, same warning count — and
``match_events`` must degrade to scan gracefully whenever the kernel
cannot run (no numpy, per-event probe).
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_cluster
from repro.instrument import DynamicAnalyzer
from repro.instrument import matchkernel
from repro.instrument.matching import MATCHERS, match_events
from repro.instrument.probes import (
    ProbeRuntime,
    UseWithoutDefWarning,
    WriterKind,
)
from repro.obs import Telemetry
from repro.obs.store import ColumnarProbeStore, ProbeStoreSpec
from repro.testing import TestSuite
from repro.testing.generate import (
    build_cluster,
    random_suite,
    rate_strategy,
    values_strategy,
)

needs_numpy = pytest.mark.skipif(
    not matchkernel.HAVE_NUMPY, reason="numpy not installed"
)

MODEL = WriterKind.MODEL
TESTBENCH = WriterKind.TESTBENCH


def USE(var, model, line):
    return (0, var, model, line)


def DEF(var, model, line):
    return (1, var, model, line)


def PW(signal, token, var, model, line, kind=MODEL):
    return (2, signal, token, var, model, line, kind)


def PR(signal, token, port, reader, anchor, line, undriven=False):
    return (3, signal, token, port, reader, anchor, line, undriven)


def _probe(events, store=None):
    probe = ProbeRuntime("top", batched=True, store=store)
    for event in events:
        probe._buf.append(event)
    return probe


def _match(events, matcher, starts=None, warn=False, chunk=None):
    store = None
    if chunk is not None:
        store = ColumnarProbeStore(chunk_size=chunk)
    probe = _probe(events, store=store)
    try:
        return match_events(
            probe, "tc", starts or {}, {}, warn=warn, matcher=matcher
        )
    finally:
        if store is not None:
            store.close()


def _both(events, starts=None, chunk=None):
    """Scan and vector results for the same stream, asserted equal."""
    scan = _match(events, "scan", starts=starts, chunk=chunk)
    vector = _match(events, "vector", starts=starts, chunk=chunk)
    assert vector.pairs == scan.pairs
    assert vector.use_without_def == scan.use_without_def
    return vector


class TestDispatch:
    def test_unknown_matcher_rejected(self):
        with pytest.raises(ValueError, match="unknown matcher"):
            _match([], "simd")

    def test_matchers_tuple_is_the_knob_domain(self):
        assert MATCHERS == ("auto", "scan", "vector")

    def test_per_event_probe_falls_back_to_scan(self):
        # The interpreter engine records dataclasses — no tuple buffer
        # to columnize, so even an explicit vector request scans.
        from repro.instrument.probes import VarEvent

        probe = ProbeRuntime("top")
        probe.var_events += [
            VarEvent(True, "x", "m", 10, 1),
            VarEvent(False, "x", "m", 11, 2),
        ]
        tel = Telemetry()
        result = match_events(
            probe, "tc", {}, {}, warn=False, matcher="vector", telemetry=tel
        )
        assert result.pairs == {("x", "m", 10, "m", 11)}
        run = tel.to_run()
        reasons = {
            record["labels"].get("reason"): record["value"]
            for record in run["metrics"]
            if record["name"] == "instrument.match_fallback"
        }
        assert reasons == {"per_event_probe": 1}

    def test_no_numpy_falls_back_to_scan(self, monkeypatch):
        events = [DEF("x", "m", 10), USE("x", "m", 11)]
        expected = _match(events, "scan")
        tel = Telemetry()
        with monkeypatch.context() as mp:
            mp.setattr(matchkernel, "HAVE_NUMPY", False)
            probe = _probe(events)
            result = match_events(
                probe, "tc", {}, {}, warn=False, matcher="vector",
                telemetry=tel,
            )
        assert result.pairs == expected.pairs
        runs = {
            record["labels"].get("path"): record["value"]
            for record in tel.to_run()["metrics"]
            if record["name"] == "instrument.match_runs"
        }
        assert runs == {"scan": 1}

    @needs_numpy
    def test_auto_vectorizes_streaming_stores_only(self):
        tel = Telemetry()
        store = ColumnarProbeStore(chunk_size=4)
        try:
            probe = _probe([DEF("x", "m", 10), USE("x", "m", 11)], store=store)
            match_events(probe, "tc", {}, {}, warn=False, matcher="auto",
                         telemetry=tel)
        finally:
            store.close()
        probe = _probe([DEF("x", "m", 10), USE("x", "m", 11)])
        match_events(probe, "tc", {}, {}, warn=False, matcher="auto",
                     telemetry=tel)
        runs = {
            record["labels"].get("path"): record["value"]
            for record in tel.to_run()["metrics"]
            if record["name"] == "instrument.match_runs"
        }
        assert runs == {"vector": 1, "scan": 1}

    @needs_numpy
    def test_vector_telemetry_counts_rows(self):
        tel = Telemetry()
        events = [DEF("x", "m", 10), USE("x", "m", 11), USE("x", "m", 12)]
        probe = _probe(events)
        match_events(probe, "tc", {}, {}, warn=False, matcher="vector",
                     telemetry=tel)
        scanned = {
            record["labels"].get("path"): record["value"]
            for record in tel.to_run()["metrics"]
            if record["name"] == "instrument.match_events_scanned"
        }
        assert scanned == {"vector": len(events)}


@needs_numpy
class TestKernelSemantics:
    """Hand-built streams covering every scan-matcher edge case.

    Each test asserts vector == scan first (via ``_both``), then pins
    the expected content so a regression in *both* paths cannot hide.
    """

    def test_var_last_def_wins(self):
        result = _both([
            DEF("x", "m", 10),
            USE("x", "m", 11),
            DEF("x", "m", 12),
            USE("x", "m", 13),
        ])
        assert result.pairs == {
            ("x", "m", 10, "m", 11),
            ("x", "m", 12, "m", 13),
        }

    def test_var_cross_model_isolation(self):
        assert _both([DEF("x", "a", 10), USE("x", "b", 11)]).pairs == set()

    def test_use_before_any_def_skipped(self):
        assert _both([USE("x", "m", 11), DEF("x", "m", 10)]).pairs == set()

    def test_group_cummax_does_not_leak_across_groups(self):
        # Sorted by (model, var) key, group ('a', 'x') holds a def whose
        # cummax position must not satisfy group ('b', 'x')'s use.
        result = _both([
            DEF("x", "a", 10),
            USE("x", "b", 20),
            DEF("y", "b", 30),
            USE("y", "b", 31),
        ])
        assert result.pairs == {("y", "b", 30, "b", 31)}

    def test_floor_join_sample_and_hold(self):
        result = _both([PW("s", 0, "op", "w", 30), PR("s", 3, "ip", "r", "r", 40)])
        assert result.pairs == {("op", "w", 30, "r", 40)}

    def test_floor_requires_same_signal(self):
        # The searchsorted floor for t's read lands on s's last write in
        # the combined key space; the same-signal check must reject it.
        result = _both([
            PW("s", 5, "op", "w", 30),
            PR("t", 2, "ip", "r", "r", 40),
        ])
        assert result.pairs == set()

    def test_no_write_at_or_below_token_skipped(self):
        result = _both([PW("s", 5, "op", "w", 30), PR("s", 2, "ip", "r", "r", 40)])
        assert result.pairs == set()

    def test_negative_token_is_initial_value(self):
        result = _both([PW("s", 0, "op", "w", 30), PR("s", -1, "ip", "r", "r", 40)])
        assert result.pairs == set()

    def test_last_write_by_sequence_wins(self):
        result = _both([
            PW("s", 0, "op", "w", 30),
            PW("s", 0, "op", "w", 33),
            PR("s", 0, "ip", "r", "r", 40),
        ])
        assert result.pairs == {("op", "w", 33, "r", 40)}

    def test_reads_resolve_after_all_writes(self):
        # The scan matcher buffers reads until the write map is
        # complete; a write recorded *after* the read still pairs.
        result = _both([
            PR("s", 0, "ip", "r", "r", 40),
            PW("s", 0, "op", "w", 30),
        ])
        assert result.pairs == {("op", "w", 30, "r", 40)}

    def test_testbench_write_pairs_with_placeholder(self):
        result = _both(
            [PW("s", 0, "op", "tb", 0, TESTBENCH), PR("s", 0, "ip", "r", "r", 40)],
            starts={"r": 7},
        )
        assert result.pairs == {("ip", "r", 7, "r", 40)}

    def test_testbench_without_start_line_skipped(self):
        result = _both([
            PW("s", 0, "op", "tb", 0, TESTBENCH),
            PR("s", 0, "ip", "r", "r", 40),
        ])
        assert result.pairs == set()

    def test_undriven_reported_once_in_stream_order(self):
        result = _both([
            PR("s", 0, "ipb", "rb", "rb", 40, undriven=True),
            PR("t", 0, "ipa", "ra", "ra", 41, undriven=True),
            PR("s", 1, "ipb", "rb", "rb", 40, undriven=True),
        ])
        assert result.use_without_def == ["rb.ipb", "ra.ipa"]
        assert result.pairs == set()

    def test_undriven_warning_count_matches_scan(self):
        events = [
            PR("s", 0, "ip", "r", "r", 40, undriven=True),
            PR("s", 1, "ip", "r", "r", 40, undriven=True),
        ]
        for matcher in ("scan", "vector"):
            with pytest.warns(UseWithoutDefWarning, match="no driver") as rec:
                _match(events, matcher, warn=True)
            assert len(rec) == 1

    def test_pair_dedup(self):
        # The same (def, use) site firing every period yields one pair.
        result = _both(
            [DEF("x", "m", 10), USE("x", "m", 11)] * 5
            + [PW("s", t, "op", "w", 30) for t in range(5)]
            + [PR("s", t, "ip", "r", "r", 40) for t in range(5)]
        )
        assert result.pairs == {
            ("x", "m", 10, "m", 11),
            ("op", "w", 30, "r", 40),
        }

    def test_spilled_store_chunks_concatenate(self):
        events = (
            [DEF("x", "m", 10), USE("x", "m", 11)] * 9
            + [PW("s", t, "op", "w", 30) for t in range(9)]
            + [PR("s", t, "ip", "r", "r", 40) for t in range(9)]
        )
        result = _both(events, chunk=5)  # forces multiple spilled chunks
        assert result.pairs == {
            ("x", "m", 10, "m", 11),
            ("op", "w", 30, "r", 40),
        }

    def test_empty_stream(self):
        result = _both([])
        assert result.pairs == set() and result.use_without_def == []


@needs_numpy
class TestLaneColumns:
    def test_batched_lanes_demux_columns_per_member(self):
        factory = lambda: build_cluster([0.5, -0.25, 1.0], 2, 3)
        static = analyze_cluster(factory())
        suite = TestSuite("random", random_suite(3))
        spec = ProbeStoreSpec(kind="columnar", chunk_size=16)
        scan = DynamicAnalyzer(
            factory, static, probe_store=spec, matcher="scan"
        ).run_suite_batched(suite, 3)
        vector = DynamicAnalyzer(
            factory, static, probe_store=spec, matcher="vector"
        ).run_suite_batched(suite, 3)
        assert list(vector.per_testcase) == list(scan.per_testcase)
        for name, match in scan.per_testcase.items():
            assert vector.per_testcase[name].pairs == match.pairs
            assert (
                vector.per_testcase[name].use_without_def
                == match.use_without_def
            )


@settings(max_examples=6, deadline=None)
@given(
    values=values_strategy(max_size=6),
    up=rate_strategy(),
    down=rate_strategy(),
    store=st.sampled_from(["memory", "columnar"]),
    batch_size=st.sampled_from([1, 3]),
    use_numpy=st.booleans(),
)
def test_vector_equals_scan_property(
    values, up, down, store, batch_size, use_numpy
):
    """Property (issue satellite): on random multirate clusters the
    vector matcher's pairs, diagnostics order and warning count equal
    the scan matcher's — per store backend, per batch width, and with
    numpy masked out (where vector degrades to scan)."""
    from _pytest.monkeypatch import MonkeyPatch

    factory = lambda: build_cluster(values, up, down)
    static = analyze_cluster(factory())
    suite = TestSuite("random", random_suite(5))
    spec = (
        ProbeStoreSpec(kind="columnar", chunk_size=32)
        if store == "columnar"
        else None
    )

    def run(matcher):
        analyzer = DynamicAnalyzer(
            factory, static, warn=True, probe_store=spec, matcher=matcher
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = analyzer.run_suite_batched(suite, batch_size)
        warned = sum(
            1 for w in caught if issubclass(w.category, UseWithoutDefWarning)
        )
        return result, warned

    with MonkeyPatch.context() as mp:
        if not use_numpy:
            mp.setattr(matchkernel, "HAVE_NUMPY", False)
        scan, scan_warned = run("scan")
        vector, vector_warned = run("vector")
    assert vector_warned == scan_warned
    assert list(vector.per_testcase) == list(scan.per_testcase)
    for name, match in scan.per_testcase.items():
        assert vector.per_testcase[name].pairs == match.pairs
        assert (
            vector.per_testcase[name].use_without_def
            == match.use_without_def
        )
