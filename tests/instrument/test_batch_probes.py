"""Batched suite execution: probe lanes, demux identity, suite order.

The lockstep dynamic stage records every member through its own lane of
a :class:`~repro.instrument.probes.BatchProbeBuffer`; the hard property
is that the demuxed per-member event stream — and therefore the match
result — is byte-identical to a serial run, at every batch size, with
and without numpy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_cluster
from repro.instrument import DynamicAnalyzer
from repro.instrument.probes import BatchProbeBuffer
from repro.testing import TestCase, TestSuite
from repro.testing.generate import (
    build_cluster,
    build_random_cluster,
    random_suite,
    rate_strategy,
    values_strategy,
)


def _analyzer(factory, engine="block"):
    return DynamicAnalyzer(factory, analyze_cluster(factory()), engine=engine)


def _suite(seed=7):
    return TestSuite("random", random_suite(seed))


class TestMemberLanes:
    def test_lanes_demux_in_recording_order(self):
        buffer = BatchProbeBuffer()
        a, b = buffer.lane(0), buffer.lane(1)
        a.append((0, "x"))
        b.append((1, "y"))
        a.append((2, "z"))
        assert list(a) == [(0, "x"), (2, "z")]
        assert list(b) == [(1, "y")]
        assert len(a) == 2 and len(b) == 1 and len(buffer) == 3

    def test_lane_yields_the_appended_objects(self):
        # The batched matcher memoizes use sites by tuple identity
        # (_match_batched's id() keyed memo), which is only sound when
        # demuxed events are the very objects the instrumenter appended
        # — transient copies would recycle ids mid-match.
        buffer = BatchProbeBuffer()
        lane = buffer.lane(0)
        site = (0, "var", "model", 12)
        lane.append(site)
        lane.append(site)
        assert all(event is site for event in lane)

    def test_lane_clear_is_per_member(self):
        buffer = BatchProbeBuffer()
        a, b = buffer.lane(0), buffer.lane(1)
        a.append((0, "x"))
        b.append((1, "y"))
        a.clear()
        assert list(a) == [] and list(b) == [(1, "y")]


class TestBatchedSuiteEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    def test_matches_serial_at_every_width(self, batch_size):
        factory = lambda: build_random_cluster(7)
        serial = _analyzer(factory).run_suite(_suite())
        batched = _analyzer(factory).run_suite_batched(_suite(), batch_size)
        assert list(batched.per_testcase) == list(serial.per_testcase)
        for name, match in serial.per_testcase.items():
            assert batched.per_testcase[name].pairs == match.pairs
            assert (
                batched.per_testcase[name].use_without_def
                == match.use_without_def
            )

    def test_requires_block_engine(self):
        factory = lambda: build_random_cluster(7)
        analyzer = _analyzer(factory, engine="interp")
        with pytest.raises(ValueError, match="block engine"):
            analyzer.run_suite_batched(_suite(), 2)

    def test_errors_raise_in_suite_order(self):
        # register_processing wins over the instrumented rewrite, so the
        # fault fires regardless of instrumentation.
        def boom_first(cluster):
            cluster.dut.register_processing(lambda: 1 / 0)

        def boom_second(cluster):
            cluster.dut.register_processing(lambda: [][1])

        suite = TestSuite("bad", [
            TestCase("a", _suite().testcases[0].duration, boom_first),
            TestCase("b", _suite().testcases[0].duration, boom_second),
        ])
        factory = lambda: build_random_cluster(7)
        # Serial raises testcase a's error first; the batch must too,
        # even though both members fail inside one lockstep window.
        with pytest.raises(ZeroDivisionError):
            _analyzer(factory).run_suite_batched(suite, 2)


@settings(max_examples=8, deadline=None)
@given(
    values=values_strategy(max_size=6),
    up=rate_strategy(),
    down=rate_strategy(),
    batch_size=st.sampled_from([1, 3, 8]),
    use_numpy=st.booleans(),
)
def test_batched_equals_serial_property(values, up, down, batch_size, use_numpy):
    """Property (issue satellite): batched ≡ serial on random multirate
    clusters, at batch sizes 1/3/8, with and without numpy."""
    from _pytest.monkeypatch import MonkeyPatch

    import repro.tdf.engine.blocks as blocks

    factory = lambda: build_cluster(values, up, down)
    suite = _suite()
    with MonkeyPatch.context() as mp:
        if not use_numpy:
            mp.setattr(blocks, "_np", None)
        serial = _analyzer(factory).run_suite(suite)
        batched = _analyzer(factory).run_suite_batched(suite, batch_size)
    for name, match in serial.per_testcase.items():
        assert batched.per_testcase[name].pairs == match.pairs
