"""Unit tests for the AST instrumenter."""

import pytest

from repro.instrument.instrumenter import instrument_processing, restore_processing
from repro.instrument.probes import ProbeRuntime
from repro.tdf import Cluster, Simulator, TdfIn, TdfModule, TdfOut, ms
from repro.tdf.library import CollectorSink, ConstantSource


class Sample(TdfModule):
    def __init__(self, name="sample"):
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_total = 0.0

    def processing(self):
        value = self.ip.read()
        if value > 0:
            self.m_total = self.m_total + value
        self.op.write(self.m_total)


def _run(module_cls=Sample, periods=3, src_value=2.0):
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(ConstantSource("src", src_value, timestep=ms(1)))
            self.dut = self.add(module_cls())
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.dut.ip)
            self.connect(self.dut.op, self.sink.ip)

    top = Top("top")
    probe = ProbeRuntime("top")
    instrument_processing(top.dut, probe)
    Simulator(top).run_periods(periods)
    return top, probe


class TestBehaviourPreservation:
    def test_instrumented_output_identical(self):
        top, _ = _run()
        assert top.sink.values() == [2.0, 4.0, 6.0]

    def test_only_instance_affected(self):
        top, _ = _run()
        other = Sample("other")
        # The class method must be untouched.
        assert other._processing_fn is None

    def test_restore_processing(self):
        top, probe = _run()
        restore_processing(top.dut, None)
        assert top.dut._processing_fn is None


class TestEventCompleteness:
    def test_local_def_and_use_events(self):
        _, probe = _run()
        defs = [(e.var, e.line) for e in probe.var_events if e.is_def]
        uses = [(e.var, e.line) for e in probe.var_events if not e.is_def]
        assert any(v == "value" for v, _ in defs)
        assert any(v == "value" for v, _ in uses)

    def test_member_events(self):
        _, probe = _run()
        member_defs = [e for e in probe.var_events if e.is_def and e.var == "m_total"]
        member_uses = [e for e in probe.var_events if not e.is_def and e.var == "m_total"]
        assert len(member_defs) == 3     # one per activation (value > 0)
        # Used in the sum and in the write argument.
        assert len(member_uses) == 6

    def test_port_events_carry_token_indices(self):
        _, probe = _run()
        assert [e.token_index for e in probe.port_reads] == [0, 1, 2]
        assert [e.token_index for e in probe.port_writes] == [0, 1, 2]

    def test_branch_not_taken_no_events(self):
        _, probe = _run(src_value=-1.0)
        assert not any(e.is_def and e.var == "m_total" for e in probe.var_events)

    def test_lines_are_absolute(self):
        import inspect

        _, probe = _run()
        src_line = inspect.getsourcelines(Sample.processing)[1]
        for event in probe.var_events:
            assert event.line > src_line


class TestConstructCoverage:
    def test_augassign_instrumented(self):
        class Aug(TdfModule):
            def __init__(self, name="aug"):
                super().__init__(name)
                self.ip = TdfIn()
                self.op = TdfOut()

            def processing(self):
                x = self.ip.read()
                x += 1
                self.op.write(x)

        top, probe = _run(Aug, periods=1)
        assert top.sink.values() == [3.0]
        x_events = [(e.is_def, e.line) for e in probe.var_events if e.var == "x"]
        # def (assign), use+def (augassign), use (write arg).
        assert len(x_events) == 4

    def test_for_loop_instrumented(self):
        class Loop(TdfModule):
            def __init__(self, name="loop"):
                super().__init__(name)
                self.ip = TdfIn()
                self.op = TdfOut()

            def processing(self):
                total = 0.0
                items = [self.ip.read(), 1.0]
                for item in items:
                    total = total + item
                self.op.write(total)

        top, probe = _run(Loop, periods=1)
        assert top.sink.values() == [3.0]
        item_defs = [e for e in probe.var_events if e.is_def and e.var == "item"]
        assert len(item_defs) == 2  # one per iteration

    def test_while_condition_uses_fire_per_iteration(self):
        class Wh(TdfModule):
            def __init__(self, name="wh"):
                super().__init__(name)
                self.ip = TdfIn()
                self.op = TdfOut()

            def processing(self):
                n = int(self.ip.read())
                while n > 0:
                    n = n - 1
                self.op.write(n)

        top, probe = _run(Wh, periods=1, src_value=3.0)
        cond_uses = [
            e for e in probe.var_events
            if not e.is_def and e.var == "n"
        ]
        # 4 condition evaluations + 3 decrement uses + 1 write use.
        assert len(cond_uses) == 8

    def test_multirate_port_offsets(self):
        class Multi(TdfModule):
            def __init__(self, name="multi"):
                super().__init__(name)
                self.ip = TdfIn()
                self.op = TdfOut()

            def set_attributes(self):
                self.ip.set_rate(2)

            def processing(self):
                a = self.ip.read(0)
                b = self.ip.read(1)
                self.op.write(a + b)

        top, probe = _run(Multi, periods=1)
        assert top.sink.values() == [4.0]
        assert [e.token_index for e in probe.port_reads] == [0, 1]

    def test_ternary_expression(self):
        class Tern(TdfModule):
            def __init__(self, name="tern"):
                super().__init__(name)
                self.ip = TdfIn()
                self.op = TdfOut()

            def processing(self):
                v = self.ip.read()
                out = v if v > 0 else 0.0
                self.op.write(out)

        top, probe = _run(Tern, periods=1)
        assert top.sink.values() == [2.0]
