"""Unit tests for dynamic event matching."""

import warnings

import pytest

from repro.instrument.matching import match_events
from repro.instrument.probes import (
    PortReadEvent,
    PortWriteEvent,
    ProbeRuntime,
    UseWithoutDefWarning,
    VarEvent,
    WriterKind,
)


def _probe():
    return ProbeRuntime("top")


def _match(probe, starts=None, initial=None, warn=False):
    return match_events(probe, "tc", starts or {}, initial or {}, warn=warn)


class TestVarMatching:
    def test_use_pairs_with_most_recent_def(self):
        p = _probe()
        p.var_events += [
            VarEvent(True, "x", "m", 10, 1),
            VarEvent(False, "x", "m", 11, 2),
            VarEvent(True, "x", "m", 12, 3),
            VarEvent(False, "x", "m", 13, 4),
        ]
        result = _match(p)
        assert result.pairs == {
            ("x", "m", 10, "m", 11),
            ("x", "m", 12, "m", 13),
        }

    def test_use_without_prior_def_skipped(self):
        p = _probe()
        p.var_events.append(VarEvent(False, "x", "m", 11, 1))
        assert _match(p).pairs == set()

    def test_cross_model_isolation(self):
        p = _probe()
        p.var_events += [
            VarEvent(True, "x", "a", 10, 1),
            VarEvent(False, "x", "b", 11, 2),
        ]
        assert _match(p).pairs == set()

    def test_member_pairs_across_activations(self):
        p = _probe()
        # def in activation 1, use in activation 2 (later seq).
        p.var_events += [
            VarEvent(True, "m_s", "m", 20, 1),
            VarEvent(False, "m_s", "m", 15, 9),
        ]
        assert _match(p).pairs == {("m_s", "m", 20, "m", 15)}


class TestPortMatching:
    def _write(self, p, idx, line=30, kind=WriterKind.MODEL, signal="s", var="op"):
        p.port_writes.append(PortWriteEvent(signal, idx, var, "w", line, kind, idx))

    def _read(self, p, idx, line=40, signal="s", undriven=False):
        p.port_reads.append(
            PortReadEvent(signal, idx, "ip", "r", "r", line, undriven, 100 + idx)
        )

    def test_exact_token_join(self):
        p = _probe()
        self._write(p, 0)
        self._read(p, 0)
        assert _match(p).pairs == {("op", "w", 30, "r", 40)}

    def test_floor_join_for_sample_and_hold(self):
        p = _probe()
        self._write(p, 0)
        self._read(p, 3)  # repeated (unwritten) samples
        assert _match(p).pairs == {("op", "w", 30, "r", 40)}

    def test_no_write_before_token_skipped(self):
        p = _probe()
        self._write(p, 5)
        self._read(p, 2)
        assert _match(p).pairs == set()

    def test_negative_index_is_initial_value(self):
        p = _probe()
        self._write(p, 0)
        self._read(p, -1)
        assert _match(p).pairs == set()

    def test_last_write_per_token_wins(self):
        p = _probe()
        p.port_writes.append(PortWriteEvent("s", 0, "op", "w", 30, WriterKind.MODEL, 1))
        p.port_writes.append(PortWriteEvent("s", 0, "op", "w", 33, WriterKind.MODEL, 2))
        self._read(p, 0)
        assert _match(p).pairs == {("op", "w", 33, "r", 40)}

    def test_testbench_write_pairs_with_placeholder(self):
        p = _probe()
        self._write(p, 0, kind=WriterKind.TESTBENCH)
        self._read(p, 0)
        result = match_events(p, "tc", {"r": 7}, {})
        assert result.pairs == {("ip", "r", 7, "r", 40)}

    def test_testbench_without_start_line_skipped(self):
        p = _probe()
        self._write(p, 0, kind=WriterKind.TESTBENCH)
        self._read(p, 0)
        assert _match(p).pairs == set()

    def test_redef_write_uses_netlist_anchor(self):
        p = _probe()
        p.port_writes.append(
            PortWriteEvent("s", 0, "op_src", "top", 99, WriterKind.REDEF, 1)
        )
        self._read(p, 0)
        assert _match(p).pairs == {("op_src", "top", 99, "r", 40)}


class TestUseWithoutDef:
    def test_undriven_read_reported_once(self):
        p = _probe()
        for i in range(3):
            p.port_reads.append(
                PortReadEvent("s", i, "ip", "r", "r", 40, True, i)
            )
        result = _match(p)
        assert result.use_without_def == ["r.ip"]
        assert result.pairs == set()

    def test_warning_raised_when_enabled(self):
        p = _probe()
        p.port_reads.append(PortReadEvent("s", 0, "ip", "r", "r", 40, True, 1))
        with pytest.warns(UseWithoutDefWarning, match="undefined"):
            _match(p, warn=True)

    def test_no_warning_when_disabled(self):
        p = _probe()
        p.port_reads.append(PortReadEvent("s", 0, "ip", "r", "r", 40, True, 1))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _match(p, warn=False)


class TestExercisedRecords:
    def test_exercised_pairs_carry_testcase(self):
        p = _probe()
        p.var_events += [
            VarEvent(True, "x", "m", 10, 1),
            VarEvent(False, "x", "m", 11, 2),
        ]
        records = _match(p).exercised()
        assert len(records) == 1
        assert records[0].testcase == "tc"
        assert records[0].key == ("x", "m", 10, "m", 11)
