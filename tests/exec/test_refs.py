"""The ``"module:attr"`` reference scheme used by worker processes."""

import pytest

from repro.exec import ref_to, resolve_ref
from repro.systems.sensor import SenseTop, paper_testcases


class TestResolveRef:
    def test_resolves_class(self):
        assert resolve_ref("repro.systems.sensor:SenseTop") is SenseTop

    def test_resolves_function(self):
        assert resolve_ref("repro.systems.sensor:paper_testcases") is paper_testcases

    def test_resolves_dotted_attribute(self):
        method = resolve_ref("repro.systems.sensor:SenseTop.architecture")
        assert method is SenseTop.architecture

    @pytest.mark.parametrize(
        "bad", ["no_colon", ":attr_only", "module:", "a:b:c", ""]
    )
    def test_malformed_reference_raises(self, bad):
        with pytest.raises(ValueError):
            resolve_ref(bad)

    def test_missing_attribute_raises(self):
        with pytest.raises(AttributeError):
            resolve_ref("repro.systems.sensor:NoSuchThing")

    def test_missing_module_raises(self):
        with pytest.raises(ModuleNotFoundError):
            resolve_ref("repro.no_such_module:thing")


class TestRefTo:
    def test_round_trip(self):
        ref = ref_to(SenseTop)
        assert resolve_ref(ref) is SenseTop

    def test_function_round_trip(self):
        ref = ref_to(paper_testcases)
        assert resolve_ref(ref) is paper_testcases

    def test_lambda_rejected(self):
        with pytest.raises(ValueError):
            ref_to(lambda: None)

    def test_closure_rejected(self):
        def outer():
            def inner():
                pass

            return inner

        with pytest.raises(ValueError):
            ref_to(outer())
