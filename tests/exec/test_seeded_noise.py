"""SeededNoise streams must be identical in worker processes.

The parallel executors re-apply every testcase inside a worker process;
a noise stimulus backed by shared RNG state would produce a different
stream there than in a serial run and silently break the byte-identical
guarantees (coverage under ``--workers N``, mutation kill matrices).
SeededNoise is therefore stateless — each sample is a pure function of
``(seed, t)`` — and these tests pin that property at both the stimulus
level and the full-simulation level.
"""

from concurrent.futures import ProcessPoolExecutor

from repro.testing import SeededNoise

TIMES = [i * 0.0137 for i in range(64)]


def _sample_stream(seed: int):
    noise = SeededNoise(-2.0, 3.0, seed=seed)
    return [noise(t) for t in TIMES]


def _noise_sink_samples(cluster_seed: int):
    """Simulate the seeded random cluster under its noise testcase."""
    from repro.tdf.simulator import Simulator
    from repro.testing.generate import build_random_cluster, random_suite

    cluster = build_random_cluster(cluster_seed)
    testcase = next(
        tc for tc in random_suite(cluster_seed) if tc.name == "noise"
    )
    testcase.apply(cluster)
    sim = Simulator(cluster)
    sim.run(testcase.duration)
    sim.finish()
    return cluster.sink.m_samples


class TestStreamDeterminism:
    def test_child_process_streams_identical_to_serial(self):
        serial = _sample_stream(42)
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_sample_stream, 42) for _ in range(2)]
            parallel = [f.result() for f in futures]
        assert parallel[0] == serial
        assert parallel[1] == serial

    def test_distinct_seeds_stay_distinct_across_processes(self):
        with ProcessPoolExecutor(max_workers=2) as pool:
            a = pool.submit(_sample_stream, 1).result()
            b = pool.submit(_sample_stream, 2).result()
        assert a != b

    def test_stateless_instances_do_not_interfere(self):
        # Interleaving reads across two instances must not perturb
        # either stream (i.e. no hidden shared RNG state).
        x = SeededNoise(0.0, 1.0, seed=5)
        y = SeededNoise(0.0, 1.0, seed=5)
        interleaved = [(x if i % 2 else y)(t) for i, t in enumerate(TIMES)]
        solo = [SeededNoise(0.0, 1.0, seed=5)(t) for t in TIMES]
        assert interleaved == solo


class TestSimulationDeterminism:
    def test_noise_testcase_traces_identical_serial_vs_worker(self):
        serial = _noise_sink_samples(3)
        with ProcessPoolExecutor(max_workers=1) as pool:
            worker = pool.submit(_noise_sink_samples, 3).result()
        assert worker == serial
        assert len(serial) > 0
