"""Serial-vs-parallel equivalence of the dynamic stage.

The acceptance bar for the parallel executor is *byte-identical*
reports: same exercised pairs, same summary text, same testcase order,
for every paper system.  The window-lifter and buck-boost checks run on
suite subsets (including a dynamic-TDF testcase) to keep the suite
fast; the sensor check covers a full pipeline run.
"""

import pytest

from repro.analysis import analyze_cluster
from repro.core import DftConfig, format_summary, run_dft
from repro.exec import ProcessExecutor, SerialExecutor
from repro.exec.refs import resolve_ref
from repro.testing import TestSuite

SENSOR = ("repro.systems.sensor:SenseTop", "repro.systems.sensor:paper_testcases")
WINDOW_LIFTER = (
    "repro.systems.window_lifter:WindowLifterTop",
    "repro.systems.campaigns:window_lifter_all_testcases",
)
BUCK_BOOST = (
    "repro.systems.buck_boost:BuckBoostTop",
    "repro.systems.campaigns:buck_boost_all_testcases",
)


def _subset_suite(suite_ref, names):
    by_name = {tc.name: tc for tc in resolve_ref(suite_ref)()}
    return TestSuite("subset", [by_name[name] for name in names])


def _run_both(factory_ref, suite_ref, suite, workers=2):
    factory = resolve_ref(factory_ref)
    static = analyze_cluster(factory())
    serial = SerialExecutor().run_suite(factory, static, suite)
    parallel = ProcessExecutor(factory_ref, suite_ref, workers).run_suite(
        factory, static, suite
    )
    return serial, parallel


class TestSensorEquivalence:
    def test_full_pipeline_identical(self):
        factory = resolve_ref(SENSOR[0])
        suite = TestSuite("sensor", resolve_ref(SENSOR[1])())
        serial = run_dft(factory, suite, DftConfig(executor=SerialExecutor()))
        parallel = run_dft(
            factory, suite, DftConfig(executor=ProcessExecutor(*SENSOR, workers=2))
        )
        assert (
            serial.dynamic.exercised_keys() == parallel.dynamic.exercised_keys()
        )
        assert format_summary(serial.coverage) == format_summary(
            parallel.coverage
        )
        assert list(parallel.dynamic.per_testcase) == [tc.name for tc in suite]

    def test_worker_count_does_not_matter(self):
        factory = resolve_ref(SENSOR[0])
        suite = TestSuite("sensor", resolve_ref(SENSOR[1])())
        summaries = set()
        for workers in (1, 3):
            result = run_dft(
                factory, suite,
                DftConfig(executor=ProcessExecutor(*SENSOR, workers=workers)),
            )
            summaries.add(format_summary(result.coverage))
        assert len(summaries) == 1


class TestWindowLifterEquivalence:
    def test_subset_with_dynamic_tdf_testcase(self):
        # wl_obst_fine_zone exercises the dynamic-TDF timestep flip.
        suite = _subset_suite(
            WINDOW_LIFTER[1], ["wl_close_short", "wl_idle", "wl_obst_fine_zone"]
        )
        serial, parallel = _run_both(*WINDOW_LIFTER, suite)
        for name in suite.names():
            assert (
                serial.per_testcase[name].pairs
                == parallel.per_testcase[name].pairs
            )
        assert serial.use_without_def() == parallel.use_without_def()


class TestBuckBoostEquivalence:
    def test_subset_identical(self):
        suite = _subset_suite(BUCK_BOOST[1], ["bb_buck_0v9", "bb_boost_4v2"])
        serial, parallel = _run_both(*BUCK_BOOST, suite)
        assert serial.exercised_keys() == parallel.exercised_keys()
        assert list(parallel.per_testcase) == suite.names()


class TestExecutorMechanics:
    def test_shards_round_robin(self):
        executor = ProcessExecutor(*SENSOR, workers=2)
        assert executor._shards(["a", "b", "c", "d", "e"]) == [
            ("a", "c", "e"),
            ("b", "d"),
        ]

    def test_more_workers_than_testcases(self):
        suite = _subset_suite(BUCK_BOOST[1], ["bb_buck_0v9"])
        serial, parallel = _run_both(*BUCK_BOOST, suite, workers=8)
        assert serial.exercised_keys() == parallel.exercised_keys()

    def test_unknown_testcase_rejected(self):
        from repro.testing import TestCase
        from repro.tdf import ms

        factory = resolve_ref(SENSOR[0])
        static = analyze_cluster(factory())
        rogue = TestSuite("rogue", [TestCase("not_in_ref", ms(1), lambda c: None)])
        with pytest.raises(LookupError):
            ProcessExecutor(*SENSOR, workers=2).run_suite(factory, static, rogue)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ProcessExecutor(*SENSOR, workers=0)
        with pytest.raises(ValueError):
            ProcessExecutor("not-a-ref", SENSOR[1], workers=2)

    def test_empty_suite(self):
        factory = resolve_ref(SENSOR[0])
        static = analyze_cluster(factory())
        result = ProcessExecutor(*SENSOR, workers=2).run_suite(
            factory, static, TestSuite("empty")
        )
        assert result.per_testcase == {}
