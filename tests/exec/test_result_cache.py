"""Per-testcase dynamic-result memoization (campaign acceleration)."""

from repro import DftConfig
from repro.core import run_dft
from repro.core.workflow import IterativeCampaign
from repro.exec import DynamicResultCache
from repro.instrument.matching import MatchResult
from repro.systems.sensor import SenseTop, paper_testcases
from repro.testing import TestSuite


def _factory():
    return SenseTop()


class TestDynamicResultCache:
    def test_get_miss_then_hit(self):
        cache = DynamicResultCache()
        match = MatchResult("tc")
        assert cache.get("fp", "tc") is None
        cache.put("fp", "tc", match)
        assert cache.get("fp", "tc") is match
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5
        assert len(cache) == 1

    def test_fingerprint_scopes_entries(self):
        cache = DynamicResultCache()
        cache.put("fp1", "tc", MatchResult("tc"))
        assert cache.get("fp2", "tc") is None

    def test_none_fingerprint_disables_caching(self):
        cache = DynamicResultCache()
        cache.put(None, "tc", MatchResult("tc"))
        assert len(cache) == 0
        assert cache.get(None, "tc") is None
        assert cache.misses == 1

    def test_clear(self):
        cache = DynamicResultCache()
        cache.put("fp", "tc", MatchResult("tc"))
        cache.get("fp", "tc")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


class TestPipelineResultCache:
    def test_cached_testcases_not_reexecuted(self):
        builds = []

        def counting_factory():
            builds.append(1)
            return SenseTop()

        suite = TestSuite("sensor", paper_testcases())
        cache = DynamicResultCache()
        first = run_dft(counting_factory, suite, DftConfig(result_cache=cache))
        builds_first = len(builds)
        second = run_dft(counting_factory, suite, DftConfig(result_cache=cache))
        # Second run: one build for the static stage, none for testcases.
        assert len(builds) == builds_first + 1
        assert cache.hits == len(suite)
        assert first.dynamic.exercised_keys() == second.dynamic.exercised_keys()
        assert list(second.dynamic.per_testcase) == suite.names()

    def test_partial_cache_runs_only_pending(self):
        suite = TestSuite("sensor", paper_testcases())
        cache = DynamicResultCache()
        warmup = TestSuite("warmup", suite.testcases[:2])
        run_dft(_factory, warmup, DftConfig(result_cache=cache))
        result = run_dft(_factory, suite, DftConfig(result_cache=cache))
        assert cache.hits == 2
        assert list(result.dynamic.per_testcase) == suite.names()
        uncached = run_dft(_factory, suite)
        assert (
            result.dynamic.exercised_keys() == uncached.dynamic.exercised_keys()
        )


class TestBatchedPipelineCache:
    def test_cache_hits_never_enter_a_batch(self):
        # Resolution order: cached testcases are served from the cache
        # *before* lockstep batch assembly, so a warm cache costs zero
        # cluster builds for its hits even in batched mode.
        builds = []

        def counting_factory():
            builds.append(1)
            return SenseTop()

        suite = TestSuite("sensor", paper_testcases())
        cache = DynamicResultCache()
        warmup = TestSuite("warmup", suite.testcases[:2])
        run_dft(counting_factory, warmup, DftConfig(result_cache=cache))
        builds.clear()
        result = run_dft(
            counting_factory,
            suite,
            DftConfig(result_cache=cache, batch_size=8, engine="block"),
        )
        pending = len(suite) - len(warmup)
        # One build for the static stage, one per *pending* testcase.
        assert len(builds) == pending + 1
        assert cache.hits == len(warmup)
        assert list(result.dynamic.per_testcase) == suite.names()
        # The merged result is byte-equal to a cold serial run.
        serial = run_dft(_factory, suite)
        assert result.dynamic.exercised_keys() == serial.dynamic.exercised_keys()
        for name, match in serial.dynamic.per_testcase.items():
            assert result.dynamic.per_testcase[name].pairs == match.pairs


class TestCampaignReuse:
    def _campaign(self, reuse):
        tests = paper_testcases()
        campaign = IterativeCampaign(
            _factory, tests[:1], name="mini",
            config=DftConfig(reuse_dynamic_results=reuse),
        )
        campaign.add_iteration(tests[1:2])
        campaign.add_iteration(tests[2:])
        return campaign

    def test_reuse_matches_cold_records(self):
        cold = self._campaign(reuse=False).run()
        cached = self._campaign(reuse=True).run()
        assert len(cold) == len(cached) == 3
        for a, b in zip(cold, cached):
            assert a.tests == b.tests
            assert a.exercised_total == b.exercised_total
            assert a.class_percent == b.class_percent
            assert a.criteria == b.criteria
