"""Unit tests for testcases and suites."""

import pytest

from repro.tdf import Cluster, ms
from repro.tdf.library import StimulusSource
from repro.testing import TestCase, TestSuite, waveform_testcase


def _cluster():
    class Top(Cluster):
        def architecture(self):
            self.src = self.add(StimulusSource("src", lambda t: 0.0, ms(1)))

    return Top("top")


class TestTestCase:
    def test_apply_runs_setup(self):
        seen = []
        tc = TestCase("t", ms(1), lambda c: seen.append(c.name))
        tc.apply(_cluster())
        assert seen == ["top"]

    def test_waveform_testcase_installs_waveforms(self):
        tc = waveform_testcase("t", ms(1), {"src": lambda t: 7.0})
        top = _cluster()
        tc.apply(top)
        assert top.src.m_waveform(0.0) == 7.0

    def test_repr(self):
        assert "t" in repr(TestCase("t", ms(1), lambda c: None))


class TestTestSuite:
    def _tc(self, name):
        return TestCase(name, ms(1), lambda c: None)

    def test_ordered_and_iterable(self):
        suite = TestSuite("s", [self._tc("a"), self._tc("b")])
        assert suite.names() == ["a", "b"]
        assert [tc.name for tc in suite] == ["a", "b"]
        assert len(suite) == 2

    def test_duplicate_names_rejected(self):
        suite = TestSuite("s", [self._tc("a")])
        with pytest.raises(ValueError, match="already has testcase"):
            suite.add(self._tc("a"))

    def test_extend(self):
        suite = TestSuite("s")
        suite.extend([self._tc("a"), self._tc("b")])
        assert len(suite) == 2

    def test_testcases_returns_copy(self):
        suite = TestSuite("s", [self._tc("a")])
        suite.testcases.append(self._tc("b"))
        assert len(suite) == 1
