"""Unit tests for stimulus waveforms."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.testing import (
    Clip,
    Constant,
    Offset,
    Pulse,
    Pwl,
    RampUpDown,
    SeededNoise,
    Sine,
    Step,
    Sum,
)


class TestBasicShapes:
    def test_constant(self):
        s = Constant(2.5)
        assert s(0.0) == 2.5
        assert s(99.0) == 2.5

    def test_step(self):
        s = Step(0.0, 1.0, at=1.0)
        assert s(0.999) == 0.0
        assert s(1.0) == 1.0

    def test_ramp_up_down_tc2_shape(self):
        # The paper's TC2: 0 V -> 0.65 V -> 0 V.
        s = RampUpDown(0.0, 0.65, t_up=0.01, t_hold_end=0.02, t_end=0.03)
        assert s(0.0) == 0.0
        assert s(0.005) == pytest.approx(0.325)
        assert s(0.015) == 0.65
        assert s(0.025) == pytest.approx(0.325)
        assert s(0.05) == 0.0

    def test_ramp_up_down_validation(self):
        with pytest.raises(ValueError):
            RampUpDown(0, 1, t_up=0.2, t_hold_end=0.1, t_end=0.3)

    def test_sine(self):
        s = Sine(amplitude=1.0, frequency_hz=1.0)
        assert s(0.25) == pytest.approx(1.0)
        assert s(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_pulse(self):
        s = Pulse(0.0, 5.0, period=1.0, width=0.25, delay=0.5)
        assert s(0.4) == 0.0          # before delay
        assert s(0.6) == 5.0          # inside first pulse
        assert s(0.8) == 0.0
        assert s(1.6) == 5.0          # second period

    def test_pulse_validation(self):
        with pytest.raises(ValueError):
            Pulse(0, 1, period=0.0, width=0.1)
        with pytest.raises(ValueError):
            Pulse(0, 1, period=1.0, width=2.0)


class TestPwl:
    def test_interpolates(self):
        s = Pwl([(0.0, 0.0), (1.0, 10.0)])
        assert s(0.5) == pytest.approx(5.0)

    def test_holds_ends(self):
        s = Pwl([(1.0, 2.0), (2.0, 4.0)])
        assert s(0.0) == 2.0
        assert s(9.0) == 4.0

    def test_requires_sorted_points(self):
        with pytest.raises(ValueError):
            Pwl([(1.0, 0.0), (0.5, 1.0)])

    def test_requires_points(self):
        with pytest.raises(ValueError):
            Pwl([])


class TestCombinators:
    def test_offset(self):
        s = Offset(Constant(1.0), 2.0)
        assert s(0.0) == 3.0

    def test_sum(self):
        s = Sum([Constant(1.0), Constant(2.0)])
        assert s(0.0) == 3.0

    def test_sum_requires_parts(self):
        with pytest.raises(ValueError):
            Sum([])

    def test_clip(self):
        s = Clip(Constant(10.0), -1.0, 1.0)
        assert s(0.0) == 1.0

    def test_clip_validation(self):
        with pytest.raises(ValueError):
            Clip(Constant(0.0), 1.0, -1.0)


class TestSeededNoise:
    def test_deterministic_per_seed_and_time(self):
        a = SeededNoise(0.0, 1.0, seed=42)
        b = SeededNoise(0.0, 1.0, seed=42)
        assert a(0.123) == b(0.123)

    def test_different_seeds_differ(self):
        a = SeededNoise(0.0, 1.0, seed=1)
        b = SeededNoise(0.0, 1.0, seed=2)
        assert a(0.5) != b(0.5)

    def test_quantum_validated(self):
        with pytest.raises(ValueError):
            SeededNoise(0, 1, seed=0, quantum=0.0)

    @given(st.floats(0.0, 100.0))
    def test_bounds_respected(self, t):
        s = SeededNoise(-2.0, 3.0, seed=7)
        assert -2.0 <= s(t) <= 3.0

    def test_order_independent(self):
        s = SeededNoise(0.0, 1.0, seed=9)
        forward = [s(t / 100) for t in range(10)]
        backward = [s(t / 100) for t in reversed(range(10))]
        assert forward == list(reversed(backward))


class TestNames:
    def test_default_names_informative(self):
        assert "const" in Constant(1.0).name
        assert "TC2" == RampUpDown(0, 1, 0.1, 0.2, 0.3, name="TC2").name
