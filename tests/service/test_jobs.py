"""Durable job queue: journal, lifecycle, crash replay."""

import json

import pytest

from repro.service.jobs import JobQueue, JobSpec


def _spec(kind="run", system="sensor"):
    return JobSpec(kind=kind, system=system, config={"seed": 1})


class TestJobSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec(kind="compile", system="sensor")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown job spec field"):
            JobSpec.from_json({"kind": "run", "system": "s", "extra": 1})

    def test_round_trip(self):
        spec = _spec("mutate")
        assert JobSpec.from_json(spec.to_json()) == spec


class TestJobQueue:
    def test_submit_and_lifecycle(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(_spec())
        assert job.status == "queued"
        assert queue.next_queued().id == job.id
        queue.mark_running(job.id)
        assert queue.get(job.id).status == "running"
        assert queue.next_queued() is None
        queue.mark_done(job.id, {"schema": "x", "payload": {}})
        done = queue.get(job.id)
        assert done.status == "done"
        assert done.result["schema"] == "x"

    def test_ids_are_sequential(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        ids = [queue.submit(_spec()).id for _ in range(3)]
        assert ids == ["job-000001", "job-000002", "job-000003"]

    def test_progress_not_journaled(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(_spec())
        queue.mark_progress(job.id, {"stage": "dynamic"})
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "jobs.jsonl").read_text().splitlines()
        ]
        assert events == ["submitted"]
        assert queue.get(job.id).progress == {"stage": "dynamic"}

    def test_replay_resumes_queued_jobs(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        queued = queue.submit(_spec())
        running = queue.submit(_spec("campaign", "buck_boost"))
        finished = queue.submit(_spec("mutate"))
        queue.mark_running(running.id)
        queue.mark_running(finished.id)
        queue.mark_done(finished.id, {"schema": "done", "payload": {}})

        # A fresh queue over the same directory = a restarted server.
        revived = JobQueue(str(tmp_path))
        assert revived.get(queued.id).status == "queued"
        # The job that was mid-run at crash time re-queues.
        assert revived.get(running.id).status == "queued"
        assert revived.get(finished.id).status == "done"
        assert revived.get(finished.id).result["schema"] == "done"
        # Draining resumes in submission order.
        assert revived.next_queued().id == queued.id
        # New submissions continue the id sequence past the replayed ones.
        assert revived.submit(_spec()).id == "job-000004"

    def test_replay_tolerates_torn_tail(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(_spec())
        with open(tmp_path / "jobs.jsonl", "a") as handle:
            handle.write('{"event": "done", "id": "job-0')  # torn write
        revived = JobQueue(str(tmp_path))
        assert revived.get(job.id).status == "queued"

    def test_failed_jobs_keep_error(self, tmp_path):
        queue = JobQueue(str(tmp_path))
        job = queue.submit(_spec())
        queue.mark_running(job.id)
        queue.mark_failed(job.id, "boom")
        revived = JobQueue(str(tmp_path))
        assert revived.get(job.id).status == "failed"
        assert revived.get(job.id).error == "boom"
