"""HTTP job server: endpoints, validation, restart recovery."""

import json

import pytest

from repro.core import DftConfig, run_dft
from repro.obs.store.history import coverage_summary
from repro.service import JobServer, JobSpec, WorkerServer
from repro.service.client import (
    ServiceError,
    _request,
    healthz,
    job_result,
    job_status,
    submit_job,
    wait_for_job,
)
from repro.testing.testcase import TestSuite


def _sensor_suite():
    from repro.systems.sensor import paper_testcases

    return TestSuite("sensor", paper_testcases())


def _sensor_factory():
    from repro.systems.sensor import SenseTop

    return SenseTop()


@pytest.fixture()
def server(tmp_path):
    srv = JobServer(str(tmp_path / "state"))
    addr = srv.start_in_thread()
    yield srv, addr
    srv.close()


class TestEndpoints:
    def test_healthz(self, server):
        _, addr = server
        doc = healthz(addr)
        assert doc["ok"] is True
        assert doc["workers"] == 0

    def test_unknown_path_404(self, server):
        _, addr = server
        with pytest.raises(ServiceError) as err:
            _request(addr, "GET", "/v2/nope")
        assert err.value.status == 404

    def test_wrong_method_405(self, server):
        _, addr = server
        with pytest.raises(ServiceError) as err:
            _request(addr, "GET", "/v1/jobs")
        assert err.value.status == 405

    def test_unknown_job_404(self, server):
        _, addr = server
        with pytest.raises(ServiceError) as err:
            job_status(addr, "job-999999")
        assert err.value.status == 404


class TestSubmitValidation:
    def test_malformed_json_body_is_400(self, server):
        """Junk bytes get a one-line 400, not a hung or crashed server."""
        import http.client

        _, addr = server
        conn = http.client.HTTPConnection(addr[0], addr[1], timeout=10)
        try:
            conn.request(
                "POST", "/v1/jobs", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            doc = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert "\n" not in doc["error"]
        assert "malformed JSON body" in doc["error"]

    def test_unknown_kind_is_400(self, server):
        _, addr = server
        with pytest.raises(ServiceError) as err:
            submit_job(addr, {"kind": "bogus", "system": "sensor"})
        assert err.value.status == 400
        assert "unknown job kind" in str(err.value)

    def test_unknown_config_field_is_400(self, server):
        _, addr = server
        with pytest.raises(ServiceError) as err:
            submit_job(
                addr,
                {"kind": "run", "system": "sensor", "config": {"tpyo": 1}},
            )
        assert err.value.status == 400
        assert "tpyo" in str(err.value)

    def test_unknown_spec_field_is_400(self, server):
        _, addr = server
        with pytest.raises(ServiceError) as err:
            submit_job(addr, {"kind": "run", "system": "sensor", "prio": 9})
        assert err.value.status == 400


class TestJobExecution:
    def test_run_job_matches_local_run(self, server):
        _, addr = server
        job_id = submit_job(
            addr, {"kind": "run", "system": "sensor", "config": {}}
        )
        wait_for_job(addr, job_id, timeout=300)
        envelope = job_result(addr, job_id)
        assert envelope["schema"] == "repro-dft-history/1"
        assert envelope["payload"]["kind"] == "run"
        local = run_dft(_sensor_factory, _sensor_suite(), DftConfig())
        assert json.dumps(
            envelope["payload"]["coverage"], sort_keys=True
        ) == json.dumps(coverage_summary(local.coverage), sort_keys=True)
        assert envelope["fingerprint"] == local.static.fingerprint

    def test_result_before_done_is_409(self, server):
        srv, addr = server
        # Submit against a server whose runner is busy enough that the
        # immediate result read races it; a queued/running job answers
        # 409, not a partial envelope.
        job_id = submit_job(
            addr, {"kind": "run", "system": "sensor", "config": {}}
        )
        status = job_status(addr, job_id)
        if status["status"] in ("queued", "running"):
            with pytest.raises(ServiceError) as err:
                job_result(addr, job_id)
            assert err.value.status == 409
        wait_for_job(addr, job_id, timeout=300)

    def test_unknown_system_fails_job(self, server):
        _, addr = server
        job_id = submit_job(addr, {"kind": "run", "system": "warp_core"})
        with pytest.raises(ServiceError, match="warp_core"):
            wait_for_job(addr, job_id, timeout=60)
        status = job_status(addr, job_id)
        assert status["status"] == "failed"
        with pytest.raises(ServiceError) as err:
            job_result(addr, job_id)
        assert err.value.status == 500


class TestRestartRecovery:
    def test_queued_jobs_resume_after_restart(self, tmp_path):
        """Journal replay: a job queued at crash time runs on restart."""
        state = str(tmp_path / "state")
        first = JobServer(state)
        # Submit directly to the queue without starting the runner —
        # the job is journaled but never picked up (= crash before run).
        job = first.queue.submit(
            JobSpec(kind="run", system="sensor", config={})
        )
        assert first.queue.get(job.id).status == "queued"

        second = JobServer(state)
        addr = second.start_in_thread()
        try:
            status = wait_for_job(addr, job.id, timeout=300)
            assert status["status"] == "done"
            envelope = job_result(addr, job.id)
            assert envelope["payload"]["kind"] == "run"
        finally:
            second.close()


class TestRemoteFleetJobs:
    def test_campaign_sharded_across_two_workers(self, tmp_path):
        """The acceptance path: a campaign job over HTTP, sharded across
        two workers, byte-identical to the single-process run."""
        workers = [WorkerServer(), WorkerServer()]
        addrs = [worker.start_in_thread() for worker in workers]
        srv = JobServer(str(tmp_path / "state"), worker_addrs=addrs)
        addr = srv.start_in_thread()
        try:
            job_id = submit_job(
                addr, {"kind": "campaign", "system": "buck_boost"}
            )
            wait_for_job(addr, job_id, timeout=600)
            envelope = job_result(addr, job_id)
        finally:
            srv.close()
            for worker in workers:
                worker.close()
        assert envelope["payload"]["kind"] == "campaign"
        assert sum(worker.shards_run for worker in workers) >= 2

        from repro.systems import campaigns

        local = campaigns.buck_boost_campaign(config=DftConfig())
        records = local.run()
        assert json.dumps(
            envelope["payload"]["coverage"], sort_keys=True
        ) == json.dumps(
            coverage_summary(records[-1].coverage), sort_keys=True
        )
        trajectory = envelope["payload"]["campaign"]["trajectory"]
        assert [row["tests"] for row in trajectory] == [
            rec.tests for rec in records
        ]
