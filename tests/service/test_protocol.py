"""Wire-protocol codecs: NDJSON framing and MatchResult round-trips."""

import json

import pytest

from repro.instrument.matching import MatchResult
from repro.service.protocol import (
    ProtocolError,
    decode_match,
    decode_message,
    encode_match,
    encode_message,
)


def _match(name="t1"):
    return MatchResult(
        testcase=name,
        pairs={
            ("v", "m1", 3, "m2", 7),
            ("w", "m1", 4, "m1", 5),
        },
        use_without_def=["u on m2:9"],
    )


class TestMatchCodec:
    def test_round_trip(self):
        match = _match()
        rebuilt = decode_match(json.loads(json.dumps(encode_match(match))))
        assert rebuilt.testcase == match.testcase
        assert rebuilt.pairs == match.pairs
        assert rebuilt.use_without_def == match.use_without_def

    def test_encoding_is_canonical(self):
        # Same logical result -> same bytes, whichever worker built it.
        a = json.dumps(encode_match(_match()), sort_keys=True)
        b = json.dumps(encode_match(_match()), sort_keys=True)
        assert a == b

    def test_pairs_rebuilt_as_tuples(self):
        rebuilt = decode_match(encode_match(_match()))
        assert all(isinstance(pair, tuple) for pair in rebuilt.pairs)


class TestFraming:
    def test_message_round_trip(self):
        msg = {"op": "ping", "n": 3}
        line = encode_message(msg)
        assert line.endswith(b"\n")
        assert decode_message(line) == msg

    def test_junk_line_raises(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_message(b"not json\n")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message(b"[1, 2]\n")
