"""RemoteExecutor over live in-thread workers.

The acceptance properties of the service tentpole: a suite sharded
across >= 2 remote workers merges byte-identically to a local serial
run, a worker dying mid-job is survived via re-dispatch, and repeat
shards answer from the workers' content-addressed memo caches.
"""

import json
import socket
import threading

import pytest

from repro.core import DftConfig, run_dft
from repro.obs.store.history import coverage_summary
from repro.service import RemoteExecutor, WorkerServer, parse_worker_addr, request
from repro.service.protocol import ProtocolError
from repro.testing.testcase import TestSuite

FACTORY_REF = "repro.systems.sensor:SenseTop"
SUITE_REF = "repro.systems.sensor:paper_testcases"


def _sensor_suite():
    from repro.systems.sensor import paper_testcases

    return TestSuite("sensor", paper_testcases())


def _sensor_factory():
    from repro.systems.sensor import SenseTop

    return SenseTop()


@pytest.fixture(scope="module")
def fleet():
    workers = [WorkerServer(), WorkerServer()]
    addrs = [worker.start_in_thread() for worker in workers]
    yield workers, addrs
    for worker in workers:
        worker.close()


@pytest.fixture(scope="module")
def local_summary():
    result = run_dft(_sensor_factory, _sensor_suite(), DftConfig())
    return json.dumps(coverage_summary(result.coverage), sort_keys=True)


class TestParseWorkerAddr:
    def test_host_port(self):
        assert parse_worker_addr("10.0.0.1:9000") == ("10.0.0.1", 9000)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_worker_addr("9000") == ("127.0.0.1", 9000)

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError, match="bad port"):
            parse_worker_addr("host:http")

    def test_out_of_range_port_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            parse_worker_addr("host:70000")


class TestWorkerProtocol:
    def test_ping_identifies_role(self, fleet):
        _, addrs = fleet
        reply = request(addrs[0], {"op": "ping"}, timeout=5)
        assert reply["role"] == "repro-dft-worker"

    def test_unknown_op_is_error(self, fleet):
        _, addrs = fleet
        with pytest.raises(ProtocolError, match="unknown op"):
            request(addrs[0], {"op": "frobnicate"}, timeout=5)

    def test_bad_shard_job_is_error(self, fleet):
        _, addrs = fleet
        with pytest.raises(ProtocolError, match="job"):
            request(addrs[0], {"op": "run_shard"}, timeout=5)


class TestRemoteExecution:
    def test_sharded_run_is_byte_identical(self, fleet, local_summary):
        _, addrs = fleet
        executor = RemoteExecutor(addrs, FACTORY_REF, SUITE_REF, timeout=120)
        assert executor.workers == 2
        remote = run_dft(
            _sensor_factory, _sensor_suite(), DftConfig(executor=executor)
        )
        assert (
            json.dumps(coverage_summary(remote.coverage), sort_keys=True)
            == local_summary
        )

    def test_repeat_shards_hit_worker_caches(self, fleet, local_summary):
        workers, addrs = fleet
        executor = RemoteExecutor(addrs, FACTORY_REF, SUITE_REF, timeout=120)
        run_dft(_sensor_factory, _sensor_suite(), DftConfig(executor=executor))
        assert sum(len(worker.cache) for worker in workers) >= len(
            _sensor_suite()
        )
        before = [worker.cache.hits for worker in workers]
        remote = run_dft(
            _sensor_factory, _sensor_suite(), DftConfig(executor=executor)
        )
        assert sum(w.cache.hits for w in workers) > sum(before)
        assert (
            json.dumps(coverage_summary(remote.coverage), sort_keys=True)
            == local_summary
        )

    def test_worker_death_redispatches(self, fleet, local_summary):
        """A dead fleet member costs retries, not results."""
        _, addrs = fleet
        # A listener that accepts and immediately hangs up: the shard
        # dispatched to it fails mid-flight, exactly like a worker
        # process dying between connect and response.
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sock.listen(4)
        dead_addr = sock.getsockname()
        stop = threading.Event()

        def _hang_up():
            sock.settimeout(0.2)
            while not stop.is_set():
                try:
                    conn, _ = sock.accept()
                except socket.timeout:
                    continue
                conn.close()

        thread = threading.Thread(target=_hang_up, daemon=True)
        thread.start()
        try:
            executor = RemoteExecutor(
                [dead_addr, addrs[1]], FACTORY_REF, SUITE_REF,
                timeout=120, retries=2,
            )
            remote = run_dft(
                _sensor_factory, _sensor_suite(), DftConfig(executor=executor)
            )
        finally:
            stop.set()
            thread.join(timeout=2)
            sock.close()
        assert (
            json.dumps(coverage_summary(remote.coverage), sort_keys=True)
            == local_summary
        )

    def test_all_workers_dead_raises(self):
        executor = RemoteExecutor(
            [("127.0.0.1", 1)], FACTORY_REF, SUITE_REF,
            timeout=0.5, retries=1,
        )
        from repro.analysis import analyze_cluster

        static = analyze_cluster(_sensor_factory())
        with pytest.raises(RuntimeError, match="failed on"):
            executor.run_suite(_sensor_factory, static, _sensor_suite())

    def test_unknown_testcase_fails_fast(self, fleet):
        _, addrs = fleet
        executor = RemoteExecutor(addrs, FACTORY_REF, SUITE_REF, timeout=30)
        from repro.analysis import analyze_cluster
        from repro.tdf.time import ms
        from repro.testing.testcase import TestCase

        static = analyze_cluster(_sensor_factory())
        alien = TestSuite(
            "alien", [TestCase("not-in-suite", ms(1), lambda c: None)]
        )
        with pytest.raises(LookupError, match="not-in-suite"):
            executor.run_suite(_sensor_factory, static, alien)
