"""Mutant screening: the replay proves *identical*, never *killed*.

Soundness rests on two pillars pinned here: the kill matrix is
byte-identical with batching (and therefore screening) at every batch
size, and every inconclusive exit either restores the cluster exactly
(CLEAN) or declares it consumed (DIRTY) — screening is a pure
accelerator, invisible in the results.
"""

import math

import pytest

from repro import DftConfig
from repro.mutation import kill_matrix_bytes, run_mutation
from repro.mutation.executor import _oracle_names, compute_baselines_batched
from repro.mutation.screen import (
    CLEAN,
    DIRTY,
    IDENTICAL,
    _restorable_value,
    _snapshot,
    _tokens_equal,
    driven_signal_names,
    screen_fingerprint,
    screen_mutant_tc,
)
from repro.tdf import Simulator
from repro.tdf.time import ScaTime
from repro.testing.generate import build_random_cluster, random_suite

RANDOM_FACTORY = "repro.testing.generate:random_cluster_factory"
RANDOM_SUITE = "repro.testing.generate:random_suite"


def _mutate(batch_size=None, **cfg_kwargs):
    cfg = DftConfig(seed=0, batch_size=batch_size, **cfg_kwargs)
    return run_mutation(
        RANDOM_FACTORY,
        RANDOM_SUITE,
        cfg,
        factory_args=(7,),
        suite_args=(7,),
        max_mutants=10,
    )


class TestBatchedKillMatrix:
    """The acceptance invariant: batching never changes a verdict."""

    @pytest.fixture(scope="class")
    def serial(self):
        return _mutate()

    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    def test_identical_at_every_width(self, serial, batch_size):
        batched = _mutate(batch_size=batch_size)
        assert kill_matrix_bytes(batched) == kill_matrix_bytes(serial)

    def test_auto_width_identical(self, serial):
        batched = _mutate(batch_size="auto")
        assert kill_matrix_bytes(batched) == kill_matrix_bytes(serial)

    def test_batched_workers_identical(self, serial):
        batched = _mutate(batch_size=4, workers=2)
        assert kill_matrix_bytes(batched) == kill_matrix_bytes(serial)

    def test_interp_engine_rejected(self):
        with pytest.raises(ValueError, match="block engine"):
            _mutate(batch_size=2, engine="interp")

    def test_screen_telemetry_recorded(self, serial):
        from repro.obs import Telemetry

        tel = Telemetry()
        _mutate(batch_size=8, telemetry=tel)
        counters = {c.name: c.value for c in tel.metrics.counters()}
        screened = counters.get("mutation.screened_identical", 0)
        # The random cluster always has surviving mutants whose replay
        # proves them identical — the screen must actually engage.
        assert screened > 0


# -- direct screen_mutant_tc verdicts -----------------------------------------


@pytest.fixture(scope="module")
def screen_env():
    """Baseline screen data for the seeded random cluster, one testcase."""
    factory = lambda: build_random_cluster(7)
    testcases = random_suite(7)[:1]
    oracle = _oracle_names(factory(), None)
    screen = {}
    compute_baselines_batched(factory, testcases, oracle, 4, screen=screen)
    return factory, testcases[0], frozenset(oracle), screen[testcases[0].name]


def _fresh_sim(factory, testcase):
    cluster = factory()
    testcase.apply(cluster)
    sim = Simulator(cluster, engine="block")
    sim.initialize()
    return sim


class TestScreenVerdicts:
    def test_unmutated_module_screens_identical(self, screen_env):
        factory, tc, oracle, data = screen_env
        sim = _fresh_sim(factory, tc)
        assert screen_mutant_tc(sim, "dut", data, oracle=oracle) == IDENTICAL

    def test_value_mutant_rewinds_clean(self, screen_env):
        # Perturbed initial state diverges at the first firing; the
        # scalar-only DUT is snapshottable, so the replay rewinds and
        # the very same sim must still reproduce the serial run.
        factory, tc, oracle, data = screen_env
        sim = _fresh_sim(factory, tc)
        sim.cluster.dut.m_acc = 1.0
        assert screen_mutant_tc(sim, "dut", data, oracle=oracle) == CLEAN

        reference = _fresh_sim(factory, tc)
        reference.cluster.dut.m_acc = 1.0
        horizon = data.periods * reference.schedule.period
        sim.run(horizon)
        reference.run(horizon)
        assert (
            sim.cluster.sink.values() == reference.cluster.sink.values()
        )

    def test_unrestorable_state_goes_dirty(self, screen_env):
        factory, tc, oracle, data = screen_env
        sim = _fresh_sim(factory, tc)
        sim.cluster.dut.m_acc = 1.0  # force a token mismatch...
        sim.cluster.dut.m_junk = [1, 2]  # ...with no faithful snapshot
        assert screen_mutant_tc(sim, "dut", data, oracle=oracle) == DIRTY

    def test_raising_mutant_is_inconclusive_not_killed(self, screen_env):
        factory, tc, oracle, data = screen_env
        sim = _fresh_sim(factory, tc)
        sim.cluster.dut.register_processing(lambda: 1 / 0)
        verdict = screen_mutant_tc(sim, "dut", data, oracle=oracle)
        assert verdict in (CLEAN, DIRTY)

    def test_unknown_module_is_clean(self, screen_env):
        factory, tc, oracle, data = screen_env
        sim = _fresh_sim(factory, tc)
        assert screen_mutant_tc(sim, "nope", data, oracle=oracle) == CLEAN

    def test_ineligible_baseline_is_clean(self, screen_env):
        from repro.mutation.screen import TcScreenData

        factory, tc, oracle, data = screen_env
        stale = TcScreenData(data.streams, data.periods, data.fingerprint,
                             eligible=False)
        sim = _fresh_sim(factory, tc)
        assert screen_mutant_tc(sim, "dut", stale, oracle=oracle) == CLEAN


# -- helpers -------------------------------------------------------------------


class TestHelpers:
    def test_restorable_values(self):
        for value in (None, True, 3, 2.5, 1j, "s", b"b", ScaTime(5),
                      (1, "x"), frozenset({1.0}), (1, (2, None))):
            assert _restorable_value(value)
        for value in ([1], {"k": 1}, {1}, (1, [2]), bytearray(b"x")):
            assert not _restorable_value(value)

    def test_tokens_equal_handles_nan(self):
        nan = float("nan")
        assert _tokens_equal(1.0, 1.0)
        assert _tokens_equal(nan, nan)
        assert not _tokens_equal(nan, 1.0)
        assert _tokens_equal(math.inf, math.inf)
        assert not _tokens_equal(math.inf, -math.inf)

    def test_snapshot_rejects_mutable_state(self):
        cluster = build_random_cluster(7)
        Simulator(cluster, engine="block").initialize()
        dut = cluster.dut
        assert _snapshot(dut, dut.in_ports(), dut.out_ports()) is not None
        dut.m_junk = [1]
        assert _snapshot(dut, dut.in_ports(), dut.out_ports()) is None

    def test_driven_signals_cover_the_chain(self):
        cluster = build_random_cluster(7)
        names = driven_signal_names(cluster)
        assert len(names) == 5  # src->gain->up->dut->down->sink edges
        assert names == [
            s.name for s in cluster.signals if s.driver is not None
        ]

    def test_fingerprint_matches_attribute_key_when_all_driven(self):
        cluster = build_random_cluster(7)
        sim = Simulator(cluster, engine="block")
        sim.initialize()
        assert screen_fingerprint(sim) == sim._attribute_key()
