"""Differential mutant execution: oracle, sampling, and determinism.

The expensive acceptance properties — the kill matrix is byte-identical
across worker counts and across execution engines — run here on the
small seeded random cluster; the case-study systems are covered by the
CI smoke job and the capped CLI test.
"""

import pytest

from repro.core import DftConfig
from repro.mutation import (
    kill_matrix_bytes,
    run_mutation,
    traces_diverge,
)
from repro.mutation.executor import _oracle_names, _sample_specs
from repro.mutation.operators import MutantSpec

RANDOM_FACTORY = "repro.testing.generate:random_cluster_factory"
RANDOM_SUITE = "repro.testing.generate:random_suite"


def _mutate_random(**kwargs):
    kwargs.setdefault("factory_args", (7,))
    kwargs.setdefault("suite_args", (7,))
    kwargs.setdefault("max_mutants", 10)
    config = kwargs.pop("config", DftConfig(seed=0))
    return run_mutation(RANDOM_FACTORY, RANDOM_SUITE, config, **kwargs)


class TestTraceDivergence:
    def test_identical_traces_do_not_diverge(self):
        a = {"s": [(0, 1.0), (1, 2.0)]}
        assert not traces_diverge(a, {"s": [(0, 1.0), (1, 2.0)]}, 1e-9)

    def test_value_beyond_tolerance_diverges(self):
        a = {"s": [(0, 1.0)]}
        assert traces_diverge(a, {"s": [(0, 1.0 + 1e-6)]}, 1e-9)
        assert not traces_diverge(a, {"s": [(0, 1.0 + 1e-12)]}, 1e-9)

    def test_length_and_time_shifts_diverge(self):
        a = {"s": [(0, 1.0), (1, 2.0)]}
        assert traces_diverge(a, {"s": [(0, 1.0)]}, 1e-9)
        assert traces_diverge(a, {"s": [(0, 1.0), (2, 2.0)]}, 1e-9)

    def test_missing_signal_diverges(self):
        assert traces_diverge({"s": []}, {"t": []}, 1e-9)

    def test_nan_matches_nan_but_not_numbers(self):
        nan = float("nan")
        assert not traces_diverge({"s": [(0, nan)]}, {"s": [(0, nan)]}, 1e-9)
        assert traces_diverge({"s": [(0, nan)]}, {"s": [(0, 1.0)]}, 1e-9)

    def test_infinities_compare_equal(self):
        inf = float("inf")
        assert not traces_diverge({"s": [(0, inf)]}, {"s": [(0, inf)]}, 1e-9)
        assert traces_diverge({"s": [(0, inf)]}, {"s": [(0, -inf)]}, 1e-9)


class TestSampling:
    def _specs(self, n):
        return [MutantSpec(f"m{i}", "aor", "t", i, "") for i in range(n)]

    def test_no_cap_returns_all(self):
        specs = self._specs(5)
        assert _sample_specs(specs, None, 0) == specs
        assert _sample_specs(specs, 9, 0) == specs

    def test_sample_deterministic_per_seed(self):
        specs = self._specs(50)
        assert _sample_specs(specs, 10, 3) == _sample_specs(specs, 10, 3)
        assert _sample_specs(specs, 10, 3) != _sample_specs(specs, 10, 4)

    def test_sample_preserves_enumeration_order(self):
        sites = [s.site for s in _sample_specs(self._specs(50), 10, 1)]
        assert sites == sorted(sites)

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            _sample_specs(self._specs(5), -1, 0)


class TestOracleSelection:
    def test_declared_oracle_signals_win(self):
        from repro.systems.buck_boost import BuckBoostTop

        top = BuckBoostTop()
        assert _oracle_names(top, None) == list(top.MUTATION_ORACLE_SIGNALS)

    def test_explicit_request_wins_over_declared(self):
        from repro.systems.buck_boost import BuckBoostTop

        assert _oracle_names(BuckBoostTop(), ["vout"]) == ["vout"]

    def test_unknown_signal_rejected(self):
        from repro.systems.buck_boost import BuckBoostTop

        with pytest.raises(ValueError, match="oracle signal"):
            _oracle_names(BuckBoostTop(), ["nope"])


class TestRunMutation:
    def test_serial_run_classifies_and_counts(self):
        run = _mutate_random()
        assert run.generated >= len(run.specs) == 10
        assert run.killed + run.survived + run.nonviable == 10
        assert run.killed >= 1
        assert 0.0 <= run.mutation_score <= 1.0
        # Full kill rows: killing testcases come from the suite.
        names = set(run.testcase_names)
        for outcome in run.outcomes:
            assert set(outcome.killed_by) <= names

    def test_score_for_subsets_monotone(self):
        run = _mutate_random()
        prefix_scores = [
            run.score_for(run.testcase_names[:i])
            for i in range(len(run.testcase_names) + 1)
        ]
        assert prefix_scores == sorted(prefix_scores)
        assert prefix_scores[0] == 0.0

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            _mutate_random(config=DftConfig(seed=0, workers=0))


class TestTelemetry:
    def test_mutation_counters_recorded(self):
        from repro.obs import Telemetry

        tel = Telemetry()
        run = _mutate_random(max_mutants=4, config=DftConfig(seed=0, telemetry=tel))
        counters = {c.name: c.value for c in tel.metrics.counters()}
        assert counters["mutation.generated"] == run.generated
        assert counters["mutation.sampled"] == 4
        assert counters["mutation.viable"] == run.viable
        assert counters["mutation.killed"] == run.killed
        assert counters["mutation.timeout"] == run.timeouts
        spans = {s.name for s in tel.spans}
        assert {"mutation", "mutation.baseline", "mutation.mutant"} <= spans

    def test_parallel_path_folds_worker_telemetry(self):
        from repro.obs import Telemetry

        tel = Telemetry()
        _mutate_random(max_mutants=4, config=DftConfig(seed=0, workers=2, telemetry=tel))
        counters = {c.name for c in tel.metrics.counters()}
        assert "mutation.worker_mutants" in counters
        histograms = {h.name for h in tel.metrics.histograms()}
        assert "mutation.worker_seconds" in histograms


class TestBackendDeterminism:
    def test_kill_matrix_identical_across_worker_counts(self):
        serial = _mutate_random(config=DftConfig(seed=0, workers=1))
        parallel = _mutate_random(config=DftConfig(seed=0, workers=2))
        assert kill_matrix_bytes(serial) == kill_matrix_bytes(parallel)

    def test_kill_matrix_identical_across_engines(self):
        interp = _mutate_random(config=DftConfig(seed=0, engine="interp"))
        block = _mutate_random(config=DftConfig(seed=0, engine="block"))
        assert kill_matrix_bytes(interp) == kill_matrix_bytes(block)

    def test_budget_flag_never_changes_verdicts(self):
        generous = _mutate_random(max_mutants=5, config=DftConfig(seed=0, budget_seconds=1000.0))
        strict = _mutate_random(max_mutants=5, config=DftConfig(seed=0, budget_seconds=0.0))
        assert kill_matrix_bytes(generous) == kill_matrix_bytes(strict)
        # A zero budget flags every mutant, but kills nothing extra.
        assert strict.timeouts == len(strict.specs)
        assert generous.timeouts == 0
