"""Report stage: schema, criterion join, and canonical kill-matrix bytes."""

import io
import json

import pytest

from repro.core import run_dft
from repro.mutation import (
    SCHEMA,
    build_report,
    criterion_subsuites,
    format_report,
    kill_matrix_bytes,
    run_mutation,
    write_csv,
)
from repro.mutation.report import CRITERION_ORDER
from repro.testing import TestSuite
from repro.testing.generate import random_cluster_factory, random_suite

SEED = 7


@pytest.fixture(scope="module")
def run():
    return run_mutation(
        "repro.testing.generate:random_cluster_factory",
        "repro.testing.generate:random_suite",
        factory_args=(SEED,),
        suite_args=(SEED,),
        max_mutants=12,
    )


@pytest.fixture(scope="module")
def pipeline():
    suite = TestSuite("random", random_suite(SEED))
    return run_dft(random_cluster_factory(SEED), suite)


@pytest.fixture(scope="module")
def coverage(pipeline):
    return pipeline.coverage


class TestSubsuites:
    def test_suites_nested_weakest_to_strongest(self, coverage):
        suites = criterion_subsuites(coverage)
        previous: list = []
        for criterion, _klass in CRITERION_ORDER:
            names = suites[criterion]
            assert names[: len(previous)] == previous
            previous = names

    def test_suites_draw_from_the_real_suite(self, coverage):
        suites = criterion_subsuites(coverage)
        all_names = set(coverage.testcase_names)
        for names in suites.values():
            assert set(names) <= all_names
            assert len(names) == len(set(names))


class TestFrontierSubsuites:
    """PR-9 tentpole gate: frontier-reduced sub-suites change nothing
    observable — every criterion row scores byte-for-byte the same as
    the full target set, because covering a frontier association covers
    everything it subsumes."""

    def test_frontier_scores_match_full_scores(self, run, pipeline):
        from repro.analysis import analyze_subsumption

        subsumption = analyze_subsumption(pipeline.static)
        full = build_report(run, coverage=pipeline.coverage, system="random")
        reduced = build_report(
            run, coverage=pipeline.coverage, system="random",
            subsumption=subsumption,
        )
        assert full["targets_mode"] == "all"
        assert reduced["targets_mode"] == "frontier"
        full_rows = {r["criterion"]: r for r in full["criteria"]}
        for row in reduced["criteria"]:
            other = full_rows[row["criterion"]]
            assert row["score"] == other["score"], row["criterion"]
            assert row["num_testcases"] <= other["num_testcases"]
        # Scores are rounded the same way, so the serialized rows agree
        # byte-for-byte once the (possibly smaller) suites are dropped.
        strip = lambda rows: json.dumps(
            [{"criterion": r["criterion"], "score": r["score"]} for r in rows],
            sort_keys=True,
        ).encode("ascii")
        assert strip(reduced["criteria"]) == strip(full["criteria"])

    def test_frontier_subsuites_stay_nested(self, pipeline):
        from repro.analysis import analyze_subsumption

        subsumption = analyze_subsumption(pipeline.static)
        suites = criterion_subsuites(
            pipeline.coverage, subsumption.frontier_keys
        )
        previous: list = []
        for criterion, _klass in CRITERION_ORDER:
            names = suites[criterion]
            assert names[: len(previous)] == previous
            previous = names


class TestBuildReport:
    def test_schema_and_counts(self, run):
        payload = build_report(run, system="random")
        assert payload["schema"] == SCHEMA == "repro-dft-mutation/1"
        counts = payload["counts"]
        assert counts["sampled"] == len(payload["mutants"]) == 12
        assert (
            counts["killed"] + counts["survived"] + counts["nonviable"]
            == counts["sampled"]
        )
        assert counts["viable"] == counts["killed"] + counts["survived"]
        assert "criteria" not in payload

    def test_payload_is_json_stable(self, run):
        payload = build_report(run, system="random")
        assert json.loads(json.dumps(payload)) == payload

    def test_criterion_scores_monotone(self, run, coverage):
        payload = build_report(run, coverage=coverage, system="random")
        rows = payload["criteria"]
        assert [r["criterion"] for r in rows] == [
            "all-PWeak", "all-PFirm", "all-Firm", "all-Strong", "full-suite",
        ]
        scores = [r["score"] for r in rows]
        # Nested sub-suites make this structural; the report would
        # falsify the paper's hierarchy if it ever decreased.
        assert scores == sorted(scores)
        assert rows[-1]["score"] == payload["mutation_score"]

    def test_criterion_testcases_nested(self, run, coverage):
        payload = build_report(run, coverage=coverage, system="random")
        rows = payload["criteria"][:-1]
        for earlier, later in zip(rows, rows[1:]):
            assert later["testcases"][: len(earlier["testcases"])] == (
                earlier["testcases"]
            )


class TestKillMatrixBytes:
    def test_bytes_stable_and_ascii(self, run):
        blob = kill_matrix_bytes(run)
        assert blob == kill_matrix_bytes(run)
        rows = json.loads(blob)
        assert len(rows) == len(run.specs)
        assert rows[0][0] == run.specs[0].mutant_id

    def test_bytes_reflect_kill_rows(self, run):
        rows = {mid: kills for mid, kills in json.loads(kill_matrix_bytes(run))}
        for outcome in run.outcomes:
            expected = (
                "nonviable"
                if outcome.status == "nonviable"
                else list(outcome.killed_by)
            )
            assert rows[outcome.spec.mutant_id] == expected


class TestRenderings:
    def test_text_report_mentions_key_figures(self, run, coverage):
        payload = build_report(run, coverage=coverage, system="random")
        text = format_report(payload)
        assert "mutation analysis of random" in text
        assert "per operator:" in text
        assert "criterion-vs-mutation-score" in text
        assert "all-Strong" in text

    def test_csv_row_per_mutant(self, run):
        payload = build_report(run, system="random")
        buffer = io.StringIO()
        write_csv(payload, buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0] == "id,operator,target,status,timed_out,killed_by"
        assert len(lines) == 1 + len(run.specs)
