"""Unit tests for the mutation operators (AST and netlist levels)."""

import pytest

from repro.mutation import (
    ALL_OPERATORS,
    MutantNotApplicable,
    MutantSpec,
    apply_mutant,
    generate_mutants,
)
from repro.tdf import Simulator, ms
from repro.testing.generate import build_cluster

VALUES = [1.0, -2.0, 0.75]


def _factory():
    return build_cluster(VALUES, 2, 2)


def _run(cluster, duration=ms(18)):
    sim = Simulator(cluster)
    sim.run(duration)
    sim.finish()
    return list(cluster.sink.m_samples)


class TestEnumeration:
    def test_deterministic_across_fresh_clusters(self):
        # The executor's whole correctness story rests on this: a
        # worker process re-enumerating on its own cluster instance
        # must see the byte-identical spec list.
        assert generate_mutants(_factory()) == generate_mutants(_factory())

    def test_every_operator_family_represented(self):
        ops = {s.operator for s in generate_mutants(_factory())}
        # swap needs a module with two distinct bound inputs, which
        # this chain topology does not have.
        assert ops == {"aor", "ror", "cpr", "sdl", "dsr", "rate", "delay",
                       "gain", "drop"}

    def test_operator_subset_respected(self):
        specs = generate_mutants(_factory(), ["aor", "gain"])
        assert {s.operator for s in specs} == {"aor", "gain"}

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation operator"):
            generate_mutants(_factory(), ["aor", "bogus"])

    def test_mutant_ids_unique(self):
        ids = [s.mutant_id for s in generate_mutants(_factory())]
        assert len(ids) == len(set(ids))

    def test_registry_order_stable(self):
        assert list(ALL_OPERATORS) == [
            "aor", "ror", "cpr", "sdl", "dsr", "swap", "rate", "delay",
            "gain", "drop",
        ]


class TestAstApplication:
    def test_aor_changes_observable_behaviour(self):
        baseline = _run(_factory())
        mutated_cluster = _factory()
        spec = next(
            s for s in generate_mutants(mutated_cluster) if s.operator == "aor"
        )
        apply_mutant(mutated_cluster, spec)
        assert _run(mutated_cluster) != baseline

    def test_applies_only_to_target_module(self):
        cluster = _factory()
        spec = next(
            s for s in generate_mutants(cluster)
            if s.operator == "aor" and s.target == "down"
        )
        original_dut = cluster.dut._processing_fn
        apply_mutant(cluster, spec)
        # Only the decimator's processing was replaced.
        assert cluster.dut._processing_fn is original_dut
        assert cluster.down._processing_fn is not None

    def test_sdl_never_deletes_port_writes(self):
        for spec in generate_mutants(_factory(), ["sdl"]):
            assert "write" not in spec.detail


class TestNetlistApplication:
    def test_gain_perturbs_coefficient(self):
        cluster = _factory()
        spec = next(
            s for s in generate_mutants(cluster) if s.operator == "gain"
        )
        before = cluster.gain.m_gain
        apply_mutant(cluster, spec)
        assert cluster.gain.m_gain == before * 1.5 + 0.25

    def test_drop_bypasses_siso_redefinition(self):
        baseline = _run(_factory())
        cluster = _factory()
        spec = next(
            s for s in generate_mutants(cluster) if s.operator == "drop"
        )
        apply_mutant(cluster, spec)
        # Readers of the gain output now read the gain *input* signal.
        assert cluster.up.ip.signal is cluster.gain.ip.signal
        assert _run(cluster) != baseline

    def test_rate_mutation_survives_set_attributes(self):
        cluster = _factory()
        spec = next(
            s for s in generate_mutants(cluster) if s.operator == "rate"
        )
        apply_mutant(cluster, spec)
        # set_attributes reasserts the nominal rate; the wrapper must
        # re-apply the off-by-one afterwards for the fault to stick
        # through elaboration.
        try:
            Simulator(cluster).initialize()
        except Exception:
            return  # rate fault made the cluster unschedulable: fine
        reference = _factory()
        Simulator(reference).initialize()
        mutated_rates = [
            p.rate for p in cluster.module(spec.target).ports()
        ]
        nominal_rates = [
            p.rate for p in reference.module(spec.target).ports()
        ]
        assert mutated_rates != nominal_rates


class TestApplyMismatch:
    def test_unknown_operator_not_applicable(self):
        bad = MutantSpec("x", "nope", "dut", 0, "")
        with pytest.raises(MutantNotApplicable):
            apply_mutant(_factory(), bad)

    def test_site_out_of_range_not_applicable(self):
        bad = MutantSpec("x", "aor", "dut", 999, "")
        with pytest.raises(MutantNotApplicable):
            apply_mutant(_factory(), bad)

    def test_target_mismatch_not_applicable(self):
        cluster = _factory()
        spec = generate_mutants(cluster, ["aor"])[0]
        bad = MutantSpec(spec.mutant_id, spec.operator, "someone_else",
                         spec.site, spec.detail)
        with pytest.raises(MutantNotApplicable):
            apply_mutant(cluster, bad)
