"""Tests for the per-association fitness (repro.generation.fitness)."""

import pytest

from repro.generation import Fitness, association_fitness, closed_targets

TARGET = ("v", "def_mod", 3, "use_mod", 8)


class TestAssociationFitness:
    def test_covered_scores_exactly_one(self):
        fit = association_fitness(TARGET, {TARGET})
        assert fit.covered
        assert fit.score == 1.0

    def test_empty_pairs_score_zero(self):
        fit = association_fitness(TARGET, set())
        assert fit.score == 0.0
        assert not (fit.def_reached or fit.use_reached or fit.killed_en_route)

    def test_def_reached_only(self):
        # Same (var, def) side, different use: the definition fired.
        fit = association_fitness(TARGET, {("v", "def_mod", 3, "other", 1)})
        assert fit.def_reached and not fit.use_reached
        assert fit.score == 0.4

    def test_use_reached_via_other_variable(self):
        # Same use site fed by a different variable: no kill recorded.
        fit = association_fitness(TARGET, {("w", "m", 1, "use_mod", 8)})
        assert fit.use_reached and not fit.killed_en_route
        assert fit.score == 0.3

    def test_killed_en_route(self):
        # The use read v, but paired with a different definition.
        fit = association_fitness(TARGET, {("v", "other_mod", 9, "use_mod", 8)})
        assert fit.use_reached and fit.killed_en_route and not fit.def_reached
        assert fit.score == 0.5

    def test_partial_levels_never_alias_covered(self):
        pairs = {
            ("v", "def_mod", 3, "other", 1),      # def reached
            ("v", "other_mod", 9, "use_mod", 8),  # use reached + killed
        }
        fit = association_fitness(TARGET, pairs)
        assert not fit.covered
        assert fit.score == pytest.approx(0.9)
        assert fit.score < 1.0

    def test_ordering_follows_score(self):
        low = association_fitness(TARGET, set())
        high = association_fitness(TARGET, {TARGET})
        assert low < high
        assert isinstance(low, Fitness)


class TestClosedTargets:
    def test_preserves_target_order(self):
        t1 = ("a", "m", 1, "n", 2)
        t2 = ("b", "m", 3, "n", 4)
        t3 = ("c", "m", 5, "n", 6)
        assert closed_targets([t1, t2, t3], {t3, t1}) == (t1, t3)

    def test_empty(self):
        assert closed_targets([], set()) == ()
