"""Tests for generation reporting (repro.generation.report)."""

import io
import json

import pytest

from repro import DftConfig, TestSuite
from repro.generation import (
    SCHEMA,
    build_report,
    format_report,
    generate_suite,
    suite_bytes,
    write_json,
)
from repro.systems.sensor import SenseTop, paper_testcases


@pytest.fixture(scope="module")
def result():
    return generate_suite(
        lambda: SenseTop(),
        TestSuite("sensor_base", paper_testcases()[:1]),
        "sensor",
        DftConfig(seed=0, budget_simulations=30),
    )


class TestBuildReport:
    def test_schema_tag(self, result):
        assert build_report(result)["schema"] == "repro-dft-generation/1"
        assert SCHEMA == "repro-dft-generation/1"

    def test_counts_match_result(self, result):
        payload = build_report(result)
        counts = payload["counts"]
        assert counts["targets"] == len(result.targets)
        assert counts["closed"] == len(result.closed)
        assert counts["open"] == counts["targets"] - counts["closed"]
        assert counts["generated_testcases"] == len(result.generated)
        assert counts["simulations"] == result.simulations
        assert counts["memo_hits"] == result.memo_hits

    def test_throughput_section(self, result):
        thr = build_report(result)["throughput"]
        assert thr["wall_seconds"] > 0
        assert thr["closed_per_simulation"] == pytest.approx(
            len(result.closed) / result.simulations, abs=1e-6
        )
        assert thr["closed_per_second"] > 0

    def test_coverage_sections_have_all_classes(self, result):
        payload = build_report(result)
        for section in ("before", "after"):
            rows = payload["coverage"][section]
            assert [r["class"] for r in rows] == [
                "Strong", "Firm", "PFirm", "PWeak"
            ]
        assert payload["criteria"]["before"] and payload["criteria"]["after"]

    def test_payload_is_json_serializable(self, result):
        json.dumps(build_report(result))

    def test_per_target_simulations_and_trajectory(self, result):
        """PR-9 schema additions ride on the existing /1 schema tag:
        every target row carries its simulation count and the best-score
        trajectory, and both reconcile with the run totals."""
        payload = build_report(result)
        assert payload["schema"] == "repro-dft-generation/1"
        rows = payload["targets"]
        assert rows
        for row in rows:
            assert isinstance(row["simulations"], int)
            assert row["simulations"] >= 0
            assert isinstance(row["trajectory"], list)
            assert all(isinstance(v, float) for v in row["trajectory"])
            # Best-so-far scores never decrease within a target.
            assert row["trajectory"] == sorted(row["trajectory"])
            if row["status"] == "closed":
                assert row["trajectory"] and row["trajectory"][-1] == 1.0
            if row["status"] in ("pre_closed", "skipped"):
                assert row["simulations"] == 0
        assert sum(r["simulations"] for r in rows) <= payload["counts"][
            "simulations"
        ]

    def test_targets_mode_and_subsumption_counts(self, result):
        payload = build_report(result)
        assert payload["targets_mode"] == "all"
        assert payload["counts"]["subsumed_targets"] == 0
        assert payload["counts"]["subsumed_closed"] == 0

    def test_frontier_mode_reports_subsumed_counts(self):
        res = generate_suite(
            lambda: SenseTop(),
            TestSuite("sensor_base", paper_testcases()[:1]),
            "sensor",
            DftConfig(seed=0, budget_simulations=20),
            target_mode="frontier",
        )
        payload = build_report(res)
        assert payload["targets_mode"] == "frontier"
        assert payload["counts"]["subsumed_targets"] >= 0
        assert (
            payload["counts"]["subsumed_closed"]
            <= payload["counts"]["subsumed_targets"]
        )


class TestSuiteBytes:
    def test_stable_across_identical_runs(self, result):
        rerun = generate_suite(
            lambda: SenseTop(),
            TestSuite("sensor_base", paper_testcases()[:1]),
            "sensor",
            DftConfig(seed=0, budget_simulations=30),
        )
        assert suite_bytes(result) == suite_bytes(rerun)

    def test_bytes_cover_every_generated_testcase(self, result):
        rows = json.loads(suite_bytes(result))
        assert [row[0] for row in rows] == [g.name for g in result.generated]


class TestRendering:
    def test_format_report_headlines(self, result):
        text = format_report(build_report(result))
        assert "coverage-guided generation for sensor" in text
        assert "targets:" in text
        assert "closed/simulation" in text

    def test_write_json_round_trips(self, result):
        buf = io.StringIO()
        write_json(build_report(result), buf)
        assert json.loads(buf.getvalue())["schema"] == SCHEMA
