"""End-to-end tests for coverage-guided generation (repro.generation)."""

import pytest

from repro import DftConfig, GenerationCampaign, TestSuite
from repro.core.associations import AssocClass
from repro.exec.cache import DynamicResultCache
from repro.generation import GenerationResult, generate_suite, suite_bytes
from repro.systems.sensor import SenseTop, paper_testcases

FACTORY_REF = "repro.systems.sensor:SenseTop"


def _base_suite() -> TestSuite:
    # A single paper testcase leaves plenty of associations uncovered —
    # the search has real work to do but the system is cheap to simulate.
    return TestSuite("sensor_base", paper_testcases()[:1])


def _generate(config: DftConfig, **kwargs) -> GenerationResult:
    return generate_suite(
        lambda: SenseTop(), _base_suite(), "sensor", config, **kwargs
    )


class TestGenerateSuite:
    def test_closes_missed_associations(self):
        res = _generate(DftConfig(seed=0, budget_simulations=30))
        assert len(res.targets) > 0
        assert len(res.closed) >= 1
        assert len(res.generated) >= 1
        # Closing associations must show up as a coverage gain.
        assert (
            res.coverage_after.overall_percent
            > res.coverage_before.overall_percent
        )

    def test_grown_suite_contains_base_and_generated(self):
        res = _generate(DftConfig(seed=0, budget_simulations=30))
        names = [tc.name for tc in res.suite.testcases]
        base_names = [tc.name for tc in _base_suite().testcases]
        assert names[: len(base_names)] == base_names
        assert set(names[len(base_names):]) == {g.name for g in res.generated}

    def test_budget_simulations_is_a_hard_lid(self):
        res = _generate(DftConfig(seed=0, budget_simulations=7))
        assert res.simulations <= 7
        assert res.stop_reason == "budget_simulations"
        skipped_or_budget = [
            t for t in res.targets if t.status in ("skipped", "budget")
        ]
        assert skipped_or_budget, "an exhausted budget must mark open targets"

    def test_targets_ranked_strongest_class_first(self):
        res = _generate(DftConfig(seed=0, budget_simulations=5))
        order = [AssocClass.STRONG.value, AssocClass.FIRM.value,
                 AssocClass.PFIRM.value, AssocClass.PWEAK.value]
        ranks = [order.index(t.klass) for t in res.targets]
        assert ranks == sorted(ranks)

    def test_opportunistic_closure_marks_pre_closed(self):
        res = _generate(DftConfig(seed=0, budget_simulations=30))
        pre = [t for t in res.targets if t.status == "pre_closed"]
        assert pre, "one candidate is expected to close several targets"
        assert all(t.closed_by for t in pre)

    def test_no_targets_stops_on_coverage(self):
        res = _generate(DftConfig(seed=0, budget_simulations=5),
                        target_classes=())
        assert res.targets == ()
        assert res.generated == ()
        assert res.stop_reason == "coverage"
        assert res.simulations == 0

    def test_shared_cache_makes_rerun_free(self):
        cache = DynamicResultCache()
        cfg = DftConfig(seed=1, result_cache=cache)
        kwargs = dict(candidates_per_round=4, max_rounds_per_target=2,
                      stagnation_rounds=1)
        first = _generate(cfg, **kwargs)
        second = _generate(cfg, **kwargs)
        assert first.simulations > 0
        assert second.simulations == 0
        assert second.memo_hits >= first.simulations
        assert suite_bytes(second) == suite_bytes(first)

    def test_counts_are_consistent(self):
        res = _generate(DftConfig(seed=0, budget_simulations=30))
        assert res.candidates >= res.simulations + 0
        assert res.memo_hits >= 0
        closed_keys = {k for g in res.generated for k in g.closed}
        assert closed_keys == set(res.closed)


class TestDeterminism:
    def test_workers_and_engine_do_not_change_the_suite(self):
        """The issue's contract: seed-identical runs are byte-identical
        across ``--workers 1/2`` and ``--engine interp/block``."""
        serial = _generate(
            DftConfig(seed=3, budget_simulations=30, workers=1,
                      engine="interp"),
            factory_ref=FACTORY_REF,
        )
        parallel = _generate(
            DftConfig(seed=3, budget_simulations=30, workers=2,
                      engine="block"),
            factory_ref=FACTORY_REF,
        )
        assert suite_bytes(serial) == suite_bytes(parallel)
        assert serial.closed == parallel.closed
        assert [t.status for t in serial.targets] == [
            t.status for t in parallel.targets
        ]
        assert (
            serial.coverage_after.overall_percent
            == parallel.coverage_after.overall_percent
        )

    def test_seed_changes_the_search(self):
        a = _generate(DftConfig(seed=0, budget_simulations=20))
        b = _generate(DftConfig(seed=42, budget_simulations=20))
        assert suite_bytes(a) != suite_bytes(b)

    @pytest.mark.parametrize("batch_size", [1, 4, "auto"])
    def test_batching_does_not_change_the_suite(self, batch_size):
        """Lockstep candidate evaluation is invisible in the result:
        the generated suite is byte-identical at every batch size."""
        serial = _generate(DftConfig(seed=0, budget_simulations=30))
        batched = _generate(
            DftConfig(seed=0, budget_simulations=30, engine="block",
                      batch_size=batch_size),
        )
        assert suite_bytes(batched) == suite_bytes(serial)
        assert batched.closed == serial.closed
        assert batched.simulations == serial.simulations
        assert [t.status for t in batched.targets] == [
            t.status for t in serial.targets
        ]


class TestGenerationCampaign:
    def test_campaign_wraps_generate_suite(self):
        campaign = GenerationCampaign(
            lambda: SenseTop(), _base_suite(), "sensor",
            config=DftConfig(seed=0, budget_simulations=30),
        )
        records = campaign.run()
        assert len(records) == 2
        before, after = records
        assert (before.index, after.index) == (0, 1)
        assert after.tests > before.tests
        assert after.exercised_total > before.exercised_total
        assert campaign.result is not None
        assert len(campaign.result.closed) >= 1
