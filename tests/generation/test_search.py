"""Tests for the search strategies (repro.generation.search)."""

import random

import pytest

from repro.generation import (
    DEFAULT_STRATEGY,
    GuidedStrategy,
    MutationStrategy,
    RandomStrategy,
    STRATEGIES,
    SearchStrategy,
    make_strategy,
    space_for,
)
from repro.tdf.errors import TdfError


def _reset(strategy, seed=0):
    space = space_for("sensor")
    strategy.reset(space, random.Random(seed))
    return space


class TestRandomStrategy:
    def test_ask_returns_full_vectors(self):
        strat = RandomStrategy()
        space = _reset(strat)
        batch = strat.ask(4)
        assert len(batch) == 4
        for vec in batch:
            assert set(vec) == {p.name for p in space.params}

    def test_deterministic_for_a_seed(self):
        a = RandomStrategy()
        b = RandomStrategy()
        _reset(a, seed=5)
        _reset(b, seed=5)
        assert a.ask(6) == b.ask(6)

    def test_tell_is_a_no_op(self):
        strat = RandomStrategy()
        _reset(strat)
        strat.tell([(strat.ask(1)[0], 0.5)])  # must not raise


class TestMutationStrategy:
    def test_warmup_samples_then_mutates_best(self):
        strat = MutationStrategy(warmup=2)
        _reset(strat)
        warm = strat.ask(2)
        best = warm[0]
        strat.tell([(best, 0.9), (warm[1], 0.1)])
        mutants = strat.ask(4)
        # Post-warmup proposals are perturbations of the incumbent:
        # every mutant shares at least one gene with it (per-gene
        # mutation rate is 1/n), and none equals it exactly.
        for m in mutants:
            assert m != best
            assert any(m[k] == best[k] for k in best)

    def test_strict_improvement_keeps_earliest_best(self):
        strat = MutationStrategy(warmup=1)
        _reset(strat)
        first = strat.ask(1)[0]
        strat.tell([(first, 0.5)])
        tied = strat.ask(1)[0]
        strat.tell([(tied, 0.5)])  # tie: incumbent must survive
        assert strat._best == first

    def test_scale_adapts_by_success_rule(self):
        strat = MutationStrategy(warmup=1, scale=0.2)
        _reset(strat)
        strat.tell([(strat.ask(1)[0], 0.5)])
        grown = strat.scale
        assert grown == pytest.approx(0.2 * 1.3)
        strat.tell([(strat.ask(1)[0], 0.1)])  # no improvement: shrink
        assert strat.scale == pytest.approx(grown * 0.75)

    def test_scale_clamped(self):
        strat = MutationStrategy(warmup=1, scale=0.45, max_scale=0.5)
        _reset(strat)
        strat.tell([(strat.ask(1)[0], 0.5)])
        assert strat.scale <= 0.5

    def test_reset_clears_learned_state(self):
        strat = MutationStrategy(warmup=1)
        _reset(strat)
        strat.tell([(strat.ask(1)[0], 0.8)])
        assert strat._best is not None
        _reset(strat)
        assert strat._best is None
        assert strat.scale == pytest.approx(strat._initial_scale)


class TestGuidedStrategy:
    def test_warmup_samples_randomly(self):
        strat = GuidedStrategy(warmup=3)
        space = _reset(strat)
        batch = strat.ask(3)
        assert len(batch) == 3
        for vec in batch:
            assert set(vec) == {p.name for p in space.params}

    def test_archive_truncated_and_rank_sorted(self):
        strat = GuidedStrategy(warmup=1, archive_size=3)
        _reset(strat)
        vectors = strat.ask(6)
        strat.tell([(v, 0.1 * i) for i, v in enumerate(vectors)])
        scores = [score for score, _, _ in strat._archive]
        assert len(strat._archive) == 3
        assert scores == sorted(scores, reverse=True)

    def test_tie_keeps_earliest_entry(self):
        strat = GuidedStrategy(warmup=1, archive_size=2)
        _reset(strat)
        first, second, third = strat.ask(3)
        strat.tell([(first, 0.5), (second, 0.5), (third, 0.5)])
        assert strat._archive[0][2] == first
        assert strat._archive[1][2] == second

    def test_stagnation_triggers_restart_injection(self):
        strat = GuidedStrategy(warmup=1, stagnation_restart=1)
        _reset(strat)
        strat.tell([(strat.ask(1)[0], 0.9)])
        strat.tell([(strat.ask(1)[0], 0.1)])  # no improvement
        assert strat._stagnant_rounds >= 1
        # Next round must contain at least one proposal (the fresh
        # restart sample) — this just pins the no-crash contract and
        # the stagnation counter reset on improvement.
        batch = strat.ask(4)
        assert len(batch) == 4
        strat.tell([(batch[0], 1.0)])
        assert strat._stagnant_rounds == 0

    def test_deterministic_for_a_seed(self):
        rounds = []
        for _ in range(2):
            strat = GuidedStrategy(warmup=2)
            _reset(strat, seed=11)
            history = []
            score = iter([0.3, 0.7, 0.2, 0.9, 0.4, 0.6, 0.1, 0.8])
            for _round in range(4):
                batch = strat.ask(2)
                history.append(batch)
                strat.tell([(v, next(score)) for v in batch])
            rounds.append(history)
        assert rounds[0] == rounds[1]

    def test_reset_clears_learned_state(self):
        strat = GuidedStrategy(warmup=1)
        _reset(strat)
        strat.tell([(strat.ask(1)[0], 0.8)])
        assert strat._archive
        _reset(strat)
        assert strat._archive == []
        assert strat.scale == pytest.approx(strat._initial_scale)


class TestMakeStrategy:
    def test_none_resolves_to_default(self):
        assert make_strategy(None).name == DEFAULT_STRATEGY

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_names_resolve(self, name):
        strat = make_strategy(name)
        assert strat.name == name
        assert isinstance(strat, SearchStrategy)

    def test_instance_passes_through(self):
        strat = RandomStrategy()
        assert make_strategy(strat) is strat

    def test_unknown_name_raises_one_line_tdferror(self):
        with pytest.raises(TdfError, match="unknown search strategy"):
            make_strategy("annealing")

    def test_non_protocol_object_rejected(self):
        with pytest.raises(TdfError, match="SearchStrategy protocol"):
            make_strategy(object())
