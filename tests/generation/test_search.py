"""Tests for the search strategies (repro.generation.search)."""

import random

import pytest

from repro.generation import (
    DEFAULT_STRATEGY,
    MutationStrategy,
    RandomStrategy,
    STRATEGIES,
    SearchStrategy,
    make_strategy,
    space_for,
)
from repro.tdf.errors import TdfError


def _reset(strategy, seed=0):
    space = space_for("sensor")
    strategy.reset(space, random.Random(seed))
    return space


class TestRandomStrategy:
    def test_ask_returns_full_vectors(self):
        strat = RandomStrategy()
        space = _reset(strat)
        batch = strat.ask(4)
        assert len(batch) == 4
        for vec in batch:
            assert set(vec) == {p.name for p in space.params}

    def test_deterministic_for_a_seed(self):
        a = RandomStrategy()
        b = RandomStrategy()
        _reset(a, seed=5)
        _reset(b, seed=5)
        assert a.ask(6) == b.ask(6)

    def test_tell_is_a_no_op(self):
        strat = RandomStrategy()
        _reset(strat)
        strat.tell([(strat.ask(1)[0], 0.5)])  # must not raise


class TestMutationStrategy:
    def test_warmup_samples_then_mutates_best(self):
        strat = MutationStrategy(warmup=2)
        _reset(strat)
        warm = strat.ask(2)
        best = warm[0]
        strat.tell([(best, 0.9), (warm[1], 0.1)])
        mutants = strat.ask(4)
        # Post-warmup proposals are perturbations of the incumbent:
        # every mutant shares at least one gene with it (per-gene
        # mutation rate is 1/n), and none equals it exactly.
        for m in mutants:
            assert m != best
            assert any(m[k] == best[k] for k in best)

    def test_strict_improvement_keeps_earliest_best(self):
        strat = MutationStrategy(warmup=1)
        _reset(strat)
        first = strat.ask(1)[0]
        strat.tell([(first, 0.5)])
        tied = strat.ask(1)[0]
        strat.tell([(tied, 0.5)])  # tie: incumbent must survive
        assert strat._best == first

    def test_scale_adapts_by_success_rule(self):
        strat = MutationStrategy(warmup=1, scale=0.2)
        _reset(strat)
        strat.tell([(strat.ask(1)[0], 0.5)])
        grown = strat.scale
        assert grown == pytest.approx(0.2 * 1.3)
        strat.tell([(strat.ask(1)[0], 0.1)])  # no improvement: shrink
        assert strat.scale == pytest.approx(grown * 0.75)

    def test_scale_clamped(self):
        strat = MutationStrategy(warmup=1, scale=0.45, max_scale=0.5)
        _reset(strat)
        strat.tell([(strat.ask(1)[0], 0.5)])
        assert strat.scale <= 0.5

    def test_reset_clears_learned_state(self):
        strat = MutationStrategy(warmup=1)
        _reset(strat)
        strat.tell([(strat.ask(1)[0], 0.8)])
        assert strat._best is not None
        _reset(strat)
        assert strat._best is None
        assert strat.scale == pytest.approx(strat._initial_scale)


class TestMakeStrategy:
    def test_none_resolves_to_default(self):
        assert make_strategy(None).name == DEFAULT_STRATEGY

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_names_resolve(self, name):
        strat = make_strategy(name)
        assert strat.name == name
        assert isinstance(strat, SearchStrategy)

    def test_instance_passes_through(self):
        strat = RandomStrategy()
        assert make_strategy(strat) is strat

    def test_unknown_name_raises_one_line_tdferror(self):
        with pytest.raises(TdfError, match="unknown search strategy"):
            make_strategy("annealing")

    def test_non_protocol_object_rejected(self):
        with pytest.raises(TdfError, match="SearchStrategy protocol"):
            make_strategy(object())
