"""Property tests for the graded du-path fitness (PR-9 satellite).

Two contracts:

* *ordering consistency* — :func:`repro.generation.fitness.graded_fitness`
  never contradicts the binary :func:`association_fitness` ordering: a
  covered candidate always outranks an uncovered one, the graded score
  only adds mass within the uncovered band, and with no guide the two
  functions coincide exactly;
* *determinism* — a guided, frontier-targeted generation run is
  byte-identical across ``--matcher scan|vector``,
  ``--engine interp|block`` and ``--workers 1/2``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DftConfig, TestSuite
from repro.generation import generate_suite, suite_bytes
from repro.generation.fitness import (
    DuPathGuide,
    association_fitness,
    graded_fitness,
)
from repro.systems.sensor import SenseTop, paper_testcases

FACTORY_REF = "repro.systems.sensor:SenseTop"

_VARS = ["x", "y", "m_acc"]
_MODELS = ["dut", "gain"]
_LINES = st.integers(min_value=1, max_value=12)


def _pair_key():
    return st.tuples(
        st.sampled_from(_VARS), st.sampled_from(_MODELS), _LINES,
        st.sampled_from(_MODELS), _LINES,
    )


def _guide_for(target):
    return st.builds(
        lambda approach, kill: DuPathGuide(target, approach, kill),
        st.dictionaries(_LINES, st.floats(0.01, 1.0), max_size=6),
        st.dictionaries(_LINES, st.floats(0.01, 1.0), max_size=6),
    )


@st.composite
def _target_pairs_guide(draw):
    target = draw(_pair_key())
    pairs = draw(st.frozensets(_pair_key(), max_size=12))
    guide = draw(_guide_for(target))
    return target, set(pairs), guide


class TestOrderingConsistency:
    @settings(max_examples=300, deadline=None)
    @given(_target_pairs_guide())
    def test_graded_never_contradicts_binary(self, tpg):
        target, pairs, guide = tpg
        base = association_fitness(target, pairs)
        graded = graded_fitness(target, pairs, guide)
        # Covered is exactly 1.0 either way; uncovered stays below it.
        assert graded.covered == base.covered
        if base.covered:
            assert graded.score == base.score == 1.0
        else:
            assert base.score <= graded.score <= 0.99 < 1.0
        # The refinement never touches the binary level flags.
        assert graded.def_reached == base.def_reached
        assert graded.use_reached == base.use_reached
        assert graded.killed_en_route == base.killed_en_route

    @settings(max_examples=300, deadline=None)
    @given(_target_pairs_guide(), st.frozensets(_pair_key(), max_size=12))
    def test_covered_outranks_uncovered(self, tpg, other_pairs):
        target, pairs, guide = tpg
        a = graded_fitness(target, set(pairs), guide)
        b = graded_fitness(target, set(other_pairs), guide)
        if a.covered and not b.covered:
            assert b < a
        if b.covered and not a.covered:
            assert a < b

    @settings(max_examples=200, deadline=None)
    @given(_target_pairs_guide())
    def test_no_guide_is_exactly_binary(self, tpg):
        target, pairs, _ = tpg
        assert graded_fitness(target, pairs, None) == association_fitness(
            target, pairs
        )

    @settings(max_examples=200, deadline=None)
    @given(_target_pairs_guide())
    def test_pure_function_of_pair_set(self, tpg):
        """Same pair set, same guide -> same Fitness, independent of
        iteration order (the cross-backend determinism precondition)."""
        target, pairs, guide = tpg
        first = graded_fitness(target, set(sorted(pairs)), guide)
        second = graded_fitness(target, set(reversed(sorted(pairs))), guide)
        assert first == second


class TestGuidedDeterminism:
    def _generate(self, **cfg_kwargs):
        return generate_suite(
            lambda: SenseTop(),
            TestSuite("sensor_base", paper_testcases()[:1]),
            "sensor",
            DftConfig(seed=5, budget_simulations=24, **cfg_kwargs),
            factory_ref=FACTORY_REF,
            strategy="guided",
            target_mode="frontier",
        )

    def test_byte_identical_across_matcher_engine_workers(self):
        baseline = self._generate(matcher="scan", engine="interp", workers=1)
        variants = [
            self._generate(matcher="vector", engine="interp", workers=1),
            self._generate(matcher="scan", engine="block", workers=1),
            self._generate(matcher="vector", engine="block", workers=2),
        ]
        base_bytes = suite_bytes(baseline)
        for variant in variants:
            assert suite_bytes(variant) == base_bytes
            assert variant.closed == baseline.closed
            assert [t.status for t in variant.targets] == [
                t.status for t in baseline.targets
            ]
            assert [t.trajectory for t in variant.targets] == [
                t.trajectory for t in baseline.targets
            ]
