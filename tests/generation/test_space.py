"""Tests for the stimulus parameter spaces (repro.generation.space)."""

import random

import pytest

from repro.generation import (
    EncodedParams,
    Param,
    ParameterSpace,
    SPACES,
    decode_candidates,
    space_for,
)
from repro.tdf.errors import TdfError


class TestParam:
    def test_float_sample_in_range(self):
        p = Param("x", -1.0, 2.0)
        rng = random.Random(0)
        for _ in range(50):
            assert -1.0 <= p.sample(rng) <= 2.0

    def test_int_sample_is_integral(self):
        p = Param("n", 2, 9, kind="int")
        rng = random.Random(0)
        for _ in range(50):
            v = p.sample(rng)
            assert v == int(v)
            assert 2 <= v <= 9

    def test_log_sample_in_range(self):
        p = Param("r", 0.1, 1000.0, kind="log")
        rng = random.Random(0)
        for _ in range(50):
            assert 0.1 <= p.sample(rng) <= 1000.0

    def test_mutate_stays_in_range(self):
        rng = random.Random(1)
        for p in (
            Param("x", 0.0, 1.0),
            Param("n", 0, 5, kind="int"),
            Param("r", 0.5, 50.0, kind="log"),
        ):
            v = p.sample(rng)
            for _ in range(50):
                v = p.mutate(rng, v, scale=0.3)
                assert p.lo <= v <= p.hi

    def test_quantize_is_candidate_identity(self):
        p = Param("x", 0.0, 1.0)
        assert p.quantize(0.1234567894) == p.quantize(0.1234567891)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown param kind"):
            Param("x", 0.0, 1.0, kind="gamma")

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError, match="lo"):
            Param("x", 2.0, 1.0)

    def test_log_needs_positive_lo(self):
        with pytest.raises(ValueError, match="log range"):
            Param("x", 0.0, 1.0, kind="log")


def _toy_space() -> ParameterSpace:
    def build(name, params):  # pragma: no cover - never simulated here
        raise AssertionError("toy space does not build")

    return ParameterSpace(
        system="toy",
        builder=build,
        params=(Param("a", 0.0, 1.0), Param("b", 0, 3, kind="int")),
    )


class TestParameterSpace:
    def test_sample_covers_all_params(self):
        space = _toy_space()
        vec = space.sample(random.Random(0))
        assert set(vec) == {"a", "b"}

    def test_mutate_changes_at_least_one_gene(self):
        # Float-only space: a gaussian nudge essentially never rounds
        # back to the incumbent value (int genes may resample equal).
        space = ParameterSpace(
            system="floaty", builder=lambda n, p: None,
            params=(Param("a", 0.0, 1.0), Param("b", -2.0, 2.0)),
        )
        rng = random.Random(0)
        vec = space.sample(rng)
        for _ in range(20):
            assert space.mutate(rng, vec, scale=0.2) != vec

    def test_encode_is_sorted_and_canonical(self):
        space = _toy_space()
        enc = space.encode({"b": 2.0, "a": 0.5})
        assert enc == (("a", 0.5), ("b", 2.0))

    def test_encode_rejects_missing_params(self):
        with pytest.raises(ValueError, match="missing param"):
            _toy_space().encode({"a": 0.5})

    def test_duplicate_param_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate param names"):
            ParameterSpace(
                system="dup", builder=lambda n, p: None,
                params=(Param("a", 0.0, 1.0), Param("a", 0.0, 2.0)),
            )

    def test_candidate_name_deterministic(self):
        space = _toy_space()
        params = {"a": 0.25, "b": 1.0}
        name = space.candidate_name(params)
        assert name == space.candidate_name(dict(params))
        assert name.startswith("gen_toy_")

    def test_candidate_name_depends_on_values(self):
        space = _toy_space()
        assert space.candidate_name({"a": 0.25, "b": 1.0}) != space.candidate_name(
            {"a": 0.25, "b": 2.0}
        )


class TestBundledSpaces:
    @pytest.mark.parametrize("system", sorted(SPACES))
    def test_space_builds_a_testcase(self, system):
        space = space_for(system)
        assert space.system == system
        vec = space.sample(random.Random(0))
        tc = space.build(vec)
        assert tc.name == space.candidate_name(vec)
        assert tc.duration.to_seconds() > 0

    def test_decode_candidates_round_trip(self):
        space = space_for("sensor")
        rng = random.Random(7)
        encoded = [space.encode(space.sample(rng)) for _ in range(3)]
        rebuilt = decode_candidates("sensor", encoded)
        assert [tc.name for tc in rebuilt] == [
            space.candidate_name(dict(enc)) for enc in encoded
        ]

    def test_unknown_system_raises_one_line_tdferror(self):
        with pytest.raises(TdfError, match="no stimulus parameter space"):
            space_for("toaster")
