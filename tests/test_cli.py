"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import SYSTEMS, main


class TestList:
    def test_lists_systems(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sensor" in out
        assert "window_lifter" in out
        assert "buck_boost" in out
        assert "3 testcases" in out


class TestStatic:
    def test_sensor_static_report(self, capsys):
        assert main(["static", "sensor"]) == 0
        out = capsys.readouterr().out
        assert "cluster: sense_top" in out
        assert "PFirm=2" in out
        assert "PWeak=1" in out
        assert "[Strong" in out

    def test_buck_boost_reports_undriven_port(self, capsys):
        assert main(["static", "buck_boost"]) == 0
        out = capsys.readouterr().out
        assert "limiter.ip_trim" in out

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["static", "nonexistent"])


class TestRun:
    def test_sensor_run_summary(self, capsys):
        assert main(["run", "sensor"]) == 0
        out = capsys.readouterr().out
        assert "Static associations" in out
        assert "Per-class coverage" in out
        assert "all-PWeak" in out

    def test_run_with_matrix(self, capsys):
        assert main(["run", "sensor", "--matrix"]) == 0
        out = capsys.readouterr().out
        assert "TC1" in out and "TC2" in out and "TC3" in out
        assert "data flow pair exercised" in out

    def test_run_frontier_targets_summary(self, capsys):
        assert main(["run", "sensor", "--targets", "frontier"]) == 0
        out = capsys.readouterr().out
        assert "frontier (non-subsumed targets):" in out
        assert "[frontier" in out


class TestArgParsing:
    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_campaign_restricted_to_case_studies(self):
        with pytest.raises(SystemExit):
            main(["campaign", "sensor"])

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "sensor", "--engine", "jit"])


class TestEngineFlag:
    def test_run_accepts_each_engine(self, capsys):
        outputs = {}
        for engine in ("interp", "block", "auto"):
            assert main(["run", "sensor", "--engine", engine]) == 0
            outputs[engine] = capsys.readouterr().out
        # Bit-identical results: the printed summary cannot differ.
        assert outputs["interp"] == outputs["block"] == outputs["auto"]


class TestMutate:
    ARGS = ["mutate", "random", "--cluster-seed", "7",
            "--max-mutants", "8", "--seed", "0"]

    def test_text_report(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "mutation analysis of random" in out
        assert "criterion-vs-mutation-score" in out

    def test_json_report_schema(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-dft-mutation/1"
        assert payload["counts"]["sampled"] == 8
        assert payload["counts"]["killed"] >= 1
        assert [row["criterion"] for row in payload["criteria"]][-1] == (
            "full-suite"
        )

    def test_output_and_csv_files(self, tmp_path, capsys):
        out_json = tmp_path / "report.json"
        out_csv = tmp_path / "report.csv"
        assert main(self.ARGS + ["--no-criteria", "--output", str(out_json),
                                 "--csv", str(out_csv)]) == 0
        payload = json.loads(out_json.read_text())
        assert payload["schema"] == "repro-dft-mutation/1"
        assert "criteria" not in payload
        lines = out_csv.read_text().strip().splitlines()
        assert len(lines) == 1 + payload["counts"]["sampled"]

    def test_operator_restriction(self, capsys):
        assert main(self.ARGS + ["--json", "--operators", "gain", "sdl"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["operators"]) == {"gain", "sdl"}
        assert all(
            m["operator"] in {"gain", "sdl"} for m in payload["mutants"]
        )


class TestErrorPaths:
    """Every operator error exits 1 with a one-line message, no traceback."""

    def _fails_cleanly(self, capsys, argv):
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-dft: error:")
        assert "Traceback" not in err
        return err

    def test_unknown_mutation_operator(self, capsys):
        err = self._fails_cleanly(
            capsys, ["mutate", "random", "--operators", "bogus"]
        )
        assert "bogus" in err and "available" in err

    def test_unwritable_cache_dir(self, capsys):
        err = self._fails_cleanly(
            capsys, ["run", "sensor", "--cache-dir", "/proc/nonexistent/dir"]
        )
        assert "--cache-dir" in err

    def test_cache_dir_that_is_a_file(self, tmp_path, capsys):
        bad = tmp_path / "occupied"
        bad.write_text("not a directory")
        err = self._fails_cleanly(
            capsys, ["run", "sensor", "--cache-dir", str(bad)]
        )
        assert "--cache-dir" in err

    def test_malformed_suite_ref(self, capsys):
        err = self._fails_cleanly(
            capsys,
            ["mutate", "sensor", "--suite-ref", "not-a-ref", "--max-mutants", "1"],
        )
        assert "not-a-ref" in err

    def test_unimportable_suite_ref(self, capsys):
        err = self._fails_cleanly(
            capsys,
            ["mutate", "sensor", "--suite-ref", "repro.nosuch:thing",
             "--max-mutants", "1"],
        )
        assert "repro.nosuch" in err

    def test_unknown_engine_exits_via_argparse(self):
        # argparse owns --engine validation: usage error, exit code 2.
        with pytest.raises(SystemExit) as exc:
            main(["mutate", "random", "--engine", "jit"])
        assert exc.value.code == 2


class TestAutoWorkers:
    def test_explicit_request_wins(self):
        from repro.cli import _resolve_workers

        assert _resolve_workers(3, suite_len=100) == 3
        assert _resolve_workers(1, suite_len=100) == 1

    def test_single_cpu_stays_serial(self, monkeypatch):
        import os

        from repro.cli import _resolve_workers

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert _resolve_workers(None, suite_len=100) == 1

    def test_small_suite_stays_serial(self, monkeypatch):
        import os

        from repro.cli import _resolve_workers

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert _resolve_workers(None, suite_len=1) == 1

    def test_one_worker_per_cpu_capped_at_suite(self, monkeypatch):
        import os

        from repro.cli import _resolve_workers

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert _resolve_workers(None, suite_len=3) == 3
        assert _resolve_workers(None, suite_len=100) == 8

    def test_decision_recorded_on_telemetry(self, monkeypatch):
        import os

        from repro.cli import _resolve_workers
        from repro.obs import telemetry_session

        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        with telemetry_session() as tel:
            _resolve_workers(None, suite_len=10)
        records = tel.to_run()["metrics"]
        gauges = [r for r in records if r["name"] == "cli.auto_workers"]
        assert gauges and gauges[0]["value"] == 4
        assert gauges[0]["labels"]["reason"] == "one_per_cpu"


class TestTelemetryFlags:
    def test_run_writes_jsonl_and_trace_events(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        trace = tmp_path / "run.trace.json"
        assert main([
            "run", "sensor", "--telemetry", str(jsonl),
            "--trace-events", str(trace),
        ]) == 0
        lines = [l for l in jsonl.read_text().splitlines() if l.strip()]
        assert len(lines) > 1
        records = [json.loads(l) for l in lines]
        names = {r["name"] for r in records if r["type"] == "span"}
        assert {"pipeline", "static", "dynamic", "coverage"} <= names
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])

    def test_static_accepts_telemetry_flag(self, tmp_path, capsys):
        jsonl = tmp_path / "static.jsonl"
        assert main(["static", "sensor", "--telemetry", str(jsonl)]) == 0
        records = [json.loads(l) for l in jsonl.read_text().splitlines()]
        assert any(
            r["type"] == "metric" and r["name"] == "analysis.associations"
            for r in records
        )

    def test_run_without_flags_records_nothing_globally(self, capsys):
        from repro.obs import NULL_TELEMETRY, get_telemetry

        assert main(["run", "sensor"]) == 0
        assert get_telemetry() is NULL_TELEMETRY

    def test_telemetry_report_pretty_prints(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        assert main(["run", "sensor", "--telemetry", str(jsonl)]) == 0
        capsys.readouterr()
        assert main(["telemetry-report", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert "pipeline" in out
        assert "metrics:" in out
        assert "tdf.activations" in out

    def test_telemetry_report_missing_file_is_readable_error(self, capsys):
        assert main(["telemetry-report", "/nonexistent/run.jsonl"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-dft: error:")

    def test_telemetry_report_wrong_format_is_readable_error(self, tmp_path, capsys):
        bogus = tmp_path / "not-telemetry.json"
        bogus.write_text('{"traceEvents": []}\n')
        assert main(["telemetry-report", str(bogus)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-dft: error:")
        assert "unknown telemetry record type" in err


class TestImportFailures:
    def test_broken_factory_import_exits_nonzero(self, capsys, monkeypatch):
        def broken_factory():
            raise ImportError("No module named 'systemc_ams'")

        monkeypatch.setitem(
            SYSTEMS, "sensor", {**SYSTEMS["sensor"], "factory": broken_factory}
        )
        assert main(["run", "sensor"]) == 1
        err = capsys.readouterr().err
        assert "repro-dft: error: cannot import target system" in err
        assert "systemc_ams" in err
        assert "Traceback" not in err

    def test_broken_suite_import_exits_nonzero(self, capsys, monkeypatch):
        def broken_suite():
            raise ModuleNotFoundError("No module named 'matplotlib'")

        monkeypatch.setitem(
            SYSTEMS, "sensor", {**SYSTEMS["sensor"], "suite": broken_suite}
        )
        assert main(["static", "sensor"]) == 0  # static doesn't need the suite
        assert main(["run", "sensor"]) == 1
        assert "cannot import" in capsys.readouterr().err


class TestGenerate:
    ARGS = ["generate", "sensor", "--seed", "0", "--budget-simulations", "25"]

    def test_text_report(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "coverage-guided generation for sensor" in out
        assert "targets:" in out
        assert "accepted testcase(s)" in out

    def test_json_report_schema(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-dft-generation/1"
        assert payload["counts"]["closed"] >= 1
        assert payload["counts"]["simulations"] <= 25
        assert payload["seed"] == 0
        assert payload["strategy"] == "mutation"

    def test_output_file(self, tmp_path, capsys):
        out_json = tmp_path / "generation.json"
        assert main(self.ARGS + ["--output", str(out_json)]) == 0
        payload = json.loads(out_json.read_text())
        assert payload["schema"] == "repro-dft-generation/1"
        assert capsys.readouterr().err.strip().endswith(str(out_json))

    def test_deterministic_json_across_worker_counts(self, capsys):
        payloads = []
        for workers in ("1", "2"):
            assert main(self.ARGS + ["--json", "--workers", workers]) == 0
            payload = json.loads(capsys.readouterr().out)
            del payload["throughput"]  # wall-clock timing may differ
            payloads.append(payload)
        assert payloads[0] == payloads[1]

    def test_random_strategy_flag(self, capsys):
        assert main(self.ARGS + ["--json", "--strategy", "random"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strategy"] == "random"

    def test_unknown_strategy_exits_via_argparse(self):
        with pytest.raises(SystemExit) as exc:
            main(self.ARGS + ["--strategy", "simulated-annealing"])
        assert exc.value.code == 2

    def test_riscv_has_no_space_yet(self):
        # The riscv platform has no bundled stimulus space: argparse
        # rejects it at the subcommand level rather than mid-run.
        with pytest.raises(SystemExit):
            main(["generate", "riscv_platform"])


class TestOutputPathValidation:
    def test_bad_telemetry_path_fails_before_running(self, capsys):
        assert main([
            "run", "sensor", "--telemetry", "/proc/nonexistent/t.jsonl",
        ]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-dft: error: --telemetry")
        assert "Traceback" not in err

    def test_bad_trace_events_path_fails_before_running(self, capsys):
        assert main([
            "run", "sensor", "--trace-events", "/proc/nonexistent/t.json",
        ]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-dft: error: --trace-events")

    def test_directory_as_telemetry_path_rejected(self, tmp_path, capsys):
        assert main(["run", "sensor", "--telemetry", str(tmp_path)]) == 1
        assert "not a writable file path" in capsys.readouterr().err

    def test_parent_directory_is_created(self, tmp_path, capsys):
        target = tmp_path / "new" / "dir" / "run.jsonl"
        assert main(["run", "sensor", "--telemetry", str(target)]) == 0
        assert target.is_file()


class TestTelemetryReportTolerance:
    def test_malformed_lines_skipped_with_warning(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        assert main(["run", "sensor", "--telemetry", str(jsonl)]) == 0
        with open(jsonl, "a") as handle:
            handle.write("{truncated json\n")
            handle.write('{"type": "mystery"}\n')
        capsys.readouterr()
        assert main(["telemetry-report", str(jsonl)]) == 0
        captured = capsys.readouterr()
        assert "skipped 2 malformed line(s)" in captured.err
        assert "skipped: 2 malformed line(s) ignored" in captured.out
        assert "pipeline" in captured.out


class TestHistoryCli:
    def _run_twice(self, tmp_path):
        hist = tmp_path / "ledger"
        for _ in range(2):
            assert main([
                "run", "sensor", "--history-dir", str(hist),
            ]) == 0
        return hist

    def test_list_shows_both_runs(self, tmp_path, capsys):
        hist = self._run_twice(tmp_path)
        capsys.readouterr()
        assert main(["history", "list", "--history-dir", str(hist)]) == 0
        out = capsys.readouterr().out
        assert out.count("run ") >= 2 or out.count("sensor") >= 2

    def test_diff_defaults_to_latest_two_and_is_identical(self, tmp_path, capsys):
        hist = self._run_twice(tmp_path)
        capsys.readouterr()
        assert main(["history", "diff", "--history-dir", str(hist)]) == 0
        assert "history diff: identical" in capsys.readouterr().out

    def test_diff_by_run_id_prefix(self, tmp_path, capsys):
        from repro.obs.store import RunHistory

        hist = self._run_twice(tmp_path)
        ids = [r["run_id"] for r in RunHistory(str(hist)).records()]
        capsys.readouterr()
        assert main([
            "history", "diff", ids[0][:8], ids[1][:8],
            "--history-dir", str(hist),
        ]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_needs_two_records(self, tmp_path, capsys):
        assert main([
            "history", "diff", "--history-dir", str(tmp_path / "empty"),
        ]) == 1
        assert "needs two recorded runs" in capsys.readouterr().err

    def test_trend_table_and_csv_export(self, tmp_path, capsys):
        hist = self._run_twice(tmp_path)
        export = tmp_path / "trend.csv"
        capsys.readouterr()
        assert main([
            "history", "trend", "--history-dir", str(hist),
            "--export", str(export),
        ]) == 0
        out = capsys.readouterr().out
        assert "overall" in out and "Strong" in out
        header = export.read_text().splitlines()[0]
        assert header.startswith("run_id,")

    def test_history_json_output(self, tmp_path, capsys):
        hist = self._run_twice(tmp_path)
        capsys.readouterr()
        assert main([
            "history", "list", "--history-dir", str(hist), "--json",
        ]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2
        assert records[0]["system"] == "sensor"

    def test_no_history_writes_nothing(self, tmp_path, capsys, monkeypatch):
        import repro.obs.store as store

        target = tmp_path / "default-ledger"
        monkeypatch.setattr(
            store, "default_history_dir", lambda cache_dir=None: str(target)
        )
        assert main(["run", "sensor", "--no-history"]) == 0
        assert not target.exists()

    def test_default_ledger_used_without_flags(self, tmp_path, capsys, monkeypatch):
        import repro.obs.store as store

        target = tmp_path / "default-ledger"
        monkeypatch.setattr(
            store, "default_history_dir", lambda cache_dir=None: str(target)
        )
        assert main(["run", "sensor"]) == 0
        from repro.obs.store import RunHistory

        assert len(RunHistory(str(target)).records()) == 1

    def test_unwritable_history_dir_is_one_line_error(self, tmp_path, capsys):
        blocker = tmp_path / "blocked"
        blocker.write_text("file in the way")
        assert main([
            "run", "sensor", "--history-dir", str(blocker),
        ]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-dft: error: --history-dir")
        assert "Traceback" not in err


class TestProbeStoreCli:
    def test_columnar_run_matches_memory_run(self, tmp_path, capsys):
        assert main(["run", "sensor", "--json", "--no-history"]) == 0
        baseline = capsys.readouterr().out
        assert main([
            "run", "sensor", "--json", "--no-history",
            "--probe-store", "columnar", "--store-chunk-size", "16",
            "--store-dir", str(tmp_path / "spill"),
        ]) == 0
        assert capsys.readouterr().out == baseline
        # Spill files are cleaned up after every testcase.
        spill = tmp_path / "spill"
        assert not spill.exists() or not list(spill.iterdir())

    def test_unknown_store_kind_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "sensor", "--probe-store", "parquet"])
        assert exc.value.code == 2


class TestMatcherCli:
    def test_scan_and_vector_runs_identical(self, capsys):
        assert main([
            "run", "sensor", "--json", "--no-history", "--matcher", "scan",
        ]) == 0
        baseline = capsys.readouterr().out
        # Vector on a columnar store (the intended pairing); without
        # numpy this degrades to scan — either way the report is
        # byte-identical, which is the whole contract of the knob.
        assert main([
            "run", "sensor", "--json", "--no-history",
            "--probe-store", "columnar", "--matcher", "vector",
        ]) == 0
        assert capsys.readouterr().out == baseline

    def test_unknown_matcher_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "sensor", "--matcher", "simd"])
        assert exc.value.code == 2


class TestBenchSectionFlag:
    def _capture(self, monkeypatch):
        import repro.bench as bench

        captured = {}

        def fake_run(**kwargs):
            captured.update(kwargs)
            return {"sections": kwargs.get("sections")}

        monkeypatch.setattr(bench, "run_benchmarks", fake_run)
        return captured

    def test_single_section_flag(self, monkeypatch, capsys):
        captured = self._capture(monkeypatch)
        assert main(["bench", "--section", "match"]) == 0
        assert captured["sections"] == ["match"]
        capsys.readouterr()

    def test_section_merges_with_sections_without_duplicates(
        self, monkeypatch, capsys
    ):
        captured = self._capture(monkeypatch)
        assert main([
            "bench", "--sections", "engine", "batch",
            "--section", "match", "--section", "engine",
        ]) == 0
        assert captured["sections"] == ["engine", "batch", "match"]
        capsys.readouterr()

    def test_unknown_section_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--section", "warp"])
        assert exc.value.code == 2


class TestConfigFlag:
    def test_run_with_toml_config(self, tmp_path, capsys):
        cfg = tmp_path / "dft.toml"
        cfg.write_text('engine = "interp"\nwarn = false\n')
        assert main(["run", "sensor", "--config", str(cfg)]) == 0
        assert "coverage" in capsys.readouterr().out

    def test_bad_config_field_is_one_line_error(self, tmp_path, capsys):
        cfg = tmp_path / "dft.json"
        cfg.write_text('{"bogus": 1}')
        assert main(["run", "sensor", "--config", str(cfg)]) == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "config file" in err and "bogus" in err

    def test_missing_config_file_is_clean_exit(self, tmp_path, capsys):
        assert main(["run", "sensor", "--config", str(tmp_path / "no.toml")]) == 1
        assert "cannot read config file" in capsys.readouterr().err

    def test_flags_layer_over_file_over_defaults(self, tmp_path):
        import argparse

        from repro.cli import _config_base
        from repro.core import DftConfig

        cfg = tmp_path / "dft.toml"
        cfg.write_text('seed = 9\nbudget_simulations = 50\n')
        args = argparse.Namespace(command="generate", config=str(cfg))
        base = _config_base(args)
        # File overrides the generate default (200), keeps others.
        assert base.budget_simulations == 50
        assert base.seed == 9
        # An explicit flag still wins over the file.
        flagged = DftConfig.from_args(
            argparse.Namespace(seed=1), base=base
        )
        assert flagged.seed == 1
        assert flagged.budget_simulations == 50

    def test_command_defaults_apply_without_file(self):
        import argparse

        from repro.cli import _config_base

        base = _config_base(argparse.Namespace(command="generate", config=None))
        assert base.budget_simulations == 200


class TestSubmitOptions:
    def test_values_json_decoded(self):
        from repro.cli import _parse_submit_options

        options = _parse_submit_options(
            ["iterations=3", "strategy=random", "flag=true"]
        )
        assert options == {"iterations": 3, "strategy": "random", "flag": True}

    def test_bad_pair_rejected(self):
        import pytest

        from repro.cli import _parse_submit_options

        with pytest.raises(ValueError, match="KEY=VALUE"):
            _parse_submit_options(["no-equals-sign"])

    def test_worker_and_serve_subcommands_parse(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        args = parser.parse_args(
            ["serve", "--port", "9000", "--worker", "7001", "--worker",
             "host:7002", "--state-dir", "/tmp/s"]
        )
        assert args.worker == ["7001", "host:7002"]
        assert args.port == 9000
        worker = parser.parse_args(["worker", "--port", "0"])
        assert worker.command == "worker"
        submit = parser.parse_args(
            ["submit", "campaign", "buck_boost", "--option", "iterations=2"]
        )
        assert submit.kind == "campaign"
        assert submit.server == "127.0.0.1:8437"
