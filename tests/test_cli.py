"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import SYSTEMS, main


class TestList:
    def test_lists_systems(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sensor" in out
        assert "window_lifter" in out
        assert "buck_boost" in out
        assert "3 testcases" in out


class TestStatic:
    def test_sensor_static_report(self, capsys):
        assert main(["static", "sensor"]) == 0
        out = capsys.readouterr().out
        assert "cluster: sense_top" in out
        assert "PFirm=2" in out
        assert "PWeak=1" in out
        assert "[Strong" in out

    def test_buck_boost_reports_undriven_port(self, capsys):
        assert main(["static", "buck_boost"]) == 0
        out = capsys.readouterr().out
        assert "limiter.ip_trim" in out

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["static", "nonexistent"])


class TestRun:
    def test_sensor_run_summary(self, capsys):
        assert main(["run", "sensor"]) == 0
        out = capsys.readouterr().out
        assert "Static associations" in out
        assert "Per-class coverage" in out
        assert "all-PWeak" in out

    def test_run_with_matrix(self, capsys):
        assert main(["run", "sensor", "--matrix"]) == 0
        out = capsys.readouterr().out
        assert "TC1" in out and "TC2" in out and "TC3" in out
        assert "data flow pair exercised" in out


class TestArgParsing:
    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_campaign_restricted_to_case_studies(self):
        with pytest.raises(SystemExit):
            main(["campaign", "sensor"])

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "sensor", "--engine", "jit"])


class TestEngineFlag:
    def test_run_accepts_each_engine(self, capsys):
        outputs = {}
        for engine in ("interp", "block", "auto"):
            assert main(["run", "sensor", "--engine", engine]) == 0
            outputs[engine] = capsys.readouterr().out
        # Bit-identical results: the printed summary cannot differ.
        assert outputs["interp"] == outputs["block"] == outputs["auto"]


class TestAutoWorkers:
    def test_explicit_request_wins(self):
        from repro.cli import _resolve_workers

        assert _resolve_workers(3, suite_len=100) == 3
        assert _resolve_workers(1, suite_len=100) == 1

    def test_single_cpu_stays_serial(self, monkeypatch):
        import os

        from repro.cli import _resolve_workers

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert _resolve_workers(None, suite_len=100) == 1

    def test_small_suite_stays_serial(self, monkeypatch):
        import os

        from repro.cli import _resolve_workers

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert _resolve_workers(None, suite_len=1) == 1

    def test_one_worker_per_cpu_capped_at_suite(self, monkeypatch):
        import os

        from repro.cli import _resolve_workers

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert _resolve_workers(None, suite_len=3) == 3
        assert _resolve_workers(None, suite_len=100) == 8

    def test_decision_recorded_on_telemetry(self, monkeypatch):
        import os

        from repro.cli import _resolve_workers
        from repro.obs import telemetry_session

        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        with telemetry_session() as tel:
            _resolve_workers(None, suite_len=10)
        records = tel.to_run()["metrics"]
        gauges = [r for r in records if r["name"] == "cli.auto_workers"]
        assert gauges and gauges[0]["value"] == 4
        assert gauges[0]["labels"]["reason"] == "one_per_cpu"


class TestTelemetryFlags:
    def test_run_writes_jsonl_and_trace_events(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        trace = tmp_path / "run.trace.json"
        assert main([
            "run", "sensor", "--telemetry", str(jsonl),
            "--trace-events", str(trace),
        ]) == 0
        lines = [l for l in jsonl.read_text().splitlines() if l.strip()]
        assert len(lines) > 1
        records = [json.loads(l) for l in lines]
        names = {r["name"] for r in records if r["type"] == "span"}
        assert {"pipeline", "static", "dynamic", "coverage"} <= names
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])

    def test_static_accepts_telemetry_flag(self, tmp_path, capsys):
        jsonl = tmp_path / "static.jsonl"
        assert main(["static", "sensor", "--telemetry", str(jsonl)]) == 0
        records = [json.loads(l) for l in jsonl.read_text().splitlines()]
        assert any(
            r["type"] == "metric" and r["name"] == "analysis.associations"
            for r in records
        )

    def test_run_without_flags_records_nothing_globally(self, capsys):
        from repro.obs import NULL_TELEMETRY, get_telemetry

        assert main(["run", "sensor"]) == 0
        assert get_telemetry() is NULL_TELEMETRY

    def test_telemetry_report_pretty_prints(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        assert main(["run", "sensor", "--telemetry", str(jsonl)]) == 0
        capsys.readouterr()
        assert main(["telemetry-report", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert "pipeline" in out
        assert "metrics:" in out
        assert "tdf.activations" in out

    def test_telemetry_report_missing_file_is_readable_error(self, capsys):
        assert main(["telemetry-report", "/nonexistent/run.jsonl"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-dft: error:")

    def test_telemetry_report_wrong_format_is_readable_error(self, tmp_path, capsys):
        bogus = tmp_path / "not-telemetry.json"
        bogus.write_text('{"traceEvents": []}\n')
        assert main(["telemetry-report", str(bogus)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-dft: error:")
        assert "unknown telemetry record type" in err


class TestImportFailures:
    def test_broken_factory_import_exits_nonzero(self, capsys, monkeypatch):
        def broken_factory():
            raise ImportError("No module named 'systemc_ams'")

        monkeypatch.setitem(
            SYSTEMS, "sensor", {**SYSTEMS["sensor"], "factory": broken_factory}
        )
        assert main(["run", "sensor"]) == 1
        err = capsys.readouterr().err
        assert "repro-dft: error: cannot import target system" in err
        assert "systemc_ams" in err
        assert "Traceback" not in err

    def test_broken_suite_import_exits_nonzero(self, capsys, monkeypatch):
        def broken_suite():
            raise ModuleNotFoundError("No module named 'matplotlib'")

        monkeypatch.setitem(
            SYSTEMS, "sensor", {**SYSTEMS["sensor"], "suite": broken_suite}
        )
        assert main(["static", "sensor"]) == 0  # static doesn't need the suite
        assert main(["run", "sensor"]) == 1
        assert "cannot import" in capsys.readouterr().err
