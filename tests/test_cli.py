"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_systems(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sensor" in out
        assert "window_lifter" in out
        assert "buck_boost" in out
        assert "3 testcases" in out


class TestStatic:
    def test_sensor_static_report(self, capsys):
        assert main(["static", "sensor"]) == 0
        out = capsys.readouterr().out
        assert "cluster: sense_top" in out
        assert "PFirm=2" in out
        assert "PWeak=1" in out
        assert "[Strong" in out

    def test_buck_boost_reports_undriven_port(self, capsys):
        assert main(["static", "buck_boost"]) == 0
        out = capsys.readouterr().out
        assert "limiter.ip_trim" in out

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["static", "nonexistent"])


class TestRun:
    def test_sensor_run_summary(self, capsys):
        assert main(["run", "sensor"]) == 0
        out = capsys.readouterr().out
        assert "Static associations" in out
        assert "Per-class coverage" in out
        assert "all-PWeak" in out

    def test_run_with_matrix(self, capsys):
        assert main(["run", "sensor", "--matrix"]) == 0
        out = capsys.readouterr().out
        assert "TC1" in out and "TC2" in out and "TC3" in out
        assert "data flow pair exercised" in out


class TestArgParsing:
    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_campaign_restricted_to_case_studies(self):
        with pytest.raises(SystemExit):
            main(["campaign", "sensor"])
