"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

from repro.tdf import Cluster, ms

# Make the shared test helpers importable from every test subdirectory.
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from helpers import Accumulator, Doubler, Passthrough  # noqa: E402,F401


@pytest.fixture(autouse=True)
def _fresh_static_cache():
    """Clear the process-wide static-analysis cache around every test.

    The default cache memoizes ``analyze_cluster`` by cluster
    fingerprint; without isolation a test's telemetry (e.g. the
    ``analysis.models_analyzed`` counter) would depend on which tests
    analyzed the same cluster earlier in the session.
    """
    from repro.analysis import get_default_cache

    get_default_cache().clear()
    yield
    get_default_cache().clear()


@pytest.fixture(autouse=True)
def _isolated_history(tmp_path, monkeypatch):
    """Point the default run-history ledger at a per-test directory.

    CLI invocations record history under the cache dir by default;
    without isolation, tests would append to (and read back from) the
    developer's real ledger.
    """
    import repro.obs.store as store

    monkeypatch.setattr(
        store,
        "default_history_dir",
        lambda cache_dir=None: str(tmp_path / "history"),
    )
    yield


@pytest.fixture
def passthrough_cluster():
    """source -> passthrough -> sink, 1 ms timestep."""
    from repro.tdf.library import CollectorSink, ConstantSource

    class Top(Cluster):
        def architecture(self):
            self.src = self.add(ConstantSource("src", 1.5, timestep=ms(1)))
            self.dut = self.add(Passthrough("dut"))
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.dut.ip)
            self.connect(self.dut.op, self.sink.ip)

    return Top("top")
