"""Tiny reference models shared across the test suite."""

from __future__ import annotations

from repro.tdf import TdfIn, TdfModule, TdfOut


class Passthrough(TdfModule):
    """Copies input to output (the simplest analysable model)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def processing(self) -> None:
        value = self.ip.read()
        self.op.write(value)


class Doubler(TdfModule):
    """Multiplies the input by two."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def processing(self) -> None:
        self.op.write(self.ip.read() * 2)


class Accumulator(TdfModule):
    """Keeps a running sum in a member variable."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_total = 0.0

    def initialize(self) -> None:
        self.m_total = 0.0

    def processing(self) -> None:
        self.m_total = self.m_total + self.ip.read()
        self.op.write(self.m_total)
