"""repro — Data Flow Testing for SystemC-AMS-style Timed Data Flow models.

A from-scratch Python reproduction of *Hassan, Große, Le, Drechsler:
"Data Flow Testing for SystemC-AMS Timed Data Flow Models" (DATE
2019)*, comprising:

* :mod:`repro.tdf` — a TDF model-of-computation kernel (modules, rated
  ports, signals, SDF scheduling, dynamic TDF) plus a component library;
* :mod:`repro.analysis` — static data-flow analysis over the models'
  ``processing()`` source and the cluster netlist;
* :mod:`repro.instrument` — dynamic analysis: AST instrumentation,
  probes, event matching, parallel-print taps;
* :mod:`repro.core` — the TDF-specific association classes
  (Strong/Firm/PFirm/PWeak), coverage criteria, coverage computation,
  reports, the :class:`DftConfig` run configuration and the
  iterative-refinement / generation workflows;
* :mod:`repro.generation` — coverage-guided testcase generation:
  search the stimulus parameter space for testcases that close
  uncovered def-use associations;
* :mod:`repro.testing` — stimuli, testcases and suites;
* :mod:`repro.systems` — the paper's three evaluation vehicles (sensor
  system, car window lifter, buck-boost converter).

Quickstart::

    from repro import run_dft, TestSuite
    from repro.systems.sensor import SenseTop, paper_testcases

    result = run_dft(lambda: SenseTop(), TestSuite("paper", paper_testcases()))
    print(result.coverage.overall_percent)
"""

from .core import (
    AssocClass,
    Association,
    CoverageResult,
    Criterion,
    DftConfig,
    GenerationCampaign,
    IterativeCampaign,
    PipelineResult,
    evaluate_all,
    format_iteration_table,
    format_matrix,
    format_summary,
    run_dft,
    satisfied,
)
from .generation import GenerationResult, generate_suite
from .testing import TestCase, TestSuite
from .tdf import Cluster, ScaTime, Simulator, TdfIn, TdfModule, TdfOut, ms, ns, sec, us

__version__ = "1.0.0"

__all__ = [
    "AssocClass",
    "Association",
    "Cluster",
    "CoverageResult",
    "Criterion",
    "DftConfig",
    "GenerationCampaign",
    "GenerationResult",
    "IterativeCampaign",
    "PipelineResult",
    "ScaTime",
    "Simulator",
    "TdfIn",
    "TdfModule",
    "TdfOut",
    "TestCase",
    "TestSuite",
    "__version__",
    "evaluate_all",
    "format_iteration_table",
    "format_matrix",
    "format_summary",
    "generate_suite",
    "ms",
    "ns",
    "run_dft",
    "satisfied",
    "sec",
    "us",
]
