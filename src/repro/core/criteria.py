"""Test adequacy criteria (paper §IV-B2).

Every classification defines a disjoint association set, so each class
gets its own criterion; ``all-defs`` asks for at least one covered
association per definition, the classical ``all-uses`` (which §VI-A
reports alongside all-defs) asks for at least one covered association
per *use* site, and ``all-dataflow`` is the conjunction of everything.
Because the class sets are disjoint, criteria can be satisfied
independently — the paper's buck-boost converter satisfies all-PFirm
and all-PWeak while all-defs still fails.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from .associations import AssocClass
from .coverage import CoverageResult


class Criterion(enum.Enum):
    """The six TDF data-flow adequacy criteria."""

    ALL_STRONG = "all-Strong"
    ALL_FIRM = "all-Firm"
    ALL_PFIRM = "all-PFirm"
    ALL_PWEAK = "all-PWeak"
    ALL_DEFS = "all-defs"
    ALL_USES = "all-uses"
    ALL_DATAFLOW = "all-dataflow"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_CLASS_OF = {
    Criterion.ALL_STRONG: AssocClass.STRONG,
    Criterion.ALL_FIRM: AssocClass.FIRM,
    Criterion.ALL_PFIRM: AssocClass.PFIRM,
    Criterion.ALL_PWEAK: AssocClass.PWEAK,
}


def satisfied(criterion: Criterion, coverage: CoverageResult) -> bool:
    """Whether ``coverage`` satisfies ``criterion``."""
    if criterion in _CLASS_OF:
        return coverage.class_coverage()[_CLASS_OF[criterion]].complete
    if criterion is Criterion.ALL_DEFS:
        universe = coverage.definitions_with_associations()
        return len(coverage.covered_definitions()) == len(universe)
    if criterion is Criterion.ALL_USES:
        universe = coverage.use_sites()
        return len(coverage.covered_use_sites()) == len(universe)
    if criterion is Criterion.ALL_DATAFLOW:
        return all(
            satisfied(c, coverage) for c in Criterion if c is not Criterion.ALL_DATAFLOW
        )
    raise ValueError(f"unknown criterion {criterion!r}")


def evaluate_all(coverage: CoverageResult) -> Dict[Criterion, bool]:
    """Evaluate every criterion against ``coverage``."""
    return {criterion: satisfied(criterion, coverage) for criterion in Criterion}


@dataclass(frozen=True)
class CriterionStatus:
    """Satisfaction plus the covered/total behind it (for reports)."""

    criterion: Criterion
    satisfied: bool
    covered: int
    total: int


def detailed_status(coverage: CoverageResult) -> List[CriterionStatus]:
    """Per-criterion status rows with the underlying counts."""
    rows: List[CriterionStatus] = []
    classes = coverage.class_coverage()
    for criterion, klass in _CLASS_OF.items():
        cc = classes[klass]
        rows.append(CriterionStatus(criterion, cc.complete, cc.covered, cc.total))
    universe = coverage.definitions_with_associations()
    covered = coverage.covered_definitions()
    rows.append(
        CriterionStatus(
            Criterion.ALL_DEFS, len(covered) == len(universe), len(covered), len(universe)
        )
    )
    use_universe = coverage.use_sites()
    use_covered = coverage.covered_use_sites()
    rows.append(
        CriterionStatus(
            Criterion.ALL_USES,
            len(use_covered) == len(use_universe),
            len(use_covered),
            len(use_universe),
        )
    )
    rows.append(
        CriterionStatus(
            Criterion.ALL_DATAFLOW,
            satisfied(Criterion.ALL_DATAFLOW, coverage),
            coverage.exercised_total,
            coverage.static_total,
        )
    )
    return rows
