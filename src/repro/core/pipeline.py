"""The end-to-end DFT pipeline (paper Fig. 3).

``static analysis -> dynamic analysis -> coverage analysis``, fully
automatic: give it a cluster factory and a testsuite, get back the
classified coverage result plus per-stage timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, TYPE_CHECKING

from ..testing.testcase import TestSuite
from .coverage import CoverageResult

if TYPE_CHECKING:  # pragma: no cover - typing-only imports avoid a cycle
    from ..analysis.cluster_analysis import StaticAnalysisResult
    from ..instrument.runner import ClusterFactory, DynamicAnalyzer, DynamicResult


@dataclass
class PipelineResult:
    """Outcome of one full pipeline run."""

    static: "StaticAnalysisResult"
    dynamic: "DynamicResult"
    coverage: CoverageResult
    #: Wall-clock seconds per stage: 'static', 'dynamic', 'coverage'.
    timings: Dict[str, float] = field(default_factory=dict)


def run_dft(
    cluster_factory: "ClusterFactory",
    suite: TestSuite,
    warn: bool = False,
) -> PipelineResult:
    """Run the complete data-flow-testing pipeline.

    ``cluster_factory`` must build a *fresh* cluster on each call —
    dynamic analysis executes every testcase on its own instance so that
    member state cannot leak between testcases.  ``warn=True`` turns
    use-without-def findings into Python warnings in addition to the
    report entries.
    """
    from ..analysis.cluster_analysis import analyze_cluster
    from ..instrument.runner import DynamicAnalyzer

    t0 = time.perf_counter()
    static = analyze_cluster(cluster_factory())
    t1 = time.perf_counter()
    dynamic = DynamicAnalyzer(cluster_factory, static, warn=warn).run_suite(suite)
    t2 = time.perf_counter()
    coverage = CoverageResult(static, dynamic)
    # Touch the aggregate numbers so the 'coverage' timing is honest.
    coverage.class_coverage()
    t3 = time.perf_counter()
    return PipelineResult(
        static=static,
        dynamic=dynamic,
        coverage=coverage,
        timings={"static": t1 - t0, "dynamic": t2 - t1, "coverage": t3 - t2},
    )
