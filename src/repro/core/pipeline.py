"""The end-to-end DFT pipeline (paper Fig. 3).

``static analysis -> dynamic analysis -> coverage analysis``, fully
automatic: give it a cluster factory and a testsuite, get back the
classified coverage result plus a telemetry span per stage.

Every run records stage spans (``pipeline`` > ``static`` / ``dynamic``
/ ``coverage``) into the active :mod:`repro.obs` telemetry — or into a
private session when telemetry is disabled, so the backward-compatible
:attr:`PipelineResult.timings` view always has data without activating
the kernel-level hooks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

from ..obs import Telemetry, get_telemetry
from ..testing.testcase import TestSuite
from .config import DftConfig
from .coverage import CoverageResult

if TYPE_CHECKING:  # pragma: no cover - typing-only imports avoid a cycle
    from ..analysis.cluster_analysis import StaticAnalysisResult
    from ..exec.base import DynamicExecutor
    from ..exec.cache import DynamicResultCache
    from ..instrument.runner import ClusterFactory, DynamicAnalyzer, DynamicResult
    from ..obs import Span


@dataclass
class PipelineResult:
    """Outcome of one full pipeline run."""

    static: "StaticAnalysisResult"
    dynamic: "DynamicResult"
    coverage: CoverageResult
    #: Stage spans keyed by stage name: 'static', 'dynamic', 'coverage'.
    spans: Dict[str, "Span"] = field(default_factory=dict)
    #: The telemetry session the run recorded into (the globally active
    #: one, or a private per-run session when telemetry was disabled).
    telemetry: Optional[Telemetry] = None

    @property
    def timings(self) -> Dict[str, float]:
        """Wall-clock seconds per stage, derived from the stage spans.

        Kept as the historical ``PipelineResult.timings`` dict interface
        (``{'static': ..., 'dynamic': ..., 'coverage': ...}``).
        """
        return {name: span.wall for name, span in self.spans.items()}


def run_dft(
    cluster_factory: "ClusterFactory",
    suite: TestSuite,
    config: Optional[DftConfig] = None,
) -> PipelineResult:
    """Run the complete data-flow-testing pipeline.

    ``cluster_factory`` must build a *fresh* cluster on each call —
    dynamic analysis executes every testcase on its own instance so that
    member state cannot leak between testcases (see
    :data:`repro.instrument.runner.ClusterFactory`); the pipeline itself
    calls it once more for the static stage, and telemetry accounts for
    every build (``pipeline.cluster_builds`` /
    ``pipeline.cluster_build_seconds``).

    ``config`` carries every knob (see :class:`repro.core.DftConfig`):

    * ``config.warn`` turns use-without-def findings into Python
      warnings in addition to the report entries;
    * ``config.telemetry`` overrides the globally active session;
    * ``config.executor`` selects the dynamic-stage backend (serial
      when ``None``; see :mod:`repro.exec` — ``config.workers`` is
      *not* consulted here because building a process executor needs
      importable references the pipeline does not have; use
      :meth:`DftConfig.make_executor` or the CLI for that);
    * ``config.result_cache`` memoizes per-testcase dynamic results
      across runs — only testcases missing from the cache are executed;
      the merged result is identical either way because each testcase
      runs on its own fresh cluster;
    * ``config.engine`` selects the TDF execution engine for the
      dynamic-stage simulations (``"auto"``/``"block"``/``"interp"``;
      see :mod:`repro.tdf.engine`).  Engines are bit-identical, so
      coverage reports and cached dynamic results do not depend on the
      choice.

    The config is the only configuration path (API v1): the historical
    per-call keyword arguments were removed after their deprecation
    window and now raise ``TypeError``.
    """
    from ..analysis.cluster_analysis import analyze_cluster
    from ..instrument.runner import DynamicAnalyzer

    cfg = config if config is not None else DftConfig()
    tel = cfg.telemetry if cfg.telemetry is not None else get_telemetry()
    if not tel.enabled:
        # Private session: stage spans only, for the ``timings`` view.
        # Kernel-level hooks key off the *global* telemetry and stay off.
        tel = Telemetry()

    def counted_factory():
        t0 = time.perf_counter()
        cluster = cluster_factory()
        tel.metrics.counter("pipeline.cluster_builds").inc()
        tel.metrics.histogram("pipeline.cluster_build_seconds").observe(
            time.perf_counter() - t0
        )
        return cluster

    with tel.span("pipeline", system=suite.name, testcases=len(suite)):
        with tel.span("static") as span_static:
            static = analyze_cluster(counted_factory(), telemetry=tel)
        with tel.span("dynamic") as span_dynamic:
            dynamic = _run_dynamic(
                counted_factory, static, suite, cfg.warn, tel, cfg.executor,
                cfg.result_cache, cfg.engine, cfg.probe_store_spec(),
                cfg.batch_size, cfg.matcher,
            )
        with tel.span("coverage") as span_coverage:
            coverage = CoverageResult(static, dynamic)
            # Touch the aggregate numbers so the 'coverage' timing is honest.
            coverage.class_coverage()
    result = PipelineResult(
        static=static,
        dynamic=dynamic,
        coverage=coverage,
        spans={
            "static": span_static,
            "dynamic": span_dynamic,
            "coverage": span_coverage,
        },
        telemetry=tel,
    )
    _record_history(cfg, suite, result)
    return result


def _record_history(
    cfg: DftConfig, suite: TestSuite, result: PipelineResult
) -> None:
    """Append one ``run`` record to the history ledger (best-effort).

    History is an observability side channel: an unwritable ledger must
    never fail the analysis run itself, so I/O errors are swallowed
    (the CLI validates explicitly requested history dirs up front).
    """
    history = cfg.run_history()
    if history is None:
        return
    from ..obs.store import build_record

    record = build_record(
        "run",
        system=suite.name,
        fingerprint=result.static.fingerprint,
        config_hash=cfg.config_hash(),
        suite_names=[tc.name for tc in suite],
        coverage=result.coverage,
        telemetry=result.telemetry,
    )
    try:
        history.append(record)
    except OSError:
        pass


def _run_dynamic(
    cluster_factory: "ClusterFactory",
    static: "StaticAnalysisResult",
    suite: TestSuite,
    warn: bool,
    tel: Telemetry,
    executor: Optional["DynamicExecutor"],
    result_cache: Optional["DynamicResultCache"],
    engine: Optional[str] = "auto",
    probe_store=None,
    batch_size=None,
    matcher: str = "auto",
) -> "DynamicResult":
    """Execute the dynamic stage through the chosen backend and cache.

    Cached testcases are skipped entirely; the remainder goes through
    ``executor`` (or the serial runner).  The merged ``per_testcase``
    map always follows suite order, independent of backend, worker
    count and cache population.  ``batch_size`` is resolved against the
    *pending* population — cache hits never enter a lockstep batch.
    """
    from ..instrument.runner import DynamicAnalyzer, DynamicResult

    if executor is None:
        from ..exec.base import SerialExecutor

        executor = SerialExecutor()

    fingerprint = static.fingerprint
    cached = {}
    if result_cache is not None:
        for testcase in suite:
            hit = result_cache.get(fingerprint, testcase.name)
            if hit is not None:
                cached[testcase.name] = hit
        if tel.enabled and cached:
            tel.metrics.counter("exec.result_cache_hits").inc(len(cached))
    pending = [tc for tc in suite if tc.name not in cached]
    if pending:
        if tel.enabled and result_cache is not None:
            tel.metrics.counter("exec.result_cache_misses").inc(len(pending))
        pending_suite = TestSuite(suite.name, pending)
        from ..tdf.engine.batch import resolve_batch_size

        fresh = executor.run_suite(
            cluster_factory, static, pending_suite, warn=warn, telemetry=tel,
            engine=engine, probe_store=probe_store,
            batch_size=resolve_batch_size(batch_size, len(pending)),
            matcher=matcher,
        )
    else:
        fresh = DynamicResult()
    result = DynamicResult()
    for testcase in suite:
        match = cached.get(testcase.name)
        if match is None:
            match = fresh.per_testcase[testcase.name]
            if result_cache is not None:
                result_cache.put(fingerprint, testcase.name, match)
        result.per_testcase[testcase.name] = match
    return result
