"""Textual coverage reports and the unified report envelope.

Three textual report shapes, matching the paper's presentation:

* :func:`format_matrix` — the Table-I association/testcase matrix with
  ``x`` / ``-`` marks, grouped by class;
* :func:`format_summary` — totals, per-class percentages, criteria
  verdicts and the ranked list of missed associations;
* :func:`format_iteration_table` — the Table-II iteration rows
  (tests added vs. coverage growth).

Plus the **report envelope** (:func:`make_envelope` /
:func:`read_envelope`): one wrapper shape —
``{"schema", "config_hash", "fingerprint", "payload"}`` — around the
three machine-readable report schemas (``repro-dft-mutation/1``,
``repro-dft-generation/1``, ``repro-dft-history/1``).  The job service
returns envelopes verbatim from ``GET /v1/jobs/{id}/result``, so every
job kind has the same metadata header and a consumer can route on
``schema`` without probing the payload.  :func:`read_envelope` also
accepts the bare legacy documents (pre-envelope on-disk reports and
ledger records) and lifts them into the same view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from .associations import AssocClass
from .coverage import CoverageResult
from .criteria import detailed_status

#: The payload schema tags the envelope knows how to wrap.  (The
#: history tag lives under a ``format`` key in ledger records — see
#: :mod:`repro.obs.store.history` — which is why :func:`read_envelope`
#: checks both keys on legacy documents.)
KNOWN_PAYLOAD_SCHEMAS = (
    "repro-dft-mutation/1",
    "repro-dft-generation/1",
    "repro-dft-history/1",
)


@dataclass(frozen=True)
class ReportEnvelope:
    """The decoded view of an enveloped (or legacy bare) report."""

    schema: Optional[str]
    config_hash: Optional[str]
    fingerprint: Optional[str]
    payload: Dict[str, Any]
    #: ``False`` when :func:`read_envelope` lifted a bare legacy
    #: document instead of unwrapping a real envelope.
    enveloped: bool = True


def make_envelope(
    payload: Dict[str, Any],
    *,
    config_hash: Optional[str] = None,
    fingerprint: Optional[str] = None,
    schema: Optional[str] = None,
) -> Dict[str, Any]:
    """Wrap a report payload in the unified envelope.

    ``schema`` defaults to the payload's own tag (its ``schema`` key,
    or ``format`` for history records).  The payload is embedded
    verbatim — wrapping then :func:`read_envelope`-ing is lossless.
    """
    resolved = schema or payload.get("schema") or payload.get("format")
    return {
        "schema": resolved,
        "config_hash": config_hash,
        "fingerprint": fingerprint,
        "payload": payload,
    }


def is_envelope(doc: Any) -> bool:
    """Whether ``doc`` is an envelope (rather than a bare report)."""
    return (
        isinstance(doc, dict)
        and isinstance(doc.get("payload"), dict)
        and "schema" in doc
    )


def read_envelope(doc: Dict[str, Any]) -> ReportEnvelope:
    """Decode an envelope — or lift a bare legacy document into one.

    The compatibility path keeps every pre-envelope on-disk record
    readable: a bare mutation/generation report (top-level ``schema``)
    or history record (top-level ``format``) comes back with itself as
    the payload and its own metadata fields hoisted.
    """
    if not isinstance(doc, dict):
        raise ValueError(
            f"report document must be a mapping, got {type(doc).__name__}"
        )
    if is_envelope(doc):
        return ReportEnvelope(
            schema=doc.get("schema"),
            config_hash=doc.get("config_hash"),
            fingerprint=doc.get("fingerprint"),
            payload=doc["payload"],
            enveloped=True,
        )
    return ReportEnvelope(
        schema=doc.get("schema") or doc.get("format"),
        config_hash=doc.get("config_hash"),
        fingerprint=doc.get("fingerprint"),
        payload=doc,
        enveloped=False,
    )


def _pct(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.0f}"


def format_matrix(coverage: CoverageResult, max_rows: Optional[int] = None) -> str:
    """Render the Table-I style association/testcase matrix."""
    names = coverage.testcase_names
    lines: List[str] = []
    header = f"{'Static Pairs':55s} | " + " | ".join(f"{n:>6s}" for n in names)
    rule = "-" * len(header)
    current_class: Optional[AssocClass] = None
    count = 0
    for assoc, marks in coverage.matrix():
        if max_rows is not None and count >= max_rows:
            lines.append(f"... ({coverage.static_total - count} more rows)")
            break
        if assoc.klass is not current_class:
            current_class = assoc.klass
            lines.append(rule)
            lines.append(f"{current_class.value}")
            lines.append(header)
            lines.append(rule)
        row_marks = " | ".join(f"{'x' if m else '-':>6s}" for m in marks)
        lines.append(f"{str(assoc):55s} | {row_marks}")
        count += 1
    lines.append(rule)
    lines.append(
        "TC legend: (x) = data flow pair exercised, (-) = not exercised"
    )
    return "\n".join(lines)


def format_summary(
    coverage: CoverageResult,
    max_missed: int = 20,
    subsumption=None,
) -> str:
    """Render totals, per-class coverage, criteria and guidance.

    ``subsumption`` (a
    :class:`~repro.analysis.subsume.SubsumptionResult`, when given)
    adds the non-subsumed *frontier* counts per class: the reduced set
    of associations whose coverage guarantees the full set.
    """
    lines: List[str] = []
    lines.append(f"Static associations : {coverage.static_total}")
    lines.append(f"Exercised (dynamic) : {coverage.exercised_total}")
    lines.append(f"Overall coverage    : {coverage.overall_percent:.1f}%")
    lines.append("")
    lines.append("Per-class coverage:")
    frontier_counts = subsumption.counts() if subsumption is not None else {}
    for klass, cc in coverage.class_coverage().items():
        row = (
            f"  {klass.value:7s} {cc.covered:4d} / {cc.total:4d}  ({_pct(cc.percent)}%)"
        )
        if klass in frontier_counts:
            front, total = frontier_counts[klass]
            row += f"  [frontier {front}/{total}]"
        lines.append(row)
    if subsumption is not None:
        total = len(subsumption.associations)
        front = len(subsumption.frontier_keys)
        lines.append(
            f"  frontier (non-subsumed targets): {front} of {total} "
            f"associations"
        )
    lines.append("")
    lines.append("Criteria:")
    for status in detailed_status(coverage):
        verdict = "satisfied" if status.satisfied else "NOT satisfied"
        lines.append(
            f"  {str(status.criterion):13s} {verdict:14s} "
            f"[{status.covered}/{status.total}]"
        )
    warnings = coverage.dynamic.use_without_def()
    if warnings:
        lines.append("")
        lines.append("Use-without-def warnings (undefined behaviour):")
        for desc in warnings:
            lines.append(f"  {desc}")
    missed = coverage.missed()
    if missed:
        lines.append("")
        lines.append(
            f"Missed associations ({len(missed)}), ranked by class "
            f"(likeliest-feasible first):"
        )
        for assoc in missed[:max_missed]:
            lines.append(f"  [{assoc.klass.value:6s}] {assoc}")
        if len(missed) > max_missed:
            lines.append(f"  ... ({len(missed) - max_missed} more)")
    return "\n".join(lines)


def format_iteration_table(rows: Sequence["IterationRecord"]) -> str:  # noqa: F821
    """Render Table-II style iteration rows.

    ``rows`` are :class:`repro.core.workflow.IterationRecord` items.
    """
    lines: List[str] = []
    header = (
        f"{'Iter.':>5s} {'Tests':>6s} {'Static#':>8s} {'Dyn#':>6s} "
        f"{'S%':>5s} {'F%':>5s} {'PF%':>5s} {'PW%':>5s}  criteria"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        crits = ",".join(
            str(c) for c, ok in row.criteria.items() if ok and str(c).startswith("all-")
        )
        lines.append(
            f"{row.index:>5d} {row.tests:>6d} {row.static_total:>8d} "
            f"{row.exercised_total:>6d} "
            f"{_pct(row.class_percent.get(AssocClass.STRONG)):>5s} "
            f"{_pct(row.class_percent.get(AssocClass.FIRM)):>5s} "
            f"{_pct(row.class_percent.get(AssocClass.PFIRM)):>5s} "
            f"{_pct(row.class_percent.get(AssocClass.PWEAK)):>5s}  {crits}"
        )
    return "\n".join(lines)
