"""Unified run configuration for the DFT pipeline (:class:`DftConfig`).

PRs 1–4 grew the run-configuration surface one keyword at a time:
``run_dft`` took ``warn``/``telemetry``/``executor``/``result_cache``/
``engine``, :class:`~repro.core.workflow.IterativeCampaign` mirrored a
subset, the mutation executor added ``tolerance``/``budget_seconds``,
and ``cli.py`` re-plumbed the same flags per subcommand.  This module
consolidates all of it into one frozen dataclass:

* one object carries the execution engine, the worker fan-out, the
  cache switches, telemetry, warning behaviour, the oracle tolerance
  and the search/execution budgets;
* :meth:`DftConfig.from_args` derives it from an ``argparse`` namespace
  in a single place — every CLI subcommand shares the same flag
  plumbing;
* :meth:`DftConfig.to_json` / :meth:`DftConfig.from_json` round-trip
  the primitive fields, so a CLI ``--config`` file and a job spec
  submitted to the service share one serialization.

Since API v1 the config is the *only* configuration path: the
per-function legacy keyword arguments (deprecated through PR 5–9 with
a one-release window) are gone, and passing them raises ``TypeError``.

The dataclass is *frozen*: deriving a variant goes through
:meth:`DftConfig.replace`, so a config can be shared between a campaign
and its pipeline runs without aliasing surprises.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only imports avoid cycles
    from ..exec.base import DynamicExecutor
    from ..exec.cache import DynamicResultCache
    from ..obs import Telemetry

#: Fields that hold live runtime objects (executors, caches, telemetry
#: sessions).  They never serialize: a config file or a job spec
#: crossing a process boundary carries only the primitive knobs.
RUNTIME_FIELDS = ("executor", "result_cache", "telemetry")


@dataclass(frozen=True)
class DftConfig:
    """Every knob of a DFT pipeline / campaign / mutation / generation run.

    Field groups:

    execution
        ``engine`` — TDF execution engine (``"auto"``/``"interp"``/
        ``"block"``; engines are bit-identical).  ``workers`` — dynamic
        stage fan-out (``None`` = automatic heuristic, ``1`` = serial).
        ``executor`` — an explicit :class:`~repro.exec.DynamicExecutor`
        instance; when set it wins over ``workers``.  ``batch_size`` —
        lockstep multi-testcase batching in the block engine (``None``
        = off, ``"auto"`` = population-capped heuristic, ``N`` =
        explicit lockstep width); batched results are byte-identical to
        serial, so like ``workers`` it never enters the config hash.
        ``matcher`` — the def-use event-matching implementation
        (``"auto"``/``"scan"``/``"vector"``; see
        :func:`repro.instrument.matching.match_events`).  ``auto`` takes
        the vectorized columnar kernel when numpy is present and the
        probe buffer is a streaming columnar store, the per-event scan
        otherwise.  All paths are result-identical, so ``matcher`` never
        enters the config hash either.
    caches
        ``result_cache`` — an explicit per-testcase
        :class:`~repro.exec.DynamicResultCache` for ``run_dft``;
        ``reuse_dynamic_results`` — whether campaigns memoize
        per-testcase results across iterations; ``static_cache`` /
        ``cache_dir`` — static-analysis memoization switches.
    observability
        ``telemetry`` — an explicit session overriding the globally
        active one; ``warn`` — surface use-without-def findings as
        Python warnings.
    tolerances / budgets
        ``tolerance`` — absolute trace-divergence tolerance for
        differential oracles (mutation, generation acceptance);
        ``budget_seconds`` — wall-clock budget (per mutant, or for a
        whole generation run); ``budget_simulations`` — simulation-count
        budget for coverage-guided generation.
    determinism
        ``seed`` — the master seed for every seeded decision
        (mutant sampling, stimulus search).
    recording / history
        ``probe_store`` — the probe recording backend (``"memory"`` or
        ``"columnar"``; coverage results are identical either way);
        ``store_chunk_size`` / ``store_dir`` — columnar spill tuning;
        ``history_dir`` — when set, every run appends one record to the
        run-history ledger there; ``warm_start`` — let mutation and
        generation seed from the latest matching history record.
    """

    engine: str = "auto"
    workers: Optional[int] = 1
    batch_size: Any = None
    matcher: str = "auto"
    executor: Optional["DynamicExecutor"] = None
    result_cache: Optional["DynamicResultCache"] = None
    reuse_dynamic_results: bool = True
    static_cache: bool = True
    cache_dir: Optional[str] = None
    telemetry: Optional["Telemetry"] = None
    warn: bool = False
    tolerance: float = 1e-9
    budget_seconds: Optional[float] = None
    budget_simulations: Optional[int] = None
    seed: int = 0
    probe_store: str = "memory"
    store_chunk_size: Optional[int] = None
    store_dir: Optional[str] = None
    history_dir: Optional[str] = None
    warm_start: bool = False

    # -- derivation -----------------------------------------------------------

    def replace(self, **changes: Any) -> "DftConfig":
        """A copy with ``changes`` applied (the frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_args(
        cls, args: Any, base: Optional["DftConfig"] = None, **overrides: Any
    ) -> "DftConfig":
        """Build a config from an ``argparse`` namespace.

        Reads every recognised attribute that is present on ``args``
        (subcommands expose different subsets; absent attributes keep
        the dataclass default), then applies ``overrides``.  This is the
        single place CLI flags map onto run configuration — adding a
        flag means adding one line here instead of one per subcommand.

        ``base`` layers the flags on top of an existing config instead
        of the dataclass defaults — how ``--config FILE`` composes with
        explicit flags (the CLI registers config-mapped flags with
        ``argparse.SUPPRESS`` defaults, so only flags the user actually
        passed appear on ``args`` and override the file).
        """
        field_map = {
            "engine": "engine",
            "workers": "workers",
            "batch_size": "batch_size",
            "matcher": "matcher",
            "seed": "seed",
            "tolerance": "tolerance",
            "budget_seconds": "budget_seconds",
            "budget_simulations": "budget_simulations",
            "cache_dir": "cache_dir",
            "warn": "warn",
            "probe_store": "probe_store",
            "store_chunk_size": "store_chunk_size",
            "store_dir": "store_dir",
            "warm_start": "warm_start",
        }
        values: dict = {}
        for attr, fld in field_map.items():
            if hasattr(args, attr):
                values[fld] = getattr(args, attr)
        if getattr(args, "no_static_cache", False):
            values["static_cache"] = False
        if getattr(args, "no_result_cache", False):
            values["reuse_dynamic_results"] = False
        values.update(overrides)
        if base is not None:
            return base.replace(**values)
        return cls(**values)

    # -- serialization --------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """The primitive fields as a JSON-ready dict.

        Runtime-object fields (:data:`RUNTIME_FIELDS`) are excluded —
        they cannot cross a file or a process boundary.  The output
        round-trips through :meth:`from_json`, which is the contract a
        CLI ``--config`` file and a service job spec both rely on.
        """
        out: Dict[str, Any] = {}
        for fld in dataclasses.fields(self):
            if fld.name in RUNTIME_FIELDS:
                continue
            out[fld.name] = getattr(self, fld.name)
        return out

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "DftConfig":
        """Rebuild a config from a :meth:`to_json` dict.

        Unknown keys and runtime-object keys raise :class:`ValueError`
        with a one-line message naming them — a typo in a config file
        must not silently run with defaults.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"config document must be a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)} - set(RUNTIME_FIELDS)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown config field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**dict(data))

    @classmethod
    def file_overrides(cls, path: str) -> Dict[str, Any]:
        """The validated field dict a ``--config`` file provides.

        ``*.toml`` parses as TOML, anything else as JSON.  Unlike
        :meth:`from_file`, this returns only the fields the file
        actually sets — the CLI layers them *between* per-subcommand
        defaults and explicit flags, so absent fields keep the
        subcommand's default rather than the dataclass's.  Parse and
        validation errors raise :class:`ValueError` with the path in a
        one-line message (the CLI turns that into a clean exit 1).
        """
        import json
        import os

        expanded = os.path.expanduser(path)
        try:
            if expanded.endswith(".toml"):
                import tomllib

                with open(expanded, "rb") as handle:
                    data = tomllib.load(handle)
            else:
                with open(expanded, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
        except OSError as exc:
            raise ValueError(f"cannot read config file {path!r}: {exc}") from None
        except Exception as exc:
            raise ValueError(f"cannot parse config file {path!r}: {exc}") from None
        try:
            cls.from_json(data)  # field-name and type validation
        except ValueError as exc:
            raise ValueError(f"config file {path!r}: {exc}") from None
        return dict(data)

    @classmethod
    def from_file(cls, path: str) -> "DftConfig":
        """Load a config from a TOML or JSON file (see
        :meth:`file_overrides`); absent fields keep dataclass defaults."""
        return cls.from_json(cls.file_overrides(path))

    # -- workers / executor resolution ---------------------------------------

    def resolved_workers(self, suite_len: int) -> int:
        """The effective worker count for a ``suite_len``-testcase run.

        An explicit ``workers`` value wins; ``None`` is *auto*: serial
        when the host has a single CPU (a process pool only adds
        pickling overhead) or the suite has fewer than two testcases,
        else one worker per CPU capped at the suite size.  The auto
        decision is recorded on the ``cli.auto_workers`` telemetry
        gauge with its reason.
        """
        if self.workers is not None:
            return self.workers
        import os

        cpus = os.cpu_count() or 1
        if cpus <= 1:
            chosen, reason = 1, "single_cpu"
        elif suite_len < 2:
            chosen, reason = 1, "small_suite"
        else:
            chosen, reason = min(cpus, suite_len), "one_per_cpu"
        from ..obs import get_telemetry

        tel = self.telemetry if self.telemetry is not None else get_telemetry()
        if tel.enabled:
            tel.metrics.gauge("cli.auto_workers", reason=reason).set(chosen)
        return chosen

    def make_executor(
        self,
        factory_ref: Optional[str],
        suite_ref: Optional[str],
        suite_len: int,
        suite_args: tuple = (),
    ) -> Optional["DynamicExecutor"]:
        """The dynamic-stage backend this config implies.

        An explicit ``executor`` wins.  Otherwise ``workers`` (resolved
        through the auto heuristic) selects a
        :class:`~repro.exec.ProcessExecutor` built from the importable
        references — or ``None`` (the serial default) when the count is
        1 or no references are available.
        """
        if self.executor is not None:
            return self.executor
        workers = self.resolved_workers(suite_len)
        if workers <= 1 or not factory_ref or not suite_ref:
            return None
        from ..exec import ProcessExecutor

        return ProcessExecutor(
            factory_ref, suite_ref, workers, suite_args=suite_args
        )

    # -- cache application ----------------------------------------------------

    def apply_static_cache(self) -> None:
        """Apply ``static_cache`` / ``cache_dir`` to the process default.

        The cache layer itself treats disk I/O as best-effort (a broken
        cache must never break an analysis run), so an unusable
        ``cache_dir`` would otherwise be swallowed silently.  The user
        asked for persistence explicitly — validate here and fail with
        a one-line :class:`OSError` instead.
        """
        import os

        from ..analysis import get_default_cache

        cache = get_default_cache()
        if not self.static_cache:
            cache.enabled = False
        if self.cache_dir:
            expanded = os.path.expanduser(self.cache_dir)
            try:
                os.makedirs(expanded, exist_ok=True)
            except OSError as exc:
                raise OSError(
                    f"--cache-dir {self.cache_dir!r} is not usable: {exc}"
                ) from None
            if not os.path.isdir(expanded) or not os.access(expanded, os.W_OK):
                raise OSError(
                    f"--cache-dir {self.cache_dir!r} is not a writable directory"
                )
            cache.set_disk_dir(self.cache_dir)

    # -- recording / history ---------------------------------------------------

    def config_hash(self) -> str:
        """Short stable hash of the result-shaping knobs.

        Only fields that can change a run's *outcome* participate
        (engine choice, warning mode, oracle tolerance, budgets, seed);
        fan-out and cache switches don't — two runs differing only in
        ``workers`` hash identically, and history diffs treat them as
        the same configuration.
        """
        import hashlib

        payload = "|".join(
            str(v)
            for v in (
                self.engine,
                self.warn,
                self.tolerance,
                self.budget_seconds,
                self.budget_simulations,
                self.seed,
            )
        )
        return hashlib.sha1(payload.encode()).hexdigest()[:12]

    def probe_store_spec(self):
        """The :class:`~repro.obs.store.ProbeStoreSpec` this config
        implies, or ``None`` for the in-memory default."""
        if self.probe_store == "memory":
            return None
        from ..obs.store import ProbeStoreSpec

        return ProbeStoreSpec(
            kind=self.probe_store,
            chunk_size=self.store_chunk_size,
            spill_dir=self.store_dir,
        )

    def run_history(self):
        """The :class:`~repro.obs.store.RunHistory` ledger this config
        points at, or ``None`` when history recording is off."""
        if not self.history_dir:
            return None
        from ..obs.store import RunHistory

        return RunHistory(self.history_dir)


