"""Data-flow associations for TDF models (paper §III-B, §IV-B).

A *def-use association* is the ordered tuple ``(v, d, dm, u, um)``: for
a variable ``v`` there is a static path from the definition ``d`` in TDF
model ``dm`` to the use ``u`` in model ``um`` without a redefinition of
``v`` in between (a *du-path*).  The paper classifies associations into
four disjoint classes:

``STRONG``
    (a) ``v`` is an output port of ``dm`` and a du-path exists between
    ``dm`` and ``um`` (direct connection), or (b) ``v`` is local to the
    model (``dm == um``) and *every* static path between ``d`` and ``u``
    is a du-path.
``FIRM``
    ``v`` is local to the model and at least one static path between
    ``d`` and ``u`` is *not* a du-path.
``PFIRM``
    ``v`` is an output port and at least one static path to ``um`` is
    not a du-path — the original and a redefined branch (through a
    gain/delay/buffer library element) both arrive at ``um``.
``PWEAK``
    ``v`` is an output port and no du-path exists — every branch to
    ``um`` passes a redefining element.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


#: The identity tuple ``(var, def_model, def_line, use_model, use_line)``
#: joining static associations with dynamically exercised pairs.
PairKey = Tuple[str, str, int, str, int]


class AssocClass(enum.Enum):
    """The four TDF-specific association classes (ordered by strength)."""

    STRONG = "Strong"
    FIRM = "Firm"
    PFIRM = "PFirm"
    PWEAK = "PWeak"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class VarScope(enum.Enum):
    """Where the associated variable lives."""

    LOCAL = "local"        #: a local variable of processing()
    MEMBER = "member"      #: a module member (persists across activations)
    PORT = "port"          #: a TDF port (cluster-level signal flow)


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A (model, line) anchor.

    ``model`` is the TDF model name for statements inside a model's
    processing source, or the *cluster* name for netlist (bind
    statement) anchors of opaque library components.  ``file`` is kept
    for reporting but excluded from equality so that associations match
    across instrumented/uninstrumented copies of the same source.
    """

    model: str
    line: int
    file: str = field(default="", compare=False)

    def __str__(self) -> str:
        return f"{self.line}, {self.model}"


@dataclass(frozen=True)
class Association:
    """One def-use association ``(v, d, dm, u, um)`` with its class."""

    var: str
    definition: SourceLocation
    use: SourceLocation
    klass: AssocClass
    scope: VarScope

    @property
    def key(self) -> Tuple[str, str, int, str, int]:
        """The identity tuple used to join static and dynamic results."""
        return (
            self.var,
            self.definition.model,
            self.definition.line,
            self.use.model,
            self.use.line,
        )

    @property
    def def_model(self) -> str:
        """Defining model ``dm``."""
        return self.definition.model

    @property
    def use_model(self) -> str:
        """Using model ``um``."""
        return self.use.model

    def __str__(self) -> str:
        return (
            f"({self.var}, {self.definition.line}, {self.definition.model}, "
            f"{self.use.line}, {self.use.model})"
        )


@dataclass(frozen=True)
class Definition:
    """A definition site of a variable (used by the all-defs criterion)."""

    var: str
    location: SourceLocation
    scope: VarScope

    @property
    def key(self) -> Tuple[str, str, int]:
        """Identity tuple ``(var, model, line)``."""
        return (self.var, self.location.model, self.location.line)

    def __str__(self) -> str:
        return f"def({self.var} @ {self.location})"


@dataclass(frozen=True)
class ExercisedPair:
    """A def-use pair observed at runtime by the dynamic analysis."""

    var: str
    def_model: str
    def_line: int
    use_model: str
    use_line: int
    testcase: str

    @property
    def key(self) -> Tuple[str, str, int, str, int]:
        """Identity tuple matching :attr:`Association.key`."""
        return (self.var, self.def_model, self.def_line, self.use_model, self.use_line)
