"""The paper's primary contribution: TDF-specific data-flow testing.

Association model and classification (paper §IV-B), coverage criteria
(§IV-B2), coverage computation combining static and dynamic results
(Fig. 3), reporting, and the iterative testsuite-refinement workflow
(§VI).
"""

from .associations import (
    AssocClass,
    Association,
    Definition,
    ExercisedPair,
    SourceLocation,
    VarScope,
)
from .config import DftConfig
from .coverage import ClassCoverage, CoverageResult
from .database import CoverageDatabase, coverage_to_dict, universe_fingerprint
from .criteria import Criterion, CriterionStatus, detailed_status, evaluate_all, satisfied
from .pipeline import PipelineResult, run_dft
from .report import (
    ReportEnvelope,
    format_iteration_table,
    format_matrix,
    format_summary,
    is_envelope,
    make_envelope,
    read_envelope,
)
from .workflow import GenerationCampaign, IterationRecord, IterativeCampaign

__all__ = [
    "AssocClass",
    "Association",
    "ClassCoverage",
    "CoverageDatabase",
    "CoverageResult",
    "Criterion",
    "CriterionStatus",
    "Definition",
    "DftConfig",
    "GenerationCampaign",
    "ExercisedPair",
    "IterationRecord",
    "IterativeCampaign",
    "PipelineResult",
    "ReportEnvelope",
    "SourceLocation",
    "VarScope",
    "coverage_to_dict",
    "detailed_status",
    "evaluate_all",
    "format_iteration_table",
    "format_matrix",
    "format_summary",
    "is_envelope",
    "make_envelope",
    "read_envelope",
    "run_dft",
    "satisfied",
    "universe_fingerprint",
]
