"""Coverage persistence and merging.

Real verification campaigns accumulate coverage across many tool runs
(regressions, nightly suites, machines).  :class:`CoverageDatabase`
stores the exercised pair keys per testcase together with a fingerprint
of the static universe, serialises to JSON, and merges databases from
separate runs — refusing to merge results obtained against a different
design (a changed static universe would make pair keys meaningless).

:func:`coverage_to_dict` exports a full :class:`CoverageResult` (static
universe + per-testcase marks + criteria verdicts) for downstream
dashboards/CI.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Optional, Set, TYPE_CHECKING, Tuple

from .associations import AssocClass
from .criteria import detailed_status

if TYPE_CHECKING:  # pragma: no cover - typing-only import avoids a cycle
    from ..analysis.cluster_analysis import StaticAnalysisResult
    from .coverage import CoverageResult

PairKey = Tuple[str, str, int, str, int]


def universe_fingerprint(static: "StaticAnalysisResult") -> str:
    """Stable hash of the static association universe."""
    payload = "\n".join(
        "|".join(map(str, a.key)) + "|" + a.klass.value
        for a in sorted(static.associations, key=lambda a: a.key)
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class CoverageDatabase:
    """Accumulated exercised pairs, keyed by testcase name."""

    FORMAT = "repro-coverage-db/1"

    def __init__(self, cluster: str, fingerprint: str) -> None:
        self.cluster = cluster
        self.fingerprint = fingerprint
        self._per_testcase: Dict[str, Set[PairKey]] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_coverage(cls, coverage: "CoverageResult") -> "CoverageDatabase":
        """Seed a database from one pipeline run."""
        db = cls(coverage.static.cluster, universe_fingerprint(coverage.static))
        for name, match in coverage.dynamic.per_testcase.items():
            db.record(name, match.pairs)
        return db

    def record(self, testcase: str, pairs: Iterable[PairKey]) -> None:
        """Add (or extend) the exercised pairs of ``testcase``."""
        bucket = self._per_testcase.setdefault(testcase, set())
        bucket.update(tuple(p) for p in pairs)

    # -- queries ----------------------------------------------------------------

    @property
    def testcases(self) -> List[str]:
        """Recorded testcase names, sorted."""
        return sorted(self._per_testcase)

    def pairs_of(self, testcase: str) -> Set[PairKey]:
        """Exercised pairs of one testcase."""
        return set(self._per_testcase.get(testcase, set()))

    def exercised_keys(self) -> Set[PairKey]:
        """Union over all testcases."""
        keys: Set[PairKey] = set()
        for pairs in self._per_testcase.values():
            keys |= pairs
        return keys

    def coverage_against(self, static: "StaticAnalysisResult") -> Tuple[int, int]:
        """``(covered, total)`` against a static universe.

        Raises :class:`ValueError` when the universe fingerprint does
        not match — the recorded keys belong to another design version.
        """
        fp = universe_fingerprint(static)
        if fp != self.fingerprint:
            raise ValueError(
                f"coverage database was recorded against universe "
                f"{self.fingerprint}, not {fp}; re-run the static analysis"
            )
        exercised = self.exercised_keys()
        covered = sum(1 for a in static.associations if a.key in exercised)
        return covered, len(static.associations)

    # -- merging -------------------------------------------------------------------

    def merge(self, other: "CoverageDatabase") -> None:
        """Fold ``other`` into this database (same design required)."""
        if other.fingerprint != self.fingerprint:
            raise ValueError(
                f"cannot merge coverage of universe {other.fingerprint} "
                f"into universe {self.fingerprint}"
            )
        for name, pairs in other._per_testcase.items():
            self.record(name, pairs)

    # -- (de)serialisation ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-ready)."""
        return {
            "format": self.FORMAT,
            "cluster": self.cluster,
            "fingerprint": self.fingerprint,
            "testcases": {
                name: sorted(list(map(list, pairs)))
                for name, pairs in self._per_testcase.items()
            },
        }

    def to_json(self) -> str:
        """JSON text form."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CoverageDatabase":
        """Rebuild from :meth:`to_dict` output."""
        if data.get("format") != cls.FORMAT:
            raise ValueError(f"unsupported coverage-db format: {data.get('format')!r}")
        db = cls(data["cluster"], data["fingerprint"])
        for name, pairs in data["testcases"].items():
            db.record(name, (tuple(p) for p in pairs))
        return db

    @classmethod
    def from_json(cls, text: str) -> "CoverageDatabase":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the JSON form to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "CoverageDatabase":
        """Read a database written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_json(fh.read())


def coverage_to_dict(coverage: "CoverageResult") -> Dict[str, Any]:
    """Full machine-readable export of one coverage result."""
    classes = coverage.class_coverage()
    return {
        "cluster": coverage.static.cluster,
        "fingerprint": universe_fingerprint(coverage.static),
        "totals": {
            "static": coverage.static_total,
            "exercised": coverage.exercised_total,
            "percent": round(coverage.overall_percent, 2),
        },
        "classes": {
            klass.value: {
                "total": cc.total,
                "covered": cc.covered,
                "percent": None if cc.percent is None else round(cc.percent, 2),
            }
            for klass, cc in classes.items()
        },
        "criteria": {
            str(status.criterion): {
                "satisfied": status.satisfied,
                "covered": status.covered,
                "total": status.total,
            }
            for status in detailed_status(coverage)
        },
        "use_without_def": coverage.dynamic.use_without_def(),
        "associations": [
            {
                "var": a.var,
                "def": {"model": a.definition.model, "line": a.definition.line},
                "use": {"model": a.use.model, "line": a.use.line},
                "class": a.klass.value,
                "scope": a.scope.value,
                "covered_by": coverage.testcases_covering(a),
            }
            for a in coverage.associations
        ],
    }
