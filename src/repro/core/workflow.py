"""Iterative testsuite refinement (paper §VI, Table II).

Both case studies start with an initial testbench and add testcases in
iterations, guided by the ranked missed-association report, until the
coverage goal is met.  :class:`IterativeCampaign` automates that loop:
iteration 0 runs the base suite, each further iteration appends a batch
of testcases and re-runs the pipeline, and the records line up exactly
with the Table-II columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..testing.testcase import TestCase, TestSuite

if TYPE_CHECKING:  # pragma: no cover - typing-only import avoids a cycle
    from ..exec.base import DynamicExecutor
    from ..instrument.runner import ClusterFactory
from .associations import AssocClass
from .coverage import CoverageResult
from .criteria import Criterion, evaluate_all
from .pipeline import PipelineResult, run_dft


@dataclass
class IterationRecord:
    """One Table-II row."""

    index: int
    tests: int
    static_total: int
    exercised_total: int
    class_percent: Dict[AssocClass, Optional[float]]
    criteria: Dict[Criterion, bool]
    coverage: CoverageResult = field(repr=False, compare=False, default=None)  # type: ignore[assignment]

    @property
    def overall_percent(self) -> float:
        """Exercised fraction of the association universe."""
        if self.static_total == 0:
            return 100.0
        return 100.0 * self.exercised_total / self.static_total


class IterativeCampaign:
    """Runs the grow-the-testsuite loop and records Table-II rows."""

    def __init__(
        self,
        cluster_factory: "ClusterFactory",
        base_suite: Sequence[TestCase],
        name: str = "campaign",
        executor: Optional["DynamicExecutor"] = None,
        reuse_dynamic_results: bool = True,
        engine: Optional[str] = "auto",
    ) -> None:
        self.cluster_factory = cluster_factory
        self.name = name
        self._batches: List[List[TestCase]] = [list(base_suite)]
        #: Dynamic-stage backend handed to every pipeline run (serial
        #: when None; see :mod:`repro.exec`).
        self.executor = executor
        #: Iteration *k* re-runs every testcase of iterations ``0..k-1``
        #: on a fresh cluster each — deterministic, so their per-testcase
        #: results are memoized across iterations unless disabled.
        self.reuse_dynamic_results = reuse_dynamic_results
        #: TDF execution engine for the dynamic stage (engines are
        #: bit-identical, so the recorded rows do not depend on it).
        self.engine = engine

    def add_iteration(self, testcases: Sequence[TestCase]) -> None:
        """Schedule a batch of additional testcases as the next iteration."""
        if not testcases:
            raise ValueError("an iteration must add at least one testcase")
        self._batches.append(list(testcases))

    @property
    def iteration_count(self) -> int:
        """Number of iterations (including iteration 0)."""
        return len(self._batches)

    def suite_for(self, iteration: int) -> TestSuite:
        """The cumulative suite executed at ``iteration``."""
        if not 0 <= iteration < len(self._batches):
            raise IndexError(f"iteration {iteration} out of range")
        suite = TestSuite(f"{self.name}-it{iteration}")
        for batch in self._batches[: iteration + 1]:
            suite.extend(batch)
        return suite

    def run(self) -> List[IterationRecord]:
        """Execute every iteration and return the Table-II records."""
        from ..exec.cache import DynamicResultCache

        result_cache = DynamicResultCache() if self.reuse_dynamic_results else None
        records: List[IterationRecord] = []
        for index in range(len(self._batches)):
            suite = self.suite_for(index)
            result: PipelineResult = run_dft(
                self.cluster_factory,
                suite,
                executor=self.executor,
                result_cache=result_cache,
                engine=self.engine,
            )
            coverage = result.coverage
            records.append(
                IterationRecord(
                    index=index,
                    tests=len(suite),
                    static_total=coverage.static_total,
                    exercised_total=coverage.exercised_total,
                    class_percent={
                        klass: cc.percent
                        for klass, cc in coverage.class_coverage().items()
                    },
                    criteria=evaluate_all(coverage),
                    coverage=coverage,
                )
            )
        return records
