"""Iterative testsuite refinement (paper §VI, Table II).

Both case studies start with an initial testbench and add testcases in
iterations, guided by the ranked missed-association report, until the
coverage goal is met.  :class:`IterativeCampaign` automates that loop:
iteration 0 runs the base suite, each further iteration appends a batch
of testcases and re-runs the pipeline, and the records line up exactly
with the Table-II columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..tdf.errors import TdfError
from ..testing.testcase import TestCase, TestSuite

if TYPE_CHECKING:  # pragma: no cover - typing-only import avoids a cycle
    from ..exec.base import DynamicExecutor
    from ..generation.generate import GenerationResult
    from ..generation.space import ParameterSpace
    from ..generation.search import SearchStrategy
    from ..instrument.runner import ClusterFactory
from .associations import AssocClass
from .config import DftConfig
from .coverage import CoverageResult
from .criteria import Criterion, evaluate_all
from .pipeline import PipelineResult, run_dft


@dataclass
class IterationRecord:
    """One Table-II row."""

    index: int
    tests: int
    static_total: int
    exercised_total: int
    class_percent: Dict[AssocClass, Optional[float]]
    criteria: Dict[Criterion, bool]
    coverage: CoverageResult = field(repr=False, compare=False, default=None)  # type: ignore[assignment]

    @property
    def overall_percent(self) -> float:
        """Exercised fraction of the association universe."""
        if self.static_total == 0:
            return 100.0
        return 100.0 * self.exercised_total / self.static_total


class IterativeCampaign:
    """Runs the grow-the-testsuite loop and records Table-II rows."""

    def __init__(
        self,
        cluster_factory: "ClusterFactory",
        base_suite: Sequence[TestCase],
        name: str = "campaign",
        config: Optional[DftConfig] = None,
    ) -> None:
        self.cluster_factory = cluster_factory
        self.name = name
        self._batches: List[List[TestCase]] = [list(base_suite)]
        #: The unified run configuration (see :class:`repro.DftConfig`)
        #: — the only configuration path since API v1.  The same-named
        #: ``executor``/``reuse_dynamic_results``/``engine`` properties
        #: below stay writable for callers that tweak a built campaign.
        self.config = config if config is not None else DftConfig()

    # -- backward-compatible config views -----------------------------------

    @property
    def executor(self) -> Optional["DynamicExecutor"]:
        """Dynamic-stage backend handed to every pipeline run (serial
        when None; see :mod:`repro.exec`)."""
        return self.config.executor

    @executor.setter
    def executor(self, value: Optional["DynamicExecutor"]) -> None:
        self.config = self.config.replace(executor=value)

    @property
    def reuse_dynamic_results(self) -> bool:
        """Iteration *k* re-runs every testcase of iterations ``0..k-1``
        on a fresh cluster each — deterministic, so their per-testcase
        results are memoized across iterations unless disabled."""
        return self.config.reuse_dynamic_results

    @reuse_dynamic_results.setter
    def reuse_dynamic_results(self, value: bool) -> None:
        self.config = self.config.replace(reuse_dynamic_results=value)

    @property
    def engine(self) -> Optional[str]:
        """TDF execution engine for the dynamic stage (engines are
        bit-identical, so the recorded rows do not depend on it)."""
        return self.config.engine

    @engine.setter
    def engine(self, value: Optional[str]) -> None:
        self.config = self.config.replace(engine=value)

    def add_iteration(self, testcases: Sequence[TestCase]) -> None:
        """Schedule a batch of additional testcases as the next iteration."""
        if not testcases:
            raise ValueError("an iteration must add at least one testcase")
        self._batches.append(list(testcases))

    @property
    def iteration_count(self) -> int:
        """Number of iterations (including iteration 0)."""
        return len(self._batches)

    def suite_for(self, iteration: int) -> TestSuite:
        """The cumulative suite executed at ``iteration``."""
        if not 0 <= iteration < len(self._batches):
            raise TdfError(
                f"iteration {iteration} out of range: campaign "
                f"{self.name!r} has iterations 0..{len(self._batches) - 1}"
            )
        suite = TestSuite(f"{self.name}-it{iteration}")
        for batch in self._batches[: iteration + 1]:
            suite.extend(batch)
        return suite

    def run(self) -> List[IterationRecord]:
        """Execute every iteration and return the Table-II records."""
        from ..exec.cache import DynamicResultCache

        cfg = self.config
        if cfg.result_cache is None and cfg.reuse_dynamic_results:
            cfg = cfg.replace(result_cache=DynamicResultCache())
        elif not cfg.reuse_dynamic_results:
            cfg = cfg.replace(result_cache=None)
        # One canonical history record for the whole campaign; the inner
        # pipeline runs must not each add a "run" entry of their own.
        inner_cfg = cfg.replace(history_dir=None)
        records: List[IterationRecord] = []
        result: Optional[PipelineResult] = None
        suite: Optional[TestSuite] = None
        for index in range(len(self._batches)):
            suite = self.suite_for(index)
            result = run_dft(self.cluster_factory, suite, inner_cfg)
            coverage = result.coverage
            records.append(_record_for(index, suite, coverage))
        self._record_history(cfg, suite, result, records)
        return records

    def _record_history(
        self,
        cfg: DftConfig,
        suite: Optional[TestSuite],
        result: Optional[PipelineResult],
        records: List[IterationRecord],
    ) -> None:
        """Append one ``campaign`` record (final-iteration coverage plus
        the per-iteration trajectory) to the history ledger."""
        history = cfg.run_history()
        if history is None or result is None or suite is None:
            return
        from ..obs.store import build_record

        record = build_record(
            "campaign",
            system=self.name,
            fingerprint=result.static.fingerprint,
            config_hash=cfg.config_hash(),
            suite_names=[tc.name for tc in suite],
            coverage=result.coverage,
            telemetry=result.telemetry,
            extra={
                "campaign": {
                    "iterations": len(records),
                    "trajectory": [
                        {
                            "index": rec.index,
                            "tests": rec.tests,
                            "exercised": rec.exercised_total,
                            "percent": round(rec.overall_percent, 2),
                        }
                        for rec in records
                    ],
                }
            },
        )
        try:
            history.append(record)
        except OSError:
            pass


def _record_for(
    index: int, suite: TestSuite, coverage: CoverageResult
) -> IterationRecord:
    """One Table-II row from a pipeline run (shared by both campaigns)."""
    return IterationRecord(
        index=index,
        tests=len(suite),
        static_total=coverage.static_total,
        exercised_total=coverage.exercised_total,
        class_percent={
            klass: cc.percent for klass, cc in coverage.class_coverage().items()
        },
        criteria=evaluate_all(coverage),
        coverage=coverage,
    )


class GenerationCampaign:
    """One coverage-guided generation run, framed as a campaign.

    The search-based sibling of :class:`IterativeCampaign`: instead of
    hand-written refinement batches, the "iteration 1" testcases are
    *synthesized* by :func:`repro.generation.generate_suite`.  The
    campaign view adds the Table-II record pair (before/after), so
    generated refinements drop into every report that consumes
    :class:`IterationRecord` rows.
    """

    def __init__(
        self,
        cluster_factory: "ClusterFactory",
        base_suite: Sequence[TestCase],
        system: str,
        name: str = "generation",
        config: Optional[DftConfig] = None,
        *,
        factory_ref: Optional[str] = None,
        suite_ref: Optional[str] = None,
        space: Optional["ParameterSpace"] = None,
        strategy: "str | SearchStrategy | None" = None,
        target_classes: Optional[Sequence[AssocClass]] = None,
    ) -> None:
        self.cluster_factory = cluster_factory
        self.base_suite = list(base_suite)
        self.system = system
        self.name = name
        #: The unified run configuration (see :class:`repro.DftConfig`):
        #: ``seed`` drives the search, ``budget_simulations`` /
        #: ``budget_seconds`` bound it, ``workers`` fans candidate
        #: batches out, ``engine`` selects the simulation engine.
        self.config = config if config is not None else DftConfig()
        self.factory_ref = factory_ref
        self.suite_ref = suite_ref
        self.space = space
        self.strategy = strategy
        self.target_classes = target_classes
        #: The last :class:`~repro.generation.GenerationResult` (after
        #: :meth:`run`).
        self.result: Optional["GenerationResult"] = None

    def run(self) -> List[IterationRecord]:
        """Generate, then return the before/after Table-II record pair."""
        from ..generation.generate import DEFAULT_TARGET_CLASSES, generate_suite

        kwargs = dict(
            factory_ref=self.factory_ref,
            suite_ref=self.suite_ref,
            space=self.space,
            strategy=self.strategy,
        )
        if self.target_classes is not None:
            kwargs["target_classes"] = tuple(self.target_classes)
        base = TestSuite(self.name, self.base_suite)
        self.result = generate_suite(
            self.cluster_factory, base, self.system, self.config, **kwargs
        )
        before = TestSuite(f"{self.name}-it0", self.base_suite)
        return [
            _record_for(0, before, self.result.coverage_before),
            _record_for(1, self.result.suite, self.result.coverage_after),
        ]
