"""Coverage computation: joining static and dynamic results (Fig. 3).

The evaluation stage intersects the statically identified association
universe with the dynamically exercised pairs, yielding per-class
coverage, the per-testcase exercise matrix (the paper's Table I), and
the list of missed associations that guides testcase addition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, TYPE_CHECKING, Tuple

from .associations import AssocClass, Association, Definition

if TYPE_CHECKING:  # pragma: no cover - typing-only imports avoid a cycle
    from ..analysis.cluster_analysis import StaticAnalysisResult
    from ..instrument.runner import DynamicResult


@dataclass(frozen=True)
class ClassCoverage:
    """Coverage of one association class."""

    klass: AssocClass
    total: int
    covered: int

    @property
    def percent(self) -> Optional[float]:
        """Coverage in percent, or ``None`` when the class is empty.

        The paper prints ``0`` for an empty class column (window lifter
        has no PFirm associations); report formatting handles that.
        """
        if self.total == 0:
            return None
        return 100.0 * self.covered / self.total

    @property
    def complete(self) -> bool:
        """True when every association of the class is covered (also for
        empty classes — an ``all-X`` criterion over nothing is satisfied)."""
        return self.covered == self.total


class CoverageResult:
    """The combined static + dynamic coverage outcome."""

    def __init__(self, static: "StaticAnalysisResult", dynamic: "DynamicResult") -> None:
        self.static = static
        self.dynamic = dynamic
        self._exercised_keys = dynamic.exercised_keys()
        self._static_keys = {a.key for a in static.associations}

    # -- raw queries ---------------------------------------------------------

    @property
    def associations(self) -> List[Association]:
        """The static association universe."""
        return self.static.associations

    @property
    def testcase_names(self) -> List[str]:
        """Executed testcases, in suite order."""
        return list(self.dynamic.per_testcase.keys())

    def is_covered(self, assoc: Association) -> bool:
        """Whether at least one testcase exercised ``assoc``."""
        return assoc.key in self._exercised_keys

    def testcases_covering(self, assoc: Association) -> List[str]:
        """Names of the testcases that exercised ``assoc``."""
        return [
            name
            for name, match in self.dynamic.per_testcase.items()
            if assoc.key in match.pairs
        ]

    # -- aggregate numbers (Table II columns) ------------------------------------

    @property
    def static_total(self) -> int:
        """Number of statically identified associations ("Static #")."""
        return len(self.static.associations)

    @property
    def exercised_total(self) -> int:
        """Number of static associations exercised ("Dynamic T #")."""
        return sum(1 for a in self.static.associations if self.is_covered(a))

    @property
    def overall_percent(self) -> float:
        """Exercised fraction of the whole association universe."""
        if not self.static.associations:
            return 100.0
        return 100.0 * self.exercised_total / self.static_total

    def class_coverage(self) -> Dict[AssocClass, ClassCoverage]:
        """Per-class totals and covered counts."""
        totals = {klass: 0 for klass in AssocClass}
        covered = {klass: 0 for klass in AssocClass}
        for assoc in self.static.associations:
            totals[assoc.klass] += 1
            if self.is_covered(assoc):
                covered[assoc.klass] += 1
        return {
            klass: ClassCoverage(klass, totals[klass], covered[klass])
            for klass in AssocClass
        }

    # -- all-defs support ------------------------------------------------------------

    def definitions_with_associations(self) -> List[Definition]:
        """Definitions that have at least one association (the all-defs
        universe; a definition whose value never flows anywhere cannot
        be covered by any testsuite)."""
        def_keys = {
            (a.var, a.definition.model, a.definition.line)
            for a in self.static.associations
        }
        return [d for d in self.static.definitions if d.key in def_keys]

    def covered_definitions(self) -> List[Definition]:
        """Definitions with at least one exercised association."""
        covered_def_keys = {
            (a.var, a.definition.model, a.definition.line)
            for a in self.static.associations
            if self.is_covered(a)
        }
        return [
            d for d in self.definitions_with_associations() if d.key in covered_def_keys
        ]

    # -- all-uses support -----------------------------------------------------------

    def use_sites(self) -> List[Tuple[str, str, int]]:
        """Distinct ``(var, model, line)`` use sites in the universe.

        The classical *all-uses* criterion (which paper §VI-A evaluates
        alongside all-defs) asks for at least one covered association
        per use site.
        """
        return sorted({
            (a.var, a.use.model, a.use.line) for a in self.static.associations
        })

    def covered_use_sites(self) -> List[Tuple[str, str, int]]:
        """Use sites with at least one exercised association."""
        return sorted({
            (a.var, a.use.model, a.use.line)
            for a in self.static.associations
            if self.is_covered(a)
        })

    # -- guidance ----------------------------------------------------------------------

    def missed(self) -> List[Association]:
        """Associations no testcase exercised, strongest class first.

        The class ranking is the paper's triage order: Strong, Firm and
        PFirm associations contain at least one du-path, so a test input
        signal is expected to be able to cover them; PWeak ones are the
        most likely to be infeasible.
        """
        order = {
            AssocClass.STRONG: 0,
            AssocClass.FIRM: 1,
            AssocClass.PFIRM: 2,
            AssocClass.PWEAK: 3,
        }
        misses = [a for a in self.static.associations if not self.is_covered(a)]
        return sorted(
            misses,
            key=lambda a: (order[a.klass], a.def_model, a.var, a.definition.line, a.use.line),
        )

    # -- matrix (Table I) ------------------------------------------------------------------

    def matrix(self) -> List[Tuple[Association, List[bool]]]:
        """Rows of the Table-I exercise matrix.

        One row per association (grouped by class, Strong first), with
        one boolean per testcase in suite order.
        """
        order = {
            AssocClass.STRONG: 0,
            AssocClass.FIRM: 1,
            AssocClass.PFIRM: 2,
            AssocClass.PWEAK: 3,
        }
        names = self.testcase_names
        rows = []
        for assoc in sorted(
            self.static.associations,
            key=lambda a: (order[a.klass], a.def_model, a.var, a.definition.line, a.use.line),
        ):
            marks = [
                assoc.key in self.dynamic.per_testcase[name].pairs for name in names
            ]
            rows.append((assoc, marks))
        return rows
