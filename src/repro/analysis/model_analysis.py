"""Intra-model static analysis (paper §V, step 1).

For one TDF model instance this module extracts:

* **local-variable associations** — classical def-use pairs over the
  CFG of ``processing()``, classified Strong (every path is a du-path)
  or Firm (some path redefines the variable);
* **member-variable associations** — members persist across
  activations, so in addition to intra-activation pairs a definition
  that reaches the activation's end flows to uses at the start of the
  *next* activation (the paper's ``m_mux_s`` pairs).  Exactly one
  activation boundary is crossed: the def segment must be def-clear to
  EXIT and the use segment def-clear from ENTRY; classification checks
  the all-paths property on both segments;
* **input-port placeholder associations** — uses of input ports paired
  with a virtual definition at the model start (the ``def processing``
  line), to be *resolved* against the driving model's output-port defs
  during cluster analysis (or kept, when the driver is the testbench);
* **output-port definition sites** — defs that reach EXIT and hence
  flow into the cluster; the cluster analysis turns them into
  Strong/PFirm/PWeak associations via the binding information.

The paper performs the same extraction on the Clang AST; here the AST
is Python's, obtained from the model's ``processing()`` (or the
callable installed via ``register_processing``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.associations import (
    AssocClass,
    Association,
    Definition,
    SourceLocation,
    VarScope,
)
from ..tdf.module import TdfModule
from .astutils import RefKind, SourceInfo, VarRef, get_source_info
from .cfg import Cfg, ENTRY, EXIT, build_cfg
from .dupaths import has_non_du_path, transitive_closure
from .reaching import NodeDef, NodePair, ReachingResult, reaching_definitions


@dataclass(frozen=True)
class PortDefSite:
    """An output-port definition that escapes the model."""

    port: str
    line: int            #: absolute line of the write statement
    model: str
    #: True when *every* path from the def to EXIT is def-clear; False
    #: means a later write may overwrite the sample on some path.
    def_clear_all_paths: bool = True


@dataclass(frozen=True)
class PortUseSite:
    """An input-port use inside the model."""

    port: str
    line: int            #: absolute line of the read expression
    model: str


@dataclass
class ModelAnalysis:
    """Results of analysing one TDF model instance."""

    model: str
    source: SourceInfo
    #: Local + member associations (classified Strong/Firm).
    associations: List[Association] = field(default_factory=list)
    #: Input-port placeholder associations (def at model start, Strong).
    placeholder_associations: List[Association] = field(default_factory=list)
    out_port_defs: List[PortDefSite] = field(default_factory=list)
    in_port_uses: List[PortUseSite] = field(default_factory=list)
    #: Every definition site (for the all-defs criterion).
    definitions: List[Definition] = field(default_factory=list)
    #: Output-port writes that can never reach EXIT (dead writes).
    dead_port_writes: List[PortDefSite] = field(default_factory=list)
    #: The processing() CFG the associations were derived from; kept so
    #: downstream passes (subsumption, du-path fitness guides) can reason
    #: about paths without re-parsing the model source.
    cfg: Optional[Cfg] = None


def _loc(model: str, line: int, file: str) -> SourceLocation:
    return SourceLocation(model=model, line=line, file=file)


def analyze_model(module: TdfModule) -> ModelAnalysis:
    """Run the full intra-model analysis on ``module``."""
    info = get_source_info(module.resolved_processing())
    in_ports = {p.name for p in module.in_ports()}
    out_ports = {p.name for p in module.out_ports()}
    cfg = build_cfg(info.func, in_ports, out_ports)
    model = module.name
    filename = info.filename

    # Virtual entry definitions: input ports at the model start line
    # (paper §V) and members at the activation boundary (marker line 0,
    # replaced below by the previous activation's real defs).
    member_vars = _member_vars(cfg)
    entry_defs: Dict[VarRef, int] = {}
    for port in in_ports:
        entry_defs[VarRef(RefKind.IN_PORT, port)] = info.func.lineno
    member_marker_line = -1
    for ref in member_vars:
        entry_defs[ref] = member_marker_line

    result = reaching_definitions(cfg, entry_defs)
    closure = transitive_closure(cfg)

    analysis = ModelAnalysis(model=model, source=info, cfg=cfg)
    _collect_definitions(analysis, result, info, filename, in_ports)
    _classify_intra_pairs(analysis, result, closure, info, member_marker_line)
    _classify_cross_activation_pairs(analysis, result, closure, cfg, info, member_marker_line)
    _collect_port_sites(analysis, result, closure, cfg, info)
    return analysis


def _member_vars(cfg: Cfg) -> Set[VarRef]:
    refs: Set[VarRef] = set()
    for node in cfg.nodes:
        for ref, _ in node.defuse.defs:
            if ref.kind is RefKind.MEMBER:
                refs.add(ref)
        for ref, _ in node.defuse.uses:
            if ref.kind is RefKind.MEMBER:
                refs.add(ref)
    return refs


def _collect_definitions(
    analysis: ModelAnalysis,
    result: ReachingResult,
    info: SourceInfo,
    filename: str,
    in_ports: Set[str],
) -> None:
    scope_of = {
        RefKind.LOCAL: VarScope.LOCAL,
        RefKind.MEMBER: VarScope.MEMBER,
        RefKind.OUT_PORT: VarScope.PORT,
        RefKind.IN_PORT: VarScope.PORT,
    }
    for nd in result.all_defs:
        if nd.node == ENTRY:
            continue  # virtual defs are not real definition sites
        analysis.definitions.append(
            Definition(
                var=nd.var.name,
                location=_loc(analysis.model, info.absolute_line(nd.line), filename),
                scope=scope_of[nd.var.kind],
            )
        )


def _classify_intra_pairs(
    analysis: ModelAnalysis,
    result: ReachingResult,
    closure: Dict[int, Set[int]],
    info: SourceInfo,
    member_marker_line: int,
) -> None:
    """Local/member pairs inside one activation + in-port placeholders."""
    for pair in result.pairs:
        kind = pair.var.kind
        if kind is RefKind.IN_PORT:
            if pair.def_node != ENTRY:
                continue
            analysis.placeholder_associations.append(
                Association(
                    var=pair.var.name,
                    definition=_loc(analysis.model, info.def_line, info.filename),
                    use=_loc(analysis.model, info.absolute_line(pair.use_line), info.filename),
                    klass=AssocClass.STRONG,
                    scope=VarScope.PORT,
                )
            )
            continue
        if kind is RefKind.OUT_PORT:
            continue  # output ports are handled at cluster level
        if pair.def_node == ENTRY:
            continue  # member boundary defs handled separately below
        firm = has_non_du_path(pair, result.def_nodes.get(pair.var, set()) - {ENTRY}, closure)
        analysis.associations.append(
            Association(
                var=pair.var.name,
                definition=_loc(analysis.model, info.absolute_line(pair.def_line), info.filename),
                use=_loc(analysis.model, info.absolute_line(pair.use_line), info.filename),
                klass=AssocClass.FIRM if firm else AssocClass.STRONG,
                scope=VarScope.LOCAL if kind is RefKind.LOCAL else VarScope.MEMBER,
            )
        )


def _classify_cross_activation_pairs(
    analysis: ModelAnalysis,
    result: ReachingResult,
    closure: Dict[int, Set[int]],
    cfg: Cfg,
    info: SourceInfo,
    member_marker_line: int,
) -> None:
    """Member pairs crossing exactly one activation boundary.

    Def segment: a member def reaching EXIT.  Use segment: a use whose
    reaching set contains the virtual entry def (identified by the
    marker line).  Classification is Strong only when both segments are
    def-clear on *every* path.
    """
    member_exit_defs = [
        nd for nd in result.exit_defs
        if nd.var.kind is RefKind.MEMBER and nd.node != ENTRY
    ]
    if not member_exit_defs:
        return

    # Uses reached from ENTRY before any redefinition, per variable.
    entry_uses: Dict[VarRef, List[Tuple[int, int]]] = {}
    for pair in result.pairs:
        if pair.var.kind is RefKind.MEMBER and pair.def_node == ENTRY:
            entry_uses.setdefault(pair.var, []).append((pair.use_node, pair.use_line))

    existing = {
        (a.var, a.definition.line, a.use.line)
        for a in analysis.associations
        if a.scope is VarScope.MEMBER
    }
    for nd in member_exit_defs:
        real_def_nodes = result.def_nodes.get(nd.var, set()) - {ENTRY}
        # Some path def -> EXIT hits another def of the variable?
        def_segment_firm = any(
            k in closure[nd.node] and EXIT in closure[k] for k in real_def_nodes
        )
        for use_node, use_line in entry_uses.get(nd.var, []):
            # Some path ENTRY -> use hits a def of the variable?
            use_segment_firm = any(
                k in closure[ENTRY] and use_node in closure[k] for k in real_def_nodes
            )
            abs_def = info.absolute_line(nd.line)
            abs_use = info.absolute_line(use_line)
            klass = (
                AssocClass.FIRM
                if def_segment_firm or use_segment_firm
                else AssocClass.STRONG
            )
            key = (nd.var.name, abs_def, abs_use)
            if key in existing:
                # The pair also exists within one activation; the paper
                # classifies such pairs by their intra-activation paths
                # (Table I keeps e.g. (m_mux_s, 65, ctrl, 66, ctrl)
                # Strong even though multi-activation paths exist).
                continue
            existing.add(key)
            analysis.associations.append(
                Association(
                    var=nd.var.name,
                    definition=_loc(analysis.model, abs_def, info.filename),
                    use=_loc(analysis.model, abs_use, info.filename),
                    klass=klass,
                    scope=VarScope.MEMBER,
                )
            )


def _collect_port_sites(
    analysis: ModelAnalysis,
    result: ReachingResult,
    closure: Dict[int, Set[int]],
    cfg: Cfg,
    info: SourceInfo,
) -> None:
    exit_def_keys = {
        (nd.var, nd.node, nd.line)
        for nd in result.exit_defs
        if nd.var.kind is RefKind.OUT_PORT
    }
    for nd in result.all_defs:
        if nd.var.kind is not RefKind.OUT_PORT or nd.node == ENTRY:
            continue
        abs_line = info.absolute_line(nd.line)
        if (nd.var, nd.node, nd.line) in exit_def_keys:
            real_def_nodes = result.def_nodes.get(nd.var, set()) - {ENTRY}
            all_clear = not any(
                k in closure[nd.node] and EXIT in closure[k] for k in real_def_nodes
            )
            analysis.out_port_defs.append(
                PortDefSite(nd.var.name, abs_line, analysis.model, all_clear)
            )
        else:
            analysis.dead_port_writes.append(
                PortDefSite(nd.var.name, abs_line, analysis.model, False)
            )

    seen_uses: Set[Tuple[str, int]] = set()
    for node in cfg.nodes:
        for ref, line in node.defuse.uses:
            if ref.kind is not RefKind.IN_PORT:
                continue
            abs_line = info.absolute_line(line)
            if (ref.name, abs_line) in seen_uses:
                continue
            seen_uses.add((ref.name, abs_line))
            analysis.in_port_uses.append(PortUseSite(ref.name, abs_line, analysis.model))
