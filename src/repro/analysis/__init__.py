"""Static analysis of TDF models (the paper's Clang-based stage, on Python AST).

Pipeline: per-model CFG + reaching definitions
(:mod:`~repro.analysis.model_analysis`) -> netlist binding extraction
(:mod:`~repro.analysis.netlist`) -> cluster-level association
classification (:mod:`~repro.analysis.cluster_analysis`).
"""

from .astutils import RefKind, SourceInfo, VarRef, get_source_info
from .cache import StaticAnalysisCache, fingerprint_cluster, get_default_cache
from .cfg import Cfg, CfgNode, ENTRY, EXIT, build_cfg
from .cluster_analysis import StaticAnalysisResult, analyze_cluster
from .defuse import DefUse, extract
from .dupaths import has_non_du_path, is_strong_local, transitive_closure
from .model_analysis import (
    ModelAnalysis,
    PortDefSite,
    PortUseSite,
    analyze_model,
)
from .netlist import Branch, RedefAnchor, origin_of, trace_branches
from .reaching import NodeDef, NodePair, ReachingResult, reaching_definitions
from .subsume import SubsumptionResult, analyze_subsumption, frontier_reduced

__all__ = [
    "Branch",
    "Cfg",
    "CfgNode",
    "DefUse",
    "ENTRY",
    "EXIT",
    "ModelAnalysis",
    "NodeDef",
    "NodePair",
    "PortDefSite",
    "PortUseSite",
    "ReachingResult",
    "RedefAnchor",
    "RefKind",
    "SourceInfo",
    "StaticAnalysisCache",
    "StaticAnalysisResult",
    "SubsumptionResult",
    "VarRef",
    "analyze_subsumption",
    "analyze_cluster",
    "analyze_model",
    "build_cfg",
    "extract",
    "fingerprint_cluster",
    "frontier_reduced",
    "get_default_cache",
    "get_source_info",
    "has_non_du_path",
    "is_strong_local",
    "origin_of",
    "reaching_definitions",
    "trace_branches",
    "transitive_closure",
]
