"""Reaching-definitions analysis and node-level def-use pairing.

Classic forward may-analysis over the CFG with a worklist:

* ``GEN[n]`` — the definitions born at node ``n`` (one per variable;
  the last textual def wins within a node);
* ``KILL[n]`` — every other definition of the same variables;
* ``IN[n] = union(OUT[p] for p in pred)``,
  ``OUT[n] = GEN[n] | (IN[n] - KILL[n])``.

Virtual *entry definitions* model values that exist before the body
runs: the paper assigns input ports a definition at the start location
of their TDF model (§V), which is exactly an entry definition anchored
at the ``def processing`` line.

The resulting :class:`NodePair` set is the raw material for the du-path
classification in :mod:`repro.analysis.dupaths`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from .astutils import VarRef
from .cfg import Cfg, ENTRY, EXIT


@dataclass(frozen=True, order=True)
class NodeDef:
    """A definition: variable, CFG node, AST line."""

    var: VarRef
    node: int
    line: int


@dataclass(frozen=True, order=True)
class NodePair:
    """A def-use pair at CFG-node granularity (lines are AST lines)."""

    var: VarRef
    def_node: int
    def_line: int
    use_node: int
    use_line: int


@dataclass
class ReachingResult:
    """Everything the downstream analyses need from one reaching pass."""

    #: ``IN`` set per node id.
    in_sets: Dict[int, FrozenSet[NodeDef]]
    #: All def-use pairs found.
    pairs: List[NodePair]
    #: Definitions that reach EXIT (flow out of the activation).
    exit_defs: List[NodeDef]
    #: Every definition in the CFG (including virtual entry defs).
    all_defs: List[NodeDef]
    #: CFG nodes defining each variable (for du-path classification).
    def_nodes: Dict[VarRef, Set[int]]


def _gen_of(cfg: Cfg, entry_defs: Dict[VarRef, int]) -> Dict[int, Dict[VarRef, NodeDef]]:
    gen: Dict[int, Dict[VarRef, NodeDef]] = {}
    for node in cfg.nodes:
        per_var: Dict[VarRef, NodeDef] = {}
        for ref, line in node.defuse.defs:
            per_var[ref] = NodeDef(ref, node.nid, line)
        gen[node.nid] = per_var
    for ref, line in entry_defs.items():
        gen[ENTRY][ref] = NodeDef(ref, ENTRY, line)
    return gen


def reaching_definitions(
    cfg: Cfg,
    entry_defs: Dict[VarRef, int] | None = None,
) -> ReachingResult:
    """Run the worklist analysis and derive def-use pairs.

    ``entry_defs`` maps a variable to the line of its virtual definition
    at ENTRY (used for input ports, anchored at the model start).
    """
    entry_defs = entry_defs or {}
    gen = _gen_of(cfg, entry_defs)

    def_nodes: Dict[VarRef, Set[int]] = {}
    all_defs: List[NodeDef] = []
    for per_var in gen.values():
        for ref, nd in per_var.items():
            def_nodes.setdefault(ref, set()).add(nd.node)
            all_defs.append(nd)

    in_sets: Dict[int, Set[NodeDef]] = {n.nid: set() for n in cfg.nodes}
    out_sets: Dict[int, Set[NodeDef]] = {n.nid: set() for n in cfg.nodes}

    # Seed OUT with GEN so the first worklist round has flow to push.
    for nid, per_var in gen.items():
        out_sets[nid] = set(per_var.values())

    worklist = [n.nid for n in cfg.nodes]
    in_worklist = set(worklist)
    while worklist:
        nid = worklist.pop()
        in_worklist.discard(nid)
        new_in: Set[NodeDef] = set()
        for p in cfg.pred[nid]:
            new_in |= out_sets[p]
        if new_in == in_sets[nid] and out_sets[nid]:
            # IN unchanged and OUT already seeded: no recompute needed.
            continue
        in_sets[nid] = new_in
        killed_vars = set(gen[nid].keys())
        new_out = set(gen[nid].values()) | {
            d for d in new_in if d.var not in killed_vars
        }
        if new_out != out_sets[nid]:
            out_sets[nid] = new_out
            for s in cfg.succ[nid]:
                if s not in in_worklist:
                    worklist.append(s)
                    in_worklist.add(s)

    pairs: List[NodePair] = []
    seen: Set[Tuple[VarRef, int, int, int, int]] = set()
    for node in cfg.nodes:
        if not node.defuse.uses:
            continue
        reaching = in_sets[node.nid]
        for use_ref, use_line in node.defuse.uses:
            for nd in reaching:
                if nd.var != use_ref:
                    continue
                key = (use_ref, nd.node, nd.line, node.nid, use_line)
                if key in seen:
                    continue
                seen.add(key)
                pairs.append(NodePair(use_ref, nd.node, nd.line, node.nid, use_line))

    exit_defs = sorted(in_sets[EXIT])
    return ReachingResult(
        in_sets={nid: frozenset(s) for nid, s in in_sets.items()},
        pairs=sorted(pairs),
        exit_defs=exit_defs,
        all_defs=sorted(set(all_defs)),
        def_nodes=def_nodes,
    )
