"""Binding-information extraction (paper Fig. 3, "Binding Info. Extraction").

Walks a cluster's netlist and answers the question the cluster-level
analysis needs: *starting from an output port, which input ports does
the signal reach, and does it pass through a redefining library element
(gain / delay / buffer) on the way?*

Every branch of the traversal terminates at the input port of a
non-redefining module and carries:

* whether the data was redefined en route, and
* the *redefinition anchor* — the netlist bind site of the last
  redefining element's output port, which is where the paper anchors
  the definitions of PFirm/PWeak associations (Table I anchors
  ``op_signal_out`` at line 74, the ``i_delay_tdf1->tdf_o.bind(...)``
  statement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..tdf.cluster import Cluster
from ..tdf.module import TdfModule
from ..tdf.ports import BindSite, TdfIn, TdfOut


@dataclass(frozen=True)
class RedefAnchor:
    """Where a redefinition is anchored: the element and its output bind."""

    element: str          #: name of the redefining module
    line: int             #: line of the element's output-port bind statement
    file: str


@dataclass(frozen=True)
class Branch:
    """One terminal of the signal traversal from an output port."""

    reader: TdfIn                     #: the terminal input port
    redefined: bool
    anchor: Optional[RedefAnchor]     #: set iff redefined

    @property
    def module(self) -> TdfModule:
        """The terminal (using) module."""
        assert self.reader.module is not None
        return self.reader.module


def _anchor_of(element: TdfModule) -> Optional[RedefAnchor]:
    outs = element.out_ports()
    if not outs:
        return None
    site: Optional[BindSite] = outs[0].bind_site
    if site is None:
        return None
    return RedefAnchor(element=element.name, line=site.lineno, file=site.filename)


def trace_branches(port: TdfOut) -> List[Branch]:
    """All terminal branches reachable from ``port`` through the netlist.

    Redefining elements are traversed (their output continues the
    branch, now tagged redefined and re-anchored); testbench modules
    terminate a branch silently (no use anchor); everything else is a
    terminal.  Cycles through redefining elements are cut via a visited
    set of signals.
    """
    branches: List[Branch] = []
    visited: Set[int] = set()

    def walk(current: TdfOut, redefined: bool, anchor: Optional[RedefAnchor]) -> None:
        signal = current.signal
        if signal is None or id(signal) in visited:
            return
        visited.add(id(signal))
        for reader in signal.readers:
            module = reader.module
            if module is None:
                continue
            if module.TESTBENCH:
                continue
            if module.REDEFINING:
                new_anchor = _anchor_of(module) or anchor
                for out in module.out_ports():
                    walk(out, True, new_anchor)
                continue
            branches.append(Branch(reader=reader, redefined=redefined, anchor=anchor))

    walk(port, False, None)
    return branches


def origin_of(port: TdfIn) -> Optional[Tuple[TdfOut, bool, Optional[RedefAnchor]]]:
    """Trace *backwards* from an input port to the originating output port.

    Returns ``(origin_port, redefined, anchor)`` where ``origin_port``
    is the first non-redefining driver found walking upstream, or
    ``None`` when the chain is undriven.  Used by the dynamic analysis
    to annotate tokens flowing out of redefining elements.
    """
    seen: Set[int] = set()
    current = port
    redefined = False
    anchor: Optional[RedefAnchor] = None
    while True:
        signal = current.signal
        if signal is None or signal.driver is None or id(signal) in seen:
            return None
        seen.add(id(signal))
        driver = signal.driver
        module = driver.module
        if module is not None and module.REDEFINING:
            if anchor is None:
                anchor = _anchor_of(module)
            redefined = True
            ins = module.in_ports()
            if not ins:
                return None
            current = ins[0]
            continue
        return driver, redefined, anchor
