"""Association subsumption analysis (Chaim et al.-style redundancy pass).

Many def-use associations are redundant test requirements: whenever one
is exercised, another is necessarily exercised too.  Covering

``(target, 65, 66)`` in ``mode_ctrl`` for instance forces every
execution through the definition at 65 and straight into 66, which may
drag other pairs of the same activation along.  This module computes
that redundancy relation per model and exposes the **frontier** — the
non-subsumed associations — per criterion class, so directed generation
and criterion scoring can work a smaller target set without losing any
coverage guarantees.

Definition.  Association ``A`` *subsumes* ``B`` iff every complete
execution of the model that covers ``A`` also covers ``B``.  Complete
executions are paths ``ENTRY -> ... -> EXIT`` through the wrap-around
CFG (the ``EXIT -> ENTRY`` edge models repeated activations, matching
the dynamic matcher's cross-activation most-recent-definition pairing
for locals *and* members; a simulation may stop after any activation,
so every EXIT visit is a potential end of execution).

The check is exact over an abstraction of executions and runs as a
product-state search: states are ``(cfg_node, liveA, covA, liveB,
covB)`` where ``live`` tracks "the most recent definition event of the
variable came from the association's def line" and ``cov`` latches once
the association's use fires while live.  ``A`` subsumes ``B`` iff no
state ``(EXIT, covA=1, covB=0)`` is reachable.  Occurrences marked
conditional by :mod:`repro.analysis.defuse` (short-circuit operands,
conditional-expression arms, ``for`` targets) may or may not emit their
probe event on a given visit; the search branches on both outcomes,
which over-approximates real executions and therefore only ever *drops*
subsumption edges — the frontier stays a sound covering set.

The raw relation is a preorder (mutually-subsuming associations form
equivalence classes).  The exposed :meth:`SubsumptionResult.subsumes`
relation breaks those ties canonically by association key, yielding a
strict partial order whose maximal elements are the frontier.

Scope limits: only intra-model LOCAL/MEMBER associations participate;
PORT-scope associations (cluster-level bindings, placeholders) involve
token-index / sample-and-hold semantics the CFG cannot see and are all
kept in the frontier.  The relation is computed within one (model,
criterion class) group so each per-class frontier is self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.associations import AssocClass, Association, PairKey, VarScope
from .astutils import RefKind, VarRef
from .cfg import Cfg, ENTRY, EXIT
from .cluster_analysis import StaticAnalysisResult
from .model_analysis import ModelAnalysis

#: Per-group size above which the pairwise search is skipped and every
#: member kept in the frontier (quadratic BFS cost guard; never hit by
#: the bundled systems).
MAX_GROUP = 120

# Monitor state bits (packed beside the CFG node id).
_LIVE_A, _COV_A, _LIVE_B, _COV_B = 1, 2, 4, 8


@dataclass(frozen=True)
class _Event:
    """One probe-relevant occurrence inside a CFG node, in firing order."""

    is_def: bool
    var: VarRef
    line: int            #: absolute source line
    conditional: bool    #: may be skipped on some visits of the node


class _ModelProgram:
    """A model's wrap-around CFG compiled to per-node event lists."""

    def __init__(self, analysis: ModelAnalysis) -> None:
        assert analysis.cfg is not None
        cfg: Cfg = analysis.cfg.with_wraparound()
        info = analysis.source
        self.succ = cfg.succ
        self.events: Dict[int, Tuple[_Event, ...]] = {}
        for node in cfg.nodes:
            du = node.defuse
            evs: List[_Event] = []
            # Use probes are expression wrappers and fire before the
            # statement-level def probes appended after the assignment.
            for ref, line in du.uses:
                if ref.kind in (RefKind.LOCAL, RefKind.MEMBER):
                    evs.append(_Event(False, ref, info.absolute_line(line),
                                      du.is_conditional((ref, line))))
            for ref, line in du.defs:
                if ref.kind in (RefKind.LOCAL, RefKind.MEMBER):
                    evs.append(_Event(True, ref, info.absolute_line(line),
                                      du.is_conditional((ref, line))))
            self.events[node.nid] = tuple(evs)


@dataclass(frozen=True)
class _Tracked:
    """One association as the monitor sees it."""

    var: VarRef
    def_line: int
    use_line: int


def _as_tracked(assoc: Association) -> _Tracked:
    kind = RefKind.LOCAL if assoc.scope is VarScope.LOCAL else RefKind.MEMBER
    return _Tracked(VarRef(kind, assoc.var), assoc.definition.line, assoc.use.line)


def _fire(ev: _Event, bits: int, a: _Tracked, b: _Tracked) -> int:
    """Apply one fired probe event to the packed monitor state."""
    if ev.is_def:
        if ev.var == a.var:
            bits = (bits | _LIVE_A) if ev.line == a.def_line else (bits & ~_LIVE_A)
        if ev.var == b.var:
            bits = (bits | _LIVE_B) if ev.line == b.def_line else (bits & ~_LIVE_B)
    else:
        if ev.var == a.var and ev.line == a.use_line and bits & _LIVE_A:
            bits |= _COV_A
        if ev.var == b.var and ev.line == b.use_line and bits & _LIVE_B:
            bits |= _COV_B
    return bits


def _apply_node(events: Tuple[_Event, ...], bits: int, a: _Tracked, b: _Tracked) -> Set[int]:
    """All monitor states after visiting a node (branching on conditionals)."""
    states = {bits}
    for ev in events:
        nxt = set()
        for s in states:
            if ev.conditional:
                nxt.add(s)  # the occurrence may not fire on this visit
            nxt.add(_fire(ev, s, a, b))
        states = nxt
    return states


def _covers_implies(prog: _ModelProgram, a: _Tracked, b: _Tracked) -> bool:
    """Whether every complete abstract execution covering ``a`` covers ``b``."""
    start = (ENTRY, 0)
    seen = {start}
    stack = [start]
    while stack:
        nid, bits = stack.pop()
        if nid == EXIT and (bits & _COV_A) and not (bits & _COV_B):
            return False  # witness: a complete run covering A, missing B
        for succ in prog.succ[nid]:
            for nbits in _apply_node(prog.events[succ], bits, a, b):
                state = (succ, nbits)
                if state not in seen:
                    seen.add(state)
                    stack.append(state)
    return True


@dataclass
class SubsumptionResult:
    """The subsumption partial order and its frontier."""

    #: Every association of the analysed cluster, in static-result order.
    associations: Tuple[Association, ...]
    #: Strict partial order: key -> keys it (directly) subsumes.
    subsumed_of: Mapping[PairKey, FrozenSet[PairKey]] = field(default_factory=dict)
    #: Non-subsumed (maximal) association keys, over all classes.
    frontier_keys: FrozenSet[PairKey] = frozenset()
    #: For each subsumed association, the canonical frontier key whose
    #: coverage guarantees it.
    representative: Mapping[PairKey, PairKey] = field(default_factory=dict)

    # -- queries ----------------------------------------------------------

    def frontier(self, klass: Optional[AssocClass] = None) -> List[Association]:
        """Non-subsumed associations (optionally of one criterion class)."""
        return [
            a for a in self.associations
            if a.key in self.frontier_keys and (klass is None or a.klass is klass)
        ]

    def subsumes(self, a: PairKey, b: PairKey) -> bool:
        """Whether covering ``a`` guarantees covering ``b`` (strict order)."""
        return b in self.subsumed_of.get(a, frozenset())

    def subsumed_keys(self) -> FrozenSet[PairKey]:
        """Keys of every association dominated by a frontier element."""
        return frozenset(a.key for a in self.associations) - self.frontier_keys

    def counts(self) -> Dict[AssocClass, Tuple[int, int]]:
        """Per class: (frontier size, total associations)."""
        out: Dict[AssocClass, Tuple[int, int]] = {}
        for a in self.associations:
            front, total = out.get(a.klass, (0, 0))
            out[a.klass] = (front + (1 if a.key in self.frontier_keys else 0), total + 1)
        return out


def _intra_model_groups(
    static: StaticAnalysisResult,
) -> Dict[Tuple[str, AssocClass], List[Association]]:
    groups: Dict[Tuple[str, AssocClass], List[Association]] = {}
    for assoc in static.associations:
        if assoc.scope is VarScope.PORT:
            continue
        if assoc.definition.model != assoc.use.model:
            continue
        model = static.models.get(assoc.definition.model)
        if model is None or model.cfg is None:
            continue
        groups.setdefault((assoc.definition.model, assoc.klass), []).append(assoc)
    return groups


def analyze_subsumption(static: StaticAnalysisResult) -> SubsumptionResult:
    """Compute the subsumption partial order for a cluster's associations.

    Works purely over the static result (the stored per-model CFGs); no
    simulation is involved.
    """
    associations = tuple(static.associations)
    pre: Dict[PairKey, Set[PairKey]] = {}

    for (model_name, _klass), group in _intra_model_groups(static).items():
        if len(group) < 2 or len(group) > MAX_GROUP:
            continue
        prog = _ModelProgram(static.models[model_name])
        tracked = [(a, _as_tracked(a)) for a in group]
        for a_assoc, a_t in tracked:
            for b_assoc, b_t in tracked:
                if a_assoc.key == b_assoc.key:
                    continue
                if _covers_implies(prog, a_t, b_t):
                    pre.setdefault(a_assoc.key, set()).add(b_assoc.key)

    # Preorder -> strict partial order: within a mutual-subsumption
    # equivalence class only the smallest key dominates the others.
    subsumed_of: Dict[PairKey, FrozenSet[PairKey]] = {}
    for a_key, downs in pre.items():
        strict = {
            b_key for b_key in downs
            if a_key not in pre.get(b_key, ()) or a_key <= b_key
        }
        if strict:
            subsumed_of[a_key] = frozenset(strict)

    dominated: Set[PairKey] = set()
    for downs in subsumed_of.values():
        dominated |= downs
    frontier_keys = frozenset(a.key for a in associations) - dominated

    representative: Dict[PairKey, PairKey] = {}
    by_subsumer = subsumed_of
    for f_key in sorted(frontier_keys):
        for b_key in sorted(by_subsumer.get(f_key, frozenset())):
            representative.setdefault(b_key, f_key)

    return SubsumptionResult(
        associations=associations,
        subsumed_of=subsumed_of,
        frontier_keys=frontier_keys,
        representative=representative,
    )


def frontier_reduced(
    associations: Iterable[Association],
    subsumption: SubsumptionResult,
) -> Tuple[List[Association], List[Association]]:
    """Split ``associations`` into (frontier members, subsumed members)."""
    front: List[Association] = []
    subsumed: List[Association] = []
    for assoc in associations:
        (front if assoc.key in subsumption.frontier_keys else subsumed).append(assoc)
    return front, subsumed
