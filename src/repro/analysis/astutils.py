"""AST helpers shared by the static analysis (the Clang-AST analogue).

The paper's framework parses the Clang AST of each TDF model's C++
source; this package does the same with Python's :mod:`ast` over the
models' ``processing()`` source.  This module provides source
retrieval with absolute line tracking and the :class:`VarRef` naming
scheme that maps Python constructs to the paper's variable kinds:

===============================  =============================
Python construct                 variable kind
===============================  =============================
``x = ...`` / ``... x ...``      local variable def / use
``self.m_x = ...`` / load        member def / use
``self.ip_x.read()``             input-port use
``self.op_x.write(v)``           output-port def
===============================  =============================
"""

from __future__ import annotations

import ast
import enum
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, Optional, Set, Tuple


class RefKind(str, enum.Enum):
    """Kind of a variable reference inside a processing() body.

    Inherits :class:`str` so references sort deterministically.
    """

    LOCAL = "local"
    MEMBER = "member"
    IN_PORT = "in_port"
    OUT_PORT = "out_port"


@dataclass(frozen=True, order=True)
class VarRef:
    """A named variable of a given kind within one model."""

    kind: RefKind
    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}[{self.kind.value}]"


#: Attributes provided by the TDF kernel base class; loads of these are
#: framework plumbing, not model state, and are excluded from the
#: member-variable analysis.
KERNEL_ATTRS: Set[str] = {
    "name",
    "cluster",
    "timestep",
    "activation_count",
    "time",
}


@dataclass
class SourceInfo:
    """Parsed source of one processing() callable."""

    #: The ``ast.FunctionDef`` of the processing body.
    func: ast.FunctionDef
    #: Absolute path of the defining file.
    filename: str
    #: 1-based line in ``filename`` of the function's ``def`` statement.
    def_line: int
    #: Offset to add to a (1-based) AST line number to obtain the
    #: absolute line in ``filename``.
    line_offset: int
    #: The dedented source text that was parsed.
    source: str

    def absolute_line(self, ast_lineno: int) -> int:
        """Map an AST line number to the absolute file line."""
        return ast_lineno + self.line_offset


#: ``code object -> (dedented source text, start line, filename)``.
#: Only the raw text is cached: every :func:`get_source_info` call
#: parses a fresh AST, because callers (the mutation operators) mutate
#: the returned tree in place.
_SOURCE_TEXT_CACHE: dict = {}


def get_source_info(fn: Callable) -> SourceInfo:
    """Parse the source of ``fn`` into a :class:`SourceInfo`.

    Works for plain functions, bound methods and callables registered
    via ``register_processing``.  Raises :class:`OSError` (propagated
    from :func:`inspect.getsource`) when the source is unavailable
    (e.g. callables defined interactively).
    """
    underlying = inspect.unwrap(fn)
    if inspect.ismethod(underlying):
        underlying = underlying.__func__
    code = getattr(underlying, "__code__", None)
    cached = _SOURCE_TEXT_CACHE.get(code) if code is not None else None
    if cached is not None:
        text, start_line, filename = cached
    else:
        source, start_line = inspect.getsourcelines(underlying)
        filename = inspect.getsourcefile(underlying) or "<unknown>"
        text = textwrap.dedent("".join(source))
        if code is not None:
            _SOURCE_TEXT_CACHE[code] = (text, start_line, filename)
    tree = ast.parse(text)
    func = None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = node
            break
    if func is None:
        raise ValueError(f"could not locate a function definition in source of {fn!r}")
    # AST line 1 corresponds to file line ``start_line``.
    offset = start_line - 1
    return SourceInfo(
        func=func,
        filename=filename,
        def_line=func.lineno + offset,
        line_offset=offset,
        source=text,
    )


def self_attribute(node: ast.AST) -> Optional[str]:
    """Return ``X`` when ``node`` is ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def port_read_target(node: ast.Call) -> Optional[str]:
    """Return the port name when ``node`` is ``self.X.read(...)`` or
    ``self.X(...)``, else ``None`` (caller checks against in-port names)."""
    func = node.func
    # self.X.read(...)
    if isinstance(func, ast.Attribute) and func.attr == "read":
        return self_attribute(func.value)
    # self.X(...)
    return self_attribute(func)


def port_write_target(node: ast.Call) -> Optional[str]:
    """Return the port name when ``node`` is ``self.X.write(...)``."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "write":
        return self_attribute(func.value)
    return None


def member_store_names(func: ast.FunctionDef) -> Set[str]:
    """Member variables (``self.X``) stored to anywhere in ``func``.

    Kernel attributes are excluded, matching the member-variable scope
    of the static analysis.  Used by the mutation subsystem's def-site
    retarget operator to find alternative store targets.
    """
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, (ast.Store, ast.Del)):
            attr = self_attribute(node)
            if attr is not None and attr not in KERNEL_ATTRS:
                names.add(attr)
    return names


def assigned_local_names(func: ast.FunctionDef) -> Set[str]:
    """All names assigned anywhere in ``func`` (its local variables),
    including parameters (minus ``self``)."""
    names: Set[str] = set()
    for arg in func.args.args + func.args.kwonlyargs + func.args.posonlyargs:
        if arg.arg != "self":
            names.add(arg.arg)
    if func.args.vararg:
        names.add(func.args.vararg.arg)
    if func.args.kwarg:
        names.add(func.args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for target in ast.walk(node.optional_vars):
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names
