"""Memoized static analysis.

Static analysis is purely structural — it reads each analysable model's
``processing()`` source and the cluster netlist, never simulation state
— so its result is fully determined by a **fingerprint** of those
inputs.  Campaigns re-analyse the same models (sensor / buck-boost /
window-lifter run repeatedly across growing testsuites); with the cache
they pay static analysis once per distinct fingerprint.

Two storage levels:

* **in-process** — a dict on :class:`StaticAnalysisCache`, always on
  for the process-wide default cache;
* **on disk** (optional) — pickled results under a cache directory
  (``--cache-dir`` on the CLI, default ``~/.cache/repro-dft/``), so
  repeated CLI invocations skip the analysis too.

Cache hits hand out a shallow *clone* of the stored result: the
container lists/dicts are fresh (so a caller appending diagnostics
cannot corrupt the cache) while the records themselves — frozen
dataclasses throughout — are shared.
"""

from __future__ import annotations

import hashlib
import inspect
import os
import pickle
import tempfile
from typing import TYPE_CHECKING, Dict, Optional

from ..tdf.cluster import Cluster

if TYPE_CHECKING:  # pragma: no cover - typing-only import avoids a cycle
    from .cluster_analysis import StaticAnalysisResult

#: Bump when the analysis output format changes so stale disk entries
#: are never deserialised into the new code.
#: v2: ModelAnalysis carries its processing() CFG (and DefUse records
#: carry conditional-occurrence sets) for the subsumption pass.
CACHE_FORMAT_VERSION = 2

#: Default on-disk location (used when a cache dir is requested without
#: an explicit path).
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro-dft")


def _processing_source(module) -> str:
    """Source text of the model's processing callable (best effort).

    Falls back to a stable identity marker when the source is not
    retrievable (interactively defined models); such models are then
    distinguished by class identity only, which is the best available
    signal.
    """
    fn = module.resolved_processing()
    try:
        return inspect.getsource(fn)
    except (OSError, TypeError):
        return f"<no-source:{getattr(fn, '__qualname__', repr(fn))}>"


def fingerprint_cluster(cluster: Cluster) -> str:
    """SHA-256 over everything the static analysis depends on.

    Covered: cluster identity, per-module class/flags and the
    ``processing()`` source of every analysable model, and the netlist
    (signal topology plus the bind sites that anchor opaque-use and
    redefinition associations).  Anything else — port rates, timesteps,
    stimuli — is invisible to the static stage and deliberately left
    out, so dynamic-TDF configuration flips do not defeat the cache.
    """
    h = hashlib.sha256()

    def put(*parts: object) -> None:
        for part in parts:
            h.update(str(part).encode())
            h.update(b"\x1f")

    put("repro-static", CACHE_FORMAT_VERSION, cluster.name, type(cluster).__qualname__)
    for module in cluster.modules:
        cls = type(module)
        put("module", module.name, cls.__module__, cls.__qualname__,
            module.TESTBENCH, module.REDEFINING, module.OPAQUE_USES)
        if not module.TESTBENCH and not module.REDEFINING:
            put(_processing_source(module))
        for port in module.ports():
            put("port", port.name, port.direction)
    for sig, driver, readers in cluster.bindings():
        put("signal", sig.name)
        for port in ([driver] if driver is not None else []) + readers:
            site = port.bind_site
            put(port.direction, port.full_name(),
                site.filename if site else "", site.lineno if site else 0)
    return h.hexdigest()


def _clone_result(result: "StaticAnalysisResult") -> "StaticAnalysisResult":
    """Fresh containers, shared (frozen) records."""
    from .cluster_analysis import StaticAnalysisResult

    return StaticAnalysisResult(
        cluster=result.cluster,
        associations=list(result.associations),
        definitions=list(result.definitions),
        models=dict(result.models),
        dead_port_writes=list(result.dead_port_writes),
        undriven_input_ports=list(result.undriven_input_ports),
        model_start_lines=dict(result.model_start_lines),
        fingerprint=result.fingerprint,
    )


class StaticAnalysisCache:
    """In-process (and optionally on-disk) memo of static analyses."""

    def __init__(self, disk_dir: Optional[str] = None) -> None:
        self._memory: Dict[str, "StaticAnalysisResult"] = {}
        self._disk_dir = os.path.expanduser(disk_dir) if disk_dir else None
        #: ``False`` turns every lookup into a silent miss and every
        #: store into a no-op (the CLI's ``--no-static-cache``).
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # -- configuration ----------------------------------------------------

    @property
    def disk_dir(self) -> Optional[str]:
        return self._disk_dir

    def set_disk_dir(self, disk_dir: Optional[str]) -> None:
        """Enable (or disable, with ``None``) the on-disk level."""
        self._disk_dir = os.path.expanduser(disk_dir) if disk_dir else None

    def clear(self) -> None:
        """Drop the in-memory level and reset the statistics.

        Disk entries are left alone; delete the directory to purge them.
        """
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._memory)

    # -- storage ----------------------------------------------------------

    def _disk_path(self, fingerprint: str) -> str:
        assert self._disk_dir is not None
        return os.path.join(self._disk_dir, f"{fingerprint}.v{CACHE_FORMAT_VERSION}.pkl")

    def get(self, fingerprint: str) -> Optional["StaticAnalysisResult"]:
        """Look the fingerprint up in memory, then on disk."""
        if not self.enabled:
            return None
        cached = self._memory.get(fingerprint)
        if cached is not None:
            self.hits += 1
            return _clone_result(cached)
        if self._disk_dir is not None:
            try:
                with open(self._disk_path(fingerprint), "rb") as fh:
                    cached = pickle.load(fh)
            except (OSError, pickle.PickleError, EOFError, AttributeError):
                cached = None  # absent or stale/corrupt: treat as a miss
            if cached is not None:
                self._memory[fingerprint] = cached
                self.hits += 1
                self.disk_hits += 1
                return _clone_result(cached)
        self.misses += 1
        return None

    def put(self, fingerprint: str, result: "StaticAnalysisResult") -> None:
        """Store a freshly computed result under its fingerprint."""
        if not self.enabled:
            return
        self._memory[fingerprint] = _clone_result(result)
        if self._disk_dir is None:
            return
        try:
            os.makedirs(self._disk_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self._disk_dir, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._disk_path(fingerprint))
        except OSError:
            pass  # disk level is best-effort; memory level already holds it


#: The process-wide default cache :func:`repro.analysis.analyze_cluster`
#: uses unless told otherwise.
_default_cache = StaticAnalysisCache()


def get_default_cache() -> StaticAnalysisCache:
    """The process-wide static-analysis cache."""
    return _default_cache
