"""Control-flow graphs of ``processing()`` bodies.

Each CFG node is one simple statement or one branch/loop test, plus a
virtual ``ENTRY`` and ``EXIT``.  Nodes carry their definitions and uses
(extracted by :mod:`repro.analysis.defuse`), which is all the
reaching-definitions pass needs.

The graph supports an optional *wrap-around* edge ``EXIT -> ENTRY``
used only by the member-variable analysis: a member defined in one
activation of a TDF model flows to uses in the *next* activation (the
paper's ``(m_mux_s, 65, ctrl, 48, ctrl)``-style associations), which is
exactly a path through the activation boundary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .astutils import VarRef, assigned_local_names
from .defuse import DefUse, extract

ENTRY = 0
EXIT = 1


@dataclass
class CfgNode:
    """One CFG node: a statement, a branch test, or a virtual node."""

    nid: int
    kind: str                      #: 'entry' | 'exit' | 'stmt' | 'branch' | 'loop'
    line: Optional[int] = None     #: 1-based AST line (None for virtual nodes)
    defuse: DefUse = field(default_factory=DefUse)
    label: str = ""                #: short description for debugging

    def __repr__(self) -> str:
        return f"CfgNode({self.nid}, {self.kind}, line={self.line}, {self.label!r})"


class Cfg:
    """A statement-level control-flow graph."""

    def __init__(self) -> None:
        self.nodes: List[CfgNode] = []
        self.succ: Dict[int, Set[int]] = {}
        self.pred: Dict[int, Set[int]] = {}
        self._add_node("entry", label="ENTRY")
        self._add_node("exit", label="EXIT")

    # -- construction -------------------------------------------------------

    def _add_node(
        self,
        kind: str,
        line: Optional[int] = None,
        defuse: Optional[DefUse] = None,
        label: str = "",
    ) -> int:
        nid = len(self.nodes)
        self.nodes.append(CfgNode(nid, kind, line, defuse or DefUse(), label))
        self.succ[nid] = set()
        self.pred[nid] = set()
        return nid

    def add_edge(self, src: int, dst: int) -> None:
        """Insert a directed edge."""
        self.succ[src].add(dst)
        self.pred[dst].add(src)

    # -- queries --------------------------------------------------------------

    def node(self, nid: int) -> CfgNode:
        """Node by id."""
        return self.nodes[nid]

    def real_nodes(self) -> List[CfgNode]:
        """All statement/branch nodes (excludes ENTRY and EXIT)."""
        return [n for n in self.nodes if n.kind not in ("entry", "exit")]

    def with_wraparound(self) -> "Cfg":
        """A copy of this CFG with the ``EXIT -> ENTRY`` activation edge.

        Shares node objects (they are read-only to the analyses) but
        duplicates the edge sets.
        """
        clone = Cfg.__new__(Cfg)
        clone.nodes = self.nodes
        clone.succ = {nid: set(s) for nid, s in self.succ.items()}
        clone.pred = {nid: set(p) for nid, p in self.pred.items()}
        clone.succ[EXIT].add(ENTRY)
        clone.pred[ENTRY].add(EXIT)
        return clone

    def __len__(self) -> int:
        return len(self.nodes)


class _Builder:
    """Recursive-descent CFG construction over a statement list."""

    def __init__(self, cfg: Cfg, in_ports: Set[str], out_ports: Set[str], local_names: Set[str]) -> None:
        self.cfg = cfg
        self.in_ports = in_ports
        self.out_ports = out_ports
        self.local_names = local_names
        # Stack of (break_sources, continue_target) per enclosing loop.
        self._loops: List[List[int]] = []
        self._continue_targets: List[int] = []

    def _extract(self, fragment: ast.AST) -> DefUse:
        return extract(fragment, self.in_ports, self.out_ports, self.local_names)

    def _new(self, kind: str, line: int, defuse: DefUse, label: str) -> int:
        return self.cfg._add_node(kind, line, defuse, label)

    def _connect(self, preds: List[int], node: int) -> None:
        for p in preds:
            self.cfg.add_edge(p, node)

    # -- blocks -----------------------------------------------------------------

    def build_block(self, stmts: List[ast.stmt], preds: List[int]) -> List[int]:
        """Wire ``stmts`` sequentially; returns the block's exit nodes."""
        current = preds
        for stmt in stmts:
            if not current:
                # Unreachable code after return/break: still build nodes so
                # their defs/uses exist, but leave them disconnected.
                pass
            current = self.build_stmt(stmt, current)
        return current

    # -- statements ----------------------------------------------------------------

    def build_stmt(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        handler = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if handler is not None:
            return handler(stmt, preds)
        # Default: treat as one opaque simple statement.
        node = self._new("stmt", stmt.lineno, self._extract(stmt), type(stmt).__name__)
        self._connect(preds, node)
        return [node]

    def _simple(self, stmt: ast.stmt, preds: List[int], label: str) -> List[int]:
        node = self._new("stmt", stmt.lineno, self._extract(stmt), label)
        self._connect(preds, node)
        return [node]

    def _stmt_Assign(self, stmt: ast.Assign, preds: List[int]) -> List[int]:
        return self._simple(stmt, preds, "assign")

    def _stmt_AugAssign(self, stmt: ast.AugAssign, preds: List[int]) -> List[int]:
        return self._simple(stmt, preds, "augassign")

    def _stmt_AnnAssign(self, stmt: ast.AnnAssign, preds: List[int]) -> List[int]:
        return self._simple(stmt, preds, "annassign")

    def _stmt_Expr(self, stmt: ast.Expr, preds: List[int]) -> List[int]:
        return self._simple(stmt, preds, "expr")

    def _stmt_Assert(self, stmt: ast.Assert, preds: List[int]) -> List[int]:
        return self._simple(stmt, preds, "assert")

    def _stmt_Pass(self, stmt: ast.Pass, preds: List[int]) -> List[int]:
        return self._simple(stmt, preds, "pass")

    def _stmt_Delete(self, stmt: ast.Delete, preds: List[int]) -> List[int]:
        return self._simple(stmt, preds, "delete")

    def _stmt_Return(self, stmt: ast.Return, preds: List[int]) -> List[int]:
        defuse = self._extract(stmt.value) if stmt.value is not None else DefUse()
        node = self._new("stmt", stmt.lineno, defuse, "return")
        self._connect(preds, node)
        self.cfg.add_edge(node, EXIT)
        return []

    def _stmt_Raise(self, stmt: ast.Raise, preds: List[int]) -> List[int]:
        defuse = self._extract(stmt) if stmt.exc is not None else DefUse()
        node = self._new("stmt", stmt.lineno, defuse, "raise")
        self._connect(preds, node)
        self.cfg.add_edge(node, EXIT)
        return []

    def _stmt_If(self, stmt: ast.If, preds: List[int]) -> List[int]:
        branch = self._new("branch", stmt.lineno, self._extract(stmt.test), "if")
        self._connect(preds, branch)
        body_out = self.build_block(stmt.body, [branch])
        if stmt.orelse:
            else_out = self.build_block(stmt.orelse, [branch])
            return body_out + else_out
        return body_out + [branch]

    def _stmt_While(self, stmt: ast.While, preds: List[int]) -> List[int]:
        test = self._new("branch", stmt.lineno, self._extract(stmt.test), "while")
        self._connect(preds, test)
        self._loops.append([])
        self._continue_targets.append(test)
        body_out = self.build_block(stmt.body, [test])
        self._connect(body_out, test)
        breaks = self._loops.pop()
        self._continue_targets.pop()
        outs = [test] + breaks
        if stmt.orelse:
            return self.build_block(stmt.orelse, [test]) + breaks
        return outs

    def _stmt_For(self, stmt: ast.For, preds: List[int]) -> List[int]:
        iter_du = self._extract(stmt.iter)
        target_du = self._extract(stmt.target)
        combined = DefUse(
            defs=list(target_du.defs),
            uses=list(iter_du.uses) + list(target_du.uses),
        )
        # The loop node is revisited on every iteration but the iterable
        # is evaluated once and the targets bind only while it yields:
        # no occurrence here fires on *every* visit of the node.
        combined.cond = set(combined.defs) | set(combined.uses)
        loop = self._new("loop", stmt.lineno, combined, "for")
        self._connect(preds, loop)
        self._loops.append([])
        self._continue_targets.append(loop)
        body_out = self.build_block(stmt.body, [loop])
        self._connect(body_out, loop)
        breaks = self._loops.pop()
        self._continue_targets.pop()
        if stmt.orelse:
            return self.build_block(stmt.orelse, [loop]) + breaks
        return [loop] + breaks

    def _stmt_Break(self, stmt: ast.Break, preds: List[int]) -> List[int]:
        node = self._new("stmt", stmt.lineno, DefUse(), "break")
        self._connect(preds, node)
        if self._loops:
            self._loops[-1].append(node)
        else:
            self.cfg.add_edge(node, EXIT)
        return []

    def _stmt_Continue(self, stmt: ast.Continue, preds: List[int]) -> List[int]:
        node = self._new("stmt", stmt.lineno, DefUse(), "continue")
        self._connect(preds, node)
        if self._continue_targets:
            self.cfg.add_edge(node, self._continue_targets[-1])
        else:
            self.cfg.add_edge(node, EXIT)
        return []

    def _stmt_With(self, stmt: ast.With, preds: List[int]) -> List[int]:
        current = preds
        for item in stmt.items:
            du = self._extract(item.context_expr)
            if item.optional_vars is not None:
                target_du = self._extract(item.optional_vars)
                du = DefUse(
                    defs=du.defs + target_du.defs,
                    uses=du.uses + target_du.uses,
                    cond=du.cond | target_du.cond,
                )
            node = self._new("stmt", stmt.lineno, du, "with")
            self._connect(current, node)
            current = [node]
        return self.build_block(stmt.body, current)

    def _stmt_Try(self, stmt: ast.Try, preds: List[int]) -> List[int]:
        # Conservative: a handler may be entered from the try entry or
        # after any point of the body; we approximate with {preds, body
        # exits} which is sufficient for the straight-line bodies found
        # in TDF models.
        body_out = self.build_block(stmt.body, preds)
        outs: List[int] = []
        if stmt.orelse:
            outs.extend(self.build_block(stmt.orelse, body_out))
        else:
            outs.extend(body_out)
        for handler in stmt.handlers:
            du = DefUse()
            if handler.type is not None:
                du = self._extract(handler.type)
            node = self._new("stmt", handler.lineno, du, "except")
            self._connect(preds + body_out, node)
            outs.extend(self.build_block(handler.body, [node]))
        if stmt.finalbody:
            return self.build_block(stmt.finalbody, outs)
        return outs


def build_cfg(
    func: ast.FunctionDef,
    in_ports: Set[str],
    out_ports: Set[str],
) -> Cfg:
    """Build the CFG of a processing() function body."""
    cfg = Cfg()
    local_names = assigned_local_names(func)
    builder = _Builder(cfg, in_ports, out_ports, local_names)
    outs = builder.build_block(func.body, [ENTRY])
    for node in outs:
        cfg.add_edge(node, EXIT)
    if not cfg.pred[EXIT]:
        # Function body cannot fall through (e.g. infinite loop): keep
        # EXIT reachable from ENTRY so wrap-around analyses stay sound.
        cfg.add_edge(ENTRY, EXIT)
    return cfg
