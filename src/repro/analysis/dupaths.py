"""du-path classification: Strong vs Firm (paper §IV-B1).

For a pair ``(v, d, u)`` that the reaching analysis established (so at
least one du-path exists), the paper distinguishes:

* **Strong** — *every* static path from ``d`` to ``u`` is a du-path
  (no redefinition of ``v`` can occur in between);
* **Firm** — at least one static path from ``d`` to ``u`` contains a
  redefinition of ``v``.

Naive path enumeration is exponential; the equivalent reachability
formulation is polynomial and exact: some path ``d -> ... -> u``
contains a redefinition iff there is a defining node ``k`` of ``v``
with ``d ->+ k`` and ``k ->+ u`` (both through at least one edge).
``k`` may be ``d`` or ``u`` itself when it lies on a cycle — the
second visit of the node is then the in-between redefinition.  This is
the "du-path search that prunes at redefinitions and memoizes" of
DESIGN.md: the memo is the transitive closure.
"""

from __future__ import annotations

from typing import Dict, Set

from .astutils import VarRef
from .cfg import Cfg
from .reaching import NodePair


def transitive_closure(cfg: Cfg) -> Dict[int, Set[int]]:
    """``closure[n]`` = nodes reachable from ``n`` via one or more edges."""
    closure: Dict[int, Set[int]] = {}
    # Iterative DFS per node; graphs are statement-sized so O(N*E) is fine.
    for node in cfg.nodes:
        reached: Set[int] = set()
        stack = list(cfg.succ[node.nid])
        while stack:
            current = stack.pop()
            if current in reached:
                continue
            reached.add(current)
            stack.extend(cfg.succ[current])
        closure[node.nid] = reached
    return closure


def has_non_du_path(
    pair: NodePair,
    def_nodes_of_var: Set[int],
    closure: Dict[int, Set[int]],
) -> bool:
    """Whether some static path from def to use redefines the variable."""
    d, u = pair.def_node, pair.use_node
    for k in def_nodes_of_var:
        if k in closure[d] and u in closure[k]:
            return True
    return False


def is_strong_local(
    pair: NodePair,
    def_nodes: Dict[VarRef, Set[int]],
    closure: Dict[int, Set[int]],
) -> bool:
    """Strong iff no redefinition lies on any def->use path."""
    return not has_non_du_path(pair, def_nodes.get(pair.var, set()), closure)
