"""Extraction of definitions and uses from AST fragments.

Given the sets of input/output port names of a model, this module walks
an AST statement (or expression) and reports every definition and use
together with its precise line number, using the :class:`VarRef`
mapping documented in :mod:`repro.analysis.astutils`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Set, Tuple

from .astutils import (
    KERNEL_ATTRS,
    RefKind,
    VarRef,
    port_read_target,
    port_write_target,
    self_attribute,
)

#: A reference occurrence: (variable, 1-based AST line).
Occurrence = Tuple[VarRef, int]


@dataclass
class DefUse:
    """Definitions and uses found in one AST fragment, in source order."""

    defs: List[Occurrence] = field(default_factory=list)
    uses: List[Occurrence] = field(default_factory=list)
    #: Occurrences (defs or uses) that may not execute every time the
    #: fragment does: non-first operands of ``and``/``or``, the arms of a
    #: conditional expression, comprehension parts, and ``for`` loop
    #: targets (which fire per iteration, not per node visit).  Anything
    #: NOT in here is guaranteed to fire whenever the fragment runs.
    cond: Set[Occurrence] = field(default_factory=set)

    def def_vars(self) -> Set[VarRef]:
        """The set of variables defined."""
        return {ref for ref, _ in self.defs}

    def use_vars(self) -> Set[VarRef]:
        """The set of variables used."""
        return {ref for ref, _ in self.uses}

    def is_conditional(self, occ: Occurrence) -> bool:
        """Whether ``occ`` may be skipped on some executions of the fragment."""
        return occ in self.cond


class _Extractor(ast.NodeVisitor):
    """Collects defs/uses; port accesses take priority over the generic
    attribute/name rules."""

    def __init__(
        self,
        in_ports: Set[str],
        out_ports: Set[str],
        local_names: Set[str],
    ) -> None:
        self.in_ports = in_ports
        self.out_ports = out_ports
        self.local_names = local_names
        self.result = DefUse()
        # Depth of enclosing conditionally-evaluated contexts (short
        # circuit operands, IfExp arms, comprehension bodies).
        self._cond_depth = 0

    # -- reference emission -------------------------------------------------

    def _use(self, ref: VarRef, line: int) -> None:
        self.result.uses.append((ref, line))
        if self._cond_depth:
            self.result.cond.add((ref, line))

    def _def(self, ref: VarRef, line: int) -> None:
        self.result.defs.append((ref, line))
        if self._cond_depth:
            self.result.cond.add((ref, line))

    def _visit_conditional(self, node: ast.AST) -> None:
        self._cond_depth += 1
        try:
            self.visit(node)
        finally:
            self._cond_depth -= 1

    # -- calls: port reads and writes ----------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        write_target = port_write_target(node)
        if write_target is not None and write_target in self.out_ports:
            # Arguments are evaluated (uses) before the write (def).
            for arg in node.args:
                self.visit(arg)
            for kw in node.keywords:
                self.visit(kw.value)
            self._def(VarRef(RefKind.OUT_PORT, write_target), node.lineno)
            return
        read_target = port_read_target(node)
        if read_target is not None and read_target in self.in_ports:
            self._use(VarRef(RefKind.IN_PORT, read_target), node.lineno)
            for arg in node.args:
                self.visit(arg)
            for kw in node.keywords:
                self.visit(kw.value)
            return
        # Ordinary call: don't treat the callee attribute chain as a
        # member use (``self.helper()``), but do visit a non-trivial
        # callee expression and all arguments.
        if isinstance(node.func, ast.Attribute):
            if self_attribute(node.func) is None:
                self.visit(node.func.value)
        elif not isinstance(node.func, ast.Name):
            self.visit(node.func)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    # -- attributes: members (and mutations through methods) ------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self_attribute(node)
        if attr is not None:
            if attr in self.in_ports or attr in self.out_ports:
                # Bare port attribute access (e.g. passing the port to a
                # helper): neither def nor use at this level.
                return
            if attr in KERNEL_ATTRS:
                return
            if isinstance(node.ctx, ast.Store):
                self._def(VarRef(RefKind.MEMBER, attr), node.lineno)
            elif isinstance(node.ctx, ast.Load):
                self._use(VarRef(RefKind.MEMBER, attr), node.lineno)
            elif isinstance(node.ctx, ast.Del):
                self._def(VarRef(RefKind.MEMBER, attr), node.lineno)
            return
        self.generic_visit(node)

    # -- names: locals ----------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if node.id == "self":
            return
        if node.id not in self.local_names:
            # Globals, builtins, imported helpers: not model state.
            return
        ref = VarRef(RefKind.LOCAL, node.id)
        if isinstance(node.ctx, ast.Store):
            self._def(ref, node.lineno)
        elif isinstance(node.ctx, ast.Load):
            self._use(ref, node.lineno)
        elif isinstance(node.ctx, ast.Del):
            self._def(ref, node.lineno)

    # -- assignment forms: ensure value is visited before targets -----------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self.visit(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self.visit(node.target)
        # A bare annotation (``x: int``) neither defines nor uses.

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``x += e`` both uses and defines x.
        self.visit(node.value)
        target = node.target
        if isinstance(target, ast.Name):
            if target.id in self.local_names:
                ref = VarRef(RefKind.LOCAL, target.id)
                self._use(ref, target.lineno)
                self._def(ref, target.lineno)
            return
        attr = self_attribute(target)
        if attr is not None and attr not in KERNEL_ATTRS:
            ref = VarRef(RefKind.MEMBER, attr)
            self._use(ref, target.lineno)
            self._def(ref, target.lineno)
            return
        self.visit(target)

    # -- conditionally-evaluated expression contexts ---------------------------

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        # ``a and b``: only the first operand is guaranteed to evaluate.
        self.visit(node.values[0])
        for value in node.values[1:]:
            self._visit_conditional(value)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        # The test always evaluates; exactly one arm does.
        self.visit(node.test)
        self._visit_conditional(node.body)
        self._visit_conditional(node.orelse)

    def _visit_comprehension(self, node: ast.AST) -> None:
        # A comprehension body/conditions may run zero times; treat every
        # occurrence inside as conditional (the outermost iterable does
        # evaluate, but over-marking is the safe direction).
        self._visit_conditional_children(node)

    def _visit_conditional_children(self, node: ast.AST) -> None:
        self._cond_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._cond_depth -= 1

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested function definitions are opaque to the analysis.
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


def extract(
    fragment: ast.AST,
    in_ports: Set[str],
    out_ports: Set[str],
    local_names: Set[str],
) -> DefUse:
    """Extract all defs/uses from ``fragment``.

    ``local_names`` is the set of names assigned anywhere in the
    enclosing function (see
    :func:`repro.analysis.astutils.assigned_local_names`); name loads
    outside it are treated as globals/builtins and ignored.
    """
    extractor = _Extractor(in_ports, out_ports, local_names)
    extractor.visit(fragment)
    return extractor.result
