"""Cluster-level static analysis (paper §V, step 2).

Combines the per-model analyses with the netlist binding information:

* output-port definition sites are traced through the netlist
  (:func:`repro.analysis.netlist.trace_branches`) and become Strong /
  PFirm / PWeak associations according to which branch mix (original /
  redefined) reaches each using model (paper §IV-B1);
* input-port placeholder associations (def anchored at the model start)
  are *resolved* — replaced by the cross-model association — whenever an
  analysed model's definition reaches the port; ports fed only by the
  testbench keep their placeholder (Table I's
  ``(ip_signal_in, 1, TS, 3, TS)``);
* uses inside ``OPAQUE_USES`` library models are anchored at the
  netlist bind statement of the consuming port, with the *cluster* as
  the using model (Table I's ``(op_mux_out, 77, sense_top, 79,
  sense_top)``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..obs import get_telemetry
from ..core.associations import (
    AssocClass,
    Association,
    Definition,
    SourceLocation,
    VarScope,
)
from ..tdf.cluster import Cluster
from ..tdf.module import TdfModule
from ..tdf.ports import TdfIn
from .model_analysis import ModelAnalysis, PortDefSite, analyze_model
from .netlist import Branch, RedefAnchor, trace_branches


@dataclass
class StaticAnalysisResult:
    """Everything the static stage hands to coverage evaluation."""

    cluster: str
    #: All data-flow associations, classified.
    associations: List[Association] = field(default_factory=list)
    #: Every definition site (for the all-defs criterion).
    definitions: List[Definition] = field(default_factory=list)
    #: Per-model analyses keyed by model name.
    models: Dict[str, ModelAnalysis] = field(default_factory=dict)
    #: Diagnostics: output-port writes that never reach the activation end.
    dead_port_writes: List[PortDefSite] = field(default_factory=list)
    #: Diagnostics: input ports bound to driverless signals.
    undriven_input_ports: List[str] = field(default_factory=list)
    #: Model start line per model (used by the dynamic matcher to anchor
    #: testbench-driven placeholder definitions).
    model_start_lines: Dict[str, int] = field(default_factory=dict)
    #: Fingerprint of the analysed inputs (processing sources + netlist);
    #: the memoization key, also used to scope dynamic-result caches.
    fingerprint: Optional[str] = None

    def by_class(self, klass: AssocClass) -> List[Association]:
        """Associations of one class."""
        return [a for a in self.associations if a.klass is klass]

    def counts(self) -> Dict[AssocClass, int]:
        """Association count per class."""
        result = {klass: 0 for klass in AssocClass}
        for assoc in self.associations:
            result[assoc.klass] += 1
        return result


def _is_analyzable(module: TdfModule) -> bool:
    return not module.TESTBENCH and not module.REDEFINING


def _use_anchors(
    cluster: Cluster,
    branch: Branch,
    models: Dict[str, ModelAnalysis],
) -> List[SourceLocation]:
    """Use anchors of ``branch.reader`` in its terminal module."""
    module = branch.module
    if module.OPAQUE_USES:
        site = branch.reader.bind_site
        if site is None:
            return []
        return [SourceLocation(model=cluster.name, line=site.lineno, file=site.filename)]
    analysis = models.get(module.name)
    if analysis is None:
        return []
    return [
        SourceLocation(model=module.name, line=use.line, file=analysis.source.filename)
        for use in analysis.in_port_uses
        if use.port == branch.reader.name
    ]


_UNSET = object()


def analyze_cluster(
    cluster: Cluster, telemetry=None, cache=_UNSET
) -> StaticAnalysisResult:
    """Run the complete static data-flow analysis over ``cluster``.

    Module ``set_attributes()`` must not be required: the analysis is
    purely structural (bindings + source), so it can run before any
    simulation.  Per-model CFG/def-use extraction time and the final
    association counts by class are recorded into ``telemetry`` (the
    globally active session when not given).

    Results are memoized on a fingerprint of the processing sources and
    the netlist (see :mod:`repro.analysis.cache`): by default the
    process-wide :func:`~repro.analysis.cache.get_default_cache` is
    consulted; pass an explicit :class:`StaticAnalysisCache` to use a
    private one, or ``cache=None`` to force a fresh analysis.
    """
    from .cache import fingerprint_cluster, get_default_cache

    tel = telemetry if telemetry is not None else get_telemetry()
    if cache is _UNSET:
        cache = get_default_cache()
    fingerprint = fingerprint_cluster(cluster)
    if cache is not None:
        cached = cache.get(fingerprint)
        if cached is not None:
            tel.metrics.counter(
                "analysis.cache_hits", cluster=cluster.name
            ).inc()
            return cached
        tel.metrics.counter("analysis.cache_misses", cluster=cluster.name).inc()
    result = StaticAnalysisResult(cluster=cluster.name, fingerprint=fingerprint)
    models: Dict[str, ModelAnalysis] = {}
    for module in cluster.modules:
        if _is_analyzable(module):
            if tel.enabled:
                t0 = time.perf_counter()
                analysis = analyze_model(module)
                tel.metrics.histogram(
                    "analysis.model_seconds", cluster=cluster.name
                ).observe(time.perf_counter() - t0)
                tel.metrics.counter(
                    "analysis.models_analyzed", cluster=cluster.name
                ).inc()
            else:
                analysis = analyze_model(module)
            models[module.name] = analysis
            result.model_start_lines[module.name] = analysis.source.def_line
    result.models = models

    # Intra-model associations and definition sites.
    for analysis in models.values():
        result.associations.extend(analysis.associations)
        result.definitions.extend(analysis.definitions)
        result.dead_port_writes.extend(analysis.dead_port_writes)

    # Cluster-level: trace every escaping output-port definition.
    resolved_ports: Set[Tuple[str, str]] = set()
    port_associations: List[Association] = []
    redef_definitions: Dict[Tuple[str, int], Definition] = {}
    seen_keys: Set[Tuple] = set()

    for module in cluster.modules:
        analysis = models.get(module.name)
        if analysis is None:
            continue
        for def_site in analysis.out_port_defs:
            port = module.port(def_site.port)
            branches = trace_branches(port)  # type: ignore[arg-type]
            _emit_port_associations(
                cluster,
                def_site,
                branches,
                models,
                port_associations,
                resolved_ports,
                redef_definitions,
                seen_keys,
            )

    result.associations.extend(port_associations)
    result.definitions.extend(redef_definitions.values())

    # Keep unresolved input-port placeholders.
    for analysis in models.values():
        module = cluster.module(analysis.model)
        if module.OPAQUE_USES:
            continue
        for assoc in analysis.placeholder_associations:
            if (analysis.model, assoc.var) in resolved_ports:
                continue
            result.associations.append(assoc)
            placeholder_def = Definition(
                var=assoc.var, location=assoc.definition, scope=VarScope.PORT
            )
            if placeholder_def not in result.definitions:
                result.definitions.append(placeholder_def)

    for port in cluster.undriven_inputs():
        result.undriven_input_ports.append(port.full_name())

    if tel.enabled:
        for klass, count in result.counts().items():
            tel.metrics.counter(
                "analysis.associations", cluster=cluster.name, klass=klass.value
            ).inc(count)
        tel.metrics.counter(
            "analysis.definitions", cluster=cluster.name
        ).inc(len(result.definitions))
    if cache is not None:
        cache.put(fingerprint, result)
    return result


def _emit_port_associations(
    cluster: Cluster,
    def_site: PortDefSite,
    branches: List[Branch],
    models: Dict[str, ModelAnalysis],
    out: List[Association],
    resolved_ports: Set[Tuple[str, str]],
    redef_definitions: Dict[Tuple[str, int], Definition],
    seen_keys: Set[Tuple],
) -> None:
    """Classify the branches of one definition site (paper §IV-B1)."""
    # Group terminals by using module.
    by_module: Dict[str, List[Branch]] = {}
    for branch in branches:
        by_module.setdefault(branch.module.name, []).append(branch)

    def_loc = SourceLocation(model=def_site.model, line=def_site.line)

    for module_name, group in by_module.items():
        originals = [b for b in group if not b.redefined]
        redefined = [b for b in group if b.redefined]
        mixed = bool(originals) and bool(redefined)

        for branch in originals:
            # Note: a later write of the same port on some path to EXIT
            # does not weaken the association — the paper restricts
            # port redefinition to cluster-level library elements
            # (§IV-B1); intra-model overwrites surface only in the
            # dead-write diagnostics.
            klass = AssocClass.PFIRM if mixed else AssocClass.STRONG
            _mark_resolved(branch, resolved_ports)
            for use_loc in _use_anchors(cluster, branch, models):
                _append(out, seen_keys, Association(
                    var=def_site.port,
                    definition=def_loc,
                    use=use_loc,
                    klass=klass,
                    scope=VarScope.PORT,
                ))

        for branch in redefined:
            anchor = branch.anchor
            if anchor is None:
                continue
            klass = AssocClass.PFIRM if mixed else AssocClass.PWEAK
            redef_loc = SourceLocation(model=cluster.name, line=anchor.line, file=anchor.file)
            _mark_resolved(branch, resolved_ports)
            for use_loc in _use_anchors(cluster, branch, models):
                _append(out, seen_keys, Association(
                    var=def_site.port,
                    definition=redef_loc,
                    use=use_loc,
                    klass=klass,
                    scope=VarScope.PORT,
                ))
            key = (def_site.port, anchor.line)
            if key not in redef_definitions:
                redef_definitions[key] = Definition(
                    var=def_site.port, location=redef_loc, scope=VarScope.PORT
                )


def _mark_resolved(branch: Branch, resolved_ports: Set[Tuple[str, str]]) -> None:
    module = branch.module
    if not module.OPAQUE_USES:
        resolved_ports.add((module.name, branch.reader.name))


def _append(out: List[Association], seen: Set[Tuple], assoc: Association) -> None:
    key = (assoc.key, assoc.klass)
    if key in seen:
        return
    seen.add(key)
    out.append(assoc)
