"""Extension: a RISC-V based mixed-signal platform (paper §VII).

The paper closes with "we plan to investigate our proposed methodology
on system-level verification of mixed-signal platforms using the RISC-V
VP".  This module builds exactly that kind of platform on this repo's
substrates:

* an AMS front-end — sensor stimulus, scaling amplifier (redefining
  gain), 10-bit ADC;
* a :class:`RiscvCpuTdf` model wrapping the :mod:`repro.rv32`
  interpreter: every TDF activation latches the ADC sample into a
  memory-mapped register and lets the firmware execute a bounded number
  of instructions;
* firmware (real RV32I assembly, assembled at elaboration) implementing
  a hysteresis alarm plus a DAC-driven actuator command;
* an analog back-end — DAC and actuator smoothing filter.

The DFT methodology applies at the *model* level, exactly like the
paper's TDF analysis: the CPU wrapper's defs/uses (sample mailbox,
MMIO latches, halt flag) are analysed and instrumented like any other
processing(); the firmware itself is data, not model source — its
verification is the firmware toolchain's job (see DESIGN.md).

Memory map (word registers):

=========  =======================================
``0x400``  ADC sample (read-only, latched per activation)
``0x404``  DAC command (write)
``0x408``  alarm flag (write)
``0x40C``  activation counter (read-only)
=========  =======================================
"""

from __future__ import annotations

from ..rv32 import Memory, Rv32Core, assemble
from ..tdf import Cluster, ScaTime, TdfIn, TdfModule, TdfOut, ms
from ..tdf.library import (
    AdcTdf,
    DacTdf,
    GainTdf,
    IirLowPassTdf,
    LedSink,
    NullSink,
    StimulusSource,
)

MMIO_ADC = 0x400
MMIO_DAC = 0x404
MMIO_ALARM = 0x408
MMIO_TICKS = 0x40C

#: Default firmware: hysteresis alarm + actuator shutdown.
#:
#: Registers: s0 = HI threshold, s1 = LO threshold, s2 = alarm state,
#: s3 = nominal DAC command.  The loop reads the ADC register, updates
#: the alarm with hysteresis, commands the DAC (0 when alarmed) and
#: yields by spinning on the tick register until the next activation.
DEFAULT_FIRMWARE = """
    li   s0, 700        # HI threshold (ADC counts)
    li   s1, 500        # LO threshold
    li   s2, 0          # alarm state
    li   s3, 512        # nominal DAC command

main_loop:
    lw   t0, 0x40C(zero)    # current activation tick
wait_tick:
    lw   t1, 0x40C(zero)
    beq  t1, t0, wait_tick  # spin until the platform advances

    lw   a0, 0x400(zero)    # sampled sensor value
    bnez s2, check_clear
    blt  a0, s0, drive      # below HI: keep driving
    li   s2, 1              # latch the alarm
    j    drive
check_clear:
    bge  a0, s1, drive      # still above LO: stay alarmed
    li   s2, 0
drive:
    sw   s2, 0x408(zero)    # alarm flag
    beqz s2, normal
    sw   zero, 0x404(zero)  # alarmed: shut the actuator down
    j    main_loop
normal:
    sw   s3, 0x404(zero)    # nominal actuator command
    j    main_loop
"""


class RiscvCpuTdf(TdfModule):
    """A RISC-V microcontroller as a TDF model.

    Each activation latches the ADC input into the memory-mapped sample
    register, bumps the tick register (releasing the firmware's wait
    loop), executes up to ``ipc`` instructions, and drives the output
    ports from the MMIO latches.  A halted core (``ebreak`` or an
    execution fault) freezes the outputs — observable in the coverage
    report as the drive pairs going dead.
    """

    def __init__(self, name: str, firmware: str = DEFAULT_FIRMWARE, ipc: int = 64) -> None:
        super().__init__(name)
        self.ip_adc = TdfIn()
        self.ip_cmd_prev = TdfIn()
        self.op_dac = TdfOut()
        self.op_alarm = TdfOut()
        self.m_ipc = int(ipc)
        self.m_sample = 0
        self.m_ticks = 0
        self.m_dac_latch = 0
        self.m_alarm_latch = 0
        self.m_fault = False
        self.m_glitches = 0
        self._firmware = firmware
        self._mem = Memory()
        self._core = Rv32Core(self._mem)
        self._install()

    def _install(self) -> None:
        self._mem.load_program(assemble(self._firmware))
        self._mem.map_load(MMIO_ADC, lambda: self.m_sample)
        self._mem.map_load(MMIO_TICKS, lambda: self.m_ticks)
        self._mem.map_store(MMIO_DAC, self._store_dac)
        self._mem.map_store(MMIO_ALARM, self._store_alarm)

    def _store_dac(self, value: int) -> None:
        self.m_dac_latch = value

    def _store_alarm(self, value: int) -> None:
        self.m_alarm_latch = value

    def initialize(self) -> None:
        self.m_sample = 0
        self.m_ticks = 0
        self.m_dac_latch = 0
        self.m_alarm_latch = 0
        self.m_fault = False
        self.m_glitches = 0
        self._mem = Memory()
        self._core = Rv32Core(self._mem)
        self._install()

    def processing(self) -> None:
        sample = self.ip_adc.read()
        self.m_sample = int(sample)
        self.m_ticks = self.m_ticks + 1
        budget = self.m_ipc
        if not self.m_fault:
            while budget > 0:
                budget = budget - 1
                try:
                    self._core.step()
                except Exception:
                    self.m_fault = True
                    break
                if self._core.halted:
                    self.m_fault = True
                    break
        # Watchdog: compare the previous command (observed through the
        # history delay) against the fresh latch; a large step without
        # an alarm transition counts as a command glitch.
        cmd_prev = self.ip_cmd_prev.read()
        delta = self.m_dac_latch - cmd_prev
        if delta < 0:
            delta = -delta
        if delta > 256 and self.m_ticks > 1:
            self.m_glitches = self.m_glitches + 1
        self.op_dac.write(self.m_dac_latch)
        self.op_alarm.write(self.m_alarm_latch)

    # -- introspection helpers (testbench/debug) ------------------------------

    @property
    def instructions_retired(self) -> int:
        """Total firmware instructions executed so far."""
        return self._core.instret


class RiscvPlatformTop(Cluster):
    """Sensor -> amplifier -> ADC -> RISC-V MCU -> DAC -> actuator filter."""

    def __init__(self, name: str = "riscv_platform", timestep: ScaTime = ms(1),
                 firmware: str = DEFAULT_FIRMWARE) -> None:
        self._timestep = timestep
        self._firmware = firmware
        super().__init__(name)

    def architecture(self) -> None:
        # Testbench stimulus: sensor voltage in volts.
        self.sensor_src = self.add(
            StimulusSource("sensor_src", lambda t: 0.1, self._timestep)
        )
        # AMS front-end.
        self.afe_gain = self.add(GainTdf("afe_gain", gain=1000.0))   # V -> counts
        self.adc = self.add(AdcTdf("adc", bits=10, lsb=1.0))
        # Digital core.
        self.cpu = self.add(RiscvCpuTdf("cpu", firmware=self._firmware))
        # Analog back-end.
        self.dac = self.add(DacTdf("dac", bits=10, lsb=1.0 / 1024.0))
        self.actuator_filter = self.add(IirLowPassTdf("actuator_filter", alpha=0.9))
        # Observers.
        self.alarm_led = self.add(LedSink("alarm_led"))
        self.actuator_sink = self.add(NullSink("actuator_sink"))

        # Command-history delay: the CPU watchdog sees its own command
        # only through the delay element (a PWeak association).
        from ..tdf.library import DelayTdf

        self.i_cmd_hist = self.add(DelayTdf("i_cmd_hist", delay=1))

        sensor = self.signal("sensor")
        sensor_scaled = self.signal("sensor_scaled")
        self.sensor_src.op.bind(sensor)
        self.afe_gain.ip.bind(sensor)
        self.afe_gain.op.bind(sensor_scaled)
        self.adc.adc_i.bind(sensor_scaled)
        self.connect(self.adc.adc_o, self.cpu.ip_adc, name="adc_din")
        dac_cmd = self.signal("dac_cmd")
        dac_cmd_prev = self.signal("dac_cmd_prev")
        self.cpu.op_dac.bind(dac_cmd)
        self.dac.dac_i.bind(dac_cmd)
        self.i_cmd_hist.ip.bind(dac_cmd)
        self.i_cmd_hist.op.bind(dac_cmd_prev)
        self.cpu.ip_cmd_prev.bind(dac_cmd_prev)
        self.connect(self.dac.dac_o, self.actuator_filter.ip, name="dac_out")
        self.connect(self.actuator_filter.op, self.actuator_sink.ip, name="actuator")
        self.connect(self.cpu.op_alarm, self.alarm_led.ip, name="alarm")

    # -- testbench helpers ----------------------------------------------------------

    def apply_sensor(self, waveform) -> None:
        """Install the sensor waveform (volts over seconds)."""
        self.sensor_src.set_waveform(waveform)


def paper_style_testcases():
    """A starter suite for the platform (quiet / overheat / recovery)."""
    from ..testing import Constant, Pwl, TestCase

    def quiet(cluster):
        cluster.apply_sensor(Constant(0.1, name="quiet"))

    def overheat(cluster):
        cluster.apply_sensor(Constant(0.8, name="overheat"))

    def recovery(cluster):
        cluster.apply_sensor(Pwl(
            [(0.0, 0.1), (0.01, 0.8), (0.02, 0.8), (0.03, 0.2)], name="recovery"
        ))

    return [
        TestCase("rv_quiet", ms(30), quiet, "sensor well below threshold"),
        TestCase("rv_overheat", ms(30), overheat, "sensor above the HI threshold"),
        TestCase("rv_recovery", ms(60), recovery, "overheat then fall below LO"),
    ]
