"""The paper's running example: an IoT sensor system (Fig. 1 / Fig. 2).

A temperature sensor (TS) and a humidity sensor (HS) feed a 3-input
analog mux (AM); the mux output passes a gain element and a 9-bit ADC
into a digital control model (ctrl) that drives two LEDs and the mux
select line.  The TS output additionally passes an analog delay
(``Z^-1``) into the mux's second input, so the controller can re-read a
held sample.

The Python models below port the C++ of Fig. 2 statement-for-statement,
preserving the def-use structure the paper's Table I enumerates —
including the two seeded issues the paper discusses:

* the **ADC interface bug**: with 9-bit resolution anything above
  512 mV saturates, so the controller never sees more than 51.2 °C and
  the ``T_LED`` associations (Fig. 2 lines 49-52) stay unexercised
  under TC2;
* the **PFirm/PWeak structure**: ``op_signal_out`` reaches AM both
  directly and through the delay (PFirm), and ``op_mux_out`` reaches
  the ADC only through the gain (PWeak).

Units follow the paper: sensor inputs are volts; the sensors output
millivolts; ``ctrl`` divides by the scale factor 10 to get °C.
"""

from __future__ import annotations

from ..tdf import Cluster, ScaTime, TdfIn, TdfModule, TdfOut, ms
from ..tdf.library import (
    AdcTdf,
    DelayTdf,
    GainTdf,
    LedSink,
    StimulusSource,
)

# Humidity sensor constants (paper Fig. 2 caption, from [17]).
B1 = 0.0014     # %RH / degC
B2 = 0.1325     # %RH / degC
B3 = -0.0317
B4 = -3.0876    # %RH


class TS(TdfModule):
    """Temperature sensor (Fig. 2, lines 1-16)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip_signal_in = TdfIn()
        self.ip_hold = TdfIn()
        self.ip_clear = TdfIn()
        self.op_intr = TdfOut()
        self.op_signal_out = TdfOut()

    def processing(self) -> None:
        sig_in = self.ip_signal_in.read()           # volts
        tmpr = sig_in * 1000                        # millivolts
        out_tmpr = 0.0
        intr_ = False
        if not self.ip_hold.read():
            if self.ip_clear.read():
                intr_ = False
            elif tmpr > 30 and tmpr < 1500:
                out_tmpr = tmpr
                intr_ = True
            self.op_intr.write(intr_)
            self.op_signal_out.write(out_tmpr)


class HS(TdfModule):
    """Humidity sensor (Fig. 2, lines 18-30)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip_signal_in = TdfIn()
        self.op_intr = TdfOut()
        self.op_signal_out = TdfOut()

    def processing(self) -> None:
        temp = self.ip_signal_in.read() * 1000      # mV
        Tdepend = (B1 * 42 + B2) * temp + (B3 * 42 + B4)
        C = 153e-12                                 # capacitance
        BC = 150e-12                                # bulk capacitance at 30%RH
        sensitivity = 0.25e-12
        intr_ = False
        newRH = 30 + ((C - BC) / sensitivity) + Tdepend
        if newRH > 30:
            intr_ = True
        self.op_intr.write(intr_)
        self.op_signal_out.write(newRH)


class AM(TdfModule):
    """3-input analog mux (Fig. 2, lines 32-39)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip_select = TdfIn()
        self.ip_port_0 = TdfIn()
        self.ip_port_1 = TdfIn()
        self.ip_port_2 = TdfIn()
        self.op_mux_out = TdfOut()

    def processing(self) -> None:
        tmp_out = 0.0
        if self.ip_select.read() == 0:
            tmp_out = self.ip_port_0.read()
        elif self.ip_select.read() == 1:
            tmp_out = self.ip_port_1.read()
        elif self.ip_select.read() == 2:
            tmp_out = self.ip_port_2.read()
        self.op_mux_out.write(tmp_out)


class Ctrl(TdfModule):
    """Digital control model (Fig. 2, lines 41-68).

    Translates the ADC code into a temperature by dividing by the scale
    factor 10 (200 mV -> 20 degC), runs the hold/clear/LED state
    machine, and drives the mux select line from the member
    ``m_mux_s``.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip_intr0 = TdfIn()
        self.ip_intr1 = TdfIn()
        self.ip_DIN = TdfIn()
        self.op_hold = TdfOut()
        self.op_clear = TdfOut()
        self.op_T_LED = TdfOut()
        self.op_H_LED = TdfOut()
        self.op_mux_s = TdfOut()
        self.m_mux_s = 0

    def set_attributes(self) -> None:
        # The controller closes the feedback loop: one-sample delays on
        # its inputs break the cycle for the static schedule, so ctrl
        # reacts to the sensors/ADC of the previous sample while the
        # sensors and mux see the controller's current outputs.
        self.ip_intr0.set_delay(1)
        self.ip_intr1.set_delay(1)
        self.ip_DIN.set_delay(1)

    def processing(self) -> None:
        if self.ip_intr0.read():
            if (self.ip_DIN.read() / 10) < 60:
                self.op_clear.write(1)
                self.m_mux_s = 0
                self.op_hold.write(0)
            elif self.m_mux_s == 1 and (self.ip_DIN.read() / 10) > 60:
                self.op_T_LED.write(1)
                self.op_clear.write(1)
                self.op_hold.write(0)
                self.m_mux_s = 0
            elif self.m_mux_s == 0 and (self.ip_DIN.read() / 10) > 50:
                self.m_mux_s = 1
                self.op_hold.write(1)
            else:
                self.op_hold.write(0)
                self.op_clear.write(1)
                self.m_mux_s = 0
        elif self.ip_intr1.read() and self.m_mux_s == 2:
            if self.ip_DIN.read() > 45:
                self.op_H_LED.write(1)
            self.m_mux_s = 0
        elif self.ip_intr1.read():
            self.m_mux_s = 2
        self.op_mux_s.write(self.m_mux_s)
        if self.ip_intr0.read() == 0:
            self.op_clear.write(0)


class SenseTop(Cluster):
    """The sensor-system TDF cluster (Fig. 2, ``sense_top::architecture``)."""

    def __init__(
        self,
        name: str = "sense_top",
        timestep: ScaTime = ms(1),
        adc_bits: int = 9,
    ) -> None:
        self._timestep = timestep
        self._adc_bits = adc_bits
        super().__init__(name)

    def architecture(self) -> None:
        # Testbench stimuli (outside the analysed DUV, like the paper's
        # test input signals applied to TS and HS).  At rest the HS
        # input sits at its -0.1 V bias point, which keeps newRH below
        # the 30 %RH interrupt threshold (0 V would read 37.6 %RH and
        # flood the controller with humidity interrupts).
        self.ts_src = self.add(StimulusSource("ts_src", lambda t: 0.0, self._timestep))
        self.hs_src = self.add(StimulusSource("hs_src", lambda t: -0.1, self._timestep))

        # DUV models.
        self.ts = self.add(TS("TS"))
        self.hs = self.add(HS("HS"))
        self.am = self.add(AM("AM"))
        self.ctrl = self.add(Ctrl("ctrl"))
        self.i_delay_tdf1 = self.add(DelayTdf("i_delay_tdf1", delay=1))
        self.i_gain_tdf1 = self.add(GainTdf("i_gain_tdf1", gain=1.0))
        self.i_adc1 = self.add(AdcTdf("i_adc1", bits=self._adc_bits, lsb=1.0))

        # LEDs (testbench observers).
        self.t_led = self.add(LedSink("T_LED"))
        self.h_led = self.add(LedSink("H_LED"))

        # Netlist (Fig. 2, lines 70-82).  Bind-call lines below anchor
        # the PFirm/PWeak associations exactly like the paper's netlist.
        op_signal_out = self.signal("op_signal_out")
        op_delay_out = self.signal("op_delay_out")
        op_mux_out = self.signal("op_mux_out")
        op_gain_out = self.signal("op_gain_out")
        op_adc_out = self.signal("op_adc_out")

        self.ts.op_signal_out.bind(op_signal_out)
        self.i_delay_tdf1.ip.bind(op_signal_out)
        self.i_delay_tdf1.op.bind(op_delay_out)
        self.am.op_mux_out.bind(op_mux_out)
        self.i_gain_tdf1.ip.bind(op_mux_out)
        self.i_gain_tdf1.op.bind(op_gain_out)
        self.i_adc1.adc_i.bind(op_gain_out)
        self.i_adc1.adc_o.bind(op_adc_out)
        self.am.ip_port_0.bind(op_signal_out)
        self.am.ip_port_1.bind(op_delay_out)
        self.ctrl.ip_DIN.bind(op_adc_out)

        self.connect(self.ts_src.op, self.ts.ip_signal_in, name="ts_in")
        self.connect(self.hs_src.op, self.hs.ip_signal_in, name="hs_in")
        self.connect(self.hs.op_signal_out, self.am.ip_port_2, name="hs_out")
        self.connect(self.ts.op_intr, self.ctrl.ip_intr0, name="intr0")
        self.connect(self.hs.op_intr, self.ctrl.ip_intr1, name="intr1")
        self.connect(self.ctrl.op_hold, self.ts.ip_hold, name="hold")
        self.connect(self.ctrl.op_clear, self.ts.ip_clear, name="clear")
        self.connect(self.ctrl.op_mux_s, self.am.ip_select, name="mux_s")
        self.connect(self.ctrl.op_T_LED, self.t_led.ip, name="t_led_sig")
        self.connect(self.ctrl.op_H_LED, self.h_led.ip, name="h_led_sig")

    # -- testbench helpers ---------------------------------------------------

    def apply_ts_waveform(self, waveform) -> None:
        """Install a waveform (volts over seconds) on the TS input."""
        self.ts_src.set_waveform(waveform)

    def apply_hs_waveform(self, waveform) -> None:
        """Install a waveform (volts over seconds) on the HS input."""
        self.hs_src.set_waveform(waveform)


def paper_testcases():
    """The paper's three testcases (§IV-B3).

    * TC1 — a constant 0.1 V signal (10 °C) on TS;
    * TC2 — a ramp 0 V -> 0.65 V -> 0 V (0 °C -> 65 °C -> 0 °C) on TS;
    * TC3 — a constant 0.40 V signal (45 °C equivalent) on HS.
    """
    from ..testing import Constant, RampUpDown, TestCase

    tc2_wave = RampUpDown(0.0, 0.65, t_up=0.010, t_hold_end=0.020, t_end=0.030, name="TC2")

    def tc1(cluster):
        cluster.apply_ts_waveform(Constant(0.1, name="TC1"))

    def tc2(cluster):
        cluster.apply_ts_waveform(tc2_wave)

    def tc3(cluster):
        cluster.apply_hs_waveform(Constant(0.40, name="TC3"))

    return [
        TestCase("TC1", ms(20), tc1, "constant 0.1 V on TS (10 degC)"),
        TestCase("TC2", ms(40), tc2, "ramp 0 -> 0.65 V -> 0 on TS (0..65 degC)"),
        TestCase("TC3", ms(20), tc3, "constant 0.40 V on HS (45 degC equivalent)"),
    ]
