"""Case study 1: the car window lifter system (paper §VI-A).

The AMS system controls the window movement while ensuring passengers
are not harmed: motor current is measured continuously; when an
obstacle changes the current flow, the controller stops and reverses
(anti-pinch).  Following the paper's block list, the ECU contains a
motor-current filter, an ADC, a current detector, the button logic
(up/down decoder) and the microcontroller; the environment contains the
motor, the mechanics (window + obstacle) and the control buttons.

The rebuilt VP reproduces the paper's coverage *shape*:

* **no PFirm associations** — no signal reaches a module both directly
  and through a redefining element;
* **PWeak associations** — the motor current reaches the filter only
  through the sensor gain, and the drive command reaches the motor only
  through the slew delay (which also breaks the control loop);
* **use-without-def** — the microcontroller reads a diagnostics port
  whose signal has no driver (undefined behaviour, found dynamically);
* **dynamic TDF** — near the closed position the microcontroller
  requests a finer timestep ("the timestep was reduced to accurately
  determine the hindrance while closing the window"); the current
  detector's jump threshold is calibrated in ADC counts *per sample*
  at the nominal 1 ms timestep, so at the finer timestep the threshold
  comparison never fires and the anti-pinch def-use pairs stay
  unexercised in the fine zone — the paper's "dynamic TDF induced
  failures" in the current feedback loop.
"""

from __future__ import annotations

from ..tdf import Cluster, ScaTime, TdfIn, TdfModule, TdfOut, ms, us
from ..tdf.library import AdcTdf, DelayTdf, GainTdf, LedSink, StimulusSource

#: Button encodings on the testbench input.
BTN_NONE = 0
BTN_UP = 1
BTN_DOWN = 2
BTN_BOTH = 3


class ButtonDecoder(TdfModule):
    """Decodes the raw button input into up/down commands.

    Pressing both buttons is treated as "none" (mechanical interlock);
    the previous request is remembered to debounce one-sample glitches.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip_buttons = TdfIn()
        self.op_up = TdfOut()
        self.op_down = TdfOut()
        self.m_last = 0

    def processing(self) -> None:
        raw = int(self.ip_buttons.read())
        code = raw
        if code == 3:
            code = 0
        up = code == 1
        down = code == 2
        if code != self.m_last and self.m_last != 0:
            # One-sample change away from an active request: debounce by
            # keeping the previous request for this sample.
            up = self.m_last == 1
            down = self.m_last == 2
        self.m_last = code
        self.op_up.write(up)
        self.op_down.write(down)


class Motor(TdfModule):
    """DC motor: drive voltage + mechanical load -> speed and current.

    The armature current follows its steady-state value with a
    first-order *real-time* lag (``tau_s``), so the per-sample current
    step depends on the simulation timestep — the physical effect
    behind the seeded dynamic-TDF detector bug (see
    :class:`CurrentDetector`).
    """

    def __init__(self, name: str, kt: float = 1.0, kl: float = 4.0,
                 tau_s: float = 0.0025) -> None:
        super().__init__(name)
        self.ip_drive = TdfIn()
        self.ip_load = TdfIn()
        self.op_speed = TdfOut()
        self.op_current = TdfOut()
        self.m_kt = float(kt)
        self.m_kl = float(kl)
        self.m_tau = float(tau_s)
        self.m_current = 0.0

    def set_attributes(self) -> None:
        # The mechanics computes the load from our speed: one-sample
        # delay on the load input breaks that inner loop.
        self.ip_load.set_delay(1)

    def initialize(self) -> None:
        self.m_current = 0.0

    def processing(self) -> None:
        drive = self.ip_drive.read()
        load = self.ip_load.read()
        speed = self.m_kt * drive
        if load > 0:
            speed = speed * (1.0 / (1.0 + load))
        target = abs(drive) * (1.0 + self.m_kl * load)
        dt = self.timestep.to_seconds() if self.timestep is not None else 0.001
        alpha = 1.0 - 2.718281828 ** (-dt / self.m_tau)
        self.m_current = self.m_current + (target - self.m_current) * alpha
        self.op_speed.write(speed)
        self.op_current.write(self.m_current)


class WindowMech(TdfModule):
    """Window mechanics: integrates speed into position, computes load.

    Position runs from 0 (fully open) to 100 (fully closed).  An
    obstacle (testbench input > 0) placed at a position adds load while
    the window is at or above that position and still closing.
    """

    def __init__(self, name: str, travel_rate: float = 80.0) -> None:
        super().__init__(name)
        self.ip_speed = TdfIn()
        self.ip_obstacle = TdfIn()
        self.op_position = TdfOut()
        self.op_load = TdfOut()
        self.m_position = 0.0
        self.m_travel_rate = float(travel_rate)

    def initialize(self) -> None:
        self.m_position = 0.0

    def processing(self) -> None:
        speed = self.ip_speed.read()
        obstacle = self.ip_obstacle.read()
        dt = self.timestep.to_seconds() if self.timestep is not None else 0.0
        pos = self.m_position + self.m_travel_rate * speed * dt
        if pos < 0.0:
            pos = 0.0
        elif pos > 100.0:
            pos = 100.0
        load = 0.0
        if pos >= 99.5 and speed > 0:
            load = 3.0          # end stop
        if obstacle > 0 and speed > 0 and pos >= obstacle:
            load = load + 5.0   # pinched obstacle
        self.m_position = pos
        self.op_position.write(pos)
        self.op_load.write(load)


class CurrentFilter(TdfModule):
    """ECU motor-current filter: short moving average (noise removal)."""

    def __init__(self, name: str, taps: int = 2) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_taps = int(taps)
        self.m_history = [0.0] * int(taps)

    def initialize(self) -> None:
        self.m_history = [0.0] * self.m_taps

    def processing(self) -> None:
        sample = self.ip.read()
        self.m_history = [sample] + self.m_history[:-1]
        acc = 0.0
        for value in self.m_history:
            acc = acc + value
        avg = acc / self.m_taps
        self.op.write(avg)


class CurrentDetector(TdfModule):
    """Obstacle detector: watches for a sudden current *jump*.

    A pinched obstacle shows up as a steep rise of the motor current,
    so the detector compares the sample-to-sample difference of the ADC
    code against a jump threshold.

    **Seeded bug (dynamic TDF)**: the threshold is calibrated in ADC
    counts *per sample* assuming the nominal 1 ms timestep.  When the
    microcontroller refines the timestep near the closed position, the
    per-sample current step shrinks (the armature time constant is a
    real-time quantity) and the comparison never fires — the paper's
    "threshold comparisons failed in certain cases (specially current
    feedback loop) leading to def-use pairs being not exercised".
    """

    def __init__(self, name: str, jump_threshold: float = 400.0) -> None:
        super().__init__(name)
        self.ip_din = TdfIn()
        self.op_overcurrent = TdfOut()
        self.m_jump = float(jump_threshold)
        self.m_prev = 0.0
        self.m_trips = 0

    def initialize(self) -> None:
        self.m_prev = 0.0
        self.m_trips = 0

    def processing(self) -> None:
        code = self.ip_din.read()
        delta = code - self.m_prev
        self.m_prev = code
        over = delta > self.m_jump
        if over:
            self.m_trips = self.m_trips + 1
        self.op_overcurrent.write(over)


class BatteryMonitor(TdfModule):
    """Supply supervision: integrates drawn charge, flags a low battery.

    Consumes the *scaled* motor current (through the sense amplifier
    only — another PWeak path) and tells the MCU to refuse movement
    once the battery budget is exhausted.
    """

    def __init__(self, name: str, budget: float = 7.5e5, warn_fraction: float = 0.8) -> None:
        super().__init__(name)
        self.ip_current = TdfIn()
        self.op_low_batt = TdfOut()
        self.m_budget = float(budget)
        self.m_warn = float(warn_fraction)
        self.m_drawn = 0.0

    def initialize(self) -> None:
        self.m_drawn = 0.0

    def processing(self) -> None:
        current = self.ip_current.read()
        self.m_drawn = self.m_drawn + abs(current)
        low = self.m_drawn > self.m_budget * self.m_warn
        self.op_low_batt.write(low)


class MicroController(TdfModule):
    """ECU microcontroller: movement state machine + anti-pinch.

    States: 0 idle, 1 moving up (closing), 2 moving down (opening),
    3 anti-pinch reverse.  Near the closed position the controller
    requests a finer timestep (dynamic TDF) "to accurately determine
    the hindrance while closing the window" (paper §VI-A).

    **Seeded bug (use-without-def)**: on anti-pinch entry the
    controller reads a diagnostics word from ``ip_diag`` — a port whose
    signal no model drives.
    """

    #: Samples the anti-pinch reversal lasts.
    REVERSE_SAMPLES = 8

    def __init__(
        self,
        name: str,
        fine_timestep: ScaTime = us(250),
        nominal_timestep: ScaTime = ms(1),
    ) -> None:
        super().__init__(name)
        self.ip_up = TdfIn()
        self.ip_down = TdfIn()
        self.ip_overcurrent = TdfIn()
        self.ip_position = TdfIn()
        self.ip_position_prev = TdfIn()
        self.ip_low_batt = TdfIn()
        self.ip_diag = TdfIn()
        self.op_drive = TdfOut()
        self.op_pinch_led = TdfOut()
        self.m_stop_position = 0.0
        self.m_state = 0
        self.m_reverse_left = 0
        self.m_diag_word = 0.0
        self._fine = fine_timestep
        self._nominal = nominal_timestep
        self._want_fine = False
        self._is_fine = False

    def set_attributes(self) -> None:
        # The MCU is the cluster's timestep master (so its dynamic-TDF
        # requests never conflict with another anchor).
        self.set_timestep(self._nominal)
        self.ip_up.set_delay(1)
        self.ip_down.set_delay(1)
        self.ip_overcurrent.set_delay(1)
        self.ip_position.set_delay(1)
        self.ip_position_prev.set_delay(1)
        self.ip_low_batt.set_delay(1)
        self.ip_diag.set_delay(1)

    def initialize(self) -> None:
        self.m_state = 0
        self.m_reverse_left = 0

    def processing(self) -> None:
        up = self.ip_up.read()
        down = self.ip_down.read()
        over = self.ip_overcurrent.read()
        pos = self.ip_position.read() / 10.0   # ADC counts -> percent travel
        low_batt = self.ip_low_batt.read()

        drive = 0.0
        pinch = False
        if low_batt and self.m_state == 0:
            # Battery budget exhausted: refuse to start a movement
            # (an ongoing movement, including anti-pinch, completes) and
            # log where the window stopped from the position history.
            up = False
            down = False
            self.m_stop_position = self.ip_position_prev.read()
        if self.m_state == 3:
            drive = -1.0
            pinch = True
            self.m_reverse_left = self.m_reverse_left - 1
            if self.m_reverse_left <= 0:
                self.m_state = 0
        elif over and self.m_state == 1 and pos < 99.0:
            # End-stop currents above 99 % travel are expected; only a
            # mid-travel over-current is a pinched obstacle.
            self.m_diag_word = self.ip_diag.read()
            self.m_state = 3
            self.m_reverse_left = self.REVERSE_SAMPLES
            drive = -1.0
            pinch = True
        elif up and pos < 100.0:
            self.m_state = 1
            drive = 1.0
        elif down and pos > 0.0:
            self.m_state = 2
            drive = -1.0
        else:
            self.m_state = 0
            drive = 0.0
        self.op_drive.write(drive)
        self.op_pinch_led.write(pinch)
        # Dynamic TDF request: refine the timestep in the pinch-critical
        # zone while closing, restore it elsewhere.
        self._want_fine = self.m_state == 1 and pos > 80.0

    def change_attributes(self) -> None:
        if self._want_fine and not self._is_fine:
            self.request_timestep(self._fine)
            self._is_fine = True
        elif not self._want_fine and self._is_fine:
            self.request_timestep(self._nominal)
            self._is_fine = False


class WindowLifterTop(Cluster):
    """The window-lifter TDF cluster."""

    #: Observable boundary outputs for the mutation oracle: the slewed
    #: motor drive, the sensed window position, the motor speed and the
    #: pinch/overcurrent indications (see BuckBoostTop for rationale).
    MUTATION_ORACLE_SIGNALS = (
        "drive_slewed", "position_scaled", "speed", "overcurrent", "pinch",
    )

    def __init__(self, name: str = "window_lifter", timestep: ScaTime = ms(1)) -> None:
        self._timestep = timestep
        super().__init__(name)

    def architecture(self) -> None:
        # Testbench.  No timestep anchors here: the MCU is the timestep
        # master and may retune the whole cluster at runtime.
        self.buttons_src = self.add(StimulusSource("buttons_src", lambda t: BTN_NONE))
        self.obstacle_src = self.add(StimulusSource("obstacle_src", lambda t: 0.0))
        self.pinch_led = self.add(LedSink("pinch_led"))

        # Environment.
        self.motor = self.add(Motor("motor"))
        self.mech = self.add(WindowMech("mech"))

        # ECU.
        self.decoder = self.add(ButtonDecoder("decoder"))
        self.current_filter = self.add(CurrentFilter("current_filter"))
        self.adc = self.add(AdcTdf("adc", bits=10, lsb=1.0))
        self.detector = self.add(CurrentDetector("detector"))
        self.batt_mon = self.add(BatteryMonitor("batt_mon"))
        self.mcu = self.add(MicroController("mcu", nominal_timestep=self._timestep))

        # Redefining library elements: current-sense and position-sense
        # amplifiers and the drive slew delay (which also breaks the
        # control loop).
        self.i_sense_gain = self.add(GainTdf("i_sense_gain", gain=100.0))
        self.i_pos_gain = self.add(GainTdf("i_pos_gain", gain=10.0))
        self.i_drive_delay = self.add(DelayTdf("i_drive_delay", delay=1))
        self.i_pos_hist = self.add(DelayTdf("i_pos_hist", delay=1))
        self.pos_adc = self.add(AdcTdf("pos_adc", bits=10, lsb=1.0))

        # Netlist.
        self.connect(self.buttons_src.op, self.decoder.ip_buttons, name="buttons")
        self.connect(self.obstacle_src.op, self.mech.ip_obstacle, name="obstacle")
        self.connect(self.decoder.op_up, self.mcu.ip_up, name="up")
        self.connect(self.decoder.op_down, self.mcu.ip_down, name="down")

        # Drive path: mcu -> delay -> motor (PWeak: the motor sees the
        # drive only through the slew delay).
        drive = self.signal("drive")
        drive_slewed = self.signal("drive_slewed")
        self.mcu.op_drive.bind(drive)
        self.i_drive_delay.ip.bind(drive)
        self.i_drive_delay.op.bind(drive_slewed)
        self.motor.ip_drive.bind(drive_slewed)

        # Current path: motor -> gain -> {filter, battery monitor}
        # (PWeak: both consumers see the current only through the gain).
        current = self.signal("current")
        current_scaled = self.signal("current_scaled")
        self.motor.op_current.bind(current)
        self.i_sense_gain.ip.bind(current)
        self.i_sense_gain.op.bind(current_scaled)
        self.current_filter.ip.bind(current_scaled)
        self.batt_mon.ip_current.bind(current_scaled)
        self.connect(self.current_filter.op, self.adc.adc_i, name="current_filtered")
        self.connect(self.adc.adc_o, self.detector.ip_din, name="current_din")
        self.connect(self.detector.op_overcurrent, self.mcu.ip_overcurrent, name="overcurrent")
        self.connect(self.batt_mon.op_low_batt, self.mcu.ip_low_batt, name="low_batt")

        # Mechanics.  The MCU sees the position only through the sense
        # amplifier and position ADC (another PWeak path).
        self.connect(self.motor.op_speed, self.mech.ip_speed, name="speed")
        self.connect(self.mech.op_load, self.motor.ip_load, name="load")
        position = self.signal("position")
        position_scaled = self.signal("position_scaled")
        position_prev = self.signal("position_prev")
        self.mech.op_position.bind(position)
        self.i_pos_gain.ip.bind(position)
        self.i_pos_gain.op.bind(position_scaled)
        self.pos_adc.adc_i.bind(position_scaled)
        self.connect(self.pos_adc.adc_o, self.mcu.ip_position, name="position_din")
        # Position history (through the delay only -> PWeak), consumed
        # by the MCU exclusively in the low-battery refusal branch.
        self.i_pos_hist.ip.bind(position)
        self.i_pos_hist.op.bind(position_prev)
        self.mcu.ip_position_prev.bind(position_prev)

        # Diagnostics word: the signal exists but nothing drives it —
        # the seeded use-without-def bug.
        diag = self.signal("diag")
        self.mcu.ip_diag.bind(diag)

        self.connect(self.mcu.op_pinch_led, self.pinch_led.ip, name="pinch")

    # -- testbench helpers -------------------------------------------------------

    def apply_buttons(self, waveform) -> None:
        """Install a button-code waveform (see ``BTN_*``)."""
        self.buttons_src.set_waveform(waveform)

    def apply_obstacle(self, waveform) -> None:
        """Install an obstacle-position waveform (0 = no obstacle)."""
        self.obstacle_src.set_waveform(waveform)
