"""Case study 2: the energy-efficient buck-boost converter (paper §VI-B).

A DC/DC converter operating as step-down (buck) or step-up (boost)
converter, as used in battery-powered IoT devices.  The controller sets
the mode, the expected output voltage and the maximum current allowed
through the converter; the switching-frequency control algorithm
monitors the current.  Tests check how fast the programmed output
voltage is reached and how stable it is.

Blocks (all TDF): mode controller with hysteresis, soft-start reference
ramp, switching controller with light-load PFM mode and current
back-off, averaged power stage with testbench-controlled load,
current limiter, over-voltage protection latch, and a thermal monitor.

Coverage shape reproduced from the paper's Table II:

* **PFirm associations, 100 % from iteration 0** — the output voltage
  reaches the switching controller both directly and through a delay
  element (previous-sample slope detection): both branches are
  exercised on every single sample, so any testcase covers them;
* **PWeak associations, 100 % from iteration 0** — the inductor current
  reaches the current limiter and the thermal monitor only through the
  sense gain, again exercised on every sample;
* **use-without-def** — the current limiter reads an undriven
  calibration-trim port ("in some cases, the ports were not defined,
  but still used in a different TDF model", §VI-B);
* Strong/Firm coverage starts well below 100 % (soft-start edges, OVP
  latch, PFM mode and thermal back-off need dedicated testcases) and
  grows over the iterations.
"""

from __future__ import annotations

from ..tdf import Cluster, ScaTime, TdfIn, TdfModule, TdfOut, us
from ..tdf.library import DelayTdf, GainTdf, StimulusSource


class ModeController(TdfModule):
    """Sets converter mode, reference voltage and current limit.

    Mode is 0 (buck) when the programmed target is below the input
    voltage and 1 (boost) otherwise, with a small hysteresis band so
    the mode does not chatter when ``target ~ vin``.  Negative targets
    are clamped to zero.
    """

    def __init__(self, name: str, imax: float = 2.0, hysteresis: float = 0.2) -> None:
        super().__init__(name)
        self.ip_vin = TdfIn()
        self.ip_target = TdfIn()
        self.op_mode = TdfOut()
        self.op_vref = TdfOut()
        self.op_imax = TdfOut()
        self.m_imax = float(imax)
        self.m_hyst = float(hysteresis)
        self.m_mode = 0

    def initialize(self) -> None:
        self.m_mode = 0

    def processing(self) -> None:
        vin = self.ip_vin.read()
        target = self.ip_target.read()
        if target < 0.0:
            target = 0.0
        if target > vin + self.m_hyst:
            self.m_mode = 1
        elif target < vin - self.m_hyst:
            self.m_mode = 0
        self.op_mode.write(self.m_mode)
        self.op_vref.write(target)
        self.op_imax.write(self.m_imax)


class SoftStart(TdfModule):
    """Reference slope limiter.

    Large upward reference steps are ramped with ``slew`` volts per
    sample so the converter does not slam into the current limit;
    downward steps and small corrections pass through unchanged.
    """

    def __init__(self, name: str, slew: float = 0.05, step_threshold: float = 0.5) -> None:
        super().__init__(name)
        self.ip_vref = TdfIn()
        self.op_vref = TdfOut()
        self.m_slew = float(slew)
        self.m_threshold = float(step_threshold)
        self.m_current = 0.0

    def initialize(self) -> None:
        self.m_current = 0.0

    def processing(self) -> None:
        vref = self.ip_vref.read()
        delta = vref - self.m_current
        if delta > self.m_threshold:
            self.m_current = self.m_current + self.m_slew
        elif delta < 0.0:
            self.m_current = vref
        else:
            self.m_current = vref
        self.op_vref.write(self.m_current)


class SwitchingController(TdfModule):
    """Duty-cycle / switching-frequency control loop.

    Proportional control on the voltage error plus derivative damping
    from the *previous* output sample (via the external delay element —
    this is what makes the ``vout`` association PFirm).  When the
    current limiter trips, the duty cycle is cut back regardless of the
    voltage error; at very light load the controller enters PFM mode
    and skips pulses.
    """

    def __init__(self, name: str, kp: float = 0.08, kd: float = 0.04,
                 pfm_threshold: float = 0.02) -> None:
        super().__init__(name)
        self.ip_vref = TdfIn()
        self.ip_vout = TdfIn()
        self.ip_vout_prev = TdfIn()
        self.ip_ilim = TdfIn()
        self.ip_iload = TdfIn()
        self.ip_mode = TdfIn()
        self.ip_fault = TdfIn()
        self.op_duty = TdfOut()
        self.op_pfm = TdfOut()
        self.m_kp = float(kp)
        self.m_kd = float(kd)
        self.m_pfm_threshold = float(pfm_threshold)
        self.m_duty = 0.0
        self.m_skip = 0
        self.m_pfm_cycles = 0

    def set_attributes(self) -> None:
        # The converter loop is closed through this module: one-sample
        # delays on the feedback inputs break the scheduling cycle.
        self.ip_vout.set_delay(1)
        self.ip_vout_prev.set_delay(1)
        self.ip_ilim.set_delay(1)
        self.ip_iload.set_delay(1)
        self.ip_fault.set_delay(1)

    def initialize(self) -> None:
        self.m_duty = 0.0
        self.m_skip = 0
        self.m_pfm_cycles = 0

    def processing(self) -> None:
        vref = self.ip_vref.read()
        vout = self.ip_vout.read()
        vout_prev = self.ip_vout_prev.read()
        limited = self.ip_ilim.read()
        iload = self.ip_iload.read()
        mode = self.ip_mode.read()
        fault = self.ip_fault.read()

        pfm = False
        if fault:
            # OVP latched: switches off until the latch clears.
            duty = 0.0
            self.m_duty = 0.0
        else:
            error = vref - vout
            slope = vout - vout_prev
            duty = self.m_duty + self.m_kp * error - self.m_kd * slope
            if limited:
                duty = duty * 0.5
            lo = 0.0
            hi = 0.85 if mode else 0.98
            if duty < lo:
                duty = lo
            elif duty > hi:
                duty = hi
            # The regulator state keeps the unskipped duty so PFM exit
            # resumes seamlessly.
            self.m_duty = duty
            if iload < self.m_pfm_threshold and error < 0.05:
                # Light load: pulse skipping (PFM).
                pfm = True
                self.m_skip = self.m_skip + 1
                self.m_pfm_cycles = self.m_pfm_cycles + 1
                if self.m_skip % 4 != 0:
                    duty = 0.0
            else:
                self.m_skip = 0
        self.op_duty.write(duty)
        self.op_pfm.write(pfm)


class PowerStage(TdfModule):
    """Averaged switched power stage (inductor + capacitor + load).

    Buck: steady-state output ``duty * vin``; boost:
    ``vin / (1 - duty)``.  A first-order lag models the LC filtering;
    the inductor current follows the delivered power plus the load the
    testbench programs (in ohms).
    """

    def __init__(self, name: str, tau_samples: float = 12.0) -> None:
        super().__init__(name)
        self.ip_duty = TdfIn()
        self.ip_mode = TdfIn()
        self.ip_vin = TdfIn()
        self.ip_load_ohm = TdfIn()
        self.op_vout = TdfOut()
        self.op_il = TdfOut()
        self.op_iload = TdfOut()
        self.m_tau = float(tau_samples)
        self.m_vout = 0.0

    def initialize(self) -> None:
        self.m_vout = 0.0

    def processing(self) -> None:
        duty = self.ip_duty.read()
        mode = self.ip_mode.read()
        vin = self.ip_vin.read()
        load = self.ip_load_ohm.read()
        if load < 0.1:
            load = 0.1
        if mode:
            vss = vin / (1.0 - min(duty, 0.9))
        else:
            vss = duty * vin
        self.m_vout = self.m_vout + (vss - self.m_vout) / self.m_tau
        iload = self.m_vout / load
        if mode:
            il = iload / max(1.0 - duty, 0.1)
        else:
            il = iload * max(duty, 0.05)
        self.op_vout.write(self.m_vout)
        self.op_il.write(il)
        self.op_iload.write(iload)


class CurrentLimiter(TdfModule):
    """Compares the sensed inductor current against the allowed maximum.

    **Seeded bug (use-without-def)**: the comparison offsets the sense
    reading by a calibration trim read from ``ip_trim`` — a port whose
    signal no model drives (undefined behaviour the dynamic analysis
    reports).
    """

    def __init__(self, name: str, sense_scale: float = 0.01) -> None:
        super().__init__(name)
        self.ip_isense = TdfIn()
        self.ip_imax = TdfIn()
        self.ip_trim = TdfIn()
        self.op_limit = TdfOut()
        self.m_scale = float(sense_scale)
        self.m_trips = 0

    def initialize(self) -> None:
        self.m_trips = 0

    def processing(self) -> None:
        sensed = self.ip_isense.read() * self.m_scale
        trim = self.ip_trim.read()
        imax = self.ip_imax.read()
        over = (sensed + trim) > imax
        if over:
            self.m_trips = self.m_trips + 1
        self.op_limit.write(over)


class OverVoltageProtection(TdfModule):
    """Latching over-voltage protection.

    Trips when the output exceeds the reference by 20 % for three
    consecutive samples; the latch clears once the output falls back
    below the reference.
    """

    def __init__(self, name: str, margin: float = 1.2, debounce: int = 3) -> None:
        super().__init__(name)
        self.ip_vout = TdfIn()
        self.ip_vref = TdfIn()
        self.op_fault = TdfOut()
        self.m_margin = float(margin)
        self.m_debounce = int(debounce)
        self.m_count = 0
        self.m_latched = False

    def initialize(self) -> None:
        self.m_count = 0
        self.m_latched = False

    def processing(self) -> None:
        vout = self.ip_vout.read()
        vref = self.ip_vref.read()
        if self.m_latched:
            if vout < vref or vref <= 0.0:
                self.m_latched = False
                self.m_count = 0
        elif vref > 0.0 and vout > vref * self.m_margin:
            self.m_count = self.m_count + 1
            if self.m_count >= self.m_debounce:
                self.m_latched = True
        else:
            self.m_count = 0
        self.op_fault.write(self.m_latched)


class ThermalMonitor(TdfModule):
    """Estimates conduction losses and flags a thermal warning.

    Consumes the *scaled* inductor current (through the sense gain
    only — a PWeak path) and low-pass filters ``i^2`` as a proxy for
    junction temperature.
    """

    def __init__(self, name: str, sense_scale: float = 0.01,
                 alpha: float = 0.98, warn_level: float = 3.0) -> None:
        super().__init__(name)
        self.ip_isense = TdfIn()
        self.op_hot = TdfOut()
        self.m_scale = float(sense_scale)
        self.m_alpha = float(alpha)
        self.m_warn = float(warn_level)
        self.m_temp = 0.0

    def initialize(self) -> None:
        self.m_temp = 0.0

    def processing(self) -> None:
        amps = self.ip_isense.read() * self.m_scale
        self.m_temp = self.m_alpha * self.m_temp + (1.0 - self.m_alpha) * amps * amps
        hot = self.m_temp > self.m_warn
        self.op_hot.write(hot)


class BuckBoostTop(Cluster):
    """The buck-boost converter TDF cluster."""

    #: Observable boundary outputs the mutation oracle traces: the
    #: regulated rail, the scaled inductor-current sense, and the
    #: controller's duty/mode/fault decisions.  A boundary oracle (vs
    #: tracing every internal node) is what makes criterion comparison
    #: meaningful — an internal fault only counts as detected when it
    #: propagates to something a real testbench could observe.
    MUTATION_ORACLE_SIGNALS = ("vout", "il_scaled", "duty", "mode", "fault")

    def __init__(self, name: str = "buck_boost", timestep: ScaTime = us(50)) -> None:
        self._timestep = timestep
        super().__init__(name)

    def architecture(self) -> None:
        # Testbench: battery voltage, programmed target, load resistance.
        self.vin_src = self.add(StimulusSource("vin_src", lambda t: 3.6, self._timestep))
        self.target_src = self.add(StimulusSource("target_src", lambda t: 1.8))
        self.load_src = self.add(StimulusSource("load_src", lambda t: 10.0))

        # DUV.
        self.mode_ctrl = self.add(ModeController("mode_ctrl"))
        self.soft_start = self.add(SoftStart("soft_start"))
        self.sw_ctrl = self.add(SwitchingController("sw_ctrl"))
        self.power = self.add(PowerStage("power"))
        self.limiter = self.add(CurrentLimiter("limiter"))
        self.ovp = self.add(OverVoltageProtection("ovp"))
        self.thermal = self.add(ThermalMonitor("thermal"))

        # Redefining elements: output-voltage history delay and the
        # current-sense amplifier.
        self.i_vout_delay = self.add(DelayTdf("i_vout_delay", delay=1))
        self.i_sense_gain = self.add(GainTdf("i_sense_gain", gain=100.0))

        # Netlist.
        self.connect(self.vin_src.op, self.mode_ctrl.ip_vin, self.power.ip_vin, name="vin")
        self.connect(self.target_src.op, self.mode_ctrl.ip_target, name="target")
        self.connect(self.load_src.op, self.power.ip_load_ohm, name="load_ohm")
        vref_raw = self.connect(self.mode_ctrl.op_vref, self.soft_start.ip_vref, name="vref_raw")
        self.connect(
            self.soft_start.op_vref, self.sw_ctrl.ip_vref, self.ovp.ip_vref, name="vref"
        )
        self.connect(self.mode_ctrl.op_imax, self.limiter.ip_imax, name="imax")
        self.connect(
            self.mode_ctrl.op_mode, self.sw_ctrl.ip_mode, self.power.ip_mode, name="mode"
        )
        self.connect(self.sw_ctrl.op_duty, self.power.ip_duty, name="duty")

        # vout: direct branch + delayed branch into the same module -> PFirm.
        vout = self.signal("vout")
        vout_prev = self.signal("vout_prev")
        self.power.op_vout.bind(vout)
        self.sw_ctrl.ip_vout.bind(vout)
        self.ovp.ip_vout.bind(vout)
        self.i_vout_delay.ip.bind(vout)
        self.i_vout_delay.op.bind(vout_prev)
        self.sw_ctrl.ip_vout_prev.bind(vout_prev)

        # il: only through the sense gain -> PWeak (two consumers).
        il = self.signal("il")
        il_scaled = self.signal("il_scaled")
        self.power.op_il.bind(il)
        self.i_sense_gain.ip.bind(il)
        self.i_sense_gain.op.bind(il_scaled)
        self.limiter.ip_isense.bind(il_scaled)
        self.thermal.ip_isense.bind(il_scaled)

        self.connect(self.power.op_iload, self.sw_ctrl.ip_iload, name="iload")
        self.connect(self.limiter.op_limit, self.sw_ctrl.ip_ilim, name="ilim")
        self.connect(self.ovp.op_fault, self.sw_ctrl.ip_fault, name="fault")

        # Thermal warning and PFM indicator are observed by the
        # testbench only.
        from ..tdf.library import NullSink

        self.hot_sink = self.add(NullSink("hot_sink"))
        self.pfm_sink = self.add(NullSink("pfm_sink"))
        self.connect(self.thermal.op_hot, self.hot_sink.ip, name="hot")
        self.connect(self.sw_ctrl.op_pfm, self.pfm_sink.ip, name="pfm")

        # Undriven calibration trim: the seeded use-without-def bug.
        trim = self.signal("trim")
        self.limiter.ip_trim.bind(trim)

    # -- testbench helpers --------------------------------------------------------

    def apply_vin(self, waveform) -> None:
        """Install the battery/input-voltage waveform."""
        self.vin_src.set_waveform(waveform)

    def apply_target(self, waveform) -> None:
        """Install the programmed target-voltage waveform."""
        self.target_src.set_waveform(waveform)

    def apply_load(self, waveform) -> None:
        """Install the load-resistance waveform (ohms)."""
        self.load_src.set_waveform(waveform)
