"""The paper's evaluation vehicles.

* :mod:`repro.systems.sensor` — the running example (Fig. 1/2);
* :mod:`repro.systems.window_lifter` — case study 1 (§VI-A);
* :mod:`repro.systems.buck_boost` — case study 2 (§VI-B).
"""
