"""Testsuites and refinement campaigns for the case-study VPs (§VI).

Each campaign mirrors the paper's Table II protocol: an initial
testbench (window lifter: 17 testcases, buck-boost: 10), then three
iterations of additional testcases targeted at the missed associations
the ranked report surfaces (window lifter: +3/+3/+3 to 26; buck-boost:
+5/+5/+4 to 24).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.config import DftConfig
from ..core.workflow import IterativeCampaign
from ..tdf import ms, sec
from ..testing import Pulse, Pwl, Step, TestCase
from .buck_boost import BuckBoostTop
from .window_lifter import BTN_BOTH, BTN_DOWN, BTN_NONE, BTN_UP, WindowLifterTop


# ---------------------------------------------------------------------------
# Car window lifter
# ---------------------------------------------------------------------------

def _wl(name, duration, buttons, obstacle=None, description=""):
    def setup(cluster):
        cluster.apply_buttons(buttons)
        if obstacle is not None:
            cluster.apply_obstacle(obstacle)

    return TestCase(name, duration, setup, description)


def _press(code: int, start: float, stop: float) -> Callable[[float], int]:
    return lambda t: code if start <= t < stop else BTN_NONE


def _press_seq(*segments) -> Callable[[float], int]:
    """``segments``: (code, start, stop) triples, first match wins."""

    def waveform(t: float) -> int:
        for code, start, stop in segments:
            if start <= t < stop:
                return code
        return BTN_NONE

    return waveform


def window_lifter_base_suite() -> List[TestCase]:
    """The initial 17-testcase window-lifter testbench.

    Pure button-driven movement scenarios: the initial testbench
    verifies the motion control but never inserts an obstacle and never
    drains the battery, so the anti-pinch, obstacle-load and
    low-battery associations stay uncovered until the refinement
    iterations (paper §VI-A: obstacles are then "inserted (and removed)
    at different times, and different window positions").
    """
    tests = [
        _wl("wl_close_full", sec(2), _press(BTN_UP, 0.0, 1.8),
            description="full close, no obstacle"),
        _wl("wl_close_short", ms(400), _press(BTN_UP, 0.0, 0.3),
            description="short up pulse, barely moves"),
        _wl("wl_close_half", sec(1), _press(BTN_UP, 0.0, 0.7),
            description="close to about half travel"),
        _wl("wl_idle", sec(1), _press(BTN_NONE, 0.0, 1.0),
            description="no buttons at all"),
        _wl("wl_down_from_open", sec(1), _press(BTN_DOWN, 0.0, 0.8),
            description="down while already open"),
        _wl("wl_up_down_seq", sec(3),
            _press_seq((BTN_UP, 0.0, 1.2), (BTN_DOWN, 1.5, 2.8)),
            description="close half-way, then open again"),
        _wl("wl_both_buttons", sec(2), _press(BTN_BOTH, 0.0, 1.5),
            description="mechanical interlock: both buttons"),
        _wl("wl_glitch", sec(2),
            lambda t: BTN_UP if (0.2 <= t < 1.0 and int(t * 1000) % 2 == 0) else BTN_NONE,
            description="1-sample button glitches (debounce)"),
        _wl("wl_dir_change", sec(3),
            _press_seq((BTN_UP, 0.0, 1.0), (BTN_DOWN, 1.0, 2.0), (BTN_UP, 2.0, 2.8)),
            description="direction changes without release"),
        _wl("wl_tap_up", sec(2),
            lambda t: BTN_UP if (t % 0.5) < 0.25 else BTN_NONE,
            description="repeated short taps"),
        _wl("wl_close_open_close", sec(5),
            _press_seq((BTN_UP, 0.0, 1.6), (BTN_DOWN, 2.0, 3.6), (BTN_UP, 4.0, 4.8)),
            description="full cycle close/open/close"),
        _wl("wl_hold_at_top", sec(3), _press(BTN_UP, 0.0, 2.8),
            description="keep pressing up at the end stop"),
        _wl("wl_open_from_closed", sec(5),
            _press_seq((BTN_UP, 0.0, 1.6), (BTN_DOWN, 2.0, 4.5)),
            description="full open starting from fully closed"),
        _wl("wl_glitch_down", sec(2),
            lambda t: BTN_DOWN if (0.2 <= t < 1.5 and int(t * 1000) % 3 == 0) else BTN_NONE,
            description="down-button glitches"),
        _wl("wl_both_during_move", sec(3),
            _press_seq((BTN_UP, 0.0, 0.8), (BTN_BOTH, 0.8, 1.6), (BTN_UP, 1.6, 2.4)),
            description="both buttons during a movement"),
        _wl("wl_tap_down", sec(2),
            _press_seq((BTN_UP, 0.0, 0.8), (BTN_DOWN, 1.0, 1.1), (BTN_DOWN, 1.4, 1.5)),
            description="short opening taps after closing"),
        _wl("wl_long_idle_then_close", sec(3),
            _press(BTN_UP, 1.5, 2.8),
            description="late movement start"),
    ]
    assert len(tests) == 17
    return tests


def window_lifter_iteration_batches() -> List[List[TestCase]]:
    """Three batches of three targeted testcases (17 -> 20 -> 23 -> 26).

    Batch 1 inserts obstacles in the coarse-timestep zone (anti-pinch
    coverage); batch 2 drains the battery, covering the refusal branch
    and the position-history PWeak path; batch 3 probes the
    fine-timestep zone, where the seeded dynamic-TDF detector bug keeps
    the anti-pinch pairs unexercised — coverage stops improving, which
    is exactly how the paper's authors discovered their
    current-feedback failures.
    """
    batch1 = [
        _wl("wl_obst_mid", sec(2), _press(BTN_UP, 0.0, 1.8), lambda t: 50.0,
            description="obstacle at mid travel"),
        _wl("wl_obst_late_insert", sec(2), _press(BTN_UP, 0.0, 1.8),
            lambda t: 50.0 if t > 0.4 else 0.0,
            description="obstacle inserted at t=0.4s"),
        _wl("wl_obst_removed", sec(2.5), _press(BTN_UP, 0.0, 2.3),
            lambda t: 40.0 if t < 0.8 else 0.0,
            description="obstacle removed after first pinch, close completes"),
    ]
    batch2 = [
        _wl("wl_battery_wearout", sec(10),
            lambda t: BTN_UP if (t % 1.6) < 0.8 else BTN_DOWN,
            description="cycle until the battery monitor trips"),
        _wl("wl_battery_refuse", sec(12),
            lambda t: (BTN_UP if (t % 1.6) < 0.8 else BTN_DOWN) if t < 8.0
            else (BTN_UP if 8.5 <= t < 10.0 else BTN_NONE),
            description="movement attempt after low-battery warning"),
        _wl("wl_obst_while_open", sec(3),
            _press_seq((BTN_UP, 0.0, 1.0), (BTN_DOWN, 1.4, 2.6)),
            lambda t: 30.0,
            description="obstacle present while opening (must not trip)"),
    ]
    batch3 = [
        _wl("wl_obst_fine_zone", sec(2), _press(BTN_UP, 0.0, 1.9), lambda t: 90.0,
            description="obstacle inside the fine-timestep zone (dynamic-TDF bug)"),
        _wl("wl_obst_fine_edge", sec(2), _press(BTN_UP, 0.0, 1.9), lambda t: 83.0,
            description="obstacle just past the timestep switch"),
        _wl("wl_obst_at_99", sec(2.5), _press(BTN_UP, 0.0, 2.3), lambda t: 98.0,
            description="obstacle just below the end-stop guard"),
    ]
    return [batch1, batch2, batch3]


def window_lifter_all_testcases() -> List[TestCase]:
    """Every window-lifter testcase (base suite + all three batches).

    The flat list worker processes rebuild suites from
    (:mod:`repro.exec.refs` cannot pickle the testcase closures, so
    workers re-create them by name from this importable function).
    """
    tests = window_lifter_base_suite()
    for batch in window_lifter_iteration_batches():
        tests.extend(batch)
    return tests


def window_lifter_campaign(
    workers: int = 1, engine: str = "auto",
    config: Optional[DftConfig] = None,
) -> IterativeCampaign:
    """The full §VI-A campaign (Table II, upper half).

    ``config`` (see :class:`repro.DftConfig`) carries the run knobs;
    the ``workers``/``engine`` conveniences build one when it is not
    given.  ``workers > 1`` fans the dynamic stage out across a process
    pool.  The reported rows are identical for any worker count and
    either engine.
    """
    return _build_campaign(
        config if config is not None else DftConfig(workers=workers, engine=engine),
        lambda: WindowLifterTop(),
        window_lifter_base_suite(),
        window_lifter_iteration_batches(),
        name="window_lifter",
        factory_ref="repro.systems.window_lifter:WindowLifterTop",
        suite_ref="repro.systems.campaigns:window_lifter_all_testcases",
    )


def _build_campaign(
    cfg: DftConfig,
    factory,
    base_suite: List[TestCase],
    batches: List[List[TestCase]],
    name: str,
    factory_ref: str,
    suite_ref: str,
) -> IterativeCampaign:
    """Assemble a campaign from a config (shared by both case studies)."""
    suite_len = len(base_suite) + sum(len(b) for b in batches)
    executor = cfg.make_executor(factory_ref, suite_ref, suite_len)
    campaign = IterativeCampaign(
        factory, base_suite, name=name, config=cfg.replace(executor=executor)
    )
    for batch in batches:
        campaign.add_iteration(batch)
    return campaign


# ---------------------------------------------------------------------------
# Buck-boost converter
# ---------------------------------------------------------------------------

def _bb(name, duration, target, vin=None, load=None, description=""):
    def setup(cluster):
        cluster.apply_target(target)
        if vin is not None:
            cluster.apply_vin(vin)
        if load is not None:
            cluster.apply_load(load)

    return TestCase(name, duration, setup, description)


def buck_boost_base_suite() -> List[TestCase]:
    """The initial 10-testcase buck-boost testbench.

    Each test programs a target voltage and checks settling from a
    3.6 V battery (the paper's protocol: apply an input voltage,
    program a target, observe speed and stability of regulation).  The
    base suite exercises plain regulation only; soft-start edge cases,
    the OVP latch, PFM mode and thermal back-off stay uncovered until
    the refinement iterations add targeted tests.
    """
    tests = [
        _bb("bb_buck_0v9", ms(40), lambda t: 0.9, description="buck to 0.9 V"),
        _bb("bb_buck_1v2", ms(40), lambda t: 1.2, description="buck to 1.2 V"),
        _bb("bb_buck_1v8", ms(40), lambda t: 1.8, description="buck to 1.8 V"),
        _bb("bb_buck_2v5", ms(40), lambda t: 2.5, description="buck to 2.5 V"),
        _bb("bb_buck_3v0", ms(40), lambda t: 3.0, description="buck to 3.0 V"),
        _bb("bb_boost_4v2", ms(40), lambda t: 4.2, description="boost to 4.2 V"),
        _bb("bb_boost_5v0", ms(40), lambda t: 5.0, description="boost to 5.0 V"),
        _bb("bb_boost_6v0", ms(40), lambda t: 6.0, description="boost to 6.0 V"),
        _bb("bb_boost_7v0", ms(40), lambda t: 7.0, description="boost to 7.0 V"),
        _bb("bb_boost_8v0", ms(40), lambda t: 8.0, description="boost to 8.0 V"),
    ]
    assert len(tests) == 10
    return tests


def buck_boost_iteration_batches() -> List[List[TestCase]]:
    """Batches of +5, +5, +4 testcases (10 -> 15 -> 20 -> 24).

    Each batch targets associations the ranked missed-pair report of
    the previous iteration surfaces, like the paper's manual refinement
    loop.  Not every association ends up covered — e.g. nothing drives
    the duty cycle into the upper boost clamp — mirroring the paper's
    final coverage staying below 100 %.
    """
    batch1 = [
        _bb("bb_step_up", ms(80), lambda t: 1.8 if t < 0.002 else 5.0,
            description="runtime retarget buck -> boost"),
        _bb("bb_step_down_ovp", ms(80), lambda t: 6.0 if t < 0.002 else 1.2,
            description="hard retarget down overshoots and latches the OVP"),
        _bb("bb_near_vin", ms(40), lambda t: 3.6,
            description="target == vin (hysteresis band)"),
        _bb("bb_zero_target", ms(40), lambda t: 0.0, description="target 0 V"),
        _bb("bb_limit_recover", ms(80), lambda t: 12.0 if t < 0.002 else 2.5,
            description="current limit engages, then normal regulation"),
    ]
    batch2 = [
        _bb("bb_vin_sag", ms(80), lambda t: 3.0,
            vin=Pwl([(0.0, 4.2), (0.0015, 4.2), (0.0025, 2.4)]),
            description="battery sag forces buck -> boost mid-run"),
        _bb("bb_vin_recover", ms(80), lambda t: 3.0,
            vin=Pwl([(0.0, 2.4), (0.002, 2.4), (0.003, 4.2)]),
            description="battery recovery forces boost -> buck"),
        _bb("bb_pfm_light_load", ms(80), lambda t: 1.8, load=lambda t: 5000.0,
            description="light load enters PFM pulse skipping"),
        _bb("bb_pfm_exit", ms(80), lambda t: 1.8,
            load=lambda t: 5000.0 if t < 0.002 else 8.0,
            description="load step pulls the converter out of PFM"),
        _bb("bb_negative_target", ms(40), lambda t: -1.0,
            description="negative target is clamped to zero"),
    ]
    batch3 = [
        _bb("bb_thermal", ms(160), lambda t: 9.0, load=lambda t: 4.0,
            description="sustained boost into a heavy load heats the switch"),
        _bb("bb_ovp_clear", ms(120), lambda t: 6.0 if t < 0.002 else (1.2 if t < 0.004 else 4.0),
            description="OVP latches, clears, regulation resumes"),
        _bb("bb_brownout", ms(60), lambda t: 3.0, vin=Step(3.6, 0.5, 0.002),
            description="input brownout to 0.5 V"),
        _bb("bb_load_short", ms(60), lambda t: 2.5, load=Step(10.0, 0.05, 0.002),
            description="near-short load clamps at the minimum resistance"),
    ]
    return [batch1, batch2, batch3]


def buck_boost_all_testcases() -> List[TestCase]:
    """Every buck-boost testcase (base suite + all three batches)."""
    tests = buck_boost_base_suite()
    for batch in buck_boost_iteration_batches():
        tests.extend(batch)
    return tests


def buck_boost_campaign(
    workers: int = 1, engine: str = "auto",
    config: Optional[DftConfig] = None,
) -> IterativeCampaign:
    """The full §VI-B campaign (Table II, lower half)."""
    return _build_campaign(
        config if config is not None else DftConfig(workers=workers, engine=engine),
        lambda: BuckBoostTop(),
        buck_boost_base_suite(),
        buck_boost_iteration_batches(),
        name="buck_boost",
        factory_ref="repro.systems.buck_boost:BuckBoostTop",
        suite_ref="repro.systems.campaigns:buck_boost_all_testcases",
    )
