"""Command-line interface: ``repro-dft`` / ``python -m repro``.

Subcommands:

``list``
    Show the bundled systems and their testsuites.
``static <system>``
    Run only the static analysis and print the classified associations.
``run <system>``
    Run the full DFT pipeline (static + dynamic + coverage) with the
    system's paper testsuite and print the summary (and, with
    ``--matrix``, the Table-I exercise matrix).
``campaign <system>``
    Run the iterative refinement campaign and print the Table-II rows
    (window lifter and buck-boost only).
``mutate <system>``
    Run mutation analysis: seed faults with the AST/netlist operators,
    execute every mutant differentially, and print the kill matrix
    joined with the per-criterion coverage (see :mod:`repro.mutation`).
    Accepts ``random`` as the system name to mutate a seeded random
    multirate cluster (``--cluster-seed``).
``generate <system>``
    Coverage-guided testcase generation: search the system's stimulus
    parameter space for testcases that close the associations the
    bundled suite leaves uncovered (see :mod:`repro.generation`).
    Fully deterministic for a given ``--seed`` — identical across
    ``--workers`` counts and ``--engine`` choices.
``bench``
    Run the performance benchmark and emit machine-readable JSON
    (see :mod:`repro.bench`).
``telemetry-report <file>``
    Pretty-print a telemetry JSONL file saved with ``--telemetry``
    (malformed lines are skipped and counted, not fatal).
``history {list,diff,trend}``
    Query the persistent run-history ledger: list recorded runs, diff
    two records field by field (defaults to the latest two), or print
    / export (``--export file.csv|.jsonl``) the per-class coverage
    trend (see :mod:`repro.obs.store.history`).
``serve`` / ``worker`` / ``submit``
    DFT as a service (see :mod:`repro.service`): ``serve`` runs the
    HTTP/JSON job server over a durable journaled queue, ``worker``
    runs a shard-execution daemon the server fans run/campaign jobs
    out to (``serve --worker HOST:PORT``, repeatable), and ``submit``
    posts a job to a running server and polls for its report envelope.

``run``, ``campaign``, ``mutate`` and ``generate`` accept ``--config
FILE`` (TOML or JSON of :class:`repro.core.DftConfig` fields); explicit
flags override file values, which override the subcommand defaults.

``run``, ``campaign``, ``mutate`` and ``generate`` append one record
per invocation to the history ledger under the cache directory
(``--history-dir`` overrides the location, ``--no-history`` opts out);
``mutate`` and ``generate`` accept ``--warm-start`` to reuse verdicts
/ seeds from the most recent matching record.  ``run``, ``campaign``
and ``generate`` accept ``--probe-store columnar`` (with
``--store-chunk-size`` / ``--store-dir``) to record probe events
through the spilling columnar store instead of in-memory lists.

``static``, ``run`` and ``campaign`` accept ``--telemetry PATH`` (save
a JSON-lines event log) and ``--trace-events PATH`` (save a Chrome /
Perfetto trace-event file); either flag enables telemetry recording
for the command.  ``run`` and ``campaign`` accept ``--workers N`` to
fan the dynamic stage out across worker processes (reported results
are identical for any worker count; the default is an automatic
heuristic that stays serial on single-CPU hosts and tiny suites),
``--engine {auto,interp,block}`` to pick the TDF execution engine
(bit-identical results either way), plus ``--cache-dir PATH`` /
``--no-static-cache`` to control static-analysis memoization.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from .analysis.cache import DEFAULT_CACHE_DIR
from .core import (
    DftConfig,
    format_iteration_table,
    format_matrix,
    format_summary,
    run_dft,
)
from .tdf.errors import TdfError
from .testing import TestCase, TestSuite


def _sensor_factory():
    from .systems.sensor import SenseTop

    return SenseTop()


def _sensor_suite() -> List[TestCase]:
    from .systems.sensor import paper_testcases

    return paper_testcases()


def _window_lifter_factory():
    from .systems.window_lifter import WindowLifterTop

    return WindowLifterTop()


def _window_lifter_suite() -> List[TestCase]:
    from .systems.campaigns import window_lifter_base_suite

    return window_lifter_base_suite()


def _buck_boost_factory():
    from .systems.buck_boost import BuckBoostTop

    return BuckBoostTop()


def _buck_boost_suite() -> List[TestCase]:
    from .systems.campaigns import buck_boost_base_suite

    return buck_boost_base_suite()


def _riscv_factory():
    from .systems.riscv_platform import RiscvPlatformTop

    return RiscvPlatformTop()


def _riscv_suite() -> List[TestCase]:
    from .systems.riscv_platform import paper_style_testcases

    return paper_style_testcases()


#: Per-system entries: ``factory``/``suite`` build the objects in this
#: process; ``factory_ref``/``suite_ref`` are the importable references
#: worker processes use to rebuild them (``--workers``).
SYSTEMS: Dict[str, Dict[str, object]] = {
    "sensor": {
        "factory": _sensor_factory,
        "suite": _sensor_suite,
        "factory_ref": "repro.systems.sensor:SenseTop",
        "suite_ref": "repro.systems.sensor:paper_testcases",
    },
    "window_lifter": {
        "factory": _window_lifter_factory,
        "suite": _window_lifter_suite,
        "factory_ref": "repro.systems.window_lifter:WindowLifterTop",
        "suite_ref": "repro.systems.campaigns:window_lifter_all_testcases",
    },
    "buck_boost": {
        "factory": _buck_boost_factory,
        "suite": _buck_boost_suite,
        "factory_ref": "repro.systems.buck_boost:BuckBoostTop",
        "suite_ref": "repro.systems.campaigns:buck_boost_all_testcases",
    },
    "riscv_platform": {
        "factory": _riscv_factory,
        "suite": _riscv_suite,
        "factory_ref": "repro.systems.riscv_platform:RiscvPlatformTop",
        "suite_ref": "repro.systems.riscv_platform:paper_style_testcases",
    },
}


def _campaign(system: str, config: DftConfig):
    from .systems import campaigns

    if system == "window_lifter":
        return campaigns.window_lifter_campaign(config=config)
    if system == "buck_boost":
        return campaigns.buck_boost_campaign(config=config)
    raise SystemExit(f"no campaign defined for system {system!r}")


def _resolve_workers(requested: Optional[int], suite_len: int) -> int:
    """``--workers`` heuristic: explicit value wins, ``None`` is *auto*.

    Kept as the historical helper name; the logic lives on
    :meth:`repro.DftConfig.resolved_workers`.
    """
    return DftConfig(workers=requested).resolved_workers(suite_len)


def _batch_size_arg(value: str):
    """``--batch-size`` values: ``auto`` or a positive integer."""
    if value == "auto":
        return "auto"
    try:
        size = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a positive integer, got {value!r}"
        )
    if size < 1:
        raise argparse.ArgumentTypeError(
            f"batch size must be >= 1, got {size}"
        )
    return size


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dft",
        description="Data flow testing for TDF models (DATE 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    telemetry_opts = argparse.ArgumentParser(add_help=False)
    telemetry_opts.add_argument(
        "--telemetry", metavar="PATH",
        help="record telemetry and save a JSON-lines event log to PATH",
    )
    telemetry_opts.add_argument(
        "--trace-events", metavar="PATH",
        help="record telemetry and save Chrome/Perfetto trace events to PATH",
    )

    # Config-mapped flags use SUPPRESS defaults: only flags the user
    # actually passed appear on the namespace, so a ``--config FILE``
    # can layer under them (DftConfig.from_args with base=).
    cache_opts = argparse.ArgumentParser(add_help=False)
    cache_opts.add_argument(
        "--cache-dir", metavar="PATH", default=argparse.SUPPRESS,
        help=f"persist static-analysis results under PATH "
             f"(e.g. {DEFAULT_CACHE_DIR})",
    )
    cache_opts.add_argument(
        "--no-static-cache", action="store_true",
        help="disable static-analysis memoization for this invocation",
    )

    config_opts = argparse.ArgumentParser(add_help=False)
    config_opts.add_argument(
        "--config", metavar="FILE", default=None,
        help="load run configuration from a TOML or JSON file "
             "(DftConfig field names); explicit flags override file "
             "values",
    )

    engine_opts = argparse.ArgumentParser(add_help=False)
    engine_opts.add_argument(
        "--engine", choices=["auto", "interp", "block"],
        default=argparse.SUPPRESS,
        help="TDF execution engine: the per-firing interpreter or the "
             "compiled block engine (auto = block, the default); "
             "results are bit-identical either way",
    )
    engine_opts.add_argument(
        "--batch-size", type=_batch_size_arg, default=argparse.SUPPRESS,
        metavar="auto|N",
        help="run up to N testcases (or mutant executions) in lockstep "
             "per block-engine batch ('auto' = population-capped "
             "heuristic); results are byte-identical to serial runs",
    )
    engine_opts.add_argument(
        "--matcher", choices=["auto", "scan", "vector"],
        default=argparse.SUPPRESS,
        help="def-use event-matching implementation: the per-event scan "
             "or the vectorized columnar kernel (auto = vector when "
             "numpy is available and the probe store is columnar); "
             "coverage results are byte-identical either way",
    )

    history_opts = argparse.ArgumentParser(add_help=False)
    history_opts.add_argument(
        "--history-dir", metavar="PATH",
        help="append the run record to the history ledger under PATH "
             "(default: <cache-dir>/history)",
    )
    history_opts.add_argument(
        "--no-history", action="store_true",
        help="do not record this invocation in the run-history ledger",
    )

    store_opts = argparse.ArgumentParser(add_help=False)
    store_opts.add_argument(
        "--probe-store", choices=["memory", "columnar"],
        default=argparse.SUPPRESS,
        help="probe-event recording backend: in-memory lists (default) "
             "or the columnar store with chunked disk spillover "
             "(O(1) memory in simulation length; identical coverage)",
    )
    store_opts.add_argument(
        "--store-chunk-size", type=int, default=argparse.SUPPRESS,
        metavar="N",
        help="rows per columnar chunk before spilling to disk "
             "(default: 65536)",
    )
    store_opts.add_argument(
        "--store-dir", metavar="PATH", default=argparse.SUPPRESS,
        help="directory for columnar spill files (default: the "
             "platform temp dir; files are deleted after each testcase)",
    )

    sub.add_parser("list", help="list bundled systems")

    p_static = sub.add_parser(
        "static", help="static analysis only",
        parents=[telemetry_opts, cache_opts],
    )
    p_static.add_argument("system", choices=sorted(SYSTEMS))

    p_run = sub.add_parser(
        "run", help="full DFT pipeline",
        parents=[telemetry_opts, cache_opts, config_opts, engine_opts,
                 store_opts, history_opts],
    )
    p_run.add_argument("system", choices=sorted(SYSTEMS))
    p_run.add_argument(
        "--workers", type=int, default=argparse.SUPPRESS, metavar="N",
        help="worker processes for the dynamic stage (default: auto — "
             "serial on single-CPU hosts or suites with <2 testcases)",
    )
    p_run.add_argument("--matrix", action="store_true", help="print the Table-I matrix")
    p_run.add_argument(
        "--targets", choices=["all", "frontier"], default="all",
        help="association accounting: 'frontier' runs the subsumption "
             "pass and adds non-subsumed target counts to the summary "
             "(default: all)",
    )
    p_run.add_argument(
        "--max-missed", type=int, default=20, help="missed associations to list"
    )
    p_run.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable coverage export instead of text",
    )
    p_run.add_argument(
        "--save-db", metavar="PATH",
        help="write a mergeable coverage database (JSON) to PATH",
    )

    p_campaign = sub.add_parser(
        "campaign", help="iterative refinement (Table II)",
        parents=[telemetry_opts, cache_opts, config_opts, engine_opts,
                 store_opts, history_opts],
    )
    p_campaign.add_argument("system", choices=["window_lifter", "buck_boost"])
    p_campaign.add_argument(
        "--workers", type=int, default=argparse.SUPPRESS, metavar="N",
        help="worker processes for the dynamic stage (default: auto — "
             "serial on single-CPU hosts or suites with <2 testcases)",
    )
    p_campaign.add_argument(
        "--no-result-cache", action="store_true",
        help="re-execute every testcase in every iteration (disable the "
             "per-testcase dynamic-result cache)",
    )

    p_mutate = sub.add_parser(
        "mutate", help="mutation analysis (kill matrix + criterion join)",
        parents=[telemetry_opts, cache_opts, config_opts, engine_opts,
                 history_opts],
    )
    p_mutate.add_argument(
        "--warm-start", action="store_true", default=argparse.SUPPRESS,
        help="reuse per-mutant verdicts from the most recent matching "
             "history record (same design, config and suite)",
    )
    p_mutate.add_argument(
        "system", choices=sorted(SYSTEMS) + ["random"],
        help="bundled system, or 'random' for a seeded random cluster",
    )
    p_mutate.add_argument(
        "--operators", nargs="+", metavar="OP",
        help="restrict to the named mutation operators (default: all)",
    )
    p_mutate.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, metavar="N",
        help="sampling seed for --max-mutants (default: 0)",
    )
    p_mutate.add_argument(
        "--max-mutants", type=int, default=None, metavar="N",
        help="deterministically sample at most N mutants (default: all)",
    )
    p_mutate.add_argument(
        "--workers", type=int, default=argparse.SUPPRESS, metavar="N",
        help="worker processes for mutant execution (default: 1; the "
             "kill matrix is identical for any worker count)",
    )
    p_mutate.add_argument(
        "--tolerance", type=float, default=argparse.SUPPRESS, metavar="EPS",
        help="absolute trace-divergence tolerance (default: 1e-9)",
    )
    p_mutate.add_argument(
        "--budget-seconds", type=float, default=argparse.SUPPRESS,
        metavar="S",
        help="per-mutant wall budget; slower mutants are flagged "
             "timed_out (default: 30)",
    )
    p_mutate.add_argument(
        "--cluster-seed", type=int, default=0, metavar="N",
        help="construction seed for the 'random' system (default: 0)",
    )
    p_mutate.add_argument(
        "--suite-ref", metavar="MODULE:ATTR",
        help="override the testsuite with an importable reference to a "
             "callable returning testcases",
    )
    p_mutate.add_argument(
        "--no-criteria", action="store_true",
        help="skip the coverage run and the criterion-vs-score join",
    )
    p_mutate.add_argument(
        "--targets", choices=["all", "frontier"], default="all",
        help="criterion sub-suite targets: 'frontier' selects over the "
             "subsumption-reduced association set (kill scores must "
             "match 'all'; default: all)",
    )
    p_mutate.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of text",
    )
    p_mutate.add_argument(
        "--csv", metavar="PATH", help="also write one CSV row per mutant to PATH"
    )
    p_mutate.add_argument(
        "--output", metavar="PATH", help="also write the JSON report to PATH"
    )

    p_generate = sub.add_parser(
        "generate", help="coverage-guided testcase generation",
        parents=[telemetry_opts, cache_opts, config_opts, engine_opts,
                 store_opts, history_opts],
    )
    p_generate.add_argument(
        "--warm-start", action="store_true", default=argparse.SUPPRESS,
        help="re-evaluate the accepted candidates of the most recent "
             "matching history record before searching fresh",
    )
    p_generate.add_argument(
        "system", choices=["buck_boost", "sensor", "window_lifter"],
        help="bundled system with a stimulus parameter space",
    )
    p_generate.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, metavar="N",
        help="master search seed (default: 0); results are identical "
             "for any --workers count and --engine choice",
    )
    p_generate.add_argument(
        "--budget-simulations", type=int, default=argparse.SUPPRESS,
        metavar="N",
        help="stop after N executed candidate simulations (default: 200; "
             "memoized re-proposals are free)",
    )
    p_generate.add_argument(
        "--budget-seconds", type=float, default=argparse.SUPPRESS,
        metavar="S",
        help="wall-clock budget for the whole search (default: none; "
             "the only knob that can make otherwise identical runs "
             "diverge)",
    )
    p_generate.add_argument(
        "--workers", type=int, default=argparse.SUPPRESS, metavar="N",
        help="worker processes for candidate evaluation (default: 1)",
    )
    p_generate.add_argument(
        "--strategy", choices=["mutation", "random", "guided"],
        default="mutation",
        help="search strategy (default: mutation — random warm-up, then "
             "(1+lambda) mutation of the best candidate; guided — "
             "rank-weighted elite archive exploiting the graded du-path "
             "fitness)",
    )
    p_generate.add_argument(
        "--targets", choices=["all", "frontier"], default="all",
        help="search every missed association ('all', default) or only "
             "the subsumption frontier ('frontier' — subsumed pairs "
             "close opportunistically with their subsumer)",
    )
    p_generate.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of text",
    )
    p_generate.add_argument(
        "--output", metavar="PATH", help="also write the JSON report to PATH"
    )

    p_bench = sub.add_parser(
        "bench", help="performance benchmark (machine-readable JSON)",
        parents=[telemetry_opts],
    )
    p_bench.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes for the parallel section",
    )
    p_bench.add_argument(
        "--campaign-system", choices=["window_lifter", "buck_boost"],
        default="buck_boost", help="system for the campaign section",
    )
    p_bench.add_argument(
        "--parallel-system", choices=sorted(SYSTEMS), default="sensor",
        help="system for the serial-vs-parallel section",
    )
    bench_sections = ["campaign", "parallel", "static_cache", "schedule_cache",
                      "engine", "mutation", "generation", "store", "batch",
                      "match", "directed"]
    p_bench.add_argument(
        "--sections", nargs="+", metavar="NAME", choices=bench_sections,
        help="run only the named sections (default: all)",
    )
    p_bench.add_argument(
        "--section", action="append", metavar="NAME", choices=bench_sections,
        dest="section", default=None,
        help="run one named section (repeatable; merged with --sections) — "
             "what CI smoke jobs use to pay for a single section",
    )
    p_bench.add_argument(
        "--output", metavar="PATH",
        help="write the JSON document to PATH instead of stdout",
    )

    p_report = sub.add_parser(
        "telemetry-report",
        help="pretty-print a telemetry JSONL file saved with --telemetry",
    )
    p_report.add_argument("file", help="path to the saved .jsonl event log")
    p_report.add_argument(
        "--no-metrics", action="store_true", help="show only the span tree"
    )

    p_history = sub.add_parser(
        "history",
        help="query the persistent run-history ledger (list / diff / trend)",
    )
    p_history.add_argument(
        "action", choices=["list", "diff", "trend"],
        help="list records, diff two records, or show the coverage trend",
    )
    p_history.add_argument(
        "runs", nargs="*", metavar="RUN_ID",
        help="for diff: two run-id prefixes (default: the latest two "
             "matching records)",
    )
    p_history.add_argument(
        "--history-dir", metavar="PATH",
        help="history ledger directory (default: <cache-dir>/history)",
    )
    p_history.add_argument(
        "--cache-dir", metavar="PATH",
        help="cache directory the default ledger lives under",
    )
    p_history.add_argument(
        "--system", metavar="NAME", help="only records for this system"
    )
    p_history.add_argument(
        "--kind", choices=["run", "campaign", "mutation", "generation"],
        help="only records of this kind",
    )
    p_history.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="only the most recent N matching records",
    )
    p_history.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of the table",
    )
    p_history.add_argument(
        "--export", metavar="PATH",
        help="for trend: also write the rows to PATH "
             "(.csv -> CSV, anything else -> JSON-lines)",
    )

    p_worker = sub.add_parser(
        "worker",
        help="run a shard-execution worker daemon (NDJSON over TCP)",
    )
    p_worker.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="interface to bind (default: 127.0.0.1)",
    )
    p_worker.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="TCP port (default: 0 = ephemeral; the bound address is "
             "printed as 'worker listening on HOST:PORT')",
    )

    p_serve = sub.add_parser(
        "serve", help="run the HTTP/JSON job server",
        parents=[cache_opts],
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="interface to bind (default: 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=int, default=8437, metavar="N",
        help="TCP port (default: 8437; 0 = ephemeral)",
    )
    p_serve.add_argument(
        "--worker", action="append", default=None, metavar="HOST:PORT",
        help="remote worker address (repeatable); run/campaign jobs "
             "shard across the fleet (default: none — jobs run locally)",
    )
    p_serve.add_argument(
        "--state-dir", metavar="PATH",
        help="durable job-journal directory (default: the run-history "
             "ledger directory, <cache-dir>/history)",
    )

    p_submit = sub.add_parser(
        "submit", help="submit a job to a running job server",
        parents=[config_opts],
    )
    p_submit.add_argument(
        "kind", choices=["run", "campaign", "mutate", "generate"],
        help="job kind",
    )
    p_submit.add_argument("system", help="system name known to the server")
    p_submit.add_argument(
        "--server", default="127.0.0.1:8437", metavar="HOST:PORT",
        help="job server address (default: 127.0.0.1:8437)",
    )
    p_submit.add_argument(
        "--option", action="append", default=None, metavar="KEY=VALUE",
        help="kind-specific job option (VALUE is JSON-decoded when "
             "possible; repeatable)",
    )
    p_submit.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and exit instead of polling for the result",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="seconds to wait for completion (default: 600)",
    )
    p_submit.add_argument(
        "--json", action="store_true",
        help="print the full result envelope as JSON (default: a "
             "one-line summary)",
    )
    return parser


def _validate_output_paths(args) -> None:
    """Fail fast when a requested output file cannot be written.

    The same up-front contract as ``--cache-dir``: the analysis may run
    for minutes while the telemetry/trace write only happens at the
    end, so an unusable path must be a one-line error *before* the run,
    not a traceback after it.
    """
    for flag, attr in (("--telemetry", "telemetry"),
                       ("--trace-events", "trace_events")):
        path = getattr(args, attr, None)
        if not path:
            continue
        expanded = os.path.expanduser(path)
        parent = os.path.dirname(expanded) or "."
        try:
            os.makedirs(parent, exist_ok=True)
        except OSError as exc:
            raise OSError(f"{flag} {path!r} is not usable: {exc}") from None
        if os.path.isdir(expanded) or not os.access(parent, os.W_OK):
            raise OSError(f"{flag} {path!r} is not a writable file path")


#: Per-subcommand config defaults that differ from the dataclass
#: defaults (layered *under* a ``--config`` file, which is itself
#: layered under explicit flags).
_COMMAND_DEFAULTS: Dict[str, Dict[str, object]] = {
    "run": {"workers": None},        # auto fan-out
    "campaign": {"workers": None},   # auto fan-out
    "generate": {"budget_simulations": 200},
}


def _config_base(args) -> DftConfig:
    """The base config explicit flags layer onto.

    Three layers, least binding first: the subcommand's defaults, then
    the fields a ``--config FILE`` sets, then (via
    :meth:`DftConfig.from_args` with ``base=``) the flags the user
    actually passed — config-mapped flags register with
    ``argparse.SUPPRESS`` defaults, so unpassed flags never mask the
    file.
    """
    values = dict(_COMMAND_DEFAULTS.get(args.command, {}))
    path = getattr(args, "config", None)
    if path:
        values.update(DftConfig.file_overrides(path))
    return DftConfig(**values)  # type: ignore[arg-type]


def _resolve_history(args, cfg: DftConfig) -> DftConfig:
    """Fold the ``--history-dir`` / ``--no-history`` flags into ``cfg``.

    History is on by default, living under the cache directory; an
    *explicitly* requested directory is validated up front (like
    ``--cache-dir``), while the implicit default stays best-effort —
    the ledger being unwritable must never fail an analysis run the
    user did not ask to record.
    """
    if getattr(args, "no_history", False):
        return cfg.replace(history_dir=None)
    explicit = getattr(args, "history_dir", None)
    if explicit:
        expanded = os.path.expanduser(explicit)
        try:
            os.makedirs(expanded, exist_ok=True)
        except OSError as exc:
            raise OSError(
                f"--history-dir {explicit!r} is not usable: {exc}"
            ) from None
        if not os.access(expanded, os.W_OK):
            raise OSError(
                f"--history-dir {explicit!r} is not a writable directory"
            )
        return cfg.replace(history_dir=explicit)
    from .obs.store import default_history_dir

    return cfg.replace(history_dir=default_history_dir(cfg.cache_dir))


@contextmanager
def _maybe_telemetry(args) -> Iterator[None]:
    """Record and export telemetry when either output flag was given."""
    telemetry_path = getattr(args, "telemetry", None)
    trace_path = getattr(args, "trace_events", None)
    if not telemetry_path and not trace_path:
        yield
        return
    from .obs import telemetry_session, write_chrome_trace, write_jsonl

    with telemetry_session() as tel:
        yield
    if telemetry_path:
        write_jsonl(tel, telemetry_path)
        print(f"telemetry event log written to {telemetry_path}", file=sys.stderr)
    if trace_path:
        write_chrome_trace(tel, trace_path)
        print(
            f"trace events written to {trace_path} "
            f"(load in chrome://tracing or https://ui.perfetto.dev)",
            file=sys.stderr,
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Failures to import or build the target system exit with status 1
    and a one-line error instead of a traceback.
    """
    args = _build_parser().parse_args(argv)
    try:
        _validate_output_paths(args)
        with _maybe_telemetry(args):
            return _dispatch(args)
    except ImportError as exc:
        print(f"repro-dft: error: cannot import target system: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an error.
        return 0
    except (TdfError, ValueError, OSError) as exc:
        print(f"repro-dft: error: {exc}", file=sys.stderr)
        return 1


def _cmd_mutate(args) -> int:
    import json

    from .exec import resolve_ref
    from .mutation import (
        ALL_OPERATORS,
        build_report,
        format_report,
        run_mutation,
        write_csv,
    )

    cfg = _resolve_history(args, DftConfig.from_args(args, base=_config_base(args)))
    cfg.apply_static_cache()
    if args.operators:
        unknown = [op for op in args.operators if op not in ALL_OPERATORS]
        if unknown:
            raise ValueError(
                f"unknown mutation operator(s): {', '.join(sorted(unknown))} "
                f"(available: {', '.join(ALL_OPERATORS)})"
            )
    if args.system == "random":
        factory_ref = "repro.testing.generate:random_cluster_factory"
        factory_args: tuple = (args.cluster_seed,)
        if args.suite_ref:
            suite_ref, suite_args = args.suite_ref, ()
        else:
            suite_ref = "repro.testing.generate:random_suite"
            suite_args = (args.cluster_seed,)
    else:
        entry = SYSTEMS[args.system]
        factory_ref = entry["factory_ref"]
        factory_args = ()
        suite_ref = args.suite_ref or entry["suite_ref"]
        suite_args = ()

    run = run_mutation(
        factory_ref,
        suite_ref,
        cfg,
        factory_args=factory_args,
        suite_args=suite_args,
        operators=args.operators,
        max_mutants=args.max_mutants,
    )

    coverage = None
    subsumption = None
    if not args.no_criteria:
        # One coverage run of the *unmutated* system feeds the
        # criterion-vs-score join; sub-suites are then scored from the
        # kill matrix without re-running any mutant.
        factory_obj = resolve_ref(factory_ref)
        factory = factory_obj(*factory_args) if factory_args else factory_obj
        testcases = list(resolve_ref(suite_ref)(*suite_args))
        suite = TestSuite(args.system, testcases)
        pipeline = run_dft(
            factory, suite, DftConfig(engine=cfg.engine, matcher=cfg.matcher)
        )
        coverage = pipeline.coverage
        if args.targets == "frontier":
            from .analysis import analyze_subsumption

            subsumption = analyze_subsumption(pipeline.static)

    payload = build_report(
        run, coverage=coverage, system=args.system, subsumption=subsumption
    )
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as stream:
            write_csv(payload, stream)
        print(f"mutation CSV written to {args.csv}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        print(f"mutation report written to {args.output}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_report(payload))
    return 0


def _cmd_generate(args) -> int:
    import json

    from .generation import build_report, format_report, generate_suite

    cfg = _resolve_history(args, DftConfig.from_args(args, base=_config_base(args)))
    cfg.apply_static_cache()
    entry = SYSTEMS[args.system]
    base = TestSuite(args.system, entry["suite"]())
    result = generate_suite(
        entry["factory"],
        base,
        args.system,
        cfg,
        factory_ref=entry["factory_ref"],
        suite_ref=entry["suite_ref"],
        strategy=args.strategy,
        target_mode=args.targets,
    )
    payload = build_report(result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        print(f"generation report written to {args.output}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_report(payload))
    return 0


def _cmd_history(args) -> int:
    import json

    from .obs.store import (
        RunHistory,
        default_history_dir,
        diff_records,
        format_diff,
        format_history_table,
        format_trend,
        trend_rows,
    )

    directory = args.history_dir or default_history_dir(args.cache_dir)
    history = RunHistory(directory)
    records = history.records(
        system=args.system, kind=args.kind, limit=args.limit
    )

    if args.action == "diff":
        if args.runs:
            if len(args.runs) != 2:
                raise ValueError(
                    "history diff takes exactly two run ids "
                    "(or none for the latest two matching records)"
                )
            pair = []
            for run_id in args.runs:
                record = history.get(run_id)
                if record is None:
                    raise ValueError(
                        f"run id {run_id!r} not found in {history.path}"
                    )
                pair.append(record)
        else:
            if len(records) < 2:
                raise ValueError(
                    f"history diff needs two recorded runs; the ledger at "
                    f"{history.path} has {len(records)} matching"
                )
            pair = records[-2:]
        diff = diff_records(pair[0], pair[1])
        if args.json:
            print(json.dumps(diff, indent=2))
        else:
            print(format_diff(diff))
        return 0

    if args.action == "trend":
        rows = trend_rows(records)
        if args.export:
            from .obs import write_trend_csv, write_trend_jsonl

            if args.export.endswith(".csv"):
                write_trend_csv(rows, args.export)
            else:
                write_trend_jsonl(rows, args.export)
            print(f"trend export written to {args.export}", file=sys.stderr)
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(format_trend(rows))
        return 0

    if args.json:
        print(json.dumps(records, indent=2))
    else:
        print(format_history_table(records))
    return 0


def _cmd_serve(args) -> int:
    from .service import parse_worker_addr
    from .service.server import serve

    worker_addrs = [parse_worker_addr(spec) for spec in (args.worker or [])]
    state_dir = args.state_dir
    if not state_dir:
        from .obs.store import default_history_dir

        state_dir = default_history_dir(getattr(args, "cache_dir", None))
    return serve(
        state_dir, host=args.host, port=args.port, worker_addrs=worker_addrs
    )


def _parse_submit_options(pairs: Optional[Sequence[str]]) -> Dict[str, object]:
    """``--option KEY=VALUE`` pairs (VALUE JSON-decoded when possible)."""
    import json

    options: Dict[str, object] = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"--option expects KEY=VALUE, got {pair!r}"
            )
        try:
            options[key] = json.loads(raw)
        except ValueError:
            options[key] = raw
    return options


def _cmd_submit(args) -> int:
    import json

    from .service import (
        ServiceError,
        job_result,
        parse_worker_addr,
        submit_job,
        wait_for_job,
    )

    addr = parse_worker_addr(args.server)
    config = (
        DftConfig.file_overrides(args.config) if args.config else {}
    )
    spec = {
        "kind": args.kind,
        "system": args.system,
        "config": config,
        "options": _parse_submit_options(args.option),
    }
    try:
        job_id = submit_job(addr, spec)
    except ConnectionError as exc:
        raise OSError(
            f"cannot reach job server at {args.server}: {exc}"
        ) from None
    if args.no_wait:
        print(job_id)
        return 0
    print(f"submitted {job_id}", file=sys.stderr)
    try:
        wait_for_job(addr, job_id, timeout=args.timeout)
    except ServiceError as exc:
        raise ValueError(f"job {job_id}: {exc}") from None
    envelope = job_result(addr, job_id)
    if args.json:
        print(json.dumps(envelope, indent=2))
        return 0
    payload = envelope.get("payload") or {}
    line = f"{job_id} done schema={envelope.get('schema')}"
    coverage = payload.get("coverage")
    if isinstance(coverage, dict) and "totals" in coverage:
        totals = coverage["totals"]
        line += (
            f" coverage={totals.get('percent')}% "
            f"({totals.get('exercised')}/{totals.get('static')})"
        )
    print(line)
    return 0


def _dispatch(args) -> int:
    if args.command == "list":
        for name in sorted(SYSTEMS):
            suite = SYSTEMS[name]["suite"]()
            print(f"{name:15s} {len(suite)} testcases")
        return 0

    if args.command == "static":
        from .analysis import analyze_cluster
        from .obs import get_telemetry

        DftConfig.from_args(args).apply_static_cache()
        with get_telemetry().span("static", system=args.system):
            result = analyze_cluster(SYSTEMS[args.system]["factory"]())
        print(f"cluster: {result.cluster}")
        counts = result.counts()
        total = len(result.associations)
        print(f"associations: {total} total, " + ", ".join(
            f"{klass.value}={count}" for klass, count in counts.items()
        ))
        for assoc in result.associations:
            print(f"  [{assoc.klass.value:6s}] {assoc}")
        if result.undriven_input_ports:
            print("undriven input ports (use-without-def candidates):")
            for port in result.undriven_input_ports:
                print(f"  {port}")
        return 0

    if args.command == "run":
        cfg = _resolve_history(args, DftConfig.from_args(args, base=_config_base(args)))
        cfg.apply_static_cache()
        entry = SYSTEMS[args.system]
        suite = TestSuite(args.system, entry["suite"]())
        executor = cfg.make_executor(
            entry["factory_ref"], entry["suite_ref"], len(suite)
        )
        result = run_dft(
            entry["factory"], suite, cfg.replace(executor=executor)
        )
        if args.save_db:
            from .core import CoverageDatabase

            CoverageDatabase.from_coverage(result.coverage).save(args.save_db)
        if args.json:
            import json

            from .core import coverage_to_dict

            print(json.dumps(coverage_to_dict(result.coverage), indent=2))
            return 0
        if args.matrix:
            print(format_matrix(result.coverage))
            print()
        subsumption = None
        if args.targets == "frontier":
            from .analysis import analyze_subsumption

            subsumption = analyze_subsumption(result.static)
        print(format_summary(
            result.coverage, max_missed=args.max_missed,
            subsumption=subsumption,
        ))
        return 0

    if args.command == "campaign":
        cfg = _resolve_history(args, DftConfig.from_args(args, base=_config_base(args)))
        cfg.apply_static_cache()
        campaign = _campaign(args.system, cfg)
        records = campaign.run()
        print(format_iteration_table(records))
        return 0

    if args.command == "mutate":
        return _cmd_mutate(args)

    if args.command == "generate":
        return _cmd_generate(args)

    if args.command == "bench":
        import json

        from .bench import run_benchmarks, write_benchmarks

        sections = args.sections
        if args.section:
            sections = list(sections or []) + [
                name for name in args.section if name not in (sections or [])
            ]
        payload = run_benchmarks(
            workers=args.workers,
            campaign_system=args.campaign_system,
            parallel_system=args.parallel_system,
            sections=sections,
        )
        if args.output:
            write_benchmarks(args.output, payload)
            print(f"benchmark results written to {args.output}", file=sys.stderr)
        else:
            print(json.dumps(payload, indent=2))
        return 0

    if args.command == "telemetry-report":
        from .obs import format_tree, read_jsonl

        run = read_jsonl(args.file, strict=False)
        if run["skipped_lines"]:
            # Tolerate a corrupted tail or foreign records, but a file
            # with *no* valid telemetry lines is the wrong file, not a
            # damaged one.
            if not (run["meta"] or run["spans"] or run["metrics"]):
                raise ValueError(
                    f"{args.file} is not a telemetry event log (unknown "
                    f"telemetry record type on every line; "
                    f"{run['skipped_lines']} line(s) skipped)"
                )
            print(
                f"repro-dft: warning: skipped {run['skipped_lines']} "
                f"malformed line(s) in {args.file}",
                file=sys.stderr,
            )
        print(format_tree(run, metrics=not args.no_metrics))
        return 0

    if args.command == "history":
        return _cmd_history(args)

    if args.command == "worker":
        from .service import serve_worker

        return serve_worker(args.host, args.port)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "submit":
        return _cmd_submit(args)

    return 2  # pragma: no cover - argparse enforces commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
