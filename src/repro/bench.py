"""Performance benchmark machinery (``repro-dft bench``).

Measures the PR-2 optimisation layers against their unoptimised
baselines and emits one machine-readable JSON document (the
``BENCH_PR*.json`` baselines checked into the repo root):

* **campaign** — the iterative-refinement campaign run cold (every
  iteration re-executes its full cumulative suite) versus with the
  per-testcase :class:`~repro.exec.DynamicResultCache` (each distinct
  testcase simulated once).  This is the headline number: campaigns
  re-run 86 testcase executions for 26 distinct testcases (window
  lifter), so the cache legitimately collapses most of the work.
* **parallel** — the same testsuite through :class:`SerialExecutor` and
  :class:`ProcessExecutor`, with a result-equality check.  The speedup
  is reported honestly: on a single-CPU host it hovers around (or
  below) 1.0 and only multi-core machines benefit.
* **static_cache** — ``analyze_cluster`` cold versus memoized
  (:mod:`repro.analysis.cache`).
* **schedule_cache** — a dynamic-TDF simulation (the window lifter's
  fine/coarse timestep zone switching), reporting the kernel's
  schedule-cache hit/miss counts.
* **engine** — the PR-3 headline: the same cold campaign under the
  per-firing interpreter versus the compiled block engine
  (:mod:`repro.tdf.engine`), with a records-identical check and a
  byte-identical coverage comparison across every bundled system.
* **mutation** — a capped mutation-analysis run on the seeded random
  cluster (:mod:`repro.mutation`), reporting mutants/second and
  checking the kill matrix is byte-identical across engines.
* **generation** — the PR-5 headline: coverage-guided testcase
  generation (:mod:`repro.generation`) on the buck-boost and
  window-lifter base suites, reporting associations closed per second
  and per simulation under a fixed simulation budget.
* **store** — the PR-6 headline: the streaming columnar probe store
  (:mod:`repro.obs.store`) versus in-memory list recording — append
  throughput, peak RSS at 10⁶ probe events (fresh subprocess per
  backend), and a byte-identical coverage check across every bundled
  system with a spill-forcing chunk size.
* **match** — the PR-8 headline: the vectorized columnar matching
  kernel (:mod:`repro.instrument.matchkernel`) versus the per-event
  scan matcher on a ~10⁶-event columnar stream, plus a byte-identical
  coverage check per matcher across every bundled system.

Every section records its own wall-clock seconds, so regressions are
attributable to a layer, not just "the benchmark got slower".
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from .core import DftConfig, run_dft
from .exec import ProcessExecutor, SerialExecutor
from .testing import TestSuite

#: CLI/benchmark registry: system name -> (factory_ref, suite_ref).
#: Only systems whose suite is rebuildable by reference can run under
#: the process executor.
PARALLEL_REFS: Dict[str, Dict[str, str]] = {
    "sensor": {
        "factory": "repro.systems.sensor:SenseTop",
        "suite": "repro.systems.sensor:paper_testcases",
    },
    "window_lifter": {
        "factory": "repro.systems.window_lifter:WindowLifterTop",
        "suite": "repro.systems.campaigns:window_lifter_all_testcases",
    },
    "buck_boost": {
        "factory": "repro.systems.buck_boost:BuckBoostTop",
        "suite": "repro.systems.campaigns:buck_boost_all_testcases",
    },
    "riscv_platform": {
        "factory": "repro.systems.riscv_platform:RiscvPlatformTop",
        "suite": "repro.systems.riscv_platform:paper_style_testcases",
    },
}


def _timed(fn: Callable[[], Any]) -> tuple:
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def _records_equal(a, b) -> bool:
    """Compare campaign rows field-by-field (coverage objects excluded)."""
    if len(a) != len(b):
        return False
    return all(ra == rb for ra, rb in zip(a, b))


def bench_campaign(system: str = "buck_boost", workers: int = 1) -> Dict[str, Any]:
    """Cold versus result-cached campaign; identical Table-II rows."""
    from .systems import campaigns

    builders = {
        "window_lifter": campaigns.window_lifter_campaign,
        "buck_boost": campaigns.buck_boost_campaign,
    }
    builder = builders[system]

    cold = builder(workers=workers)
    cold.reuse_dynamic_results = False
    cold_records, cold_seconds = _timed(cold.run)

    cached = builder(workers=workers)
    cached_records, cached_seconds = _timed(cached.run)

    executions_cold = sum(
        len(cold.suite_for(i)) for i in range(cold.iteration_count)
    )
    distinct = len(cold.suite_for(cold.iteration_count - 1))
    return {
        "system": system,
        "workers": workers,
        "iterations": cold.iteration_count,
        "testcase_executions_cold": executions_cold,
        "testcase_executions_cached": distinct,
        "cold_seconds": cold_seconds,
        "cached_seconds": cached_seconds,
        "speedup": cold_seconds / cached_seconds if cached_seconds else None,
        "records_identical": _records_equal(cold_records, cached_records),
    }


def bench_parallel(system: str = "sensor", workers: int = 2) -> Dict[str, Any]:
    """Serial versus process-pool dynamic stage; identical coverage."""
    from .exec.refs import resolve_ref

    refs = PARALLEL_REFS[system]
    factory = resolve_ref(refs["factory"])
    suite = TestSuite(system, resolve_ref(refs["suite"])())

    serial_result, serial_seconds = _timed(
        lambda: run_dft(factory, suite, DftConfig(executor=SerialExecutor()))
    )
    parallel_result, parallel_seconds = _timed(
        lambda: run_dft(
            factory,
            suite,
            DftConfig(
                executor=ProcessExecutor(refs["factory"], refs["suite"], workers)
            ),
        )
    )
    from .core import format_summary

    identical = (
        serial_result.dynamic.exercised_keys()
        == parallel_result.dynamic.exercised_keys()
        and format_summary(serial_result.coverage)
        == format_summary(parallel_result.coverage)
    )
    return {
        "system": system,
        "workers": workers,
        "testcases": len(suite),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds if parallel_seconds else None,
        "identical": identical,
        "cpus": os.cpu_count(),
    }


def bench_static_cache(system: str = "window_lifter") -> Dict[str, Any]:
    """Static analysis cold versus served from a fresh memo."""
    from .analysis import StaticAnalysisCache, analyze_cluster
    from .exec.refs import resolve_ref

    factory = resolve_ref(PARALLEL_REFS[system]["factory"])
    cache = StaticAnalysisCache()
    cold, cold_seconds = _timed(lambda: analyze_cluster(factory(), cache=cache))
    warm, warm_seconds = _timed(lambda: analyze_cluster(factory(), cache=cache))
    return {
        "system": system,
        "cold_seconds": cold_seconds,
        "cached_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else None,
        "hits": cache.hits,
        "misses": cache.misses,
        "identical": {a.key for a in cold.associations}
        == {a.key for a in warm.associations},
    }


def bench_schedule_cache() -> Dict[str, Any]:
    """Dynamic-TDF simulation exercising the kernel schedule cache.

    Uses the window lifter with an obstacle parked in the fine-timestep
    zone: the position controller keeps flipping between the coarse and
    fine timestep, so after the first flip in each direction every
    schedule change is a cache hit.
    """
    from .systems.window_lifter import BTN_NONE, BTN_UP, WindowLifterTop
    from .tdf import sec
    from .tdf.simulator import Simulator

    top = WindowLifterTop()
    top.apply_buttons(lambda t: BTN_UP if t < 1.9 else BTN_NONE)
    top.apply_obstacle(lambda t: 90.0)
    sim = Simulator(top)
    _, seconds = _timed(lambda: sim.run(sec(2)))
    stats = sim.schedule_cache_stats
    return {
        "system": "window_lifter",
        "scenario": "obstacle in fine-timestep zone (dynamic TDF)",
        "seconds": seconds,
        "schedule_changes": sim.reelaborations,
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "hit_rate": stats["hit_rate"],
    }


def bench_engine(system: str = "buck_boost") -> Dict[str, Any]:
    """Cold campaign: per-firing interpreter versus block engine.

    Both campaigns re-execute every testcase of every iteration
    (``reuse_dynamic_results=False``) so the whole dynamic stage —
    instrumentation, simulation, event matching — is measured, not the
    result cache.  ``coverage_identical`` additionally runs every
    bundled system once per engine and compares the machine-readable
    coverage exports byte for byte.
    """
    from .core import coverage_to_dict
    from .exec.refs import resolve_ref
    from .systems import campaigns

    builders = {
        "window_lifter": campaigns.window_lifter_campaign,
        "buck_boost": campaigns.buck_boost_campaign,
    }
    builder = builders[system]

    interp = builder(engine="interp")
    interp.reuse_dynamic_results = False
    interp_records, interp_seconds = _timed(interp.run)

    block = builder(engine="block")
    block.reuse_dynamic_results = False
    block_records, block_seconds = _timed(block.run)

    coverage_identical: Dict[str, bool] = {}
    for name, refs in PARALLEL_REFS.items():
        factory = resolve_ref(refs["factory"])

        def blob(engine: str) -> str:
            suite = TestSuite(name, resolve_ref(refs["suite"])())
            result = run_dft(factory, suite, DftConfig(engine=engine))
            return json.dumps(coverage_to_dict(result.coverage), sort_keys=True)

        coverage_identical[name] = blob("interp") == blob("block")

    return {
        "system": system,
        "iterations": interp.iteration_count,
        "testcase_executions": sum(
            len(interp.suite_for(i)) for i in range(interp.iteration_count)
        ),
        "interp_seconds": interp_seconds,
        "block_seconds": block_seconds,
        "speedup": interp_seconds / block_seconds if block_seconds else None,
        "records_identical": _records_equal(interp_records, block_records),
        "coverage_identical": coverage_identical,
    }


def bench_mutation(
    cluster_seed: int = 7, max_mutants: int = 15, seed: int = 0
) -> Dict[str, Any]:
    """Capped mutation run on the seeded random cluster.

    Reports throughput (mutants per second over the full differential
    suite) and re-runs the same sample under the other engine to check
    that the canonical kill matrix is byte-identical.
    """
    from .mutation import kill_matrix_bytes, run_mutation

    def once(engine: str):
        return _timed(
            lambda: run_mutation(
                "repro.testing.generate:random_cluster_factory",
                "repro.testing.generate:random_suite",
                DftConfig(seed=seed, engine=engine),
                factory_args=(cluster_seed,),
                suite_args=(cluster_seed,),
                max_mutants=max_mutants,
            )
        )

    interp_run, interp_seconds = once("interp")
    block_run, block_seconds = once("block")
    return {
        "system": "random",
        "cluster_seed": cluster_seed,
        "generated": interp_run.generated,
        "sampled": len(interp_run.specs),
        "viable": interp_run.viable,
        "killed": interp_run.killed,
        "mutation_score": interp_run.mutation_score,
        "interp_seconds": interp_seconds,
        "block_seconds": block_seconds,
        "mutants_per_second": (
            len(interp_run.specs) / interp_seconds if interp_seconds else None
        ),
        "kill_matrix_identical": kill_matrix_bytes(interp_run)
        == kill_matrix_bytes(block_run),
    }


def bench_generation(
    budget_simulations: int = 40, seed: int = 0
) -> Dict[str, Any]:
    """Coverage-guided generation throughput on both case-study VPs.

    Runs :func:`repro.generation.generate_suite` on each system's *base*
    suite under a fixed simulation budget and reports the headline
    numbers: associations closed per executed simulation (search
    quality) and per wall-clock second (end-to-end throughput,
    including the baseline and verification pipeline runs).
    """
    from .generation import generate_suite
    from .systems import campaigns
    from .systems.buck_boost import BuckBoostTop
    from .systems.window_lifter import WindowLifterTop

    cases = {
        "buck_boost": (BuckBoostTop, campaigns.buck_boost_base_suite),
        "window_lifter": (WindowLifterTop, campaigns.window_lifter_base_suite),
    }
    cfg = DftConfig(seed=seed, budget_simulations=budget_simulations)
    systems: Dict[str, Any] = {}
    for system, (factory, base_builder) in cases.items():
        base = TestSuite(system, base_builder())
        result, seconds = _timed(
            lambda: generate_suite(factory, base, system, cfg)
        )
        closed = len(result.closed)
        systems[system] = {
            "targets": len(result.targets),
            "closed": closed,
            "generated_testcases": len(result.generated),
            "simulations": result.simulations,
            "memo_hits": result.memo_hits,
            "stop_reason": result.stop_reason,
            "seconds": seconds,
            "closed_per_second": closed / seconds if seconds else None,
            "closed_per_simulation": (
                closed / result.simulations if result.simulations else None
            ),
        }
    return {
        "seed": seed,
        "budget_simulations": budget_simulations,
        "strategy": "mutation",
        "systems": systems,
    }


def bench_directed(
    budget_simulations: int = 32, seed: int = 0
) -> Dict[str, Any]:
    """The PR-9 headline: frontier targets + path-guided search.

    Same shape as :func:`bench_generation`, but the search runs in
    ``--targets frontier`` mode (subsumption-reduced target set) with
    the ``guided`` strategy and graded du-path fitness, under a
    *smaller* simulation budget than the PR-5 run (40).  The gate is
    that the directed run still closes at least as many associations
    on the buck-boost converter as the undirected PR-5 baseline (11)
    while executing fewer simulations.  ``closed_total`` counts the
    searched targets plus the subsumed associations that closed
    opportunistically when their subsumers did;
    ``strong_closed_total`` is the Strong-class slice of the full
    association set, measured on the verification pipeline's
    before/after coverage.
    """
    from .core.associations import AssocClass
    from .generation import generate_suite
    from .systems import campaigns
    from .systems.buck_boost import BuckBoostTop
    from .systems.window_lifter import WindowLifterTop

    cases = {
        "buck_boost": (BuckBoostTop, campaigns.buck_boost_base_suite),
        "window_lifter": (WindowLifterTop, campaigns.window_lifter_base_suite),
    }
    cfg = DftConfig(seed=seed, budget_simulations=budget_simulations)
    systems: Dict[str, Any] = {}
    for system, (factory, base_builder) in cases.items():
        base = TestSuite(system, base_builder())
        result, seconds = _timed(
            lambda: generate_suite(
                factory, base, system, cfg,
                strategy="guided", target_mode="frontier",
            )
        )

        def _strong(coverage) -> int:
            cc = coverage.class_coverage()[AssocClass.STRONG]
            return cc.covered

        closed = len(result.closed)
        closed_total = closed + result.subsumed_closed
        systems[system] = {
            "frontier_targets": len(result.targets),
            "subsumed_targets": result.subsumed_targets,
            "closed": closed,
            "subsumed_closed": result.subsumed_closed,
            "closed_total": closed_total,
            "strong_closed_total": (
                _strong(result.coverage_after) - _strong(result.coverage_before)
            ),
            "generated_testcases": len(result.generated),
            "simulations": result.simulations,
            "memo_hits": result.memo_hits,
            "stop_reason": result.stop_reason,
            "seconds": seconds,
            "closed_per_second": closed_total / seconds if seconds else None,
            "closed_per_simulation": (
                closed_total / result.simulations if result.simulations else None
            ),
        }
    return {
        "seed": seed,
        "budget_simulations": budget_simulations,
        "strategy": "guided",
        "targets_mode": "frontier",
        "baseline": {"bench": "BENCH_PR5.json", "buck_boost_closed": 11,
                     "budget_simulations": 40},
        "systems": systems,
    }


def bench_batch(
    system: str = "buck_boost",
    max_mutants: int = 25,
    batch_sizes: tuple = (1, 4, 8),
    seed: int = 0,
) -> Dict[str, Any]:
    """The PR-7 headline: lockstep batched mutation on a case-study VP.

    Runs the same cold ``max_mutants``-mutant kill-matrix campaign once
    through the serial block engine and once per batch size, reporting
    the speedup curve.  The batched path also enables mutant screening
    (replay-only survival proofs), which is where most of the win on
    surviving mutants comes from — the ISSUE gate is the end-to-end
    wall-clock ratio, with every matrix byte-identical to serial.
    """
    from .mutation import kill_matrix_bytes, run_mutation

    refs = PARALLEL_REFS[system]

    def once(batch_size):
        return _timed(
            lambda: run_mutation(
                refs["factory"],
                refs["suite"],
                DftConfig(
                    seed=seed,
                    engine="block",
                    batch_size=batch_size,
                    budget_seconds=float("inf"),
                ),
                max_mutants=max_mutants,
            )
        )

    serial_run, serial_seconds = once(None)
    serial_bytes = kill_matrix_bytes(serial_run)
    curve: Dict[str, Any] = {}
    identical = True
    for width in batch_sizes:
        run, seconds = once(width)
        same = kill_matrix_bytes(run) == serial_bytes
        identical = identical and same
        curve[str(width)] = {
            "seconds": seconds,
            "speedup_vs_serial": serial_seconds / seconds if seconds else None,
            "kill_matrix_identical": same,
        }
    best = max(
        (entry["speedup_vs_serial"] or 0.0) for entry in curve.values()
    )
    return {
        "system": system,
        "max_mutants": max_mutants,
        "sampled": len(serial_run.specs),
        "killed": serial_run.killed,
        "serial_seconds": serial_seconds,
        "batch_sizes": curve,
        "best_speedup": best,
        "kill_matrix_identical": identical,
    }


def _synthetic_events(count: int):
    """A deterministic stream of ``count`` probe-event tuples.

    Cycles def / port-write / port-read / use over a handful of
    signals and variables — the same tuple shapes and string-interning
    profile the instrumenter produces, without paying for a simulation.
    """
    from .instrument.probes import WriterKind
    from .obs.store.columns import TAG_DEF, TAG_PR, TAG_PW, TAG_USE

    kind = WriterKind.MODEL
    emitted = 0
    token = 0
    while emitted < count:
        sig = f"cluster.sig{token % 4}"
        var = f"m_state{token % 3}"
        yield (TAG_DEF, var, "writer", 10 + token % 3)
        yield (TAG_PW, sig, token, var, "writer", 20, kind)
        yield (TAG_PR, sig, token, "inp", "reader", "reader", 30, False)
        yield (TAG_USE, var, "reader", 40)
        emitted += 4
        token += 1


def store_rss_probe(mode: str, events: int, chunk_size: int) -> Dict[str, Any]:
    """Record + doubly-iterate ``events`` synthetic probe events and
    report this process's peak RSS.  Meant to run in a *fresh exec'd*
    subprocess (see :func:`_store_rss_subprocess`), reading ``VmHWM``
    where available: on Linux, ``ru_maxrss`` folds in the high-water
    mark of the pre-exec address space inherited from the forking
    parent, which would make both backends report the benchmark
    parent's peak; ``VmHWM`` tracks only the current address space.
    """
    from .obs.store import ColumnarProbeStore

    if mode == "memory":
        buf: Any = []
    else:
        buf = ColumnarProbeStore(chunk_size=chunk_size)
    append = buf.append
    for event in _synthetic_events(events):
        append(event)
    # Two full passes, exactly what the streaming matcher does.
    iterated = 0
    for _ in range(2):
        for _event in buf:
            iterated += 1
    report = {
        "mode": mode,
        "events": len(buf),
        "iterated": iterated,
        "peak_rss_kb": _peak_rss_kb(),
        "spill_bytes": getattr(buf, "_spill_bytes", 0),
        "chunks_spilled": getattr(buf, "_chunks", 0),
    }
    if mode != "memory":
        buf.close()
    return report


def _peak_rss_kb() -> int:
    """This process's peak resident set size in KiB."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _store_rss_subprocess(
    mode: str, events: int, chunk_size: int
) -> Dict[str, Any]:
    """Run :func:`store_rss_probe` in a fresh ``exec``'d interpreter."""
    import subprocess

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    script = (
        "import json, sys\n"
        f"sys.path.insert(0, {src_root!r})\n"
        "from repro.bench import store_rss_probe\n"
        f"print(json.dumps(store_rss_probe({mode!r}, {events}, {chunk_size})))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script], check=True, capture_output=True,
        text=True,
    )
    return json.loads(out.stdout)


def bench_store(
    events: int = 1_000_000, chunk_size: int = 65536
) -> Dict[str, Any]:
    """The PR-6 headline: columnar probe store versus in-memory lists.

    Three measurements:

    * **throughput** — appending ``events`` synthetic probe events
      through the store (encode + spill included) versus a plain list,
      in events per second;
    * **peak RSS** — the same recording plus the matcher's two read
      passes, each in a fresh exec'd subprocess so the peak is
      attributable; the columnar number should stay flat while the
      in-memory one scales with ``events``;
    * **coverage identity** — every bundled system run once per
      backend (block engine, spill-forcing chunk size), comparing the
      machine-readable coverage exports byte for byte.
    """
    from .core import coverage_to_dict
    from .exec.refs import resolve_ref
    from .obs.store import ColumnarProbeStore

    store = ColumnarProbeStore(chunk_size=chunk_size)
    _, store_seconds = _timed(
        lambda: [store.append(e) for e in _synthetic_events(events)]
    )
    store_rows, spill_bytes = len(store), store._spill_bytes
    store.close()
    plain: List[tuple] = []
    _, list_seconds = _timed(
        lambda: [plain.append(e) for e in _synthetic_events(events)]
    )

    rss: Dict[str, Any] = {}
    for mode in ("memory", "columnar"):
        rss[mode] = _store_rss_subprocess(mode, events, chunk_size)
    # Flatness evidence: twice the events should leave the columnar
    # peak unchanged (the in-memory peak doubles with the event count).
    rss["columnar_2x"] = _store_rss_subprocess("columnar", 2 * events, chunk_size)

    coverage_identical: Dict[str, bool] = {}
    for name, refs in PARALLEL_REFS.items():
        factory = resolve_ref(refs["factory"])

        def blob(cfg: DftConfig) -> str:
            suite = TestSuite(name, resolve_ref(refs["suite"])())
            result = run_dft(factory, suite, cfg)
            return json.dumps(coverage_to_dict(result.coverage), sort_keys=True)

        coverage_identical[name] = blob(DftConfig(engine="block")) == blob(
            DftConfig(
                engine="block", probe_store="columnar", store_chunk_size=4096
            )
        )

    memory_kb = rss["memory"]["peak_rss_kb"]
    columnar_kb = rss["columnar"]["peak_rss_kb"]
    columnar_2x_kb = rss["columnar_2x"]["peak_rss_kb"]
    return {
        "events": events,
        "chunk_size": chunk_size,
        "store_seconds": store_seconds,
        "list_seconds": list_seconds,
        "store_events_per_second": (
            store_rows / store_seconds if store_seconds else None
        ),
        "list_events_per_second": (
            len(plain) / list_seconds if list_seconds else None
        ),
        "spill_bytes": spill_bytes,
        "peak_rss": rss,
        "rss_ratio_memory_over_columnar": (
            memory_kb / columnar_kb if columnar_kb else None
        ),
        "rss_ratio_columnar_2x_over_1x": (
            columnar_2x_kb / columnar_kb if columnar_kb else None
        ),
        "coverage_identical": coverage_identical,
    }


def _synthetic_match_events(count: int):
    """Synthetic probe stream exercising every matcher branch.

    Extends :func:`_synthetic_events`' shape with testbench writes (the
    placeholder-def path), late re-writes of old tokens (last-by-seq
    overrides), negative-token reads (initial/delay exclusion), and a
    periodic undriven read (use-without-def diagnostics) — so the
    vector-versus-scan identity check covers the full kernel, not just
    the happy path.
    """
    from .instrument.probes import WriterKind
    from .obs.store.columns import TAG_DEF, TAG_PR, TAG_PW, TAG_USE

    model, testbench = WriterKind.MODEL, WriterKind.TESTBENCH
    emitted = 0
    token = 0
    while emitted < count:
        sig = f"cluster.sig{token % 4}"
        var = f"m_state{token % 3}"
        yield (TAG_DEF, var, "writer", 10 + token % 3)
        yield (TAG_PW, sig, token, var, "writer", 20, model)
        yield (TAG_PW, "cluster.stim", token, "src", "tb", 0, testbench)
        yield (TAG_PR, sig, token, "inp", "reader", "reader", 30, False)
        yield (TAG_PR, "cluster.stim", token, "ref", "reader", "reader", 31,
               False)
        yield (TAG_USE, var, "writer", 40)
        yield (TAG_USE, var, "reader", 41)  # no same-model def: pairs nothing
        emitted += 7
        token += 1
        if token % 64 == 0:
            # Last-by-seq override of an old token, a pre-priming read,
            # and an undriven read.
            yield (TAG_PW, sig, token - 32, var, "rewriter", 21, model)
            yield (TAG_PR, sig, -1, "inp", "reader", "reader", 30, False)
            yield (TAG_PR, "cluster.nc", 0, "flt", "floating", "floating",
                   50, True)
            emitted += 3


def bench_match(
    events: int = 1_000_000,
    chunk_size: int = 65536,
    coverage_systems: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """The PR-8 headline: vectorized versus scan event matching.

    Records ``events`` synthetic probe events into a columnar store and
    times :func:`~repro.instrument.matching.match_events` over the same
    store under ``matcher="scan"`` (the two-pass streaming matcher) and
    ``matcher="vector"`` (the columnar array kernel), checking the pair
    sets and use-without-def diagnostics are identical.  Then runs
    every bundled system once per matcher (block engine, spill-forcing
    columnar store) and compares the machine-readable coverage exports
    byte for byte.  Without numpy the vector leg degrades to the scan
    fallback; ``numpy`` in the payload records which was measured.
    """
    from .core import coverage_to_dict
    from .exec.refs import resolve_ref
    from .instrument.matching import match_events
    from .instrument.probes import ProbeRuntime
    from .obs.store import ColumnarProbeStore
    from .obs.store.columns import HAVE_NUMPY

    store = ColumnarProbeStore(chunk_size=chunk_size)
    try:
        for event in _synthetic_match_events(events):
            store.append(event)
        rows = len(store)
        probe = ProbeRuntime("cluster", store=store)
        start_lines = {"reader": 1}
        results: Dict[str, Any] = {}
        for matcher in ("scan", "vector"):
            match, seconds = _timed(
                lambda m=matcher: match_events(
                    probe, "bench", start_lines, {}, warn=False, matcher=m
                )
            )
            results[matcher] = (match, seconds)
    finally:
        store.close()

    scan, scan_seconds = results["scan"]
    vector, vector_seconds = results["vector"]
    identical = (
        scan.pairs == vector.pairs
        and scan.use_without_def == vector.use_without_def
    )

    coverage_identical: Dict[str, bool] = {}
    for name in coverage_systems if coverage_systems is not None else sorted(
        PARALLEL_REFS
    ):
        refs = PARALLEL_REFS[name]
        factory = resolve_ref(refs["factory"])

        def blob(matcher: str) -> str:
            suite = TestSuite(name, resolve_ref(refs["suite"])())
            result = run_dft(factory, suite, DftConfig(
                engine="block", probe_store="columnar",
                store_chunk_size=4096, matcher=matcher,
            ))
            return json.dumps(coverage_to_dict(result.coverage), sort_keys=True)

        coverage_identical[name] = blob("scan") == blob("vector")

    return {
        "events": rows,
        "chunk_size": chunk_size,
        "numpy": HAVE_NUMPY,
        "scan_seconds": scan_seconds,
        "vector_seconds": vector_seconds,
        "speedup": scan_seconds / vector_seconds if vector_seconds else None,
        "scan_events_per_second": (
            rows / scan_seconds if scan_seconds else None
        ),
        "vector_events_per_second": (
            rows / vector_seconds if vector_seconds else None
        ),
        "pairs": len(scan.pairs),
        "use_without_def": len(scan.use_without_def),
        "identical": identical,
        "coverage_identical": coverage_identical,
    }


def run_benchmarks(
    workers: int = 2,
    campaign_system: str = "buck_boost",
    parallel_system: str = "sensor",
    sections: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Run the selected benchmark sections and assemble the JSON payload."""
    wanted = sections or [
        "campaign", "parallel", "static_cache", "schedule_cache", "engine",
        "mutation", "generation", "store", "batch", "match", "directed",
    ]
    payload: Dict[str, Any] = {
        "benchmark": "repro-dft pipeline performance",
        "host": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpus": os.cpu_count(),
        },
    }
    if "campaign" in wanted:
        payload["campaign"] = bench_campaign(campaign_system, workers=1)
    if "parallel" in wanted:
        payload["parallel"] = bench_parallel(parallel_system, workers=workers)
    if "static_cache" in wanted:
        payload["static_cache"] = bench_static_cache()
    if "schedule_cache" in wanted:
        payload["schedule_cache"] = bench_schedule_cache()
    if "engine" in wanted:
        payload["engine"] = bench_engine(campaign_system)
    if "mutation" in wanted:
        payload["mutation"] = bench_mutation()
    if "generation" in wanted:
        payload["generation"] = bench_generation()
    if "store" in wanted:
        payload["store"] = bench_store()
    if "batch" in wanted:
        payload["batch"] = bench_batch(campaign_system)
    if "match" in wanted:
        payload["match"] = bench_match()
    if "directed" in wanted:
        payload["directed"] = bench_directed()
    return payload


def write_benchmarks(path: str, payload: Dict[str, Any]) -> None:
    """Pretty-print the payload to ``path`` (trailing newline included)."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
