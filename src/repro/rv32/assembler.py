"""A two-pass assembler for the RV32I subset of :mod:`repro.rv32.isa`.

Supports labels, ABI and numeric register names, decimal/hex immediates,
``lw rd, imm(rs1)`` / ``sw rs2, imm(rs1)`` address syntax, comments
(``#`` and ``;``), and the pseudo-instructions firmware actually wants:

====================  =========================================
pseudo                expansion
====================  =========================================
``nop``               ``addi x0, x0, 0``
``mv rd, rs``         ``addi rd, rs, 0``
``li rd, imm``        ``addi`` / ``lui``+``addi`` as needed
``j label``           ``jal x0, label``
``beqz/bnez rs, l``   ``beq/bne rs, x0, l``
``ret``               ``jalr x0, ra, 0``
====================  =========================================
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

from .isa import (
    ALU_IMM_F3,
    ALU_REG_CODES,
    BRANCH_F3,
    EBREAK_WORD,
    OP_ALU_IMM,
    OP_ALU_REG,
    OP_BRANCH,
    OP_JAL,
    OP_JALR,
    OP_LOAD,
    OP_LUI,
    OP_AUIPC,
    OP_STORE,
    encode_b,
    encode_i,
    encode_j,
    encode_r,
    encode_s,
    encode_u,
    sign_extend,
)


class AssemblerError(Exception):
    """Raised for malformed assembly input."""


_ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


def parse_register(token: str) -> int:
    """Resolve an ``x<N>`` or ABI register name."""
    token = token.strip().lower()
    if token in _ABI_NAMES:
        return _ABI_NAMES[token]
    if token.startswith("x") and token[1:].isdigit():
        index = int(token[1:])
        if 0 <= index <= 31:
            return index
    raise AssemblerError(f"unknown register {token!r}")


def parse_immediate(token: str, labels: Dict[str, int], pc: int) -> int:
    """Resolve an immediate: number, hex, or label (PC-relative)."""
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        pass
    if token in labels:
        return labels[token] - pc
    raise AssemblerError(f"unknown immediate or label {token!r}")


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",") if part.strip()]


def _strip(line: str) -> str:
    for marker in ("#", ";"):
        if marker in line:
            line = line.split(marker, 1)[0]
    return line.strip()


def _first_pass(lines: Sequence[str]) -> Tuple[List[Tuple[str, List[str]]], Dict[str, int]]:
    labels: Dict[str, int] = {}
    instructions: List[Tuple[str, List[str]]] = []
    for raw in lines:
        line = _strip(raw)
        if not line:
            continue
        while ":" in line:
            label, line = line.split(":", 1)
            label = label.strip()
            if not label.isidentifier():
                raise AssemblerError(f"invalid label {label!r}")
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}")
            labels[label] = len(instructions) * 4
            line = line.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        for expanded in _expand_pseudo(mnemonic, operands):
            instructions.append(expanded)
    return instructions, labels


def _expand_pseudo(mnemonic: str, ops: List[str]) -> List[Tuple[str, List[str]]]:
    if mnemonic == "nop":
        return [("addi", ["x0", "x0", "0"])]
    if mnemonic == "mv":
        return [("addi", [ops[0], ops[1], "0"])]
    if mnemonic == "j":
        return [("jal", ["x0", ops[0]])]
    if mnemonic == "beqz":
        return [("beq", [ops[0], "x0", ops[1]])]
    if mnemonic == "bnez":
        return [("bne", [ops[0], "x0", ops[1]])]
    if mnemonic == "ret":
        return [("jalr", ["x0", "ra", "0"])]
    if mnemonic == "li":
        try:
            value = int(ops[1], 0)
        except ValueError:
            raise AssemblerError(f"li needs a numeric immediate, got {ops[1]!r}")
        if -2048 <= value <= 2047:
            return [("addi", [ops[0], "x0", str(value)])]
        upper = (value + 0x800) >> 12 & 0xFFFFF
        lower = sign_extend(value & 0xFFF, 12)
        out = [("lui", [ops[0], str(upper)])]
        if lower:
            out.append(("addi", [ops[0], ops[0], str(lower)]))
        else:
            out.append(("addi", [ops[0], ops[0], "0"]))
        return out
    return [(mnemonic, ops)]


def assemble(source: str) -> List[int]:
    """Assemble ``source`` into a list of 32-bit instruction words."""
    instructions, labels = _first_pass(source.splitlines())
    words: List[int] = []
    for index, (mnemonic, ops) in enumerate(instructions):
        pc = index * 4
        try:
            words.append(_encode_one(mnemonic, ops, labels, pc))
        except (AssemblerError, ValueError) as exc:
            raise AssemblerError(
                f"at instruction {index} ({mnemonic} {', '.join(ops)}): {exc}"
            ) from exc
    return words


def _encode_one(mnemonic: str, ops: List[str], labels: Dict[str, int], pc: int) -> int:
    if mnemonic == "ebreak":
        return EBREAK_WORD
    if mnemonic == "lui":
        return encode_u(OP_LUI, parse_register(ops[0]), int(ops[1], 0) & 0xFFFFF)
    if mnemonic == "auipc":
        return encode_u(OP_AUIPC, parse_register(ops[0]), int(ops[1], 0) & 0xFFFFF)
    if mnemonic == "jal":
        if len(ops) == 1:
            ops = ["ra"] + ops
        return encode_j(OP_JAL, parse_register(ops[0]),
                        parse_immediate(ops[1], labels, pc))
    if mnemonic == "jalr":
        return encode_i(OP_JALR, 0, parse_register(ops[0]),
                        parse_register(ops[1]), int(ops[2], 0))
    if mnemonic in BRANCH_F3:
        return encode_b(OP_BRANCH, BRANCH_F3[mnemonic],
                        parse_register(ops[0]), parse_register(ops[1]),
                        parse_immediate(ops[2], labels, pc))
    if mnemonic == "lw":
        match = _MEM_RE.match(ops[1])
        if not match:
            raise AssemblerError(f"expected imm(rs1), got {ops[1]!r}")
        return encode_i(OP_LOAD, 0b010, parse_register(ops[0]),
                        parse_register(match.group(2)), int(match.group(1), 0))
    if mnemonic == "sw":
        match = _MEM_RE.match(ops[1])
        if not match:
            raise AssemblerError(f"expected imm(rs1), got {ops[1]!r}")
        return encode_s(OP_STORE, 0b010, parse_register(match.group(2)),
                        parse_register(ops[0]), int(match.group(1), 0))
    if mnemonic in ("slli", "srli", "srai"):
        shamt = int(ops[2], 0)
        if not 0 <= shamt <= 31:
            raise AssemblerError(f"shift amount out of range: {shamt}")
        funct7 = 0b0100000 if mnemonic == "srai" else 0
        return encode_r(OP_ALU_IMM, ALU_IMM_F3[mnemonic], funct7,
                        parse_register(ops[0]), parse_register(ops[1]), shamt)
    if mnemonic in ALU_IMM_F3:
        return encode_i(OP_ALU_IMM, ALU_IMM_F3[mnemonic],
                        parse_register(ops[0]), parse_register(ops[1]),
                        int(ops[2], 0))
    if mnemonic in ALU_REG_CODES:
        funct3, funct7 = ALU_REG_CODES[mnemonic]
        return encode_r(OP_ALU_REG, funct3, funct7,
                        parse_register(ops[0]), parse_register(ops[1]),
                        parse_register(ops[2]))
    raise AssemblerError(f"unknown mnemonic {mnemonic!r}")
