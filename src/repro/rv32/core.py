"""An RV32I interpreter core with memory-mapped I/O hooks.

:class:`Memory` is word-addressed with optional per-address load/store
hooks — the mechanism the mixed-signal platform uses to map the ADC
sample register and the control/DAC registers into the firmware's
address space.  :class:`Rv32Core` executes one instruction per
:meth:`Rv32Core.step`; ``ebreak`` halts the core.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .isa import Decoded, IllegalInstruction, decode, sign_extend

LoadHook = Callable[[], int]
StoreHook = Callable[[int], None]


def _to_signed(value: int) -> int:
    return sign_extend(value, 32)


def _to_u32(value: int) -> int:
    return value & 0xFFFFFFFF


class MemoryAccessError(Exception):
    """Raised for misaligned or out-of-range accesses."""


class Memory:
    """Sparse word-addressed memory with MMIO hooks."""

    def __init__(self, size: int = 1 << 16) -> None:
        self.size = size
        self._words: Dict[int, int] = {}
        self._load_hooks: Dict[int, LoadHook] = {}
        self._store_hooks: Dict[int, StoreHook] = {}

    def map_load(self, address: int, hook: LoadHook) -> None:
        """Route word loads of ``address`` through ``hook``."""
        self._check(address)
        self._load_hooks[address] = hook

    def map_store(self, address: int, hook: StoreHook) -> None:
        """Route word stores to ``address`` through ``hook``."""
        self._check(address)
        self._store_hooks[address] = hook

    def _check(self, address: int) -> None:
        if address % 4 != 0:
            raise MemoryAccessError(f"misaligned word access at {address:#x}")
        if not 0 <= address < self.size:
            raise MemoryAccessError(f"address out of range: {address:#x}")

    def load_word(self, address: int) -> int:
        """Load a 32-bit word (MMIO hooks take precedence)."""
        self._check(address)
        hook = self._load_hooks.get(address)
        if hook is not None:
            return _to_u32(hook())
        return self._words.get(address, 0)

    def store_word(self, address: int, value: int) -> None:
        """Store a 32-bit word (MMIO hooks take precedence)."""
        self._check(address)
        hook = self._store_hooks.get(address)
        if hook is not None:
            hook(_to_u32(value))
            return
        self._words[address] = _to_u32(value)

    def load_program(self, words: Sequence[int], base: int = 0) -> None:
        """Write instruction ``words`` starting at ``base``."""
        for offset, word in enumerate(words):
            self.store_word(base + offset * 4, word)


class Rv32Core:
    """A single-hart RV32I interpreter."""

    def __init__(self, memory: Memory, entry: int = 0) -> None:
        self.memory = memory
        self.regs: List[int] = [0] * 32
        self.pc = entry
        self.halted = False
        self.instret = 0

    # -- register access (x0 hard-wired to zero) --------------------------------

    def read_reg(self, index: int) -> int:
        """Unsigned value of register ``index``."""
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        """Write register ``index`` (writes to x0 are ignored)."""
        if index != 0:
            self.regs[index] = _to_u32(value)

    # -- execution -------------------------------------------------------------------

    def step(self) -> Optional[Decoded]:
        """Execute one instruction; returns it (None when halted)."""
        if self.halted:
            return None
        word = self.memory.load_word(self.pc)
        inst = decode(word)
        next_pc = self.pc + 4

        rs1 = self.read_reg(inst.rs1)
        rs2 = self.read_reg(inst.rs2)
        s1 = _to_signed(rs1)
        s2 = _to_signed(rs2)
        name = inst.mnemonic

        if name == "lui":
            self.write_reg(inst.rd, inst.imm << 12)
        elif name == "auipc":
            self.write_reg(inst.rd, self.pc + (inst.imm << 12))
        elif name == "jal":
            self.write_reg(inst.rd, next_pc)
            next_pc = self.pc + inst.imm
        elif name == "jalr":
            self.write_reg(inst.rd, next_pc)
            next_pc = (rs1 + inst.imm) & ~1
        elif name in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken = {
                "beq": rs1 == rs2,
                "bne": rs1 != rs2,
                "blt": s1 < s2,
                "bge": s1 >= s2,
                "bltu": rs1 < rs2,
                "bgeu": rs1 >= rs2,
            }[name]
            if taken:
                next_pc = self.pc + inst.imm
        elif name == "lw":
            self.write_reg(inst.rd, self.memory.load_word(_to_u32(rs1 + inst.imm)))
        elif name == "sw":
            self.memory.store_word(_to_u32(rs1 + inst.imm), rs2)
        elif name == "addi":
            self.write_reg(inst.rd, rs1 + inst.imm)
        elif name == "slti":
            self.write_reg(inst.rd, 1 if s1 < inst.imm else 0)
        elif name == "sltiu":
            self.write_reg(inst.rd, 1 if rs1 < _to_u32(inst.imm) else 0)
        elif name == "xori":
            self.write_reg(inst.rd, rs1 ^ _to_u32(inst.imm))
        elif name == "ori":
            self.write_reg(inst.rd, rs1 | _to_u32(inst.imm))
        elif name == "andi":
            self.write_reg(inst.rd, rs1 & _to_u32(inst.imm))
        elif name == "slli":
            self.write_reg(inst.rd, rs1 << inst.imm)
        elif name == "srli":
            self.write_reg(inst.rd, rs1 >> inst.imm)
        elif name == "srai":
            self.write_reg(inst.rd, s1 >> inst.imm)
        elif name == "add":
            self.write_reg(inst.rd, rs1 + rs2)
        elif name == "sub":
            self.write_reg(inst.rd, rs1 - rs2)
        elif name == "sll":
            self.write_reg(inst.rd, rs1 << (rs2 & 0x1F))
        elif name == "slt":
            self.write_reg(inst.rd, 1 if s1 < s2 else 0)
        elif name == "sltu":
            self.write_reg(inst.rd, 1 if rs1 < rs2 else 0)
        elif name == "xor":
            self.write_reg(inst.rd, rs1 ^ rs2)
        elif name == "srl":
            self.write_reg(inst.rd, rs1 >> (rs2 & 0x1F))
        elif name == "sra":
            self.write_reg(inst.rd, s1 >> (rs2 & 0x1F))
        elif name == "or":
            self.write_reg(inst.rd, rs1 | rs2)
        elif name == "and":
            self.write_reg(inst.rd, rs1 & rs2)
        elif name == "ebreak":
            self.halted = True
            return inst
        else:  # pragma: no cover - decode() already rejects these
            raise IllegalInstruction(name)

        self.pc = _to_u32(next_pc)
        self.instret += 1
        return inst

    def run(self, max_steps: int = 100_000) -> int:
        """Step until halt or ``max_steps``; returns executed count."""
        executed = 0
        while not self.halted and executed < max_steps:
            self.step()
            executed += 1
        return executed
