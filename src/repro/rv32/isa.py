"""RV32I instruction encodings (the subset the platform firmware uses).

Implements encode/decode for the R/I/S/B/U/J instruction formats of the
RISC-V RV32I base ISA: LUI, AUIPC, JAL, JALR, the conditional branches,
LW/SW, the ALU immediates and register-register ALU ops, plus EBREAK
(used as the firmware halt).  Loads/stores are word-granular — enough
for memory-mapped peripheral registers and firmware data.

The encodings follow the RISC-V unprivileged specification; a
property-based round-trip test (encode -> decode -> fields) guards them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class IllegalInstruction(Exception):
    """Raised for words that do not decode to a supported instruction."""


def _mask32(value: int) -> int:
    return value & 0xFFFFFFFF


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as two's complement."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


# -- encoders ----------------------------------------------------------------

def _check_reg(reg: int) -> int:
    if not 0 <= reg <= 31:
        raise ValueError(f"register index out of range: {reg}")
    return reg


def encode_r(opcode: int, funct3: int, funct7: int, rd: int, rs1: int, rs2: int) -> int:
    return (
        (funct7 << 25)
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


def encode_i(opcode: int, funct3: int, rd: int, rs1: int, imm: int) -> int:
    if not -2048 <= imm <= 2047:
        raise ValueError(f"I-immediate out of range: {imm}")
    return (
        ((imm & 0xFFF) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


def encode_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    if not -2048 <= imm <= 2047:
        raise ValueError(f"S-immediate out of range: {imm}")
    imm &= 0xFFF
    return (
        ((imm >> 5) << 25)
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
    )


def encode_b(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    if imm % 2 != 0:
        raise ValueError(f"B-immediate must be even: {imm}")
    if not -4096 <= imm <= 4094:
        raise ValueError(f"B-immediate out of range: {imm}")
    imm &= 0x1FFF
    return (
        (((imm >> 12) & 0x1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 0x1) << 7)
        | opcode
    )


def encode_u(opcode: int, rd: int, imm: int) -> int:
    if not 0 <= imm <= 0xFFFFF:
        raise ValueError(f"U-immediate out of range: {imm}")
    return (imm << 12) | (_check_reg(rd) << 7) | opcode


def encode_j(opcode: int, rd: int, imm: int) -> int:
    if imm % 2 != 0:
        raise ValueError(f"J-immediate must be even: {imm}")
    if not -(1 << 20) <= imm <= (1 << 20) - 2:
        raise ValueError(f"J-immediate out of range: {imm}")
    imm &= 0x1FFFFF
    return (
        (((imm >> 20) & 0x1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 0x1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


# -- opcode map ----------------------------------------------------------------

OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_ALU_IMM = 0b0010011
OP_ALU_REG = 0b0110011
OP_SYSTEM = 0b1110011

#: branch funct3 codes
BRANCH_F3 = {"beq": 0b000, "bne": 0b001, "blt": 0b100, "bge": 0b101,
             "bltu": 0b110, "bgeu": 0b111}
#: ALU-immediate funct3 codes
ALU_IMM_F3 = {"addi": 0b000, "slti": 0b010, "sltiu": 0b011, "xori": 0b100,
              "ori": 0b110, "andi": 0b111, "slli": 0b001, "srli": 0b101,
              "srai": 0b101}
#: ALU register-register (funct3, funct7) codes
ALU_REG_CODES = {
    "add": (0b000, 0b0000000), "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000), "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000), "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000), "sra": (0b101, 0b0100000),
    "or": (0b110, 0b0000000), "and": (0b111, 0b0000000),
}

EBREAK_WORD = encode_i(OP_SYSTEM, 0b000, 0, 0, 1)


@dataclass(frozen=True)
class Decoded:
    """Fields of one decoded instruction."""

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0


def decode(word: int) -> Decoded:
    """Decode a 32-bit word into mnemonic + fields."""
    word = _mask32(word)
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == OP_LUI:
        return Decoded("lui", rd=rd, imm=word >> 12)
    if opcode == OP_AUIPC:
        return Decoded("auipc", rd=rd, imm=word >> 12)
    if opcode == OP_JAL:
        imm = (
            (((word >> 31) & 0x1) << 20)
            | (((word >> 21) & 0x3FF) << 1)
            | (((word >> 20) & 0x1) << 11)
            | (((word >> 12) & 0xFF) << 12)
        )
        return Decoded("jal", rd=rd, imm=sign_extend(imm, 21))
    if opcode == OP_JALR and funct3 == 0:
        return Decoded("jalr", rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12))
    if opcode == OP_BRANCH:
        imm = (
            (((word >> 31) & 0x1) << 12)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
            | (((word >> 7) & 0x1) << 11)
        )
        for name, f3 in BRANCH_F3.items():
            if funct3 == f3:
                return Decoded(name, rs1=rs1, rs2=rs2, imm=sign_extend(imm, 13))
        raise IllegalInstruction(f"branch funct3 {funct3:#05b}")
    if opcode == OP_LOAD and funct3 == 0b010:
        return Decoded("lw", rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12))
    if opcode == OP_STORE and funct3 == 0b010:
        imm = ((word >> 25) << 5) | ((word >> 7) & 0x1F)
        return Decoded("sw", rs1=rs1, rs2=rs2, imm=sign_extend(imm, 12))
    if opcode == OP_ALU_IMM:
        if funct3 == ALU_IMM_F3["slli"] and funct7 == 0:
            return Decoded("slli", rd=rd, rs1=rs1, imm=rs2)
        if funct3 == 0b101:
            if funct7 == 0b0000000:
                return Decoded("srli", rd=rd, rs1=rs1, imm=rs2)
            if funct7 == 0b0100000:
                return Decoded("srai", rd=rd, rs1=rs1, imm=rs2)
            raise IllegalInstruction(f"shift funct7 {funct7:#09b}")
        for name, f3 in ALU_IMM_F3.items():
            if name in ("slli", "srli", "srai"):
                continue
            if funct3 == f3:
                return Decoded(name, rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12))
        raise IllegalInstruction(f"alu-imm funct3 {funct3:#05b}")
    if opcode == OP_ALU_REG:
        for name, (f3, f7) in ALU_REG_CODES.items():
            if funct3 == f3 and funct7 == f7:
                return Decoded(name, rd=rd, rs1=rs1, rs2=rs2)
        raise IllegalInstruction(f"alu-reg funct3/7 {funct3:#05b}/{funct7:#09b}")
    if word == EBREAK_WORD:
        return Decoded("ebreak")
    raise IllegalInstruction(f"opcode {opcode:#09b} (word {word:#010x})")
