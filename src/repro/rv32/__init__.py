"""A minimal RV32I substrate (ISA, assembler, interpreter core).

Built for the paper's stated future work (§VII): "system-level
verification of mixed-signal platforms using the RISC-V VP".  The
:mod:`repro.systems.riscv_platform` VP wraps :class:`Rv32Core` in a TDF
module and maps the AMS front-end into the firmware's address space.
"""

from .assembler import AssemblerError, assemble, parse_register
from .core import Memory, MemoryAccessError, Rv32Core
from .isa import Decoded, IllegalInstruction, decode, sign_extend

__all__ = [
    "AssemblerError",
    "Decoded",
    "IllegalInstruction",
    "Memory",
    "MemoryAccessError",
    "Rv32Core",
    "assemble",
    "decode",
    "parse_register",
    "sign_extend",
]
