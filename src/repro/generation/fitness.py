"""Per-association fitness for coverage-guided stimulus search.

Search-based data-flow test generation (Su et al., *Towards Efficient
Data-flow Test Data Generation*) steers an optimizer with a
per-association distance: how close did this input come to driving the
definition's value into the use?  Our observation layer is the probe
event stream the dynamic analysis already records, joined into
exercised pairs — so the fitness is computed from a candidate's
:class:`~repro.instrument.matching.MatchResult` pair set alone.  That
keeps the signal byte-identical across execution backends, engines and
the per-testcase result cache (they all agree on the pair set), which
is what makes the whole search deterministic.

For a target association ``(v, d, dm, u, um)`` the levels are:

``covered``
    the exact pair was exercised — the testcase closes the association;
``def_reached``
    the definition fired and its value flowed to *some* use (a pair
    with the same ``(v, d, dm)`` definition side exists);
``use_reached``
    the use site executed, fed by *some* definition (a pair with the
    same ``(u, um)`` use side exists);
``killed_en_route``
    the use executed reading ``v`` but paired with a *different*
    definition — the target value was overwritten (redefined) on the
    way.  The strongest non-covering signal: def and use both live,
    only the path between them is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.associations import Association, PairKey, VarScope

#: Score weights.  ``covered`` is exactly 1.0; the partial levels sum
#: to strictly less, so "closed" is never aliased by partial progress.
_W_DEF = 0.4
_W_USE = 0.3
_W_KILLED = 0.2
#: Graded refinement weights (see :func:`graded_fitness`).  Together
#: with the base levels the maximum uncovered score is 0.99 — still
#: strictly below ``covered``, so the binary ordering is preserved.
_W_APPROACH = 0.06
_W_KILL_PROX = 0.03


@dataclass(frozen=True)
class Fitness:
    """Distance signal of one candidate for one target association."""

    score: float
    covered: bool
    def_reached: bool
    use_reached: bool
    killed_en_route: bool

    def __lt__(self, other: "Fitness") -> bool:
        return self.score < other.score


def association_fitness(target: PairKey, pairs: Set[PairKey]) -> Fitness:
    """Fitness of a pair set (one candidate's run) for ``target``."""
    if target in pairs:
        return Fitness(1.0, True, True, True, False)
    var, dm, dl, um, ul = target
    def_reached = False
    use_reached = False
    killed = False
    for p_var, p_dm, p_dl, p_um, p_ul in pairs:
        if p_var == var and p_dm == dm and p_dl == dl:
            def_reached = True
        if p_um == um and p_ul == ul:
            use_reached = True
            if p_var == var and (p_dm, p_dl) != (dm, dl):
                killed = True
        if def_reached and killed:
            break
    score = (
        _W_DEF * def_reached + _W_USE * use_reached + _W_KILLED * killed
    )
    return Fitness(score, False, def_reached, use_reached, killed)


def closed_targets(
    targets: Iterable[PairKey], pairs: Set[PairKey]
) -> Tuple[PairKey, ...]:
    """The subset of ``targets`` the pair set covers, in target order."""
    return tuple(t for t in targets if t in pairs)


# -- graded du-path distance (Su et al.-style approach level) ----------------


@dataclass(frozen=True)
class DuPathGuide:
    """Static du-path geometry of one target association.

    Precomputed once per target from the stored model CFG; evaluation
    then reduces to dictionary lookups over the candidate's observed
    pair set — keeping the graded fitness a pure function of the pair
    set, so it stays byte-identical across engines, matchers and worker
    counts just like the binary levels.

    ``approach_by_use``
        use line -> progress in (0, 1] for pairs whose def side *is*
        the target definition: how close (in def-clear CFG edges over
        the wrap-around graph) the observed use sits to the target use.
    ``kill_by_def``
        killing-def line -> proximity in (0, 1] for pairs that fed the
        target use from a different definition: how close the
        overwriting definition sits to the use (the value survived
        longer along the du-path).
    """

    target: PairKey
    approach_by_use: Mapping[int, float] = field(default_factory=dict)
    kill_by_def: Mapping[int, float] = field(default_factory=dict)


def _backward_distances(cfg, use_nodes, blocked) -> Dict[int, int]:
    """BFS over reversed edges from ``use_nodes``.

    ``blocked`` nodes receive a distance (their own uses fire before
    the node's killing definition) but are not expanded through.
    """
    dist: Dict[int, int] = {nid: 0 for nid in use_nodes}
    frontier: List[int] = list(use_nodes)
    while frontier:
        nxt: List[int] = []
        for nid in frontier:
            if nid in blocked and dist[nid] > 0:
                continue
            for pred in cfg.pred[nid]:
                if pred not in dist:
                    dist[pred] = dist[nid] + 1
                    nxt.append(pred)
        frontier = nxt
    return dist


def build_guides(static, targets: Iterable[Association]) -> Dict[PairKey, DuPathGuide]:
    """Build :class:`DuPathGuide` tables for the intra-model ``targets``.

    ``static`` is the cluster's
    :class:`~repro.analysis.cluster_analysis.StaticAnalysisResult`.
    Targets without usable CFG geometry (PORT scope, cross-model, or
    models analysed before CFGs were stored) simply get no guide and
    fall back to the binary levels.
    """
    from ..analysis.astutils import RefKind, VarRef

    guides: Dict[PairKey, DuPathGuide] = {}
    for assoc in targets:
        if assoc.scope is VarScope.PORT:
            continue
        if assoc.definition.model != assoc.use.model:
            continue
        ma = static.models.get(assoc.definition.model)
        if ma is None or ma.cfg is None:
            continue
        cfg = ma.cfg.with_wraparound()
        info = ma.source
        kind = RefKind.LOCAL if assoc.scope is VarScope.LOCAL else RefKind.MEMBER
        ref = VarRef(kind, assoc.var)
        dl, ul = assoc.definition.line, assoc.use.line

        use_nodes = set()
        killing_nodes = set()
        for node in cfg.nodes:
            for r, line in node.defuse.uses:
                if r == ref and info.absolute_line(line) == ul:
                    use_nodes.add(node.nid)
            for r, line in node.defuse.defs:
                if r == ref and info.absolute_line(line) != dl:
                    killing_nodes.add(node.nid)
        if not use_nodes:
            continue

        # Def-clear backward region: how many edges from each node's
        # uses to the target use without crossing a redefinition.
        clear = _backward_distances(cfg, use_nodes, killing_nodes)
        # Unrestricted distances grade killing definitions by proximity.
        full = _backward_distances(cfg, use_nodes, frozenset())

        approach_by_use: Dict[int, float] = {}
        kill_by_def: Dict[int, float] = {}
        for node in cfg.nodes:
            d_clear = clear.get(node.nid)
            if d_clear is not None:
                for r, line in node.defuse.uses:
                    abs_line = info.absolute_line(line)
                    if r == ref and abs_line != ul:
                        score = 1.0 / (1.0 + d_clear)
                        if score > approach_by_use.get(abs_line, 0.0):
                            approach_by_use[abs_line] = score
            d_full = full.get(node.nid)
            if d_full is not None:
                for r, line in node.defuse.defs:
                    abs_line = info.absolute_line(line)
                    if r == ref and abs_line != dl:
                        score = 1.0 / (1.0 + d_full)
                        if score > kill_by_def.get(abs_line, 0.0):
                            kill_by_def[abs_line] = score
        guides[assoc.key] = DuPathGuide(assoc.key, approach_by_use, kill_by_def)
    return guides


def graded_fitness(
    target: PairKey, pairs: Set[PairKey], guide: Optional[DuPathGuide] = None
) -> Fitness:
    """Binary levels refined by du-path distance when a guide exists.

    Strictly consistent with :func:`association_fitness`: covered stays
    exactly 1.0, the refinement only redistributes mass *within* the
    uncovered band (maximum uncovered score 0.99), and with no guide
    the result is identical to the binary fitness.
    """
    base = association_fitness(target, pairs)
    if base.covered or guide is None:
        return base
    var, dm, dl, um, ul = target
    approach = 0.0
    kill_prox = 0.0
    for p_var, p_dm, p_dl, p_um, p_ul in pairs:
        if p_var == var and p_dm == dm and p_dl == dl:
            approach = max(approach, guide.approach_by_use.get(p_ul, 0.0))
        elif p_var == var and p_um == um and p_ul == ul:
            kill_prox = max(kill_prox, guide.kill_by_def.get(p_dl, 0.0))
    if not approach and not kill_prox:
        return base
    score = base.score + _W_APPROACH * approach + _W_KILL_PROX * kill_prox
    return Fitness(
        score, False, base.def_reached, base.use_reached, base.killed_en_route
    )
