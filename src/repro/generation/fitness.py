"""Per-association fitness for coverage-guided stimulus search.

Search-based data-flow test generation (Su et al., *Towards Efficient
Data-flow Test Data Generation*) steers an optimizer with a
per-association distance: how close did this input come to driving the
definition's value into the use?  Our observation layer is the probe
event stream the dynamic analysis already records, joined into
exercised pairs — so the fitness is computed from a candidate's
:class:`~repro.instrument.matching.MatchResult` pair set alone.  That
keeps the signal byte-identical across execution backends, engines and
the per-testcase result cache (they all agree on the pair set), which
is what makes the whole search deterministic.

For a target association ``(v, d, dm, u, um)`` the levels are:

``covered``
    the exact pair was exercised — the testcase closes the association;
``def_reached``
    the definition fired and its value flowed to *some* use (a pair
    with the same ``(v, d, dm)`` definition side exists);
``use_reached``
    the use site executed, fed by *some* definition (a pair with the
    same ``(u, um)`` use side exists);
``killed_en_route``
    the use executed reading ``v`` but paired with a *different*
    definition — the target value was overwritten (redefined) on the
    way.  The strongest non-covering signal: def and use both live,
    only the path between them is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Set, Tuple

PairKey = Tuple[str, str, int, str, int]

#: Score weights.  ``covered`` is exactly 1.0; the partial levels sum
#: to strictly less, so "closed" is never aliased by partial progress.
_W_DEF = 0.4
_W_USE = 0.3
_W_KILLED = 0.2


@dataclass(frozen=True)
class Fitness:
    """Distance signal of one candidate for one target association."""

    score: float
    covered: bool
    def_reached: bool
    use_reached: bool
    killed_en_route: bool

    def __lt__(self, other: "Fitness") -> bool:
        return self.score < other.score


def association_fitness(target: PairKey, pairs: Set[PairKey]) -> Fitness:
    """Fitness of a pair set (one candidate's run) for ``target``."""
    if target in pairs:
        return Fitness(1.0, True, True, True, False)
    var, dm, dl, um, ul = target
    def_reached = False
    use_reached = False
    killed = False
    for p_var, p_dm, p_dl, p_um, p_ul in pairs:
        if p_var == var and p_dm == dm and p_dl == dl:
            def_reached = True
        if p_um == um and p_ul == ul:
            use_reached = True
            if p_var == var and (p_dm, p_dl) != (dm, dl):
                killed = True
        if def_reached and killed:
            break
    score = (
        _W_DEF * def_reached + _W_USE * use_reached + _W_KILLED * killed
    )
    return Fitness(score, False, def_reached, use_reached, killed)


def closed_targets(
    targets: Iterable[PairKey], pairs: Set[PairKey]
) -> Tuple[PairKey, ...]:
    """The subset of ``targets`` the pair set covers, in target order."""
    return tuple(t for t in targets if t in pairs)
