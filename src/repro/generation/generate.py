"""Coverage-guided testcase generation (the paper's §VI loop, automated).

The paper refines testsuites by hand: run the pipeline, read the ranked
missed-association report, craft a stimulus that drives the missing
def into the missing use, repeat.  :func:`generate_suite` automates
that loop:

1. run the baseline pipeline on the given suite and collect the missed
   associations, strongest class first (the paper's triage order);
2. for each open target, search the system's stimulus parameter space
   (:mod:`repro.generation.space`) with a pluggable strategy
   (:mod:`repro.generation.search`), scoring candidates with the
   probe-event fitness (:mod:`repro.generation.fitness`);
3. accept every candidate that closes at least one *open* target
   (opportunistic closure: a candidate searched for one association
   frequently closes several), append it to the suite, and move on;
4. stop on full target coverage, the simulation/wall-clock budget, or
   per-target stagnation; finish with a fully memoized verification
   run of the base + generated suite.

Determinism: every random decision flows from ``config.seed`` through
per-target :class:`random.Random` streams, and candidate fitness is a
pure function of the exercised-pair set — identical across execution
backends, engines and worker counts.  ``generate_suite(seed=N)`` with
``workers=1`` and ``workers=4`` synthesizes byte-identical suites.

Budgets: ``config.budget_simulations`` counts *executed* candidate
simulations (memo hits are free; the baseline run is not counted).
``config.budget_seconds`` is a wall-clock lid checked between rounds —
useful operationally, but the only budget that can make two otherwise
identical runs diverge, so the CLI default budget is simulation-count
based.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from ..core.associations import AssocClass
from ..core.config import DftConfig
from ..core.pipeline import PipelineResult, run_dft
from ..exec.cache import DynamicResultCache
from ..obs import Telemetry, get_telemetry
from ..testing.testcase import TestSuite
from .fitness import Fitness, PairKey, build_guides, graded_fitness
from .search import SearchStrategy, make_strategy
from .space import EncodedParams, ParameterSpace, space_for

if TYPE_CHECKING:  # pragma: no cover - typing-only imports avoid cycles
    from ..core.coverage import CoverageResult
    from ..instrument.matching import MatchResult
    from ..instrument.runner import ClusterFactory

#: The worker-side suite reference candidate batches are rebuilt through.
DECODE_REF = "repro.generation.space:decode_candidates"

#: Classes searched by default: Strong/Firm/PFirm contain at least one
#: du-path, so an input signal is expected to be able to cover them;
#: PWeak associations are the most likely to be infeasible (paper §VI).
DEFAULT_TARGET_CLASSES: Tuple[AssocClass, ...] = (
    AssocClass.STRONG,
    AssocClass.FIRM,
    AssocClass.PFIRM,
)


@dataclass(frozen=True)
class GeneratedTest:
    """One accepted synthesized testcase."""

    name: str
    system: str
    params: EncodedParams
    #: Open targets this candidate closed at acceptance time.
    closed: Tuple[PairKey, ...]
    #: The target the search was working on when this candidate arose.
    sought: PairKey


@dataclass(frozen=True)
class TargetOutcome:
    """How the search ended for one missed association."""

    key: PairKey
    klass: str
    #: ``closed`` / ``pre_closed`` (closed while searching an earlier
    #: target) / ``stagnated`` / ``rounds`` / ``budget`` / ``skipped``
    #: (budget exhausted before the search reached it).
    status: str
    rounds: int
    best_score: float
    #: Name of the testcase that closed it, when ``closed``/``pre_closed``.
    closed_by: Optional[str] = None
    #: Candidate simulations actually executed for this target (memo
    #: hits are free and excluded; 0 for pre_closed/skipped targets).
    simulations: int = 0
    #: Best fitness score after each search round, in round order.
    trajectory: Tuple[float, ...] = ()


@dataclass
class GenerationResult:
    """Outcome of one coverage-guided generation run."""

    system: str
    seed: int
    strategy: str
    #: Base + accepted synthesized testcases, in acceptance order.
    suite: TestSuite
    generated: Tuple[GeneratedTest, ...]
    targets: Tuple[TargetOutcome, ...]
    coverage_before: "CoverageResult"
    coverage_after: "CoverageResult"
    #: Full pipeline result of the final (memoized) verification run.
    pipeline: PipelineResult
    #: Executed candidate simulations (memo hits and baseline excluded).
    simulations: int
    #: Candidate proposals served from the result cache.
    memo_hits: int
    #: Total candidate proposals (simulations + memo_hits).
    candidates: int
    #: ``coverage`` / ``budget_simulations`` / ``budget_seconds`` /
    #: ``exhausted`` (every target searched, some remain open).
    stop_reason: str
    wall_seconds: float = 0.0
    #: ``all`` (every missed association searched) or ``frontier``
    #: (only non-subsumed associations searched).
    target_mode: str = "all"
    #: Missed associations excluded from the search because a frontier
    #: element subsumes them (0 in ``all`` mode).
    subsumed_targets: int = 0
    #: How many of those the final suite covers anyway (closed
    #: opportunistically when their subsumer closed).
    subsumed_closed: int = 0

    @property
    def closed(self) -> Tuple[PairKey, ...]:
        """Every target the run closed, in outcome order."""
        return tuple(
            t.key for t in self.targets if t.status in ("closed", "pre_closed")
        )


class _Budget:
    """Tracks the simulation / wall-clock lids across the whole run."""

    def __init__(self, cfg: DftConfig) -> None:
        self.max_simulations = cfg.budget_simulations
        self.max_seconds = cfg.budget_seconds
        self.simulations = 0
        self.t0 = time.perf_counter()
        self.exhausted_by: Optional[str] = None

    def remaining_simulations(self) -> Optional[int]:
        if self.max_simulations is None:
            return None
        return max(0, self.max_simulations - self.simulations)

    def check(self) -> bool:
        """Whether the run may continue (records the stop reason if not)."""
        if self.exhausted_by is not None:
            return False
        if self.max_simulations is not None and self.simulations >= self.max_simulations:
            self.exhausted_by = "budget_simulations"
            return False
        if (
            self.max_seconds is not None
            and time.perf_counter() - self.t0 >= self.max_seconds
        ):
            self.exhausted_by = "budget_seconds"
            return False
        return True


class _Evaluator:
    """Runs candidate batches through the cache and the executor fan-out."""

    def __init__(
        self,
        cluster_factory: "ClusterFactory",
        static,
        space: ParameterSpace,
        cfg: DftConfig,
        cache: DynamicResultCache,
        tel: Telemetry,
        factory_ref: Optional[str],
    ) -> None:
        self.cluster_factory = cluster_factory
        self.static = static
        self.space = space
        self.cfg = cfg
        self.cache = cache
        self.tel = tel
        self.factory_ref = factory_ref
        self.memo_hits = 0
        self.candidates = 0

    def _executor_for(self, encoded: Sequence[EncodedParams]):
        """The backend for one batch of cache misses.

        Synthesized testcases close over their parameters, so they
        cannot travel to worker processes as objects; instead each batch
        ships its *encodings* via :class:`~repro.exec.ProcessExecutor`
        ``suite_args`` and the workers rebuild identical testcases
        through :data:`DECODE_REF`.  Serial when the resolved worker
        count is 1 or no factory reference is available.  An explicit
        ``config.executor`` is deliberately not used here: it was built
        for the *base* suite and cannot resolve candidate names.
        """
        workers = self.cfg.resolved_workers(len(encoded))
        if workers <= 1 or not self.factory_ref:
            from ..exec.base import SerialExecutor

            return SerialExecutor()
        from ..exec.process import ProcessExecutor

        return ProcessExecutor(
            self.factory_ref, DECODE_REF, workers,
            suite_args=(self.space.system, tuple(encoded)),
        )

    def run(
        self, batch: Sequence[Dict[str, float]], budget: _Budget
    ) -> List[Tuple[str, EncodedParams, "MatchResult"]]:
        """Evaluate a proposal batch (cache first, simulate the rest).

        Returns ``(name, encoding, match)`` in proposal order; trims the
        batch when fewer simulations than cache misses remain in the
        budget.  Duplicate proposals within one batch collapse onto a
        single simulation.
        """
        fingerprint = self.static.fingerprint
        ordered: List[Tuple[str, EncodedParams]] = []
        results: Dict[str, "MatchResult"] = {}
        pending: List[Tuple[str, EncodedParams]] = []
        for params in batch:
            name = self.space.candidate_name(params)
            encoded = self.space.encode(params)
            ordered.append((name, encoded))
            if name in results or any(n == name for n, _ in pending):
                continue
            hit = self.cache.get(fingerprint, name)
            if hit is not None:
                self.memo_hits += 1
                results[name] = hit
            else:
                pending.append((name, encoded))
        remaining = budget.remaining_simulations()
        if remaining is not None and len(pending) > remaining:
            pending = pending[:remaining]
            served = {n for n, _ in pending} | set(results)
            ordered = [item for item in ordered if item[0] in served]
        if pending:
            suite = TestSuite(
                f"gen_{self.space.system}_batch",
                [self.space.build(dict(enc)) for _, enc in pending],
            )
            from ..tdf.engine.batch import resolve_batch_size

            executor = self._executor_for([enc for _, enc in pending])
            dynamic = executor.run_suite(
                self.cluster_factory, self.static, suite,
                warn=self.cfg.warn, telemetry=self.tel, engine=self.cfg.engine,
                probe_store=self.cfg.probe_store_spec(),
                # Cache hits were resolved above: only the misses enter
                # a lockstep batch, so the width resolves against them.
                batch_size=resolve_batch_size(self.cfg.batch_size, len(pending)),
                matcher=self.cfg.matcher,
            )
            for name, _ in pending:
                match = dynamic.per_testcase[name]
                self.cache.put(fingerprint, name, match)
                results[name] = match
            budget.simulations += len(pending)
            if self.tel.enabled:
                self.tel.metrics.counter("generation.simulations").inc(len(pending))
        self.candidates += len(ordered)
        if self.tel.enabled:
            self.tel.metrics.counter("generation.candidates").inc(len(ordered))
            if self.memo_hits:
                self.tel.metrics.gauge("generation.memo_hits").set(self.memo_hits)
        return [(name, enc, results[name]) for name, enc in ordered]


def generate_suite(
    cluster_factory: "ClusterFactory",
    base_suite: TestSuite,
    system: str,
    config: Optional[DftConfig] = None,
    *,
    factory_ref: Optional[str] = None,
    suite_ref: Optional[str] = None,
    space: Optional[ParameterSpace] = None,
    strategy: "str | SearchStrategy | None" = None,
    target_classes: Sequence[AssocClass] = DEFAULT_TARGET_CLASSES,
    target_mode: str = "all",
    candidates_per_round: int = 6,
    stagnation_rounds: int = 4,
    max_rounds_per_target: int = 12,
) -> GenerationResult:
    """Synthesize testcases that close ``base_suite``'s missed associations.

    ``system`` selects the bundled stimulus space (or pass ``space``);
    ``factory_ref``/``suite_ref`` are the importable references worker
    processes rebuild the cluster and base suite from — required only
    for ``config.workers > 1``.  ``config`` carries the seed, budgets,
    engine and fan-out (see :class:`repro.core.DftConfig`).

    The returned :class:`GenerationResult` holds the grown suite, the
    per-target outcomes, and the before/after coverage from a final
    verification pipeline run (fully memoized — it re-executes nothing).

    ``target_mode="frontier"`` runs the subsumption pass
    (:mod:`repro.analysis.subsume`) and searches only the non-subsumed
    missed associations; subsumed ones close opportunistically when
    their subsumer does and are accounted separately
    (``subsumed_targets`` / ``subsumed_closed``).
    """
    if target_mode not in ("all", "frontier"):
        raise ValueError(f"target_mode must be 'all' or 'frontier', got {target_mode!r}")
    cfg = config if config is not None else DftConfig()
    tel = cfg.telemetry if cfg.telemetry is not None else get_telemetry()
    space = space if space is not None else space_for(system)
    strat = make_strategy(strategy)
    cache = cfg.result_cache if cfg.result_cache is not None else DynamicResultCache()
    # Inner pipeline runs must not add history entries of their own —
    # the whole generation run appends exactly one record at the end.
    run_cfg = cfg.replace(result_cache=cache, telemetry=tel, history_dir=None)
    history = cfg.run_history()
    t0 = time.perf_counter()

    with tel.span(
        "generation", system=system, seed=cfg.seed, strategy=strat.name
    ):
        # -- baseline -----------------------------------------------------
        base_executor = cfg.make_executor(factory_ref, suite_ref, len(base_suite))
        baseline = run_dft(
            cluster_factory, base_suite,
            run_cfg.replace(executor=base_executor),
        )
        wanted = set(target_classes)
        missed = [
            a for a in baseline.coverage.missed() if a.klass in wanted
        ]
        subsumed_missed: List = []
        if target_mode == "frontier":
            from ..analysis.subsume import analyze_subsumption, frontier_reduced

            subsumption = analyze_subsumption(baseline.static)
            targets, subsumed_missed = frontier_reduced(missed, subsumption)
        else:
            targets = missed
        # Static du-path guides refine the binary fitness levels into a
        # graded approach/kill distance (pure pair-set lookups, so the
        # search stays deterministic across backends and workers).
        guides = build_guides(baseline.static, targets)
        if tel.enabled:
            tel.metrics.gauge("generation.targets").set(len(targets))
            if subsumed_missed:
                tel.metrics.gauge("generation.subsumed_targets").set(
                    len(subsumed_missed)
                )

        evaluator = _Evaluator(
            cluster_factory, baseline.static, space, cfg, cache, tel, factory_ref
        )
        budget = _Budget(cfg)
        open_keys: Set[PairKey] = {a.key for a in targets}
        closed_by: Dict[PairKey, str] = {}
        generated: List[GeneratedTest] = []
        outcomes: List[TargetOutcome] = []
        accepted_names: Set[str] = set()

        # -- warm start from the history ledger ----------------------------
        # Candidates accepted by the most recent matching run (same base
        # suite, fingerprint and config hash) are re-evaluated first —
        # usually straight from the result cache — so the search only
        # works on targets the previous run did not already close.
        if cfg.warm_start and history is not None and targets:
            from ..obs.store import suite_sha as _suite_sha

            prior = history.latest(
                kind="generation",
                system=system,
                fingerprint=baseline.static.fingerprint,
                config_hash=cfg.config_hash(),
                suite=_suite_sha([tc.name for tc in base_suite]),
            )
            payload = (prior or {}).get("generation") or {}
            seeds: List[Dict[str, float]] = []
            if payload.get("space_version") == space.version:
                for entry in payload.get("accepted") or []:
                    params = entry.get("params") or []
                    try:
                        seeds.append({str(k): float(v) for k, v in params})
                    except (TypeError, ValueError):
                        continue
            if seeds:
                reused = 0
                for name, encoded, match in evaluator.run(seeds, budget):
                    newly = tuple(
                        sorted(k for k in open_keys if k in match.pairs)
                    )
                    if newly and name not in accepted_names:
                        accepted_names.add(name)
                        generated.append(GeneratedTest(
                            name=name, system=system, params=encoded,
                            closed=newly, sought=newly[0],
                        ))
                        reused += 1
                        for k in newly:
                            open_keys.discard(k)
                            closed_by[k] = name
                if tel.enabled and reused:
                    tel.metrics.counter("generation.warm_reused").inc(reused)

        # -- search, strongest class first --------------------------------
        for assoc in targets:
            key = assoc.key
            if key not in open_keys:
                outcomes.append(TargetOutcome(
                    key, assoc.klass.value, "pre_closed", 0, 1.0,
                    closed_by=closed_by.get(key),
                ))
                continue
            if not budget.check():
                outcomes.append(TargetOutcome(
                    key, assoc.klass.value, "skipped", 0, 0.0
                ))
                continue
            # A private deterministic stream per target: independent of
            # how many candidates earlier targets consumed, so closing
            # one association never perturbs the search for the next.
            rng = random.Random(
                f"{cfg.seed}|{system}|{space.version}|{strat.name}|{key}"
            )
            strat.reset(space, rng)
            guide = guides.get(key)
            best = Fitness(-1.0, False, False, False, False)
            stale = 0
            rounds = 0
            status = "rounds"
            sims_before = budget.simulations
            trajectory: List[float] = []
            with tel.span("generation.target", target=str(key)):
                while rounds < max_rounds_per_target:
                    if not budget.check():
                        status = "budget"
                        break
                    batch = strat.ask(candidates_per_round)
                    if not batch:
                        status = "stagnated"
                        break
                    evaluated = evaluator.run(batch, budget)
                    if not evaluated:
                        status = "budget"
                        break
                    rounds += 1
                    feedback: List[Tuple[Dict[str, float], float]] = []
                    improved = False
                    for name, encoded, match in evaluated:
                        fit = graded_fitness(key, match.pairs, guide)
                        feedback.append((dict(encoded), fit.score))
                        if fit.score > best.score:
                            best = fit
                            improved = True
                        newly_closed = tuple(
                            sorted(k for k in open_keys if k in match.pairs)
                        )
                        if newly_closed and name not in accepted_names:
                            accepted_names.add(name)
                            generated.append(GeneratedTest(
                                name=name, system=system, params=encoded,
                                closed=newly_closed, sought=key,
                            ))
                            for k in newly_closed:
                                open_keys.discard(k)
                                closed_by[k] = name
                            if tel.enabled:
                                tel.metrics.counter("generation.closed").inc(
                                    len(newly_closed)
                                )
                    strat.tell(feedback)
                    trajectory.append(best.score)
                    if key not in open_keys:
                        status = "closed"
                        break
                    if improved:
                        stale = 0
                    else:
                        stale += 1
                        if stale >= stagnation_rounds:
                            status = "stagnated"
                            break
            if key not in open_keys and status != "closed":
                status = "closed"
            if tel.enabled:
                tel.metrics.counter("generation.rounds").inc(rounds)
            outcomes.append(TargetOutcome(
                key, assoc.klass.value, status, rounds,
                1.0 if status == "closed" else best.score,
                closed_by=closed_by.get(key),
                simulations=budget.simulations - sims_before,
                trajectory=tuple(trajectory),
            ))

        # -- verification (fully memoized) --------------------------------
        final_suite = TestSuite(base_suite.name, base_suite.testcases)
        final_suite.extend([space.build(dict(g.params)) for g in generated])
        final = run_dft(cluster_factory, final_suite, run_cfg)
        subsumed_closed = sum(
            1 for a in subsumed_missed if final.coverage.is_covered(a)
        )

        if not open_keys:
            stop_reason = "coverage"
        elif budget.exhausted_by is not None:
            stop_reason = budget.exhausted_by
        else:
            stop_reason = "exhausted"

    if history is not None:
        from ..obs.store import build_record

        record = build_record(
            "generation",
            system=system,
            # Keyed by the *input* suite, so a later warm start with the
            # same base suite finds this record; the grown suite lives
            # in the generation payload.
            fingerprint=baseline.static.fingerprint,
            config_hash=cfg.config_hash(),
            suite_names=[tc.name for tc in base_suite],
            coverage=final.coverage,
            telemetry=final.telemetry,
            extra={
                "generation": {
                    "space_version": space.version,
                    "strategy": strat.name,
                    "accepted": [
                        {"name": g.name, "params": [[k, v] for k, v in g.params]}
                        for g in generated
                    ],
                    "closed": sum(
                        1 for t in outcomes if t.status in ("closed", "pre_closed")
                    ),
                    "targets": len(targets),
                    "targets_mode": target_mode,
                    "subsumed_targets": len(subsumed_missed),
                    "subsumed_closed": subsumed_closed,
                    "simulations": budget.simulations,
                    "stop_reason": stop_reason,
                    "final_tests": len(final_suite),
                }
            },
        )
        try:
            history.append(record)
        except OSError:
            pass

    return GenerationResult(
        system=system,
        seed=cfg.seed,
        strategy=strat.name,
        suite=final_suite,
        generated=tuple(generated),
        targets=tuple(outcomes),
        coverage_before=baseline.coverage,
        coverage_after=final.coverage,
        pipeline=final,
        simulations=budget.simulations,
        memo_hits=evaluator.memo_hits,
        candidates=evaluator.candidates,
        stop_reason=stop_reason,
        wall_seconds=time.perf_counter() - t0,
        target_mode=target_mode,
        subsumed_targets=len(subsumed_missed),
        subsumed_closed=subsumed_closed,
    )
