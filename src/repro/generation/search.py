"""Search strategies over stimulus parameter spaces.

A strategy proposes candidate parameter vectors and learns from their
fitness (see :mod:`repro.generation.fitness`).  The protocol is
deliberately tiny — ``reset`` / ``ask`` / ``tell`` — so alternative
optimizers (simulated annealing, CMA-ES, grammar-based generators) plug
in without touching the generation loop.

Bundled strategies:

* :class:`RandomStrategy` — pure random sampling, the baseline every
  search paper compares against;
* :class:`MutationStrategy` — random warm-up followed by a (1+λ)
  evolution strategy: keep the best vector seen, propose λ mutants of
  it per round, adapt the mutation step with a 1/5th-style success
  rule.  The default.
* :class:`GuidedStrategy` — a rank-weighted elite archive with
  blending and stagnation restarts, built to exploit the finer-grained
  ordering of the graded du-path fitness.

Strategies own no randomness: the loop hands them a seeded
``random.Random`` at reset, so runs are deterministic for a given
(master seed, target) and independent of worker count.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..tdf.errors import TdfError
from .space import ParameterSpace

Params = Dict[str, float]


@runtime_checkable
class SearchStrategy(Protocol):
    """The pluggable strategy protocol.

    Lifecycle: one ``reset`` per target association, then alternating
    ``ask`` (propose up to ``count`` vectors) and ``tell`` (evaluated
    ``(params, fitness_score)`` feedback, one entry per proposal that
    actually ran).
    """

    #: Stable name (used in reports and the CLI ``--strategy`` flag).
    name: str

    def reset(self, space: ParameterSpace, rng: random.Random) -> None:
        """Start a fresh search over ``space`` seeded by ``rng``."""
        ...

    def ask(self, count: int) -> List[Params]:
        """Up to ``count`` new parameter vectors to evaluate."""
        ...

    def tell(self, evaluated: Sequence[Tuple[Params, float]]) -> None:
        """Feedback for vectors returned by the last ``ask``."""
        ...


class RandomStrategy:
    """Uniform random sampling (no learning)."""

    name = "random"

    def __init__(self) -> None:
        self._space: Optional[ParameterSpace] = None
        self._rng: Optional[random.Random] = None

    def reset(self, space: ParameterSpace, rng: random.Random) -> None:
        self._space = space
        self._rng = rng

    def ask(self, count: int) -> List[Params]:
        assert self._space is not None and self._rng is not None
        return [self._space.sample(self._rng) for _ in range(count)]

    def tell(self, evaluated: Sequence[Tuple[Params, float]]) -> None:
        pass


class MutationStrategy:
    """(1+λ) mutation search with random warm-up.

    Until ``warmup`` vectors have been evaluated the strategy samples
    uniformly; afterwards every ``ask`` proposes mutants of the best
    vector seen so far.  The mutation scale follows a success rule:
    grow on improvement (explore further while it works), shrink on a
    failed round (home in), clamped to ``[min_scale, max_scale]``.
    """

    name = "mutation"

    def __init__(
        self,
        warmup: int = 6,
        scale: float = 0.15,
        min_scale: float = 0.02,
        max_scale: float = 0.5,
    ) -> None:
        self.warmup = warmup
        self._initial_scale = scale
        self.min_scale = min_scale
        self.max_scale = max_scale
        self._space: Optional[ParameterSpace] = None
        self._rng: Optional[random.Random] = None
        self._best: Optional[Params] = None
        self._best_score = -1.0
        self._seen = 0
        self.scale = scale

    def reset(self, space: ParameterSpace, rng: random.Random) -> None:
        self._space = space
        self._rng = rng
        self._best = None
        self._best_score = -1.0
        self._seen = 0
        self.scale = self._initial_scale

    def ask(self, count: int) -> List[Params]:
        assert self._space is not None and self._rng is not None
        proposals: List[Params] = []
        for _ in range(count):
            if self._best is None or self._seen + len(proposals) < self.warmup:
                proposals.append(self._space.sample(self._rng))
            else:
                proposals.append(
                    self._space.mutate(self._rng, self._best, self.scale)
                )
        return proposals

    def tell(self, evaluated: Sequence[Tuple[Params, float]]) -> None:
        improved = False
        for params, score in evaluated:
            self._seen += 1
            # Strict improvement keeps the incumbent on ties — the
            # earliest best vector wins, which is what makes re-runs
            # (and different worker counts) reproduce the same parent.
            if score > self._best_score:
                self._best = dict(params)
                self._best_score = score
                improved = True
        if self._best is not None and self._seen >= self.warmup:
            factor = 1.3 if improved else 0.75
            self.scale = min(max(self.scale * factor, self.min_scale), self.max_scale)


class GuidedStrategy:
    """Rank-weighted elite search for graded fitness landscapes.

    Where the (1+λ) strategy only ever exploits the single best vector,
    this one keeps a small elite archive and allocates proposals by
    rank: the graded du-path fitness (see
    :func:`repro.generation.fitness.graded_fitness`) separates
    candidates that the binary levels score identically, so second- and
    third-best vectors carry real signal worth exploiting.  Each round
    mixes

    * rank-weighted mutation of an archive member (weight halves per
      rank step down),
    * occasional uniform blending of two elites (per-parameter choice),
    * and a random restart injection after stagnant rounds, so the
      search cannot collapse onto one basin.

    The mutation scale follows the same success rule as
    :class:`MutationStrategy`.  All decisions draw from the loop's
    seeded RNG and ties keep the earliest archive entry, so the search
    stays deterministic and worker-count independent.
    """

    name = "guided"

    def __init__(
        self,
        warmup: int = 6,
        archive_size: int = 8,
        scale: float = 0.15,
        min_scale: float = 0.02,
        max_scale: float = 0.5,
        blend_every: int = 4,
        stagnation_restart: int = 2,
    ) -> None:
        self.warmup = warmup
        self.archive_size = archive_size
        self._initial_scale = scale
        self.min_scale = min_scale
        self.max_scale = max_scale
        self.blend_every = blend_every
        self.stagnation_restart = stagnation_restart
        self._space: Optional[ParameterSpace] = None
        self._rng: Optional[random.Random] = None
        self._archive: List[Tuple[float, int, Params]] = []
        self._seen = 0
        self._asked = 0
        self._stagnant_rounds = 0
        self.scale = scale

    def reset(self, space: ParameterSpace, rng: random.Random) -> None:
        self._space = space
        self._rng = rng
        self._archive = []
        self._seen = 0
        self._asked = 0
        self._stagnant_rounds = 0
        self.scale = self._initial_scale

    # -- proposal helpers --------------------------------------------------

    def _pick_elite(self) -> Params:
        assert self._rng is not None
        # Geometric rank weights: rank r gets weight 2^-r.
        weights = [2.0 ** -r for r in range(len(self._archive))]
        total = sum(weights)
        roll = self._rng.random() * total
        for (_, _, params), w in zip(self._archive, weights):
            roll -= w
            if roll <= 0:
                return params
        return self._archive[-1][2]

    def _blend(self) -> Params:
        assert self._rng is not None
        first = self._pick_elite()
        second = self._pick_elite()
        return {
            key: value if self._rng.random() < 0.5 else second[key]
            for key, value in first.items()
        }

    def ask(self, count: int) -> List[Params]:
        assert self._space is not None and self._rng is not None
        proposals: List[Params] = []
        restart_due = self._stagnant_rounds >= self.stagnation_restart
        for _ in range(count):
            self._asked += 1
            if not self._archive or self._seen + len(proposals) < self.warmup:
                proposals.append(self._space.sample(self._rng))
            elif restart_due:
                # One fresh sample per stagnant round, then elites again.
                proposals.append(self._space.sample(self._rng))
                restart_due = False
            elif len(self._archive) >= 2 and self._asked % self.blend_every == 0:
                proposals.append(
                    self._space.mutate(self._rng, self._blend(), self.min_scale)
                )
            else:
                proposals.append(
                    self._space.mutate(self._rng, self._pick_elite(), self.scale)
                )
        return proposals

    def tell(self, evaluated: Sequence[Tuple[Params, float]]) -> None:
        best_before = self._archive[0][0] if self._archive else -1.0
        for params, score in evaluated:
            self._seen += 1
            self._archive.append((score, self._seen, dict(params)))
        # Highest score first; insertion order breaks ties so re-runs
        # (and different worker counts) keep the same elites.
        self._archive.sort(key=lambda entry: (-entry[0], entry[1]))
        del self._archive[self.archive_size:]
        improved = bool(self._archive) and self._archive[0][0] > best_before
        if improved:
            self._stagnant_rounds = 0
        else:
            self._stagnant_rounds += 1
        if self._seen >= self.warmup:
            factor = 1.3 if improved else 0.75
            self.scale = min(max(self.scale * factor, self.min_scale), self.max_scale)


#: Strategy registry: name -> zero-arg factory.
STRATEGIES: Dict[str, Callable[[], SearchStrategy]] = {
    RandomStrategy.name: RandomStrategy,
    MutationStrategy.name: MutationStrategy,
    GuidedStrategy.name: GuidedStrategy,
}

#: The default strategy name.
DEFAULT_STRATEGY = MutationStrategy.name


def make_strategy(strategy: "str | SearchStrategy | None") -> SearchStrategy:
    """Resolve a strategy name (or pass an instance through)."""
    if strategy is None:
        strategy = DEFAULT_STRATEGY
    if isinstance(strategy, str):
        try:
            return STRATEGIES[strategy]()
        except KeyError:
            raise TdfError(
                f"unknown search strategy {strategy!r} "
                f"(available: {', '.join(sorted(STRATEGIES))})"
            ) from None
    if not isinstance(strategy, SearchStrategy):
        raise TdfError(
            f"{strategy!r} does not implement the SearchStrategy protocol "
            f"(reset/ask/tell)"
        )
    return strategy
