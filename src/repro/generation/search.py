"""Search strategies over stimulus parameter spaces.

A strategy proposes candidate parameter vectors and learns from their
fitness (see :mod:`repro.generation.fitness`).  The protocol is
deliberately tiny — ``reset`` / ``ask`` / ``tell`` — so alternative
optimizers (simulated annealing, CMA-ES, grammar-based generators) plug
in without touching the generation loop.

Bundled strategies:

* :class:`RandomStrategy` — pure random sampling, the baseline every
  search paper compares against;
* :class:`MutationStrategy` — random warm-up followed by a (1+λ)
  evolution strategy: keep the best vector seen, propose λ mutants of
  it per round, adapt the mutation step with a 1/5th-style success
  rule.  The default.

Strategies own no randomness: the loop hands them a seeded
``random.Random`` at reset, so runs are deterministic for a given
(master seed, target) and independent of worker count.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..tdf.errors import TdfError
from .space import ParameterSpace

Params = Dict[str, float]


@runtime_checkable
class SearchStrategy(Protocol):
    """The pluggable strategy protocol.

    Lifecycle: one ``reset`` per target association, then alternating
    ``ask`` (propose up to ``count`` vectors) and ``tell`` (evaluated
    ``(params, fitness_score)`` feedback, one entry per proposal that
    actually ran).
    """

    #: Stable name (used in reports and the CLI ``--strategy`` flag).
    name: str

    def reset(self, space: ParameterSpace, rng: random.Random) -> None:
        """Start a fresh search over ``space`` seeded by ``rng``."""
        ...

    def ask(self, count: int) -> List[Params]:
        """Up to ``count`` new parameter vectors to evaluate."""
        ...

    def tell(self, evaluated: Sequence[Tuple[Params, float]]) -> None:
        """Feedback for vectors returned by the last ``ask``."""
        ...


class RandomStrategy:
    """Uniform random sampling (no learning)."""

    name = "random"

    def __init__(self) -> None:
        self._space: Optional[ParameterSpace] = None
        self._rng: Optional[random.Random] = None

    def reset(self, space: ParameterSpace, rng: random.Random) -> None:
        self._space = space
        self._rng = rng

    def ask(self, count: int) -> List[Params]:
        assert self._space is not None and self._rng is not None
        return [self._space.sample(self._rng) for _ in range(count)]

    def tell(self, evaluated: Sequence[Tuple[Params, float]]) -> None:
        pass


class MutationStrategy:
    """(1+λ) mutation search with random warm-up.

    Until ``warmup`` vectors have been evaluated the strategy samples
    uniformly; afterwards every ``ask`` proposes mutants of the best
    vector seen so far.  The mutation scale follows a success rule:
    grow on improvement (explore further while it works), shrink on a
    failed round (home in), clamped to ``[min_scale, max_scale]``.
    """

    name = "mutation"

    def __init__(
        self,
        warmup: int = 6,
        scale: float = 0.15,
        min_scale: float = 0.02,
        max_scale: float = 0.5,
    ) -> None:
        self.warmup = warmup
        self._initial_scale = scale
        self.min_scale = min_scale
        self.max_scale = max_scale
        self._space: Optional[ParameterSpace] = None
        self._rng: Optional[random.Random] = None
        self._best: Optional[Params] = None
        self._best_score = -1.0
        self._seen = 0
        self.scale = scale

    def reset(self, space: ParameterSpace, rng: random.Random) -> None:
        self._space = space
        self._rng = rng
        self._best = None
        self._best_score = -1.0
        self._seen = 0
        self.scale = self._initial_scale

    def ask(self, count: int) -> List[Params]:
        assert self._space is not None and self._rng is not None
        proposals: List[Params] = []
        for _ in range(count):
            if self._best is None or self._seen + len(proposals) < self.warmup:
                proposals.append(self._space.sample(self._rng))
            else:
                proposals.append(
                    self._space.mutate(self._rng, self._best, self.scale)
                )
        return proposals

    def tell(self, evaluated: Sequence[Tuple[Params, float]]) -> None:
        improved = False
        for params, score in evaluated:
            self._seen += 1
            # Strict improvement keeps the incumbent on ties — the
            # earliest best vector wins, which is what makes re-runs
            # (and different worker counts) reproduce the same parent.
            if score > self._best_score:
                self._best = dict(params)
                self._best_score = score
                improved = True
        if self._best is not None and self._seen >= self.warmup:
            factor = 1.3 if improved else 0.75
            self.scale = min(max(self.scale * factor, self.min_scale), self.max_scale)


#: Strategy registry: name -> zero-arg factory.
STRATEGIES: Dict[str, Callable[[], SearchStrategy]] = {
    RandomStrategy.name: RandomStrategy,
    MutationStrategy.name: MutationStrategy,
}

#: The default strategy name.
DEFAULT_STRATEGY = MutationStrategy.name


def make_strategy(strategy: "str | SearchStrategy | None") -> SearchStrategy:
    """Resolve a strategy name (or pass an instance through)."""
    if strategy is None:
        strategy = DEFAULT_STRATEGY
    if isinstance(strategy, str):
        try:
            return STRATEGIES[strategy]()
        except KeyError:
            raise TdfError(
                f"unknown search strategy {strategy!r} "
                f"(available: {', '.join(sorted(STRATEGIES))})"
            ) from None
    if not isinstance(strategy, SearchStrategy):
        raise TdfError(
            f"{strategy!r} does not implement the SearchStrategy protocol "
            f"(reset/ask/tell)"
        )
    return strategy
