"""Coverage-guided testcase generation.

Automates the paper's §VI refinement loop: take the ranked
missed-association report the coverage stage already produces, and
*search* the stimulus parameter space for testcases that close the
missed associations — instead of crafting them by hand.

Layers:

* :mod:`~repro.generation.space` — per-system stimulus parameter
  spaces (sample/mutate/encode, picklable candidate transport);
* :mod:`~repro.generation.fitness` — per-association distance computed
  from exercised-pair sets (backend/engine-independent);
* :mod:`~repro.generation.search` — pluggable strategies (random,
  (1+λ) mutation, rank-weighted guided elite search);
* :mod:`~repro.generation.generate` — the loop: rank targets, search,
  accept closers, stop on coverage/budget/stagnation;
* :mod:`~repro.generation.report` — ``repro-dft-generation/1`` payload,
  text rendering, canonical suite bytes for determinism checks.
"""

from .fitness import (
    DuPathGuide,
    Fitness,
    association_fitness,
    build_guides,
    closed_targets,
    graded_fitness,
)
from .generate import (
    DEFAULT_TARGET_CLASSES,
    GeneratedTest,
    GenerationResult,
    TargetOutcome,
    generate_suite,
)
from .report import SCHEMA, build_report, format_report, suite_bytes, write_json
from .search import (
    DEFAULT_STRATEGY,
    STRATEGIES,
    GuidedStrategy,
    MutationStrategy,
    RandomStrategy,
    SearchStrategy,
    make_strategy,
)
from .space import (
    SPACES,
    EncodedParams,
    Param,
    ParameterSpace,
    decode_candidates,
    space_for,
)

__all__ = [
    "DEFAULT_STRATEGY",
    "DEFAULT_TARGET_CLASSES",
    "DuPathGuide",
    "EncodedParams",
    "Fitness",
    "GeneratedTest",
    "GenerationResult",
    "GuidedStrategy",
    "MutationStrategy",
    "Param",
    "ParameterSpace",
    "RandomStrategy",
    "SCHEMA",
    "SPACES",
    "STRATEGIES",
    "SearchStrategy",
    "TargetOutcome",
    "association_fitness",
    "build_guides",
    "build_report",
    "closed_targets",
    "decode_candidates",
    "format_report",
    "generate_suite",
    "graded_fitness",
    "make_strategy",
    "space_for",
    "suite_bytes",
    "write_json",
]
