"""Reporting for coverage-guided generation runs.

The JSON payload carries a ``schema`` tag (``repro-dft-generation/1``)
so CI jobs can assert on a stable shape; :func:`suite_bytes` produces
the canonical byte string of the synthesized suite used to check that
``--workers 1/2`` and ``--engine interp/block`` runs agree exactly.
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO

from ..core.associations import AssocClass
from ..core.criteria import detailed_status
from .generate import GenerationResult

#: JSON payload schema tag; bump on any incompatible shape change.
SCHEMA = "repro-dft-generation/1"

_CLASS_ORDER = [
    AssocClass.STRONG, AssocClass.FIRM, AssocClass.PFIRM, AssocClass.PWEAK
]


def _class_rows(coverage) -> List[dict]:
    classes = coverage.class_coverage()
    return [
        {
            "class": klass.value,
            "covered": classes[klass].covered,
            "total": classes[klass].total,
        }
        for klass in _CLASS_ORDER
    ]


def _criteria_rows(coverage) -> List[dict]:
    return [
        {
            "criterion": str(row.criterion),
            "satisfied": row.satisfied,
            "covered": row.covered,
            "total": row.total,
        }
        for row in detailed_status(coverage)
    ]


def build_report(result: GenerationResult) -> dict:
    """The machine-readable report (schema ``repro-dft-generation/1``)."""
    closed = result.closed
    wall = result.wall_seconds
    return {
        "schema": SCHEMA,
        "system": result.system,
        "seed": result.seed,
        "strategy": result.strategy,
        "stop_reason": result.stop_reason,
        "targets_mode": result.target_mode,
        "counts": {
            "targets": len(result.targets),
            "closed": len(closed),
            "open": len(result.targets) - len(closed),
            "subsumed_targets": result.subsumed_targets,
            "subsumed_closed": result.subsumed_closed,
            "generated_testcases": len(result.generated),
            "candidates": result.candidates,
            "simulations": result.simulations,
            "memo_hits": result.memo_hits,
        },
        "throughput": {
            "wall_seconds": round(wall, 6),
            # The bench headline numbers: how fast the search turns
            # simulations (and wall time) into closed associations.
            "closed_per_second": round(len(closed) / wall, 6) if wall > 0 else 0.0,
            "closed_per_simulation": (
                round(len(closed) / result.simulations, 6)
                if result.simulations else 0.0
            ),
        },
        "targets": [
            {
                "key": list(t.key),
                "class": t.klass,
                "status": t.status,
                "rounds": t.rounds,
                "best_score": round(t.best_score, 6),
                "closed_by": t.closed_by,
                "simulations": t.simulations,
                "trajectory": [round(score, 6) for score in t.trajectory],
            }
            for t in result.targets
        ],
        "generated": [
            {
                "name": g.name,
                "params": [[name, value] for name, value in g.params],
                "closed": [list(k) for k in g.closed],
                "sought": list(g.sought),
            }
            for g in result.generated
        ],
        "coverage": {
            "before": _class_rows(result.coverage_before),
            "after": _class_rows(result.coverage_after),
        },
        "criteria": {
            "before": _criteria_rows(result.coverage_before),
            "after": _criteria_rows(result.coverage_after),
        },
    }


def suite_bytes(result: GenerationResult) -> bytes:
    """Canonical bytes of the synthesized suite.

    One ``[name, [[param, value], ...], [closed keys...]]`` row per
    generated testcase in acceptance order.  Timing never enters, so
    serial/parallel and interp/block runs of the same seed must produce
    identical bytes.
    """
    rows = [
        [g.name, [[n, v] for n, v in g.params], [list(k) for k in g.closed]]
        for g in result.generated
    ]
    return json.dumps(rows, separators=(",", ":"), sort_keys=True).encode("ascii")


def format_report(payload: dict) -> str:
    """Human-readable text rendering of a report payload."""
    lines: List[str] = []
    counts = payload["counts"]
    thr = payload["throughput"]
    lines.append(
        f"coverage-guided generation for {payload['system']} "
        f"(seed {payload['seed']}, strategy {payload['strategy']})"
    )
    lines.append(
        f"  targets: {counts['targets']} missed associations, "
        f"{counts['closed']} closed, {counts['open']} still open "
        f"(stopped: {payload['stop_reason']})"
    )
    if payload.get("targets_mode") == "frontier":
        lines.append(
            f"  frontier mode: {counts['subsumed_targets']} subsumed "
            f"association(s) excluded from the search, "
            f"{counts['subsumed_closed']} closed opportunistically"
        )
    lines.append(
        f"  search: {counts['candidates']} candidates = "
        f"{counts['simulations']} simulations + {counts['memo_hits']} memo hits "
        f"-> {counts['generated_testcases']} accepted testcase(s)"
    )
    lines.append(
        f"  throughput: {thr['closed_per_simulation']:.3f} closed/simulation, "
        f"{thr['closed_per_second']:.3f} closed/s "
        f"({thr['wall_seconds']:.2f}s wall)"
    )
    lines.append("")
    lines.append("  coverage (covered/total per class):")
    before = {row["class"]: row for row in payload["coverage"]["before"]}
    after = {row["class"]: row for row in payload["coverage"]["after"]}
    for klass in _CLASS_ORDER:
        b, a = before[klass.value], after[klass.value]
        marker = "  +%d" % (a["covered"] - b["covered"]) if a["covered"] > b["covered"] else ""
        lines.append(
            f"    {klass.value:7s} {b['covered']:3d}/{b['total']:<3d} -> "
            f"{a['covered']:3d}/{a['total']:<3d}{marker}"
        )
    newly = [
        row["criterion"]
        for b_row, row in zip(payload["criteria"]["before"], payload["criteria"]["after"])
        if row["satisfied"] and not b_row["satisfied"]
    ]
    if newly:
        lines.append(f"  newly satisfied criteria: {', '.join(newly)}")
    if payload["generated"]:
        lines.append("")
        lines.append("  generated testcases:")
        for g in payload["generated"]:
            lines.append(f"    {g['name']}: closes {len(g['closed'])} association(s)")
    still_open = [t for t in payload["targets"] if t["status"] not in ("closed", "pre_closed")]
    if still_open:
        lines.append("")
        lines.append(f"  still open ({len(still_open)}):")
        for t in still_open[:10]:
            key = t["key"]
            lines.append(
                f"    [{t['class']}] ({key[0]}, {key[2]}, {key[1]}, {key[4]}, {key[3]})"
                f" — {t['status']} (best {t['best_score']:.2f})"
            )
        if len(still_open) > 10:
            lines.append(f"    ... and {len(still_open) - 10} more")
    return "\n".join(lines)


def write_json(payload: dict, stream: TextIO) -> None:
    """Write the payload as stable, sorted JSON."""
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")
