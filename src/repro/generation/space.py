"""Stimulus parameter spaces for coverage-guided testcase synthesis.

The paper's refinement loop adds testcases by hand, guided by the
ranked missed-association report.  To automate that last mile the
search needs a *parameter space*: a small vector of numbers (levels,
switch times, load resistances, button codes, obstacle positions) that
deterministically maps onto one :class:`~repro.testing.TestCase` built
from the :mod:`repro.testing.stimuli` generators.  Search strategies
(:mod:`repro.generation.search`) sample and mutate these vectors; the
generation loop (:mod:`repro.generation.generate`) evaluates the
resulting testcases.

Everything is picklable-by-value: a candidate travels to worker
processes as its ``(name, ((param, value), ...))`` encoding, and
:func:`decode_candidates` — an importable ``"module:attr"`` reference —
rebuilds the testcase objects on the other side (the same scheme
:mod:`repro.exec.refs` uses for whole suites, stretched to synthesized
suites whose closures cannot be pickled).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from ..tdf.errors import TdfError
from ..tdf.time import ScaTime, ms, sec
from ..testing.stimuli import Pwl, Step
from ..testing.testcase import TestCase

#: Canonical candidate-parameter encoding: sorted ``(name, value)`` pairs.
EncodedParams = Tuple[Tuple[str, float], ...]

#: Decimal places parameter values are rounded to.  Sampling, mutation
#: and the name digest all go through this quantisation, so a candidate's
#: identity is a pure function of its (rounded) parameter vector.
_ROUND = 9


@dataclass(frozen=True)
class Param:
    """One searchable dimension of a stimulus space.

    ``kind``:

    * ``"float"`` — uniform in ``[lo, hi]``;
    * ``"int"`` — integer-uniform in ``[lo, hi]`` (button codes, step
      counts); values are stored as integral floats;
    * ``"log"`` — log-uniform in ``[lo, hi]`` (load resistances and
      other dimensions spanning decades).
    """

    name: str
    lo: float
    hi: float
    kind: str = "float"

    def __post_init__(self) -> None:
        if self.kind not in ("float", "int", "log"):
            raise ValueError(f"unknown param kind {self.kind!r}")
        if not self.lo <= self.hi:
            raise ValueError(f"param {self.name!r}: lo {self.lo} > hi {self.hi}")
        if self.kind == "log" and self.lo <= 0:
            raise ValueError(f"param {self.name!r}: log range needs lo > 0")

    def sample(self, rng) -> float:
        """One uniform draw from the range."""
        if self.kind == "int":
            return float(rng.randint(int(self.lo), int(self.hi)))
        if self.kind == "log":
            return self.quantize(
                math.exp(rng.uniform(math.log(self.lo), math.log(self.hi)))
            )
        return self.quantize(rng.uniform(self.lo, self.hi))

    def mutate(self, rng, value: float, scale: float) -> float:
        """A gaussian perturbation of ``value``, clamped into range.

        ``scale`` is the relative step size (fraction of the range, or
        of the log-range for ``"log"`` params).  Integer params move by
        at least one step or resample outright — a +-0.3 nudge on a
        button code would otherwise always round back.
        """
        if self.kind == "int":
            if rng.random() < 0.5:
                return float(rng.randint(int(self.lo), int(self.hi)))
            step = max(1, round(abs(rng.gauss(0.0, scale * (self.hi - self.lo)))))
            value += step if rng.random() < 0.5 else -step
            return float(min(max(value, self.lo), self.hi))
        if self.kind == "log":
            span = math.log(self.hi) - math.log(self.lo)
            moved = math.exp(math.log(value) + rng.gauss(0.0, scale * span))
        else:
            moved = value + rng.gauss(0.0, scale * (self.hi - self.lo))
        return self.quantize(min(max(moved, self.lo), self.hi))

    def quantize(self, value: float) -> float:
        """Round to the canonical precision (candidate identity)."""
        return round(float(value), _ROUND)


@dataclass(frozen=True)
class ParameterSpace:
    """A system's searchable stimulus space.

    ``builder`` must be a module-level callable
    ``(name, params) -> TestCase`` so worker processes can rebuild
    candidates; ``version`` participates in candidate names (and the
    report), so changing a space invalidates memoized results.
    """

    system: str
    params: Tuple[Param, ...]
    builder: Callable[[str, Dict[str, float]], TestCase]
    version: int = 1

    def __post_init__(self) -> None:
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate param names in space {self.system!r}")

    def sample(self, rng) -> Dict[str, float]:
        """One uniform draw of the full parameter vector."""
        return {p.name: p.sample(rng) for p in self.params}

    def mutate(self, rng, params: Mapping[str, float], scale: float) -> Dict[str, float]:
        """Perturb a subset of dimensions of ``params``.

        Each dimension mutates with probability ``1/n`` (at least one
        always does), the classic per-gene mutation rate of a (1+λ) EA.
        """
        n = len(self.params)
        while True:
            out = dict(params)
            mutated = False
            for p in self.params:
                if rng.random() < 1.0 / n:
                    out[p.name] = p.mutate(rng, out[p.name], scale)
                    mutated = True
            if mutated:
                return out

    def encode(self, params: Mapping[str, float]) -> EncodedParams:
        """The canonical ``((name, value), ...)`` encoding (sorted)."""
        missing = {p.name for p in self.params} - set(params)
        if missing:
            raise ValueError(
                f"space {self.system!r}: missing param(s) {sorted(missing)}"
            )
        return tuple(sorted((p.name, p.quantize(params[p.name])) for p in self.params))

    def candidate_name(self, params: Mapping[str, float]) -> str:
        """Deterministic testcase name: a digest of the encoded vector.

        The name doubles as the memoization key suffix (see
        :class:`~repro.exec.DynamicResultCache`), so re-proposals of an
        already-evaluated vector cost no simulation.
        """
        blob = repr((self.system, self.version, self.encode(params)))
        digest = hashlib.sha1(blob.encode("utf-8")).hexdigest()[:12]
        return f"gen_{self.system}_{digest}"

    def build(self, params: Mapping[str, float]) -> TestCase:
        """The testcase for one parameter vector."""
        encoded = self.encode(params)
        return self.builder(self.candidate_name(params), dict(encoded))


# ---------------------------------------------------------------------------
# Bundled spaces
# ---------------------------------------------------------------------------

def build_buck_boost(name: str, params: Dict[str, float]) -> TestCase:
    """Buck-boost candidate: stepped target/vin/load waveforms.

    One step per knob covers the scenarios the hand-written refinement
    batches need (retargets across the buck/boost boundary, battery
    sag/recovery, load steps into and out of PFM) while keeping the
    space nine-dimensional.
    """
    target = Step(params["target0"], params["target1"], params["t_target"])
    vin = Step(params["vin0"], params["vin1"], params["t_vin"])
    load = Step(params["load0"], params["load1"], params["t_load"])
    duration = ms(int(params["duration_ms"]))

    def setup(cluster) -> None:
        cluster.apply_target(target)
        cluster.apply_vin(vin)
        cluster.apply_load(load)

    return TestCase(
        name, duration, setup, description="synthesized (coverage-guided)"
    )


def buck_boost_space() -> ParameterSpace:
    """Target/input/load step space for the buck-boost converter VP."""
    return ParameterSpace(
        system="buck_boost",
        builder=build_buck_boost,
        params=(
            Param("target0", 0.0, 12.0),
            Param("target1", 0.0, 12.0),
            Param("t_target", 0.0005, 0.02),
            Param("vin0", 0.3, 4.5),
            Param("vin1", 0.3, 4.5),
            Param("t_vin", 0.0005, 0.02),
            Param("load0", 0.05, 5000.0, kind="log"),
            Param("load1", 0.05, 5000.0, kind="log"),
            Param("t_load", 0.0005, 0.02),
            Param("duration_ms", 40, 160, kind="int"),
        ),
    )


def build_window_lifter(name: str, params: Dict[str, float]) -> TestCase:
    """Window-lifter candidate: two button presses plus an obstacle window."""
    code1 = int(params["btn1"])
    code2 = int(params["btn2"])
    t1_start, t1_stop = params["t1_start"], params["t1_start"] + params["t1_len"]
    t2_start, t2_stop = params["t2_start"], params["t2_start"] + params["t2_len"]
    obstacle_pos = params["obstacle_pos"]
    obst_in, obst_out = params["obst_in"], params["obst_in"] + params["obst_len"]

    def buttons(t: float) -> int:
        if t1_start <= t < t1_stop:
            return code1
        if t2_start <= t < t2_stop:
            return code2
        return 0

    def obstacle(t: float) -> float:
        return obstacle_pos if obst_in <= t < obst_out else 0.0

    def setup(cluster) -> None:
        cluster.apply_buttons(buttons)
        cluster.apply_obstacle(obstacle)

    return TestCase(
        name,
        sec(int(params["duration_ds"]) / 10.0),
        setup,
        description="synthesized (coverage-guided)",
    )


def window_lifter_space() -> ParameterSpace:
    """Button-sequence + obstacle space for the window-lifter VP."""
    return ParameterSpace(
        system="window_lifter",
        builder=build_window_lifter,
        params=(
            Param("btn1", 0, 3, kind="int"),
            Param("t1_start", 0.0, 1.5),
            Param("t1_len", 0.1, 2.0),
            Param("btn2", 0, 3, kind="int"),
            Param("t2_start", 1.5, 3.0),
            Param("t2_len", 0.1, 2.0),
            Param("obstacle_pos", 0.0, 100.0),
            Param("obst_in", 0.0, 2.0),
            Param("obst_len", 0.2, 4.0),
            Param("duration_ds", 20, 50, kind="int"),  # deciseconds: 2.0-5.0 s
        ),
    )


def build_sensor(name: str, params: Dict[str, float]) -> TestCase:
    """Sensor candidate: a three-point PWL on TS plus a constant HS level."""
    pwl = Pwl(
        [
            (0.0, params["ts0"]),
            (params["t_mid"], params["ts1"]),
            (params["t_end"], params["ts2"]),
        ]
    )
    hs_level = params["hs"]

    def setup(cluster) -> None:
        cluster.apply_ts_waveform(pwl)
        cluster.apply_hs_waveform(lambda t: hs_level)

    return TestCase(
        name, ms(int(params["duration_ms"])), setup,
        description="synthesized (coverage-guided)",
    )


def sensor_space() -> ParameterSpace:
    """TS/HS input space for the paper's Fig. 1/2 sensor system."""
    return ParameterSpace(
        system="sensor",
        builder=build_sensor,
        params=(
            Param("ts0", -0.2, 0.8),
            Param("ts1", -0.2, 0.8),
            Param("ts2", -0.2, 0.8),
            Param("t_mid", 0.002, 0.02),
            Param("t_end", 0.02, 0.05),
            Param("hs", -0.2, 0.6),
            Param("duration_ms", 20, 60, kind="int"),
        ),
    )


#: Registry of bundled spaces: system name -> space factory.
SPACES: Dict[str, Callable[[], ParameterSpace]] = {
    "buck_boost": buck_boost_space,
    "window_lifter": window_lifter_space,
    "sensor": sensor_space,
}


def space_for(system: str) -> ParameterSpace:
    """The bundled space for ``system`` (one-line error otherwise)."""
    try:
        return SPACES[system]()
    except KeyError:
        raise TdfError(
            f"no stimulus parameter space defined for system {system!r} "
            f"(available: {', '.join(sorted(SPACES))})"
        ) from None


def decode_candidates(
    system: str, encoded: Sequence[EncodedParams]
) -> List[TestCase]:
    """Rebuild candidate testcases from their parameter encodings.

    The worker-side entry point (importable as
    ``"repro.generation.space:decode_candidates"``): the parent ships
    each evaluation batch as plain tuples via
    :class:`~repro.exec.ProcessExecutor` ``suite_args``, and both sides
    derive identical names from identical vectors.
    """
    space = space_for(system)
    return [space.build(dict(vector)) for vector in encoded]
