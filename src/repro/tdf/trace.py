"""Signal tracing (the ``sca_trace`` analogue).

:class:`Tracer` subscribes to signal writes and records ``(time,
value)`` rows per signal.  Traces feed the examples' plots/dumps and
give tests a way to assert on waveforms.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple

from .errors import TdfError
from .signal import Signal
from .time import ScaTime

Row = Tuple[Optional[ScaTime], Any]


class Tracer:
    """Records the sample stream of one or more signals."""

    def __init__(self) -> None:
        self._traces: Dict[str, List[Row]] = {}
        self._order: List[str] = []

    def trace(self, signal: Signal, name: Optional[str] = None) -> None:
        """Start recording ``signal`` (under ``name`` if given).

        **Contract:** call before the first sample is produced on the
        signal (i.e. before simulation starts, like ``sca_trace`` in
        SystemC-AMS).  A tracer attached later would silently miss every
        earlier sample, so this raises :class:`~repro.tdf.errors.TdfError`
        instead of producing a truncated waveform.
        """
        if signal.write_count > 0:
            raise TdfError(
                f"cannot start tracing signal {signal.name!r}: it already "
                f"carries {signal.write_count} sample(s); attach the Tracer "
                f"before the simulation starts (the trace would silently "
                f"miss the earlier samples otherwise)"
            )
        key = name or signal.name
        if key in self._traces:
            raise ValueError(f"already tracing a signal under name {key!r}")
        self._traces[key] = []
        self._order.append(key)

        def observer(sig: Signal, index: int, value: Any, time: Optional[ScaTime]) -> None:
            self._traces[key].append((time, value))

        signal.add_write_observer(observer)

    def names(self) -> List[str]:
        """Traced signal names in registration order."""
        return list(self._order)

    def samples(self, name: str) -> List[Row]:
        """All recorded ``(time, value)`` rows of ``name``."""
        return list(self._traces[name])

    def values(self, name: str) -> List[Any]:
        """Just the values of ``name``, in sample order."""
        return [value for _, value in self._traces[name]]

    def last(self, name: str) -> Any:
        """Most recent value of ``name``."""
        rows = self._traces[name]
        if not rows:
            raise ValueError(f"no samples recorded for {name!r}")
        return rows[-1][1]

    def clear(self) -> None:
        """Drop all recorded samples (keeps subscriptions)."""
        for rows in self._traces.values():
            rows.clear()

    # -- tabular dump --------------------------------------------------------

    def write_tabular(self, stream: TextIO, time_unit: str = "us") -> None:
        """Write all traces as a whitespace-separated table.

        One row per distinct sample time, one column per traced signal;
        missing samples repeat the previous value (sample-and-hold),
        matching the tabular trace format of SystemC-AMS.
        """
        for t, held in self._held_rows(time_unit):
            if t is None:
                stream.write(
                    "time_" + time_unit + "\t" + "\t".join(self._order) + "\n"
                )
            else:
                stream.write(
                    f"{t:g}\t"
                    + "\t".join(str(held[name]) for name in self._order)
                    + "\n"
                )

    def to_tabular(self, time_unit: str = "us") -> str:
        """Return the tabular dump as a string."""
        buf = io.StringIO()
        self.write_tabular(buf, time_unit)
        return buf.getvalue()

    def write_csv(self, stream: TextIO, time_unit: str = "us") -> None:
        """Write all traces as CSV (same sample-and-hold table as
        :meth:`write_tabular`, RFC-4180 quoting via :mod:`csv`)."""
        writer = csv.writer(stream, lineterminator="\n")
        for t, held in self._held_rows(time_unit):
            if t is None:
                writer.writerow(["time_" + time_unit] + list(self._order))
            else:
                writer.writerow(
                    [f"{t:g}"] + [str(held[name]) for name in self._order]
                )

    def to_csv(self, time_unit: str = "us") -> str:
        """Return the CSV dump as a string."""
        buf = io.StringIO()
        self.write_csv(buf, time_unit)
        return buf.getvalue()

    def _held_rows(self, time_unit: str):
        """Yield the sample-and-hold table: a ``(None, names)`` header
        row, then one ``(time, {name: value})`` row per distinct time."""
        times = sorted(
            {
                t.femtoseconds
                for rows in self._traces.values()
                for t, _ in rows
                if t is not None
            }
        )
        yield None, None
        held: Dict[str, Any] = {name: "" for name in self._order}
        cursors = {name: 0 for name in self._order}
        for t_fs in times:
            for name in self._order:
                rows = self._traces[name]
                i = cursors[name]
                while i < len(rows) and rows[i][0] is not None and rows[i][0].femtoseconds <= t_fs:
                    held[name] = rows[i][1]
                    i += 1
                cursors[name] = i
            yield ScaTime.from_femtoseconds(t_fs).to(time_unit), held
