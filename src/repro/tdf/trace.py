"""Signal tracing (the ``sca_trace`` analogue).

:class:`Tracer` subscribes to signal writes and records ``(time,
value)`` rows per signal.  Traces feed the examples' plots/dumps and
give tests a way to assert on waveforms.
"""

from __future__ import annotations

import io
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple

from .signal import Signal
from .time import ScaTime

Row = Tuple[Optional[ScaTime], Any]


class Tracer:
    """Records the sample stream of one or more signals."""

    def __init__(self) -> None:
        self._traces: Dict[str, List[Row]] = {}
        self._order: List[str] = []

    def trace(self, signal: Signal, name: Optional[str] = None) -> None:
        """Start recording ``signal`` (under ``name`` if given)."""
        key = name or signal.name
        if key in self._traces:
            raise ValueError(f"already tracing a signal under name {key!r}")
        self._traces[key] = []
        self._order.append(key)

        def observer(sig: Signal, index: int, value: Any, time: Optional[ScaTime]) -> None:
            self._traces[key].append((time, value))

        signal.add_write_observer(observer)

    def names(self) -> List[str]:
        """Traced signal names in registration order."""
        return list(self._order)

    def samples(self, name: str) -> List[Row]:
        """All recorded ``(time, value)`` rows of ``name``."""
        return list(self._traces[name])

    def values(self, name: str) -> List[Any]:
        """Just the values of ``name``, in sample order."""
        return [value for _, value in self._traces[name]]

    def last(self, name: str) -> Any:
        """Most recent value of ``name``."""
        rows = self._traces[name]
        if not rows:
            raise ValueError(f"no samples recorded for {name!r}")
        return rows[-1][1]

    def clear(self) -> None:
        """Drop all recorded samples (keeps subscriptions)."""
        for rows in self._traces.values():
            rows.clear()

    # -- tabular dump --------------------------------------------------------

    def write_tabular(self, stream: TextIO, time_unit: str = "us") -> None:
        """Write all traces as a whitespace-separated table.

        One row per distinct sample time, one column per traced signal;
        missing samples repeat the previous value (sample-and-hold),
        matching the tabular trace format of SystemC-AMS.
        """
        times = sorted(
            {
                t.femtoseconds
                for rows in self._traces.values()
                for t, _ in rows
                if t is not None
            }
        )
        stream.write("time_" + time_unit + "\t" + "\t".join(self._order) + "\n")
        held: Dict[str, Any] = {name: "" for name in self._order}
        cursors = {name: 0 for name in self._order}
        for t_fs in times:
            for name in self._order:
                rows = self._traces[name]
                i = cursors[name]
                while i < len(rows) and rows[i][0] is not None and rows[i][0].femtoseconds <= t_fs:
                    held[name] = rows[i][1]
                    i += 1
                cursors[name] = i
            t = ScaTime.from_femtoseconds(t_fs).to(time_unit)
            stream.write(
                f"{t:g}\t" + "\t".join(str(held[name]) for name in self._order) + "\n"
            )

    def to_tabular(self, time_unit: str = "us") -> str:
        """Return the tabular dump as a string."""
        buf = io.StringIO()
        self.write_tabular(buf, time_unit)
        return buf.getvalue()
