"""The TDF simulation kernel.

:class:`Simulator` drives a :class:`~repro.tdf.cluster.Cluster` through
time: it elaborates the cluster (computing the static schedule), calls
``initialize()`` once, then repeats the schedule period after period
until the requested stop time.  After every period each module's
``change_attributes()`` hook runs; if any module filed a dynamic-TDF
request (new timestep or port rate) the kernel applies the request and
re-elaborates before the next period — the SystemC-AMS *dynamic TDF*
behaviour the paper's window-lifter experiment exercises.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from ..obs import get_telemetry
from .cluster import Cluster
from .errors import SimulationError
from .module import TdfModule
from .scheduler import Schedule, elaborate
from .time import ScaTime


class Simulator:
    """Executes a TDF cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.schedule: Optional[Schedule] = None
        #: Simulated time at the start of the next period.
        self.now = ScaTime.zero()
        self.periods_run = 0
        self.reelaborations = 0
        self._initialized = False
        #: Observers called after every period: ``(simulator)``.
        self._period_hooks: List[Callable[["Simulator"], None]] = []

    # -- observers --------------------------------------------------------

    def add_period_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Run ``hook(self)`` after every completed cluster period."""
        self._period_hooks.append(hook)

    # -- lifecycle ----------------------------------------------------------

    def elaborate(self) -> Schedule:
        """(Re-)elaborate the cluster and return the fresh schedule."""
        self.schedule = elaborate(self.cluster)
        return self.schedule

    def initialize(self) -> None:
        """Elaborate (if needed), reset token buffers, run ``initialize()``."""
        if self.schedule is None:
            self.elaborate()
        self.cluster.reset_signals()
        for module in self.cluster.modules:
            module.initialize()
        self._initialized = True

    # -- execution --------------------------------------------------------------

    def run_period(self) -> None:
        """Execute exactly one cluster period."""
        if not self._initialized:
            self.initialize()
        assert self.schedule is not None
        schedule = self.schedule
        now = self.now
        for module, offset in schedule.timed_firings:
            module._activate(now + offset)
        self.now = self.now + schedule.period
        self.periods_run += 1
        for hook in self._period_hooks:
            hook(self)
        self._handle_dynamic_tdf()

    def _handle_dynamic_tdf(self) -> None:
        """Run ``change_attributes()`` and re-elaborate on request."""
        changed = False
        for module in self.cluster.modules:
            module.change_attributes()
        for module in self.cluster.modules:
            if module.has_pending_attribute_requests:
                module.consume_attribute_requests()
                changed = True
        if changed:
            # Re-elaboration keeps all token buffers: dynamic TDF changes
            # timing, not data already in flight.  ``initial=False``
            # skips set_attributes() so the requests just applied stand.
            self.schedule = elaborate(self.cluster, initial=False)
            self.reelaborations += 1

    def run(self, duration: ScaTime) -> None:
        """Run for (at least) ``duration`` of simulated time.

        Whole periods are executed; simulation stops at the first period
        boundary at or after ``start + duration``.

        With telemetry enabled (:mod:`repro.obs`), the run is wrapped in
        a ``tdf.simulate`` span and per-period wall time, per-module
        activation counts and per-signal read/write traffic are
        recorded; when disabled the hot loop is untouched.
        """
        if not isinstance(duration, ScaTime) or duration.femtoseconds < 0:
            raise SimulationError(
                f"run() expects a non-negative ScaTime duration, got {duration!r}"
            )
        if not self._initialized:
            self.initialize()
        tel = get_telemetry()
        if tel.enabled:
            with tel.span(
                "tdf.simulate",
                cluster=self.cluster.name,
                duration_fs=duration.femtoseconds,
            ):
                self._run_instrumented(duration, tel)
            return
        stop = self.now + duration
        while self.now < stop:
            before = self.now
            self.run_period()
            if self.now == before:
                raise SimulationError(
                    f"cluster {self.cluster.name!r} has a zero-length period; "
                    f"check timestep assignments"
                )

    def _run_instrumented(self, duration: ScaTime, tel) -> None:
        """The :meth:`run` loop with telemetry accounting around it.

        Counters are recorded as before/after deltas so repeated ``run``
        calls on one simulator accumulate correctly, and are flushed even
        when a period raises.
        """
        name = self.cluster.name
        metrics = tel.metrics
        base_activations = {m: m.activation_count for m in self.cluster.modules}
        base_writes = {s: s.write_count for s in self.cluster.signals}
        base_reads = {s: s.tokens_consumed() for s in self.cluster.signals}
        periods_before = self.periods_run
        reelaborations_before = self.reelaborations
        period_hist = metrics.histogram("tdf.period_seconds", cluster=name)
        try:
            stop = self.now + duration
            while self.now < stop:
                before = self.now
                t0 = time.perf_counter()
                self.run_period()
                period_hist.observe(time.perf_counter() - t0)
                if self.now == before:
                    raise SimulationError(
                        f"cluster {name!r} has a zero-length period; "
                        f"check timestep assignments"
                    )
        finally:
            for module in self.cluster.modules:
                delta = module.activation_count - base_activations[module]
                if delta:
                    metrics.counter(
                        "tdf.activations", cluster=name, module=module.name
                    ).inc(delta)
            for signal in self.cluster.signals:
                writes = signal.write_count - base_writes[signal]
                reads = signal.tokens_consumed() - base_reads[signal]
                if writes:
                    metrics.counter(
                        "tdf.signal_writes", cluster=name, signal=signal.name
                    ).inc(writes)
                if reads:
                    metrics.counter(
                        "tdf.signal_reads", cluster=name, signal=signal.name
                    ).inc(reads)
            metrics.counter("tdf.periods", cluster=name).inc(
                self.periods_run - periods_before
            )
            reelaborated = self.reelaborations - reelaborations_before
            if reelaborated:
                metrics.counter("tdf.reelaborations", cluster=name).inc(
                    reelaborated
                )

    def run_periods(self, count: int) -> None:
        """Run exactly ``count`` cluster periods."""
        if count < 0:
            raise SimulationError(f"period count must be >= 0, got {count}")
        for _ in range(count):
            self.run_period()

    def finish(self) -> None:
        """Signal end of simulation to every module."""
        for module in self.cluster.modules:
            module.end_of_simulation()

    def __repr__(self) -> str:
        return (
            f"Simulator({self.cluster.name!r}, now={self.now}, "
            f"periods={self.periods_run})"
        )
