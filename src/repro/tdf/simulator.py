"""The TDF simulation kernel.

:class:`Simulator` drives a :class:`~repro.tdf.cluster.Cluster` through
time: it elaborates the cluster (computing the static schedule), calls
``initialize()`` once, then repeats the schedule period after period
until the requested stop time.  After every period each module's
``change_attributes()`` hook runs; if any module filed a dynamic-TDF
request (new timestep or port rate) the kernel applies the request and
re-elaborates before the next period — the SystemC-AMS *dynamic TDF*
behaviour the paper's window-lifter experiment exercises.

Dynamic-TDF workloads typically oscillate between a small set of
attribute configurations (the window lifter flips between a fine and a
coarse timestep every few periods).  Rebuilding the schedule from
scratch on every flip repeats the same rate-balance / timestep /
PASS computation, so the simulator memoizes each built
:class:`~repro.tdf.scheduler.Schedule` under a fingerprint of the
attribute configuration and reuses it on repeat visits
(:attr:`Simulator.schedule_cache_hits` /
:attr:`Simulator.schedule_cache_misses`, mirrored as the
``tdf.schedule_cache_hits`` / ``tdf.schedule_cache_misses`` telemetry
counters).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import get_telemetry
from .cluster import Cluster
from .engine.executor import BlockEngine, resolve_engine
from .errors import SimulationError
from .module import TdfModule
from .scheduler import Schedule, elaborate
from .time import ScaTime


class Simulator:
    """Executes a TDF cluster.

    ``engine`` selects the execution strategy: ``"interp"`` (default)
    is the historical per-firing interpreter; ``"block"`` compiles the
    schedule into a flattened program executed in multi-period windows
    (see :mod:`repro.tdf.engine`); ``"auto"`` resolves to the block
    engine.  Both engines produce bit-identical results — the block
    engine falls back to interpreted firings per module where it must.
    """

    def __init__(self, cluster: Cluster, engine: str = "interp") -> None:
        self.cluster = cluster
        self.engine = engine if engine == "interp" else resolve_engine(engine)
        self._block_engine: Optional[BlockEngine] = None
        self.schedule: Optional[Schedule] = None
        #: Simulated time at the start of the next period.
        self.now = ScaTime.zero()
        self.periods_run = 0
        #: Number of schedule *changes* triggered by dynamic TDF —
        #: counted whether the new schedule was rebuilt or served from
        #: the cache.
        self.reelaborations = 0
        #: Schedules previously built for an attribute configuration,
        #: keyed by :meth:`_attribute_key`.
        self._schedule_cache: Dict[Tuple, Schedule] = {}
        self.schedule_cache_hits = 0
        self.schedule_cache_misses = 0
        self._initialized = False
        #: Observers called after every period: ``(simulator)``.
        self._period_hooks: List[Callable[["Simulator"], None]] = []

    # -- observers --------------------------------------------------------

    def add_period_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Run ``hook(self)`` after every completed cluster period."""
        self._period_hooks.append(hook)

    # -- lifecycle ----------------------------------------------------------

    def elaborate(self) -> Schedule:
        """(Re-)elaborate the cluster and return the fresh schedule."""
        self.schedule = elaborate(self.cluster)
        # Seed the schedule cache: the key must be computed *after*
        # elaboration because the initial pass runs set_attributes(),
        # which is what establishes the rates/timesteps the key covers.
        self._schedule_cache[self._attribute_key()] = self.schedule
        return self.schedule

    def initialize(self) -> None:
        """Elaborate (if needed), reset token buffers, run ``initialize()``."""
        if self.schedule is None:
            self.elaborate()
        self.cluster.reset_signals()
        for module in self.cluster.modules:
            module.initialize()
        self._initialized = True

    # -- execution --------------------------------------------------------------

    def run_period(self) -> None:
        """Execute exactly one cluster period."""
        if not self._initialized:
            self.initialize()
        assert self.schedule is not None
        schedule = self.schedule
        base_fs = self.now.femtoseconds
        from_fs = ScaTime.from_femtoseconds
        for module, offset_fs in schedule.timed_firings:
            module._activate(from_fs(base_fs + offset_fs))
        self.now = from_fs(base_fs + schedule.period_fs)
        self.periods_run += 1
        for hook in self._period_hooks:
            hook(self)
        self._handle_dynamic_tdf()

    def _attribute_key(self) -> Tuple:
        """Fingerprint of every attribute elaboration depends on.

        The schedule is a pure function of the cluster's bindings (fixed
        for a simulator's lifetime) plus, per module: the requested
        module timestep and each port's rate, delay and requested port
        timestep.  Dynamic TDF can only alter the requested timesteps
        and rates, so equal keys guarantee an identical schedule.
        """
        parts = []
        for module in self.cluster.modules:
            req = module.requested_timestep
            parts.append(
                (
                    module.name,
                    req.femtoseconds if req is not None else None,
                    tuple(
                        (
                            port.name,
                            port.rate,
                            port.delay,
                            port.requested_timestep.femtoseconds
                            if port.requested_timestep is not None
                            else None,
                        )
                        for port in module.ports()
                    ),
                )
            )
        return tuple(parts)

    def _handle_dynamic_tdf(self) -> None:
        """Run ``change_attributes()`` and swap schedules on request.

        A configuration seen before reuses its cached schedule (plus
        :meth:`Schedule.apply_timesteps` to restore the module/port
        timestep side effects of elaboration); only genuinely new
        configurations pay for a full re-elaboration.
        """
        changed = False
        for module in self.cluster.modules:
            module.change_attributes()
        for module in self.cluster.modules:
            if module.has_pending_attribute_requests:
                module.consume_attribute_requests()
                changed = True
        if not changed:
            return
        self._swap_schedule()

    def _swap_schedule(self) -> None:
        """Install the schedule for the (just-changed) attribute config.

        Shared by the interpreter's dynamic-TDF handler and the block
        engine's mid-window truncation path.
        """
        key = self._attribute_key()
        cached = self._schedule_cache.get(key)
        tel = get_telemetry()
        if cached is not None:
            cached.apply_timesteps()
            self.schedule = cached
            self.schedule_cache_hits += 1
            if tel.enabled:
                tel.metrics.counter(
                    "tdf.schedule_cache_hits", cluster=self.cluster.name
                ).inc()
        else:
            # Re-elaboration keeps all token buffers: dynamic TDF changes
            # timing, not data already in flight.  ``initial=False``
            # skips set_attributes() so the requests just applied stand.
            self.schedule = elaborate(self.cluster, initial=False)
            self._schedule_cache[key] = self.schedule
            self.schedule_cache_misses += 1
            if tel.enabled:
                tel.metrics.counter(
                    "tdf.schedule_cache_misses", cluster=self.cluster.name
                ).inc()
        self.reelaborations += 1

    @property
    def schedule_cache_stats(self) -> Dict[str, float]:
        """Hit/miss counts and the derived hit rate of the schedule cache."""
        hits = self.schedule_cache_hits
        misses = self.schedule_cache_misses
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
        }

    def run(self, duration: ScaTime) -> None:
        """Run for (at least) ``duration`` of simulated time.

        Whole periods are executed; simulation stops at the first period
        boundary at or after ``start + duration``.

        With telemetry enabled (:mod:`repro.obs`), the run is wrapped in
        a ``tdf.simulate`` span and per-period wall time, per-module
        activation counts and per-signal read/write traffic are
        recorded; when disabled the hot loop is untouched.
        """
        if not isinstance(duration, ScaTime) or duration.femtoseconds < 0:
            raise SimulationError(
                f"run() expects a non-negative ScaTime duration, got {duration!r}"
            )
        if not self._initialized:
            self.initialize()
        self._run(
            stop=self.now + duration,
            max_periods=None,
            span_attrs={"duration_fs": duration.femtoseconds},
        )

    def run_periods(self, count: int) -> None:
        """Run exactly ``count`` cluster periods.

        Shares :meth:`run`'s guarded loop: the zero-length-period check
        and the telemetry accounting apply to period-counted runs too
        (historically this path bypassed both).
        """
        if not isinstance(count, int) or count < 0:
            raise SimulationError(f"period count must be >= 0, got {count!r}")
        if count == 0:
            return
        if not self._initialized:
            self.initialize()
        self._run(stop=None, max_periods=count, span_attrs={"periods": count})

    def _run(
        self,
        stop: Optional[ScaTime],
        max_periods: Optional[int],
        span_attrs: Dict[str, int],
    ) -> None:
        """Shared driver for :meth:`run` and :meth:`run_periods`."""
        tel = get_telemetry()
        if tel.enabled:
            with tel.span(
                "tdf.simulate", cluster=self.cluster.name, **span_attrs
            ):
                self._run_instrumented(stop, max_periods, tel)
            return
        self._loop(stop, max_periods, period_hist=None)

    def _loop(self, stop, max_periods, period_hist) -> None:
        """The guarded period loop common to both execution modes."""
        if self.engine == "block":
            if self._block_engine is None:
                self._block_engine = BlockEngine(self)
            self._block_engine.run(stop, max_periods, period_hist)
            return
        executed = 0
        while (stop is None or self.now < stop) and (
            max_periods is None or executed < max_periods
        ):
            before = self.now
            if period_hist is None:
                self.run_period()
            else:
                t0 = time.perf_counter()
                self.run_period()
                period_hist.observe(time.perf_counter() - t0)
            executed += 1
            if self.now == before:
                raise SimulationError(
                    f"cluster {self.cluster.name!r} has a zero-length period; "
                    f"check timestep assignments"
                )

    def _run_instrumented(self, stop, max_periods, tel) -> None:
        """The guarded loop with telemetry accounting around it.

        Counters are recorded as before/after deltas so repeated ``run``
        calls on one simulator accumulate correctly, and are flushed even
        when a period raises.
        """
        name = self.cluster.name
        metrics = tel.metrics
        base_activations = {m: m.activation_count for m in self.cluster.modules}
        base_writes = {s: s.write_count for s in self.cluster.signals}
        base_reads = {s: s.tokens_consumed() for s in self.cluster.signals}
        periods_before = self.periods_run
        reelaborations_before = self.reelaborations
        period_hist = metrics.histogram("tdf.period_seconds", cluster=name)
        try:
            self._loop(stop, max_periods, period_hist)
        finally:
            for module in self.cluster.modules:
                delta = module.activation_count - base_activations[module]
                if delta:
                    metrics.counter(
                        "tdf.activations", cluster=name, module=module.name
                    ).inc(delta)
            for signal in self.cluster.signals:
                writes = signal.write_count - base_writes[signal]
                reads = signal.tokens_consumed() - base_reads[signal]
                if writes:
                    metrics.counter(
                        "tdf.signal_writes", cluster=name, signal=signal.name
                    ).inc(writes)
                if reads:
                    metrics.counter(
                        "tdf.signal_reads", cluster=name, signal=signal.name
                    ).inc(reads)
            metrics.counter("tdf.periods", cluster=name).inc(
                self.periods_run - periods_before
            )
            reelaborated = self.reelaborations - reelaborations_before
            if reelaborated:
                metrics.counter("tdf.reelaborations", cluster=name).inc(
                    reelaborated
                )

    def finish(self) -> None:
        """Signal end of simulation to every module."""
        for module in self.cluster.modules:
            module.end_of_simulation()

    def __repr__(self) -> str:
        return (
            f"Simulator({self.cluster.name!r}, now={self.now}, "
            f"periods={self.periods_run})"
        )
