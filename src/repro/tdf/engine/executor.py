"""Windowed executor for compiled firing programs.

:class:`BlockEngine` replaces the interpreter's per-firing loop with
per-*window* execution: hoisted (pre) modules produce up to
:data:`~repro.tdf.engine.compiler.WINDOW_PERIODS` periods of samples in
one ``processing_block`` call, the flattened core ops replay the
remaining PASS per period, and deferred (post) sinks drain the completed
periods in one call at window end.

Dynamic TDF stays fully supported: after every period the executor
scans the modules whose ``processing()`` actually ran (only those can
file attribute requests on the fast path) and, on a request, truncates
the window — excess pre-produced samples are rolled back token-for-token
before the schedule swap, so the data in flight is exactly what the
interpreter would have left behind.  Clusters that override
``change_attributes()`` (or carry period hooks) run with a window of
one period and the interpreter's full end-of-period protocol.

Engine selection is a three-valued knob resolved by
:func:`resolve_engine`: ``"interp"`` (the historical loop),
``"block"`` (this executor) and ``"auto"`` (currently ``block`` — the
compiler itself falls back per module, so auto never loses
correctness, only the constant factor).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ...obs import get_telemetry
from ..errors import SimulationError
from ..time import ScaTime
from .compiler import (
    CompiledProgram,
    _WindowRollback,
    compile_program,
    program_signature,
)

ENGINES = ("auto", "interp", "block")


def resolve_engine(engine: Optional[str]) -> str:
    """Map an engine request onto a concrete engine name."""
    if engine is None or engine == "auto":
        return "block"
    if engine in ("interp", "block"):
        return engine
    raise ValueError(
        f"unknown engine {engine!r}: expected one of {', '.join(ENGINES)}"
    )


class BlockEngine:
    """Executes compiled programs for one :class:`Simulator`."""

    def __init__(self, simulator) -> None:
        self.sim = simulator
        self.windows_run = 0

    # -- program cache -----------------------------------------------------

    def program_for(self, schedule) -> CompiledProgram:
        """The compiled program of ``schedule``, compiling on first use.

        Programs are cached on the schedule object itself (schedules are
        memoized by the simulator's schedule cache, so a dynamic-TDF
        oscillation recompiles nothing).  A signature mismatch — hooks or
        processing registrations changed since compilation — forces a
        recompile.
        """
        program = getattr(schedule, "_engine_program", None)
        if program is not None and program.signature == program_signature(self.sim):
            return program
        program = compile_program(self.sim, schedule)
        schedule._engine_program = program
        return program

    # -- execution ---------------------------------------------------------

    def run(self, stop: Optional[ScaTime], max_periods: Optional[int],
            period_hist=None) -> None:
        """The block-engine counterpart of ``Simulator._loop``."""
        sim = self.sim
        cluster = sim.cluster
        stop_fs = stop.femtoseconds if stop is not None else None
        executed = 0
        windows = 0
        # Signature validation once per schedule per run: hooks cannot
        # change while the kernel itself is running.
        validated: Dict[int, CompiledProgram] = {}
        try:
            while True:
                if max_periods is not None and executed >= max_periods:
                    break
                now_fs = sim.now.femtoseconds
                if stop_fs is not None and now_fs >= stop_fs:
                    break
                schedule = sim.schedule
                period_fs = schedule.period_fs
                if period_fs <= 0:
                    raise SimulationError(
                        f"cluster {cluster.name!r} has a zero-length period; "
                        f"check timestep assignments"
                    )
                program = validated.get(id(schedule))
                if program is None:
                    program = self.program_for(schedule)
                    validated[id(schedule)] = program
                remaining = (
                    None if max_periods is None else max_periods - executed
                )
                if stop_fs is not None:
                    by_time = -(-(stop_fs - now_fs) // period_fs)
                    remaining = (
                        by_time if remaining is None else min(remaining, by_time)
                    )
                t0 = time.perf_counter() if period_hist is not None else 0.0
                if sim._period_hooks or program.full_dynamic:
                    completed = self._run_one(program, now_fs)
                else:
                    n = (
                        program.window
                        if remaining is None
                        else min(program.window, remaining)
                    )
                    completed = self._run_window(program, now_fs, n)
                if period_hist is not None and completed:
                    # Per-period wall time is not individually observable
                    # under windowing; attribute the window evenly.
                    dt = (time.perf_counter() - t0) / completed
                    for _ in range(completed):
                        period_hist.observe(dt)
                executed += completed
                windows += 1
                # Deferred GC: block reads skip per-call collection so a
                # rollback can restore cursors; sweep once the window is
                # committed and every cursor is final.
                for signal in cluster.signals:
                    signal._collect_garbage()
        finally:
            self.windows_run += windows
            tel = get_telemetry()
            if tel.enabled and windows:
                metrics = tel.metrics
                metrics.counter(
                    "tdf.engine_windows", cluster=cluster.name
                ).inc(windows)
                metrics.counter(
                    "tdf.engine_periods", cluster=cluster.name
                ).inc(executed)

    def _run_one(self, program: CompiledProgram, base_fs: int) -> int:
        """One period with the interpreter's full end-of-period protocol
        (period hooks, ``change_attributes`` on every module)."""
        sim = self.sim
        for port, cell in program.event_cells:
            cell[0] = port._flushed
        for op in program.pre_ops:
            op.fire(1, base_fs, None)
        for op in program.core_ops:
            op(base_fs)
        for op in program.post_ops:
            op.fire(1, base_fs, None)
        sim.now = ScaTime.from_femtoseconds(base_fs + program.period_fs)
        sim.periods_run += 1
        for hook in sim._period_hooks:
            hook(sim)
        sim._handle_dynamic_tdf()
        return 1

    def _run_window(self, program: CompiledProgram, base_fs: int, n: int) -> int:
        """Up to ``n`` periods in one window; returns periods completed."""
        sim = self.sim
        for port, cell in program.event_cells:
            cell[0] = port._flushed
        rollback = _WindowRollback() if n > 1 else None
        for op in program.pre_ops:
            op.fire(n, base_fs, rollback)
        period_fs = program.period_fs
        core_ops = program.core_ops
        watch = program.dynamic_watch
        completed = 0
        p_base = base_fs
        pending = False
        while completed < n:
            for op in core_ops:
                op(p_base)
            completed += 1
            p_base += period_fs
            for module in watch:
                if module.has_pending_attribute_requests:
                    pending = True
                    break
            if pending:
                break
        for op in program.post_ops:
            op.fire(completed, base_fs, None)
        if rollback is not None:
            rollback.apply(n, completed)
        sim.now = ScaTime.from_femtoseconds(base_fs + completed * period_fs)
        sim.periods_run += completed
        if pending:
            # Same swap protocol as the interpreter's dynamic-TDF path
            # (change_attributes is not overridden on this fast path, so
            # only requests filed during processing() can exist).
            for module in sim.cluster.modules:
                if module.has_pending_attribute_requests:
                    module.consume_attribute_requests()
            sim._swap_schedule()
        return completed
