"""Block-mode sample access: :class:`FiringBlock` and signal helpers.

A *block* is ``n`` consecutive rate-1 firings of one module, presented
to :meth:`~repro.tdf.module.TdfModule.processing_block` as whole sample
lists instead of ``n`` separate ``read()``/``write()`` round trips.  The
helpers in this module are the only code that touches signal internals
on behalf of the compiled engine; they reproduce the exact observable
effects of the interpreted path (cursor positions, ``_write_count``,
``_flushed``, sample-and-hold state) so that interleaving block and
interpreted firings stays bit-identical.

Numeric helpers (``scale_block`` & friends) vectorize through numpy
when it is importable *and* every operand is a plain Python float —
IEEE-754 float64 elementwise arithmetic matches Python's scalar float
arithmetic bit-for-bit, but mixed int/bool payloads would change result
types, so those fall back to the per-sample list comprehension.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, List, TYPE_CHECKING

from ..errors import TdfError
from ..time import ScaTime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..ports import TdfIn, TdfOut

try:  # pragma: no cover - exercised implicitly everywhere numpy exists
    import numpy as _np
except Exception:  # pragma: no cover - numpy-less fallback
    _np = None

#: Below this block length the numpy round trip costs more than it saves.
_NUMPY_MIN = 16


def consume_block(port: "TdfIn", n: int) -> List[Any]:
    """Consume ``n`` tokens through ``port`` and return them in order.

    Equivalent to ``n`` interpreted rate-1 activations each doing one
    ``read()`` then ``_end_activation()`` — except that garbage
    collection is deferred to the end of the execution window (the
    executor sweeps every cluster signal after committing a window).
    Collecting here would be unsafe: a mid-window dynamic-TDF request
    rolls this cursor *back*, and tokens collected under the advanced
    cursor would be unrecoverable.  GC timing is internal either way.
    Read hooks are *not* fired — the compiler never block-fires a module
    whose input ports carry hooks.
    """
    sig = port.signal
    key = id(port)
    cursor = sig._cursors[key]
    if sig.driver is None:
        # Undriven signal: mirror TdfIn.read()'s initial-value semantics.
        init = port.initial_values
        if cursor >= 0 or not init:
            values = [sig.initial_value] * n
        else:
            values = []
            ninit = len(init)
            iv = sig.initial_value
            for k in range(cursor, cursor + n):
                if k < 0:
                    mapped = ninit + k
                    values.append(init[mapped] if 0 <= mapped < ninit else iv)
                else:
                    values.append(iv)
    elif cursor >= 0 and cursor + n <= sig._write_count:
        start = cursor - sig._base_index
        if start >= 0:
            values = list(islice(sig._tokens, start, start + n))
        else:  # pragma: no cover - engine never resurrects discarded tokens
            values = [sig._value_at(k, port) for k in range(cursor, cursor + n)]
    else:
        # Delay region or (engine bug) read-past-end: the slow path
        # raises the same SimulationError messages as the interpreter.
        values = [sig._value_at(k, port) for k in range(cursor, cursor + n)]
    sig._cursors[key] = cursor + n
    return values


def produce_block(port: "TdfOut", values: List[Any]) -> None:
    """Append a whole block of samples through ``port``.

    Equivalent to ``n`` interpreted rate-1 activations each flushing one
    written sample (the ``_end_activation`` fast path).  Only legal when
    the signal has no write observers — the compiler guarantees this.
    """
    sig = port.signal
    sig._tokens.extend(values)
    sig._write_count += len(values)
    sig.last_write_time = None
    port._flushed += len(values)
    port._last_value = values[-1]


def rollback_block(port: "TdfOut", excess: int, last_value: Any) -> None:
    """Un-produce the last ``excess`` samples written via ``produce_block``.

    Used when a dynamic-TDF request lands mid-window: samples hoisted
    for periods that will not execute under the old schedule are popped
    off the tail (they are unconsumed by construction — readers only
    consumed up to the completed periods).
    """
    sig = port.signal
    tokens = sig._tokens
    for _ in range(excess):
        tokens.pop()
    sig._write_count -= excess
    port._flushed -= excess
    port._last_value = last_value


class FiringBlock:
    """``n`` consecutive rate-1 firings of one module, as sample blocks.

    Passed to :meth:`~repro.tdf.module.TdfModule.processing_block`.
    Reads consume immediately; writes are collected and flushed by the
    engine after the callback returns (so the engine can account for
    probe events and rollback state in one place).
    """

    __slots__ = ("n", "module", "_base_fs", "_ts_fs", "writes", "_times")

    def __init__(self, n: int, module, base_fs: int, ts_fs: int) -> None:
        self.n = n
        self.module = module
        self._base_fs = base_fs
        self._ts_fs = ts_fs
        #: ``(port, values)`` pairs in write order; flushed by the engine.
        self.writes: List[tuple] = []
        self._times: Any = None

    def read(self, port: "TdfIn") -> List[Any]:
        """The ``n`` input samples for this block, in firing order."""
        return consume_block(port, self.n)

    def write(self, port: "TdfOut", values: List[Any]) -> None:
        """Stage the ``n`` output samples for this block."""
        if len(values) != self.n:
            raise TdfError(
                f"processing_block of {self.module.name!r} wrote "
                f"{len(values)} samples to {port.full_name()}, expected {self.n}"
            )
        self.writes.append((port, values if isinstance(values, list) else list(values)))

    def times_seconds(self) -> List[float]:
        """``local_time().to_seconds()`` for each firing, bit-identical.

        Computed through the same exact-femtosecond ScaTime conversion
        the interpreter uses, then cached (sinks that never look at
        times skip the cost entirely).
        """
        if self._times is None:
            from_fs = ScaTime.from_femtoseconds
            base, ts = self._base_fs, self._ts_fs
            self._times = [from_fs(base + k * ts).to_seconds() for k in range(self.n)]
        return self._times

    def timestep_seconds(self) -> float:
        """The module timestep in seconds (constant within a block)."""
        return ScaTime.from_femtoseconds(self._ts_fs).to_seconds()


def _vectorizable(values: List[Any]) -> bool:
    return (
        _np is not None
        and len(values) >= _NUMPY_MIN
        and all(type(v) is float for v in values)
    )


class BatchBlock:
    """Structure-of-arrays view over one program slot of a whole batch.

    Wraps the per-member :class:`FiringBlock` of the *same* module slot
    across ``B`` lockstep batch members (one independent cluster each).
    ``read``/``write`` move member-major 2-D sample arrays — row ``i``
    is member ``i``'s block — so a module's ``processing_block_batch``
    classmethod can compute all members in one vectorised call (the
    members are distinct module instances, hence the classmethod).
    Ports are addressed by attribute name (``"ip"``, ``"op"``) because
    the port *objects* differ per member.
    """

    __slots__ = ("blocks", "modules", "n")

    def __init__(self, blocks: List["FiringBlock"]) -> None:
        self.blocks = blocks
        self.modules = [block.module for block in blocks]
        self.n = blocks[0].n

    def read(self, port_attr: str) -> List[List[Any]]:
        """Member-major samples of port ``port_attr`` for every member."""
        return [
            block.read(getattr(block.module, port_attr)) for block in self.blocks
        ]

    def write(self, port_attr: str, rows: List[List[Any]]) -> None:
        """Stage member-major output samples for every member."""
        for block, values in zip(self.blocks, rows):
            block.write(getattr(block.module, port_attr), values)

    def params(self, attr: str) -> List[Any]:
        """Per-member values of module attribute ``attr`` (e.g. gains)."""
        return [getattr(module, attr) for module in self.modules]


def _batch_vectorizable(rows: List[List[Any]]) -> bool:
    """Whether a member-major 2-D batch is bit-safe for numpy.

    Requires rectangular rows (lockstep guarantees it), enough total
    samples to amortise the round trip, and all-float payloads — the
    same bit-identity argument as :func:`_vectorizable`, applied over
    the flattened ``members × samples`` axis.
    """
    if _np is None or not rows:
        return False
    n = len(rows[0])
    if len(rows) * n < _NUMPY_MIN:
        return False
    for row in rows:
        if len(row) != n:
            return False
        for v in row:
            if type(v) is not float:
                return False
    return True


def _all_floats(values: List[Any]) -> bool:
    return all(type(v) is float for v in values)


def scale_batch(rows: List[List[Any]], factors: List[Any]) -> List[List[Any]]:
    """Per-member ``[v * factors[i] for v in rows[i]]``, vectorised when
    bit-safe (one broadcast multiply for the whole batch)."""
    if _all_floats(factors) and _batch_vectorizable(rows):
        out = _np.asarray(rows) * _np.asarray(factors)[:, None]
        return out.tolist()
    return [scale_block(row, factor) for row, factor in zip(rows, factors)]


def offset_batch(rows: List[List[Any]], offsets: List[Any]) -> List[List[Any]]:
    """Per-member ``[v + offsets[i] for v in rows[i]]``, vectorised when
    bit-safe."""
    if _all_floats(offsets) and _batch_vectorizable(rows):
        out = _np.asarray(rows) + _np.asarray(offsets)[:, None]
        return out.tolist()
    return [offset_block(row, offset) for row, offset in zip(rows, offsets)]


def add_batch(a: List[List[Any]], b: List[List[Any]]) -> List[List[Any]]:
    """Elementwise ``a + b`` over the whole batch, vectorised when bit-safe."""
    if _batch_vectorizable(a) and _batch_vectorizable(b):
        return (_np.asarray(a) + _np.asarray(b)).tolist()
    return [add_blocks(x, y) for x, y in zip(a, b)]


def sub_batch(a: List[List[Any]], b: List[List[Any]]) -> List[List[Any]]:
    """Elementwise ``a - b`` over the whole batch, vectorised when bit-safe."""
    if _batch_vectorizable(a) and _batch_vectorizable(b):
        return (_np.asarray(a) - _np.asarray(b)).tolist()
    return [sub_blocks(x, y) for x, y in zip(a, b)]


def mul_batch(a: List[List[Any]], b: List[List[Any]]) -> List[List[Any]]:
    """Elementwise ``a * b`` over the whole batch, vectorised when bit-safe."""
    if _batch_vectorizable(a) and _batch_vectorizable(b):
        return (_np.asarray(a) * _np.asarray(b)).tolist()
    return [mul_blocks(x, y) for x, y in zip(a, b)]


def scale_block(values: List[Any], factor: Any) -> List[Any]:
    """``[v * factor for v in values]``, vectorized when bit-safe."""
    if type(factor) is float and _vectorizable(values):
        return (_np.asarray(values) * factor).tolist()
    return [v * factor for v in values]


def offset_block(values: List[Any], offset: Any) -> List[Any]:
    """``[v + offset for v in values]``, vectorized when bit-safe."""
    if type(offset) is float and _vectorizable(values):
        return (_np.asarray(values) + offset).tolist()
    return [v + offset for v in values]


def add_blocks(a: List[Any], b: List[Any]) -> List[Any]:
    """Elementwise ``a + b``, vectorized when bit-safe."""
    if _vectorizable(a) and _vectorizable(b):
        return (_np.asarray(a) + _np.asarray(b)).tolist()
    return [x + y for x, y in zip(a, b)]


def sub_blocks(a: List[Any], b: List[Any]) -> List[Any]:
    """Elementwise ``a - b``, vectorized when bit-safe."""
    if _vectorizable(a) and _vectorizable(b):
        return (_np.asarray(a) - _np.asarray(b)).tolist()
    return [x - y for x, y in zip(a, b)]


def mul_blocks(a: List[Any], b: List[Any]) -> List[Any]:
    """Elementwise ``a * b``, vectorized when bit-safe."""
    if _vectorizable(a) and _vectorizable(b):
        return (_np.asarray(a) * _np.asarray(b)).tolist()
    return [x * y for x, y in zip(a, b)]
